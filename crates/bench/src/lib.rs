//! # ftree-bench — experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md's experiment
//! index) plus criterion micro-benchmarks. This library holds the shared
//! plumbing: aligned table printing, the paper's topology roster, and tiny
//! CLI-flag helpers (no external argument-parsing dependency).

use std::path::PathBuf;
use std::sync::Arc;

pub mod campaign;
pub mod cases;
pub mod cli;
pub mod report;

pub use cli::{
    find_case, registry, run_standalone, BenchArgs, BenchCase, BenchOutput, CaseCtx, FabricCache,
};

/// Former name of [`BenchOutput`], kept so benches not yet migrated onto
/// [`BenchCase`] compile unchanged.
pub type BenchJson = BenchOutput;

use ftree_obs::Recorder;
use ftree_topology::rlft::catalog;
use ftree_topology::{PgftSpec, Topology};

/// Paper evaluation topologies by host count.
pub fn paper_topologies() -> Vec<(&'static str, PgftSpec)> {
    vec![
        ("128 (2-level, K=8)", catalog::nodes_128()),
        ("324 (2-level, K=18)", catalog::nodes_324()),
        ("1728 (3-level, K=12)", catalog::nodes_1728()),
        ("1944 (3-level, K=18)", catalog::nodes_1944()),
    ]
}

/// The 25 random node-order seeds of the Figure 3 experiment.
pub fn default_seeds() -> Vec<u64> {
    (1..=25).collect()
}

/// True when `flag` (e.g. `--full`) was passed on the command line.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Value of `--key value` arguments, if present.
pub fn arg_value(key: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == key {
            return args.next();
        }
    }
    None
}

/// Parsed numeric argument with default.
pub fn arg_num<T: std::str::FromStr>(key: &str, default: T) -> T {
    arg_value(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A plain-text aligned table, in the spirit of the paper's tables.
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with column alignment.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (for piping into plotting tools).
    pub fn render_csv(&self) -> String {
        let esc = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Prints aligned text, or CSV when `--csv` was passed on the command
    /// line (every experiment binary honors it).
    pub fn print(&self) {
        if has_flag("--csv") {
            print!("{}", self.render_csv());
        } else {
            print!("{}", self.render());
        }
    }
}

/// Installs a fresh process-global [`Recorder`] (so library-internal phase
/// timers and counters have somewhere to report) and returns it. Call once
/// at the top of every experiment binary.
pub fn init_obs() -> Arc<Recorder> {
    let rec = Arc::new(Recorder::new());
    ftree_obs::install(rec.clone());
    rec
}

/// Prints the per-phase wall-time table accumulated in `rec` (routing-table
/// builds, SM sweeps, simulator runs). Silent when nothing was timed.
pub fn print_phase_report(rec: &Recorder) {
    let report = rec.phase_report();
    if report.is_empty() {
        return;
    }
    let mut t = TextTable::new(vec!["phase", "calls", "total ms"]);
    for p in &report {
        t.row(vec![
            p.name.clone(),
            p.calls.to_string(),
            format!("{:.2}", p.total_ms),
        ]);
    }
    println!("\nphase timings");
    print!("{}", t.render());
}

/// Honors the shared observability flags: `--trace-out <path>` writes a
/// Chrome trace-event JSON (open in <https://ui.perfetto.dev>) and
/// `--events-out <path>` the raw NDJSON event stream. `topo` labels the
/// trace's channel and fault tracks.
pub fn export_observability(topo: &Topology, rec: &Recorder) {
    export_observability_args(topo, rec, &BenchArgs::from_env());
}

/// [`export_observability`] against an explicit argument set (the
/// [`BenchCase`] path — cases never read the process environment).
pub fn export_observability_args(topo: &Topology, rec: &Recorder, args: &BenchArgs) {
    if let Some(path) = args.trace_out() {
        let trace = ftree_sim::export_chrome_trace(topo, rec);
        let body = serde_json::to_string_pretty(&trace).expect("trace serializes");
        write_output(path, &body, "Chrome trace");
    }
    if let Some(path) = args.events_out() {
        write_output(path, &rec.events_ndjson(), "event NDJSON");
        // Sidecar: whether the bounded ring evicted anything, so a consumer
        // can tell a complete stream from a truncated one.
        let dropped = rec.flight().dropped();
        let complete = dropped == 0;
        let meta = serde_json::json!({
            "events": rec.flight().len(),
            "capacity": rec.flight().capacity(),
            "dropped": dropped,
            "complete": complete,
        });
        let body = serde_json::to_string_pretty(&meta).expect("meta serializes");
        write_output(
            &format!("{path}.meta.json"),
            &(body + "\n"),
            "event-stream metadata",
        );
        if dropped > 0 {
            eprintln!(
                "warning: flight recorder dropped {dropped} events (capacity {}); \
                 the NDJSON stream is incomplete — raise the capacity or narrow the run",
                rec.flight().capacity()
            );
        }
    }
}

/// True when this invocation asked for event capture (`--trace-out` or
/// `--events-out`): benches attach recorders to their simulations only on
/// demand, keeping default runs on the zero-overhead path.
pub fn events_requested() -> bool {
    arg_value("--trace-out").is_some() || arg_value("--events-out").is_some()
}

/// Attaches `rec` to `sim` when [`events_requested`], passes it through
/// untouched otherwise.
pub fn maybe_record<'a>(
    sim: ftree_sim::PacketSim<'a>,
    rec: &Arc<Recorder>,
) -> ftree_sim::PacketSim<'a> {
    if events_requested() {
        sim.with_recorder(rec.clone())
    } else {
        sim
    }
}

pub(crate) fn write_output(path: &str, body: &str, what: &str) {
    let p = PathBuf::from(path);
    if let Some(dir) = p.parent().filter(|d| !d.as_os_str().is_empty()) {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&p, body) {
        Ok(()) => eprintln!("wrote {what} to {path}"),
        Err(e) => eprintln!("warning: could not write {what} to {path}: {e}"),
    }
}

/// Formats a byte count as the paper's axis labels (4K, 64K, 1M).
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes >= 1 << 20 && bytes.is_multiple_of(1 << 20) {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1 << 10 && bytes.is_multiple_of(1 << 10) {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}")
    }
}

/// Deterministic "random" exclusion set of `count` ports out of `total`
/// (hash-stride pattern; no RNG state needed for reproducibility).
pub fn exclusion_set(seed: u64, count: usize, total: u32) -> Vec<u32> {
    let mut excluded = std::collections::BTreeSet::new();
    let mut k = 0u64;
    while excluded.len() < count {
        excluded.insert(((seed.wrapping_mul(97) + k.wrapping_mul(131)) % total as u64) as u32);
        k += 1;
    }
    excluded.into_iter().collect()
}

/// The populated ports left after an exclusion.
pub fn surviving_ports(excluded: &[u32], total: u32) -> Vec<u32> {
    let set: std::collections::HashSet<u32> = excluded.iter().copied().collect();
    (0..total).filter(|p| !set.contains(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a        "));
    }

    #[test]
    fn csv_rendering_escapes() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["plain", "with, comma"]);
        t.row(vec!["has \"quote\"", "x"]);
        let csv = t.render_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,\"with, comma\"");
        assert_eq!(lines[2], "\"has \"\"quote\"\"\",x");
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(4096), "4K");
        assert_eq!(fmt_bytes(1 << 20), "1M");
        assert_eq!(fmt_bytes(1000), "1000");
    }

    #[test]
    fn exclusions_are_disjoint_and_sized() {
        let e = exclusion_set(7, 18, 324);
        assert_eq!(e.len(), 18);
        let s = surviving_ports(&e, 324);
        assert_eq!(s.len(), 324 - 18);
        for p in &e {
            assert!(!s.contains(p));
        }
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_rejected() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn arg_helpers_defaults() {
        // No such flags in the test runner's argv.
        assert!(!has_flag("--definitely-not-passed"));
        assert_eq!(arg_num("--missing", 42u32), 42);
        assert_eq!(arg_value("--missing"), None);
    }

    #[test]
    fn bench_json_schema() {
        let mut b = BenchJson::new("unit");
        b.topology("fig4_pgft_16");
        b.param("bytes", 4096);
        b.metric("normalized_bw", 0.98);
        let doc = b.render();
        assert_eq!(doc["bench"], "unit");
        assert_eq!(doc["topology"], "fig4_pgft_16");
        assert_eq!(doc["params"]["bytes"], 4096);
        assert_eq!(doc["metrics"]["normalized_bw"], 0.98);
        assert!(doc["wall_ms"].as_f64().unwrap() >= 0.0);
    }

    #[test]
    fn topology_roster_matches_paper_sizes() {
        let sizes: Vec<usize> = paper_topologies()
            .iter()
            .map(|(_, s)| s.num_hosts())
            .collect();
        assert_eq!(sizes, vec![128, 324, 1728, 1944]);
    }
}
