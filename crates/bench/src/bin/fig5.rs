//! Figure 5 binary — see [`ftree_bench::cases::fig5`] for the experiment.
fn main() {
    ftree_bench::run_standalone(&ftree_bench::cases::fig5::Fig5);
}
