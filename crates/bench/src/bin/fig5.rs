//! Figure 5 — PGFT nodes, ports and their connection rule.
//!
//! Demonstrates the paper's port-numbering rule on a small 3-level PGFT
//! with parallel ports: two nodes whose digit vectors agree everywhere but
//! at the connecting level are cabled by `p` parallel links; the `k`-th
//! link joins up-port `b + k*w` to down-port `a + k*m`.
//!
//! Run: `cargo run --release -p ftree-bench --bin fig5`

use ftree_bench::{export_observability, init_obs, print_phase_report, BenchJson, TextTable};
use ftree_topology::{io, PgftSpec, Topology};

fn main() {
    let rec = init_obs();
    let mut out = BenchJson::new("fig5");
    // A small PGFT with non-trivial w and p at the top level.
    let spec = PgftSpec::from_slices(&[2, 2, 2], &[1, 2, 2], &[1, 1, 2]).unwrap();
    let topo = Topology::build(spec);
    out.topology(topo.spec().to_string());

    println!(
        "Figure 5 reproduction: connection rule of {}\n",
        topo.spec()
    );

    // Show the cabling between one level-2 node and its level-3 parents.
    let child = topo.node_at(2, 0).unwrap();
    let c = topo.node(child);
    println!(
        "level-2 node {} (digits {:?}) has {} up-going ports:",
        topo.node_name(child),
        c.digits,
        c.up.len()
    );
    let mut table = TextTable::new(vec![
        "up-port q",
        "parent",
        "parent digits",
        "parent down-port r",
        "parallel index k",
    ]);
    let w = topo.spec().w(2);
    for (q, pp) in c.up.iter().enumerate() {
        let parent = topo.node(pp.peer);
        table.row(vec![
            format!("{q}"),
            topo.node_name(pp.peer),
            format!("{:?}", parent.digits),
            format!("{}", pp.peer_port),
            format!("{}", q as u32 / w),
        ]);
    }
    table.print();

    println!("\nFull cable list ({} links):", topo.num_links());
    print!("{}", io::write_text(&topo));

    out.metric("hosts", topo.num_hosts());
    out.metric("links", topo.num_links());
    out.metric("level2_up_ports", topo.node(child).up.len());
    print_phase_report(&rec);
    export_observability(&topo, &rec);
    out.write();
}
