//! `campaign` — one build, thousands of runs.
//!
//! Two modes:
//!
//! * **Grid mode** (default): expand a [`CampaignSpec`] into cells, build
//!   every fabric once, run cells in parallel, stream NDJSON rows and
//!   write the aggregate document. Resumes after a kill (`--fresh`
//!   discards instead), and `--compare` re-runs the grid the expensive
//!   standalone way to measure the sharing speed-up and prove the rows
//!   are bit-identical.
//!
//!   ```text
//!   campaign [--spec grid.json] [--topos a,b] [--engines dmodk,dmodc]
//!            [--cps shift,recdbl] [--orders topology,random]
//!            [--order-seeds N] [--stages N] [--faults 0,2] [--seed N]
//!            [--sims hsd,fluid] [--name s] [--rows-out p] [--json-out p]
//!            [--threads N] [--fresh] [--compare]
//!   ```
//!
//! * **Batch mode** (`--cases fig1,table3,...` or `--cases all`): run the
//!   registered [`BenchCase`]s in one process sharing a fabric cache, so
//!   common topologies/routings build once across experiments. Each case
//!   writes its usual JSON; `--text-dir results` also drops the
//!   per-case text files `run_all_experiments.sh` used to tee.

use std::io::Write;
use std::path::PathBuf;
use std::process::exit;
use std::time::Instant;

use ftree_bench::campaign::{self, CampaignSpec};
use ftree_bench::{find_case, registry, BenchArgs, BenchOutput, CaseCtx, FabricCache};

fn main() {
    let args = BenchArgs::from_env();
    args.apply_threads();
    if args.value("--cases").is_some() {
        run_cases(&args);
    } else {
        run_grid(&args);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("campaign: {msg}");
    exit(2)
}

fn spec_from_args(args: &BenchArgs) -> CampaignSpec {
    let mut spec = match args.value("--spec") {
        Some(path) => {
            let body = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(&format!("cannot read spec {path}: {e}")));
            CampaignSpec::from_json_str(&body)
                .unwrap_or_else(|e| die(&format!("cannot parse spec {path}: {e}")))
        }
        None => CampaignSpec::default(),
    };
    if let Some(v) = args.value("--name") {
        spec.name = v.to_string();
    }
    spec.seed = args.num("--seed", spec.seed);
    if let Some(l) = args.list("--topos") {
        spec.topologies = l;
    }
    if let Some(l) = args.list("--engines") {
        spec.engines = l;
    }
    if let Some(l) = args.list("--cps") {
        spec.cps = l;
    }
    if let Some(l) = args.list("--orders") {
        spec.orders = l;
    }
    spec.seeds_per_order = args.num("--order-seeds", spec.seeds_per_order);
    spec.max_stages = args.num("--stages", spec.max_stages);
    if let Some(l) = args.list("--sims") {
        spec.sims = l;
    }
    if let Some(l) = args.list("--faults") {
        spec.fault_cables = l
            .iter()
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| die(&format!("bad --faults value {v}")))
            })
            .collect();
    }
    spec
}

fn run_grid(args: &BenchArgs) {
    let spec = spec_from_args(args);
    if let Err(e) = spec.validate() {
        die(&format!("{e}"));
    }
    let fingerprint = spec.fingerprint();
    let rows_path = PathBuf::from(
        args.value("--rows-out")
            .unwrap_or("results/BENCH_simcampaign.ndjson"),
    );

    let rec = ftree_bench::init_obs();
    let mut out = BenchOutput::new(&spec.name);
    out.default_out("results/BENCH_simcampaign.json");
    out.topology(spec.topologies.join(","));
    out.param("fingerprint", fingerprint.clone());
    out.param(
        "spec",
        serde_json::to_value(&spec).expect("spec serializes"),
    );
    out.param("rows_file", rows_path.display().to_string());
    let prov = ftree_bench::report::Provenance::capture();
    out.param(
        "provenance",
        serde_json::json!({
            "ts": prov.unix_ts,
            "git_sha": prov.git_sha,
            "rustc": prov.rustc,
            "threads": prov.threads,
            "catalog_hash": prov.catalog_hash,
        }),
    );

    let cells = spec.cells();
    println!(
        "campaign {}: {} cells over {} topologies, fingerprint {fingerprint}",
        spec.name,
        cells.len(),
        spec.topologies.len()
    );
    let t0 = Instant::now();
    let outcome = campaign::run_campaign(&spec, &rows_path, args.flag("--fresh"))
        .unwrap_or_else(|e| die(&format!("{e}")));
    let wall_shared = t0.elapsed().as_secs_f64() * 1e3;
    let rows = campaign::read_rows(&rows_path).unwrap_or_else(|e| die(&format!("{e}")));
    println!(
        "executed {} cells ({} resumed-skipped) in {:.1} ms — {} topology, {} routing, {} arena builds shared",
        outcome.executed, outcome.skipped, wall_shared, outcome.topo_builds, outcome.rt_builds,
        outcome.arena_builds
    );

    out.metric("cells", outcome.cells_total as u64);
    out.metric("executed", outcome.executed as u64);
    out.metric("skipped", outcome.skipped as u64);
    out.metric("topo_builds", outcome.topo_builds as u64);
    out.metric("rt_builds", outcome.rt_builds as u64);
    out.metric("arena_builds", outcome.arena_builds as u64);
    out.metric("rows_on_disk", rows.len() as u64);
    out.metric("rows_hash", campaign::rows_hash(&rows));
    out.metric("wall_ms_campaign", wall_shared);

    if args.flag("--compare") {
        if outcome.skipped > 0 {
            eprintln!(
                "warning: --compare on a resumed run ({} cells skipped) understates the \
                 campaign wall time; use --fresh for a clean comparison",
                outcome.skipped
            );
        }
        println!(
            "serial-rebuild baseline: {} cells, each rebuilding its own fabric...",
            cells.len()
        );
        let t1 = Instant::now();
        let serial = campaign::run_serial_rebuild(&spec).unwrap_or_else(|e| die(&format!("{e}")));
        let wall_serial = t1.elapsed().as_secs_f64() * 1e3;
        let identical = campaign::sorted_rows(&rows) == campaign::sorted_rows(&serial);
        let speedup = wall_serial / wall_shared.max(1e-9);
        println!(
            "campaign {wall_shared:.1} ms vs serial rebuild {wall_serial:.1} ms -> \
             {speedup:.2}x; rows bit-identical: {identical}"
        );
        out.metric("wall_ms_serial", wall_serial);
        out.metric("speedup_vs_serial_rebuild", speedup);
        out.metric("serial_rows_identical", identical);
        if !identical {
            out.fail_gate("serial-rebuild rows differ from shared-build rows");
        }
    }

    ftree_bench::print_phase_report(&rec);
    out.write_args(args);
    if let Some(msg) = out.gate_failure() {
        eprintln!("campaign: gate failed: {msg}");
        exit(1);
    }
}

/// Flags owned by the batch driver itself — stripped before forwarding so
/// each case falls back to its own default output path.
const BATCH_FLAGS: [(&str, bool); 3] = [
    ("--cases", true),
    ("--text-dir", true),
    ("--json-out", true),
];

fn forwarded_args(args: &BenchArgs) -> BenchArgs {
    let raw = args.raw();
    let mut kept = Vec::new();
    let mut i = 0;
    while i < raw.len() {
        if let Some((_, takes_value)) = BATCH_FLAGS.iter().find(|(f, _)| *f == raw[i]) {
            i += if *takes_value { 2 } else { 1 };
            continue;
        }
        kept.push(raw[i].clone());
        i += 1;
    }
    BenchArgs::from_slice(&kept)
}

fn run_cases(args: &BenchArgs) {
    let listed = args.list("--cases").unwrap_or_default();
    let names: Vec<String> = if listed == ["all"] {
        registry().iter().map(|c| c.name().to_string()).collect()
    } else {
        listed
    };
    if names.is_empty() {
        die("--cases needs a comma-separated list of case names or 'all'");
    }
    let known: Vec<&str> = registry().iter().map(|c| c.name()).collect();
    for name in &names {
        if find_case(name).is_none() {
            die(&format!(
                "unknown case {name}; registered cases: {}",
                known.join(", ")
            ));
        }
    }

    let case_args = forwarded_args(args);
    let text_dir = args.value("--text-dir").map(PathBuf::from);
    if let Some(dir) = &text_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            die(&format!("cannot create --text-dir {}: {e}", dir.display()));
        }
    }
    let fabrics = FabricCache::new();
    let mut gate_failures: Vec<String> = Vec::new();
    for name in &names {
        let case = find_case(name).expect("validated above");
        println!("== {name} ==");
        // A fresh process-global recorder per case keeps each case's
        // obs_metrics identical to a standalone run of its binary.
        let rec = ftree_bench::init_obs();
        let mut text: Vec<u8> = Vec::new();
        let output = {
            let mut ctx = CaseCtx {
                args: &case_args,
                rec: rec.clone(),
                out: &mut text,
                fabrics: &fabrics,
                artifacts: args.flag("--artifacts"),
            };
            case.run(&mut ctx)
        };
        let _ = std::io::stdout().write_all(&text);
        if let Some(dir) = &text_dir {
            let path = dir.join(format!("{name}.txt"));
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
        ftree_bench::print_phase_report(&rec);
        output.write_args(&case_args);
        if let Some(msg) = output.gate_failure() {
            eprintln!("{name}: gate failed: {msg}");
            gate_failures.push(format!("{name}: {msg}"));
        }
        println!();
    }
    let (topo_builds, rt_builds) = fabrics.build_counts();
    println!(
        "batch complete: {} cases, {topo_builds} topology builds and {rt_builds} routing \
         builds shared across them",
        names.len()
    );
    if !gate_failures.is_empty() {
        eprintln!("{} case gate failure(s):", gate_failures.len());
        for f in &gate_failures {
            eprintln!("  {f}");
        }
        exit(1);
    }
}
