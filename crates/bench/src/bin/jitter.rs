//! OS-jitter sensitivity (paper Sec. VII: "distributed synchronization
//! issues, such as the OS jitter, may still prevent the MPI collectives
//! from obtaining the full network bandwidth").
//!
//! Sweeps the per-host start skew of a synchronized Shift workload on the
//! contention-free configuration and reports the bandwidth actually
//! obtained — quantifying how much of the paper's guarantee survives
//! imperfect clock synchronization, and why the paper recommends clock
//! sync protocols.
//!
//! Run: `cargo run --release -p ftree-bench --bin jitter [--bytes N]`

use ftree_bench::{
    arg_num, export_observability, init_obs, maybe_record, print_phase_report, BenchJson, TextTable,
};
use ftree_collectives::Cps;
use ftree_core::Job;
use ftree_sim::{PacketSim, Progression, SimConfig, TrafficPlan, MICROSECOND};
use ftree_topology::rlft::catalog;
use ftree_topology::Topology;

fn main() {
    let rec = init_obs();
    let bytes: u64 = arg_num("--bytes", 128 << 10);
    let topo = Topology::build(catalog::nodes_324());
    let job = Job::contention_free(&topo);
    let msg_time_us = bytes as f64 / 3250.0; // PCIe-rate message time
    let mut out = BenchJson::new("jitter");
    out.topology(topo.spec().to_string());
    out.param("bytes", bytes);

    println!(
        "Jitter sensitivity: synchronized Shift (8 stages) on {} ({} KiB messages, \
         ~{:.0} us per message)\n",
        topo.spec(),
        bytes >> 10,
        msg_time_us
    );

    let plan = TrafficPlan::from_cps(&job.order, &Cps::Shift, bytes, Progression::Synchronized, 8);

    let mut table = TextTable::new(vec![
        "max start skew (us)",
        "skew / message time",
        "normalized BW",
        "makespan (ms)",
    ]);

    let mut rows: Vec<serde_json::Value> = Vec::new();
    for &jitter_us in &[0u64, 5, 10, 20, 40, 80, 160] {
        let cfg = SimConfig {
            jitter: jitter_us * MICROSECOND,
            jitter_seed: 11,
            ..SimConfig::default()
        };
        let r = maybe_record(PacketSim::new(&topo, &job.routing, cfg, &plan), &rec).run();
        table.row(vec![
            format!("{jitter_us}"),
            format!("{:.2}", jitter_us as f64 / msg_time_us),
            format!("{:.3}", r.normalized_bw),
            format!("{:.2}", r.makespan as f64 / 1e9),
        ]);
        rows.push(serde_json::json!({
            "skew_us": jitter_us,
            "skew_over_msg_time": jitter_us as f64 / msg_time_us,
            "normalized_bw": r.normalized_bw,
            "makespan_ms": r.makespan as f64 / 1e9,
        }));
        eprintln!("  done {jitter_us} us");
    }
    table.print();
    println!(
        "\nBandwidth falls roughly as msg_time / (msg_time + skew): the routing \
         stays contention-free, the loss is pure barrier idle time — hence the \
         paper's pointer to clock-synchronization protocols."
    );

    out.metric("skew_sweep", rows);
    print_phase_report(&rec);
    export_observability(&topo, &rec);
    out.write();
}
