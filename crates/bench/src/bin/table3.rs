//! Table 3 binary — see [`ftree_bench::cases::table3`] for the experiment.
fn main() {
    ftree_bench::run_standalone(&ftree_bench::cases::table3::Table3);
}
