//! `ftree-report` — results aggregator, regression ledger and gate.
//!
//! Ingests every bench JSON under `results/` (or `--results-dir`), stamps
//! the runs with build provenance, appends one row per run to
//! `results/LEDGER.ndjson`, renders `results/REPORT.md` with per-bench
//! metric trajectories, and with `--check` exits nonzero when any fresh
//! result regresses past its gate (perf speedup vs the committed
//! `BENCH_perf.json` baseline, chaos invariants, routing-quality ordering).
//!
//! Flags:
//!   --results-dir <dir>   where to ingest from (default `results`)
//!   --baseline <path>     committed perf baseline (default
//!                         `<results-dir>/BENCH_perf.json`)
//!   --campaign-baseline <path>  committed campaign aggregate (default
//!                         `<results-dir>/BENCH_simcampaign.json`)
//!   --fluid-baseline <path>  committed fluid-solver baseline (default
//!                         `<results-dir>/BENCH_fluid.json`)
//!   --out <path>          Markdown report (default `<results-dir>/REPORT.md`)
//!   --ledger <path>       NDJSON ledger (default `<results-dir>/LEDGER.ndjson`)
//!   --no-ledger           render and check without appending to the ledger
//!   --check               exit 1 when a regression gate fails

use std::path::PathBuf;
use std::process::ExitCode;

use ftree_bench::report::{
    append_ledger, check_regressions, ingest_dir, ledger_row, parse_ledger, render_report,
    Baselines, Provenance,
};
use ftree_bench::{arg_value, has_flag};
use serde_json::Value;

fn main() -> ExitCode {
    let results_dir = PathBuf::from(arg_value("--results-dir").unwrap_or_else(|| "results".into()));
    let baseline_path = arg_value("--baseline")
        .map(PathBuf::from)
        .unwrap_or_else(|| results_dir.join("BENCH_perf.json"));
    let out_path = arg_value("--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| results_dir.join("REPORT.md"));
    let ledger_path = arg_value("--ledger")
        .map(PathBuf::from)
        .unwrap_or_else(|| results_dir.join("LEDGER.ndjson"));

    let (docs, skipped) = ingest_dir(&results_dir);
    for note in &skipped {
        eprintln!("note: {note}");
    }
    if docs.is_empty() {
        eprintln!(
            "no bench JSON documents found under {} — run an experiment binary first",
            results_dir.display()
        );
        return ExitCode::FAILURE;
    }
    eprintln!(
        "ingested {} run(s) from {}",
        docs.len(),
        results_dir.display()
    );

    let baseline: Option<Value> = std::fs::read_to_string(&baseline_path)
        .ok()
        .and_then(|body| serde_json::from_str(&body).ok());
    if baseline.is_none() {
        eprintln!(
            "note: no committed baseline at {} — perf gate skipped",
            baseline_path.display()
        );
    }
    let campaign_baseline_path = arg_value("--campaign-baseline")
        .map(PathBuf::from)
        .unwrap_or_else(|| results_dir.join("BENCH_simcampaign.json"));
    let campaign_baseline: Option<Value> = std::fs::read_to_string(&campaign_baseline_path)
        .ok()
        .and_then(|body| serde_json::from_str(&body).ok());
    if campaign_baseline.is_none() {
        eprintln!(
            "note: no committed campaign baseline at {} — campaign speedup gate skipped",
            campaign_baseline_path.display()
        );
    }
    let fluid_baseline_path = arg_value("--fluid-baseline")
        .map(PathBuf::from)
        .unwrap_or_else(|| results_dir.join("BENCH_fluid.json"));
    let fluid_baseline: Option<Value> = std::fs::read_to_string(&fluid_baseline_path)
        .ok()
        .and_then(|body| serde_json::from_str(&body).ok());
    if fluid_baseline.is_none() {
        eprintln!(
            "note: no committed fluid baseline at {} — fluid speedup gate skipped",
            fluid_baseline_path.display()
        );
    }
    let baselines = Baselines {
        perf: baseline,
        campaign: campaign_baseline,
        fluid: fluid_baseline,
    };
    let failures = check_regressions(&docs, &baselines);

    let prov = Provenance::capture();
    if !has_flag("--no-ledger") {
        let rows: Vec<Value> = docs.iter().map(|d| ledger_row(d, &prov)).collect();
        match append_ledger(&ledger_path, &rows) {
            Ok(()) => eprintln!(
                "appended {} row(s) to {}",
                rows.len(),
                ledger_path.display()
            ),
            Err(e) => eprintln!(
                "warning: could not append to {}: {e}",
                ledger_path.display()
            ),
        }
    }

    let ledger_body = std::fs::read_to_string(&ledger_path).unwrap_or_default();
    let (ledger, bad_lines) = parse_ledger(&ledger_body);
    if bad_lines > 0 {
        eprintln!("note: {bad_lines} unparseable ledger line(s) skipped");
    }

    let md = render_report(&docs, &ledger, &prov, &failures);
    match std::fs::write(&out_path, &md) {
        Ok(()) => eprintln!("wrote report to {}", out_path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", out_path.display()),
    }

    if failures.is_empty() {
        println!(
            "OK: {} run(s), {} ledger row(s), no regressions",
            docs.len(),
            ledger.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            println!("FAIL: {f}");
        }
        if has_flag("--check") {
            ExitCode::FAILURE
        } else {
            eprintln!("(regressions reported; rerun with --check to gate)");
            ExitCode::SUCCESS
        }
    }
}
