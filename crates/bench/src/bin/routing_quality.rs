//! Routing-quality sweep binary — see
//! [`ftree_bench::cases::routing_quality`] for the experiment and its
//! `dmodc` acceptance gate.
fn main() {
    ftree_bench::run_standalone(&ftree_bench::cases::routing_quality::RoutingQuality);
}
