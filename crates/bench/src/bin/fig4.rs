//! Figure 4 binary — see [`ftree_bench::cases::fig4`] for the experiment.
fn main() {
    ftree_bench::run_standalone(&ftree_bench::cases::fig4::Fig4);
}
