//! Figure 1 binary — see [`ftree_bench::cases::fig1`] for the experiment.
fn main() {
    ftree_bench::run_standalone(&ftree_bench::cases::fig1::Fig1);
}
