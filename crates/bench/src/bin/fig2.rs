//! Figure 2 binary — see [`ftree_bench::cases::fig2`] for the experiment.
fn main() {
    ftree_bench::run_standalone(&ftree_bench::cases::fig2::Fig2);
}
