//! perf — before/after wall-time of the HSD engines on the paper's
//! 25-random-order sweep (the Figure 3 workload).
//!
//! "Before" is the preserved trace-per-flow serial engine
//! (`ftree_analysis::reference`); "after" is the arena-backed parallel
//! engine. The run asserts bit-identical sweep results before reporting
//! the speedup, so the number can never come from a divergent computation.
//!
//! Writes `results/BENCH_perf.json`
//! (`{bench, topology, params, metrics: {speedup, wall_ms_before,
//! wall_ms_after}, wall_ms}`) — assembled with `format!` so the document
//! is a plain artifact of this binary, not of a serializer version.
//!
//! The run also times the rebuilt packet engine against the preserved
//! serial oracle (`ftree_sim::OracleSim`) on a random-order Shift — the
//! paper's randomized-placement case — asserting bit-identical `SimResult`s
//! first, and records `events_per_sec` / `packet_speedup` in the same
//! document, plus the flagship full 1943-stage Shift at 1944 hosts
//! (the sub-minute packet-level target).
//!
//! Flags: `--topo <name>` (fig4_pgft_16 | nodes_128 | nodes_324 |
//! nodes_1728 | nodes_1944), `--seeds N`, `--max-stages N` (0 = the full
//! `n - 1`-stage sequence, the default — Figure 3 is computed over complete
//! shift sequences, and the full sweep is also where the one-time arena
//! build amortizes across every stage of every seed), `--json-out <path>`,
//! `--breakdown` (skip the comparison; print where the fast engine's time
//! goes: arena build, stage generation, accumulation), `--packet`
//! (packet-engine microbench only: writes a `bench: "packet"` document —
//! default `results/BENCH_packet.json` — for the CI perf-smoke gate),
//! `--reps N` (best-of-N for the packet timings, default 3),
//! `--no-flagship` (skip the 1944-host full-Shift run), `--fluid`
//! (fluid-engine microbench only: rebuilt incremental max-min solver vs
//! the preserved `OracleFluid` on nodes_1728 — bit-identical results
//! asserted first — plus the flagship 323-stage Shift sweep at the
//! 11664-host maximal tree; writes a `bench: "fluid"` document, default
//! `results/BENCH_fluid.json`, gated by ftree-report).

use std::time::Instant;

use ftree_analysis::{random_order_sweep, reference, SequenceOptions, SweepResult};
use ftree_bench::{arg_num, arg_value, TextTable};
use ftree_collectives::{Cps, PermutationSequence};
use ftree_core::{DModK, NodeOrder, Router};
use ftree_sim::{
    run_fluid, FluidResult, OracleFluid, OracleSim, PacketSim, Progression, SimConfig, TrafficPlan,
};
use ftree_topology::rlft::catalog;
use ftree_topology::Topology;

fn spec_by_name(name: &str) -> ftree_topology::PgftSpec {
    match name {
        "fig4_pgft_16" => catalog::fig4_pgft_16(),
        "nodes_128" => catalog::nodes_128(),
        "nodes_324" => catalog::nodes_324(),
        "nodes_1728" => catalog::nodes_1728(),
        "nodes_1944" => catalog::nodes_1944(),
        "nodes_11664" => catalog::nodes_11664(),
        other => panic!("unknown --topo {other}"),
    }
}

fn assert_identical(slow: &SweepResult, fast: &SweepResult) {
    let slow_bits: Vec<u64> = slow.per_seed_avg_max.iter().map(|x| x.to_bits()).collect();
    let fast_bits: Vec<u64> = fast.per_seed_avg_max.iter().map(|x| x.to_bits()).collect();
    assert_eq!(
        slow_bits, fast_bits,
        "engines diverged — speedup numbers would be meaningless"
    );
    assert_eq!(slow.mean.to_bits(), fast.mean.to_bits());
}

/// Packet-engine throughput: rebuilt engine vs the preserved oracle.
struct PacketBench {
    events: u64,
    wall_ms: f64,
    wall_ms_oracle: f64,
    identical: bool,
    /// Full 1943-stage Shift at 1944 hosts, rebuilt engine (ms); `None`
    /// with `--no-flagship`.
    flagship_wall_ms: Option<f64>,
    flagship_events: u64,
}

impl PacketBench {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / (self.wall_ms / 1e3).max(1e-9)
    }

    fn events_per_sec_oracle(&self) -> f64 {
        self.events as f64 / (self.wall_ms_oracle / 1e3).max(1e-9)
    }

    fn speedup(&self) -> f64 {
        self.wall_ms_oracle / self.wall_ms.max(1e-9)
    }
}

/// Times the two packet engines on a random-order (seed 42) 32-stage Shift
/// at nodes_1728 — the paper's randomized-placement congestion case —
/// best-of-`reps` on `run()` alone, after asserting the engines'
/// `SimResult`s are bit-identical so the ratio can never come from a
/// divergent computation.
fn packet_bench(reps: usize, flagship: bool) -> PacketBench {
    let topo = Topology::build(catalog::nodes_1728());
    let rt = DModK.route_healthy(&topo);
    let cfg = SimConfig::default();
    let order = NodeOrder::random(&topo, 42);
    let plan = TrafficPlan::from_cps(&order, &Cps::Shift, 2048, Progression::Asynchronous, 32);

    let oracle_result = OracleSim::new(&topo, &rt, cfg, &plan).run();
    let engine_result = PacketSim::new(&topo, &rt, cfg, &plan).run();
    let identical = format!("{oracle_result:?}") == format!("{engine_result:?}");
    let events = engine_result.events;

    let mut wall_ms = f64::MAX;
    for _ in 0..reps {
        let sim = PacketSim::new(&topo, &rt, cfg, &plan);
        let t = Instant::now();
        let _ = sim.run();
        wall_ms = wall_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }
    let mut wall_ms_oracle = f64::MAX;
    for _ in 0..reps {
        let sim = OracleSim::new(&topo, &rt, cfg, &plan);
        let t = Instant::now();
        let _ = sim.run();
        wall_ms_oracle = wall_ms_oracle.min(t.elapsed().as_secs_f64() * 1e3);
    }

    let (flagship_wall_ms, flagship_events) = if flagship {
        let topo = Topology::build(catalog::nodes_1944());
        let rt = DModK.route_healthy(&topo);
        let order = NodeOrder::topology(&topo);
        let plan = TrafficPlan::from_cps(
            &order,
            &Cps::Shift,
            2048,
            Progression::Asynchronous,
            usize::MAX,
        );
        let sim = PacketSim::new(&topo, &rt, cfg, &plan);
        let t = Instant::now();
        let r = sim.run();
        (Some(t.elapsed().as_secs_f64() * 1e3), r.events)
    } else {
        (None, 0)
    };

    PacketBench {
        events,
        wall_ms,
        wall_ms_oracle,
        identical,
        flagship_wall_ms,
        flagship_events,
    }
}

/// Fluid-engine throughput: rebuilt incremental solver vs the preserved
/// dense oracle.
struct FluidBench {
    wall_ms: f64,
    wall_ms_oracle: f64,
    identical: bool,
    solves: u64,
    makespan_ps: u64,
    /// 323-stage Shift sweep at nodes_11664, rebuilt solver only (the
    /// oracle is out of budget at that scale); `None` with
    /// `--no-flagship`.
    flagship_wall_ms: Option<f64>,
    flagship_stages: u64,
    flagship_makespan_ps: u64,
    flagship_solves: u64,
}

impl FluidBench {
    fn speedup(&self) -> f64 {
        self.wall_ms_oracle / self.wall_ms.max(1e-9)
    }
}

/// Bit-identity check mirroring the `fluid_oracle` test suite: every
/// integer field exact, every f64 field by `to_bits`.
fn fluid_identical(a: &FluidResult, b: &FluidResult) -> bool {
    a.makespan == b.makespan
        && a.total_payload == b.total_payload
        && a.messages_completed == b.messages_completed
        && a.solves == b.solves
        && a.normalized_bw.to_bits() == b.normalized_bw.to_bits()
        && a.efficiency.to_bits() == b.efficiency.to_bits()
        && a.flows_unroutable == b.flows_unroutable
        && a.stalled == b.stalled
}

/// Payload per fluid-bench message (1 MiB — steady-state rates dominate).
const FLUID_BYTES: u64 = 1 << 20;
/// Stage sample of the nodes_1728 comparison run.
const FLUID_STAGES: usize = 8;
/// Stage sample of the flagship nodes_11664 sweep.
const FLUID_FLAGSHIP_STAGES: usize = 323;

/// Times the two fluid solvers on a random-order (seed 42) 8-stage
/// synchronized Shift at nodes_1728, best-of-`reps`, after asserting the
/// results are bit-identical; with `flagship`, also runs the rebuilt
/// solver over a 323-stage Shift sample at the 11664-host maximal tree.
fn fluid_bench(reps: usize, flagship: bool) -> FluidBench {
    let topo = Topology::build(catalog::nodes_1728());
    let rt = DModK.route_healthy(&topo);
    let cfg = SimConfig::default();
    let order = NodeOrder::random(&topo, 42);
    let plan = TrafficPlan::from_cps(
        &order,
        &Cps::Shift,
        FLUID_BYTES,
        Progression::Synchronized,
        FLUID_STAGES,
    );

    let oracle_result = OracleFluid::run(&topo, &rt, cfg, &plan);
    let engine_result = run_fluid(&topo, &rt, cfg, &plan);
    let identical = fluid_identical(&oracle_result, &engine_result);

    let mut wall_ms = f64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        let _ = run_fluid(&topo, &rt, cfg, &plan);
        wall_ms = wall_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }
    let mut wall_ms_oracle = f64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        let _ = OracleFluid::run(&topo, &rt, cfg, &plan);
        wall_ms_oracle = wall_ms_oracle.min(t.elapsed().as_secs_f64() * 1e3);
    }

    let (flagship_wall_ms, flagship_stages, flagship_makespan_ps, flagship_solves) = if flagship {
        let topo = Topology::build(catalog::nodes_11664());
        let rt = DModK.route_healthy(&topo);
        let order = NodeOrder::topology(&topo);
        let plan = TrafficPlan::from_cps(
            &order,
            &Cps::Shift,
            FLUID_BYTES,
            Progression::Synchronized,
            FLUID_FLAGSHIP_STAGES,
        );
        let t = Instant::now();
        let r = run_fluid(&topo, &rt, cfg, &plan);
        assert!(!r.stalled, "flagship sweep stalled");
        (
            Some(t.elapsed().as_secs_f64() * 1e3),
            plan.stages().len() as u64,
            r.makespan,
            r.solves,
        )
    } else {
        (None, 0, 0, 0)
    };

    FluidBench {
        wall_ms,
        wall_ms_oracle,
        identical,
        solves: engine_result.solves,
        makespan_ps: engine_result.makespan,
        flagship_wall_ms,
        flagship_stages,
        flagship_makespan_ps,
        flagship_solves,
    }
}

fn print_fluid_table(fb: &FluidBench) {
    let mut table = TextTable::new(vec!["fluid engine", "wall ms", "solves"]);
    table.row(vec![
        "oracle (dense rescan)".to_string(),
        format!("{:.1}", fb.wall_ms_oracle),
        format!("{}", fb.solves),
    ]);
    table.row(vec![
        "rebuilt (CSR + heap)".to_string(),
        format!("{:.1}", fb.wall_ms),
        format!("{}", fb.solves),
    ]);
    table.print();
    println!(
        "\nfluid speedup: {:.2}x (nodes_1728 random-order shift, identical: {})",
        fb.speedup(),
        fb.identical
    );
    if let Some(f) = fb.flagship_wall_ms {
        println!(
            "flagship: {}-stage shift at 11664 hosts in {:.1} s ({} solves, makespan {:.3} ms)",
            fb.flagship_stages,
            f / 1e3,
            fb.flagship_solves,
            fb.flagship_makespan_ps as f64 / 1e9
        );
    }
}

fn print_packet_table(pb: &PacketBench) {
    let mut table = TextTable::new(vec!["packet engine", "wall ms", "M events/s"]);
    table.row(vec![
        "oracle (BinaryHeap + VecDeque)".to_string(),
        format!("{:.1}", pb.wall_ms_oracle),
        format!("{:.2}", pb.events_per_sec_oracle() / 1e6),
    ]);
    table.row(vec![
        "rebuilt (calendar + SoA)".to_string(),
        format!("{:.1}", pb.wall_ms),
        format!("{:.2}", pb.events_per_sec() / 1e6),
    ]);
    table.print();
    println!(
        "\npacket speedup: {:.2}x (nodes_1728 random-order shift, identical: {})",
        pb.speedup(),
        pb.identical
    );
    if let Some(f) = pb.flagship_wall_ms {
        println!(
            "flagship: 1943-stage shift at 1944 hosts in {:.1} s ({:.2} M events/s)",
            f / 1e3,
            pb.flagship_events as f64 / (f / 1e3).max(1e-9) / 1e6
        );
    }
}

fn main() {
    let started = Instant::now();
    // Default: the paper's 3-level 1728-host tree, 25 seeds — the sweep the
    // optimization targets.
    let topo_name = arg_value("--topo").unwrap_or_else(|| "nodes_1728".to_string());
    let num_seeds: u64 = arg_num("--seeds", 25);
    // 0 = full sequence (n - 1 shift stages), the paper's Figure 3 workload.
    let max_stages: usize = arg_num("--max-stages", 0);
    let seeds: Vec<u64> = (1..=num_seeds).collect();
    let opts = SequenceOptions {
        max_stages: if max_stages == 0 {
            usize::MAX
        } else {
            max_stages
        },
    };

    let reps: usize = arg_num("--reps", 3);
    let flagship = !ftree_bench::has_flag("--no-flagship");

    if ftree_bench::has_flag("--fluid") {
        // Fluid-engine microbench: cheap enough for CI (with
        // --no-flagship), gated by ftree-report against the committed
        // BENCH_fluid.json speedup baseline.
        let fb = fluid_bench(reps, flagship);
        assert!(
            fb.identical,
            "fluid engines diverged — speedup numbers would be meaningless"
        );
        print_fluid_table(&fb);
        let flagship_wall = fb
            .flagship_wall_ms
            .map(|f| format!("{f:.3}"))
            .unwrap_or_else(|| "null".to_string());
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"fluid\",\n",
                "  \"topology\": \"nodes_1728\",\n",
                "  \"params\": {{\"order\": \"random\", \"seed\": 42, \"stages\": {stages}, ",
                "\"bytes\": {bytes}, \"reps\": {reps}, \"cps\": \"shift\", ",
                "\"mode\": \"synchronized\"}},\n",
                "  \"metrics\": {{\"speedup\": {speedup:.4}, \"wall_ms\": {wall:.3}, ",
                "\"wall_ms_oracle\": {owall:.3}, \"identical\": {identical}, ",
                "\"solves\": {solves}, \"makespan_ps\": {makespan}, ",
                "\"flagship_wall_ms\": {fwall}, \"flagship_stages\": {fstages}, ",
                "\"flagship_hosts\": 11664, \"flagship_makespan_ps\": {fmakespan}, ",
                "\"flagship_solves\": {fsolves}}},\n",
                "  \"wall_ms\": {total:.3}\n",
                "}}\n"
            ),
            stages = FLUID_STAGES,
            bytes = FLUID_BYTES,
            reps = reps,
            speedup = fb.speedup(),
            wall = fb.wall_ms,
            owall = fb.wall_ms_oracle,
            identical = fb.identical,
            solves = fb.solves,
            makespan = fb.makespan_ps,
            fwall = flagship_wall,
            fstages = fb.flagship_stages,
            fmakespan = fb.flagship_makespan_ps,
            fsolves = fb.flagship_solves,
            total = started.elapsed().as_secs_f64() * 1e3,
        );
        let path =
            arg_value("--json-out").unwrap_or_else(|| "results/BENCH_fluid.json".to_string());
        if let Some(dir) = std::path::Path::new(&path)
            .parent()
            .filter(|d| !d.as_os_str().is_empty())
        {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&path, &json) {
            Ok(()) => eprintln!("wrote fluid results to {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
        return;
    }

    if ftree_bench::has_flag("--packet") {
        // Packet-engine smoke: cheap enough for CI, gated by ftree-report
        // against the committed BENCH_perf.json packet metrics.
        let pb = packet_bench(reps, flagship);
        assert!(
            pb.identical,
            "packet engines diverged — throughput numbers would be meaningless"
        );
        print_packet_table(&pb);
        let flagship_wall = pb
            .flagship_wall_ms
            .map(|f| format!("{f:.3}"))
            .unwrap_or_else(|| "null".to_string());
        let flagship_eps = pb
            .flagship_wall_ms
            .map(|f| format!("{:.3}", pb.flagship_events as f64 / (f / 1e3).max(1e-9)))
            .unwrap_or_else(|| "null".to_string());
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"packet\",\n",
                "  \"topology\": \"nodes_1728\",\n",
                "  \"params\": {{\"order\": \"random\", \"seed\": 42, \"stages\": 32, ",
                "\"bytes\": 2048, \"reps\": {reps}, \"cps\": \"shift\"}},\n",
                "  \"metrics\": {{\"events_per_sec\": {eps:.3}, ",
                "\"events_per_sec_oracle\": {epso:.3}, \"speedup\": {speedup:.4}, ",
                "\"wall_ms\": {wall:.3}, \"wall_ms_oracle\": {owall:.3}, ",
                "\"identical\": {identical}, \"flagship_wall_ms\": {fwall}, ",
                "\"flagship_events_per_sec\": {feps}}},\n",
                "  \"wall_ms\": {total:.3}\n",
                "}}\n"
            ),
            reps = reps,
            eps = pb.events_per_sec(),
            epso = pb.events_per_sec_oracle(),
            speedup = pb.speedup(),
            wall = pb.wall_ms,
            owall = pb.wall_ms_oracle,
            identical = pb.identical,
            fwall = flagship_wall,
            feps = flagship_eps,
            total = started.elapsed().as_secs_f64() * 1e3,
        );
        let path =
            arg_value("--json-out").unwrap_or_else(|| "results/BENCH_packet.json".to_string());
        if let Some(dir) = std::path::Path::new(&path)
            .parent()
            .filter(|d| !d.as_os_str().is_empty())
        {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&path, &json) {
            Ok(()) => eprintln!("wrote packet results to {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
        return;
    }

    let topo = Topology::build(spec_by_name(&topo_name));
    let rt = DModK.route_healthy(&topo);

    if ftree_bench::has_flag("--breakdown") {
        // Diagnostic: where does the fast engine's time go?
        let t = Instant::now();
        let cache = ftree_analysis::RouteCache::new(&topo, &rt).unwrap();
        eprintln!(
            "cache build: {:.1} ms (cached={})",
            t.elapsed().as_secs_f64() * 1e3,
            cache.is_cached()
        );
        let n = topo.num_hosts() as u32;
        let order = ftree_core::NodeOrder::random(&topo, 1);
        let stages = ftree_analysis::sampled_stages(Cps::Shift.num_stages(n), opts);
        let t = Instant::now();
        let mut total_flows = 0usize;
        for &s in &stages {
            total_flows += order.port_flows(&Cps::Shift.stage(n, s)).len();
        }
        eprintln!(
            "stage-gen only: {:.1} ms ({} stages, {total_flows} flows)",
            t.elapsed().as_secs_f64() * 1e3,
            stages.len()
        );
        let mut scratch = ftree_analysis::StageScratch::for_cache(&cache);
        let t = Instant::now();
        let mut worst = 0u32;
        for &s in &stages {
            let flows = order.port_flows(&Cps::Shift.stage(n, s));
            worst = worst.max(cache.stage_hsd(&flows, &mut scratch).unwrap().max);
        }
        eprintln!(
            "stage-gen + hsd: {:.1} ms (worst {worst})",
            t.elapsed().as_secs_f64() * 1e3
        );
        for seed in 1..=3u64 {
            let order = ftree_core::NodeOrder::random(&topo, seed);
            let t = Instant::now();
            let r = ftree_analysis::sequence_hsd_cached(&cache, &order, &Cps::Shift, opts).unwrap();
            eprintln!(
                "seed {seed}: {:.1} ms (avg_max {:.3})",
                t.elapsed().as_secs_f64() * 1e3,
                r.avg_max
            );
        }
        return;
    }

    let t = Instant::now();
    let slow = reference::random_order_sweep(&topo, &rt, &Cps::Shift, &seeds, opts)
        .expect("healthy fabric routes");
    let wall_ms_before = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let fast =
        random_order_sweep(&topo, &rt, &Cps::Shift, &seeds, opts).expect("healthy fabric routes");
    let wall_ms_after = t.elapsed().as_secs_f64() * 1e3;

    assert_identical(&slow, &fast);
    let speedup = wall_ms_before / wall_ms_after.max(1e-9);

    let mut table = TextTable::new(vec!["engine", "wall ms", "sweep mean HSD"]);
    table.row(vec![
        "reference (trace-per-flow, serial)".to_string(),
        format!("{wall_ms_before:.1}"),
        format!("{:.3}", slow.mean),
    ]);
    table.row(vec![
        "arena (CSR cache, parallel stages)".to_string(),
        format!("{wall_ms_after:.1}"),
        format!("{:.3}", fast.mean),
    ]);
    table.print();
    let stages_label = if max_stages == 0 {
        "all".to_string()
    } else {
        max_stages.to_string()
    };
    println!("\nspeedup: {speedup:.2}x ({topo_name}, {num_seeds} seeds, {stages_label} stages)");

    println!();
    let pb = packet_bench(reps, flagship);
    assert!(
        pb.identical,
        "packet engines diverged — throughput numbers would be meaningless"
    );
    print_packet_table(&pb);
    let flagship_wall = pb
        .flagship_wall_ms
        .map(|f| format!("{f:.3}"))
        .unwrap_or_else(|| "null".to_string());
    let flagship_eps = pb
        .flagship_wall_ms
        .map(|f| format!("{:.3}", pb.flagship_events as f64 / (f / 1e3).max(1e-9)))
        .unwrap_or_else(|| "null".to_string());

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"perf\",\n",
            "  \"topology\": \"{topo}\",\n",
            "  \"params\": {{\"seeds\": {seeds}, \"max_stages\": \"{stages}\", \"cps\": \"shift\", ",
            "\"packet_reps\": {reps}}},\n",
            "  \"metrics\": {{\"speedup\": {speedup:.4}, \"wall_ms_before\": {before:.3}, ",
            "\"wall_ms_after\": {after:.3}, ",
            "\"packet_events_per_sec\": {peps:.3}, ",
            "\"packet_events_per_sec_oracle\": {pepso:.3}, ",
            "\"packet_speedup\": {pspeedup:.4}, ",
            "\"packet_identical\": {pidentical}, ",
            "\"packet_flagship_wall_ms\": {pfwall}, ",
            "\"packet_flagship_events_per_sec\": {pfeps}}},\n",
            "  \"wall_ms\": {wall:.3}\n",
            "}}\n"
        ),
        topo = topo_name,
        seeds = num_seeds,
        stages = stages_label,
        reps = reps,
        speedup = speedup,
        before = wall_ms_before,
        after = wall_ms_after,
        peps = pb.events_per_sec(),
        pepso = pb.events_per_sec_oracle(),
        pspeedup = pb.speedup(),
        pidentical = pb.identical,
        pfwall = flagship_wall,
        pfeps = flagship_eps,
        wall = started.elapsed().as_secs_f64() * 1e3,
    );
    let path = arg_value("--json-out").unwrap_or_else(|| "results/BENCH_perf.json".to_string());
    if let Some(dir) = std::path::Path::new(&path)
        .parent()
        .filter(|d| !d.as_os_str().is_empty())
    {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote perf results to {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
