//! Collective-algorithm completion time *with the network modeled*.
//!
//! The paper's Sec. III critique: published collective-selection studies
//! "assume a perfect network and ignore the added latency imposed by
//! network hot-spots". This experiment closes the loop: each allreduce
//! algorithm is *executed* in `ftree-mpi` (real data movement, real
//! per-stage message sizes), its traffic is replayed through the
//! packet-level simulator on the 128-node RLFT, and completion times are
//! compared — once with the paper's contention-free placement and once
//! with a random one. The classic small/large-message crossover between
//! recursive doubling and Rabenseifner appears, and the random placement
//! shifts every curve upward.
//!
//! Run: `cargo run --release -p ftree-bench --bin collective_time`

use std::sync::Arc;

use ftree_bench::{
    export_observability, fmt_bytes, init_obs, maybe_record, print_phase_report, BenchJson,
    TextTable,
};
use ftree_core::{Job, NodeOrder, RoutingAlgo};
use ftree_mpi::data::{blockwise_reduce_world, reduce_world};
use ftree_mpi::reductions::{rabenseifner_allreduce, recursive_doubling_allreduce};
use ftree_mpi::rooted::{binomial_bcast, binomial_reduce};
use ftree_mpi::World;
use ftree_obs::Recorder;
use ftree_sim::{PacketSim, Progression, SimConfig, TrafficPlan};
use ftree_topology::rlft::catalog;
use ftree_topology::Topology;

/// Replays an executed collective's traffic through the packet simulator.
fn simulate(
    topo: &Topology,
    routing: &ftree_topology::RoutingTable,
    order: &NodeOrder,
    world: &World,
    bytes_per_element: u64,
    rec: &Arc<Recorder>,
) -> f64 {
    let stages = world
        .traffic_stages(bytes_per_element)
        .into_iter()
        .map(|stage| {
            stage
                .into_iter()
                .map(|(s, d, b)| (order.port_of(s), order.port_of(d), b))
                .collect()
        })
        .collect();
    let plan = TrafficPlan::sized(stages, Progression::Synchronized);
    let r = maybe_record(
        PacketSim::new(topo, routing, SimConfig::default(), &plan),
        rec,
    )
    .run();
    r.makespan as f64 / 1e6 // us
}

fn main() {
    let rec = init_obs();
    let topo = Topology::build(catalog::nodes_128());
    let n = topo.num_hosts();
    let job = Job::contention_free(&topo);
    let random = NodeOrder::random(&topo, 1);
    let rt_random = RoutingAlgo::DModK.route(&topo);
    let mut out = BenchJson::new("collective_time");
    out.topology(topo.spec().to_string());
    out.param("ranks", n as u64);

    println!(
        "Allreduce completion time on {} ({} ranks), packet-level sim, real message sizes\n",
        topo.spec(),
        n
    );

    let mut table = TextTable::new(vec![
        "vector size",
        "RecDbl (us)",
        "Rabenseifner (us)",
        "Reduce+Bcast (us)",
        "RecDbl random order (us)",
    ]);

    let mut rows: Vec<serde_json::Value> = Vec::new();
    for &vector_bytes in &[
        512u64,
        2 << 10,
        4 << 10,
        32 << 10,
        256 << 10,
        1 << 20,
        4 << 20,
    ] {
        // Recursive doubling: b-element vectors, full vector per stage.
        let b = 64usize;
        let elem = vector_bytes / b as u64;
        let mut rd = reduce_world(n, b);
        recursive_doubling_allreduce(&mut rd);
        let t_rd = simulate(&topo, &job.routing, &job.order, &rd, elem, &rec);
        let t_rd_random = simulate(&topo, &rt_random, &random, &rd, elem, &rec);

        // Rabenseifner: n*b elements total = the same vector.
        let nb = n * 2;
        let elem_r = vector_bytes / nb as u64;
        let mut rab = blockwise_reduce_world(n, 2);
        rabenseifner_allreduce(&mut rab, 2);
        let t_rab = simulate(&topo, &job.routing, &job.order, &rab, elem_r.max(1), &rec);

        // Reduce + broadcast (the naive composition).
        let mut red = reduce_world(n, b);
        binomial_reduce(&mut red);
        let mut bc = World::new(n, |r| if r == 0 { vec![1; b] } else { vec![0; b] });
        binomial_bcast(&mut bc);
        let t_red = simulate(&topo, &job.routing, &job.order, &red, elem, &rec)
            + simulate(&topo, &job.routing, &job.order, &bc, elem, &rec);

        table.row(vec![
            fmt_bytes(vector_bytes),
            format!("{t_rd:.1}"),
            format!("{t_rab:.1}"),
            format!("{t_red:.1}"),
            format!("{t_rd_random:.1}"),
        ]);
        rows.push(serde_json::json!({
            "vector_bytes": vector_bytes,
            "recdbl_us": t_rd,
            "rabenseifner_us": t_rab,
            "reduce_bcast_us": t_red,
            "recdbl_random_us": t_rd_random,
        }));
        eprintln!("  done {}", fmt_bytes(vector_bytes));
    }
    table.print();
    println!(
        "\nExpected shape: recursive doubling wins small vectors (fewest stages), \
         Rabenseifner wins large ones (it moves ~2V instead of V*log N bytes per \
         host); random placement inflates every algorithm — the effect published \
         selection heuristics ignore."
    );

    out.metric("completion_time_us", rows);
    print_phase_report(&rec);
    export_observability(&topo, &rec);
    out.write();
}
