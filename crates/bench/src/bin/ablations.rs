//! Ablations — isolating each ingredient of the contention-free recipe.
//!
//! The paper's result needs all three of: D-Mod-K routing, topology node
//! order, and a topology-compatible sequence. Each ablation removes one
//! ingredient and measures the damage (avg max HSD on the 324-node RLFT):
//!
//! 1. routing ablation   — topology order fixed; D-Mod-K vs greedy min-hop
//!    vs random up-port routing,
//! 2. ordering ablation  — D-Mod-K fixed; topology vs random vs adversarial
//!    order (Ring CPS),
//! 3. sequence ablation  — D-Mod-K + topology order fixed; plain recursive
//!    doubling vs the Sec. VI topology-aware sequence,
//! 4. switch-architecture ablation — random order fixed; input-FIFO (HOL
//!    blocking) vs ideal VOQ switches vs the paper's ordering fix: shows
//!    that better switches barely help, the placement does,
//! 5. partial-job ablation — D-Mod-K + topology-subset order fixed;
//!    rank-compacted Shift vs the position-preserving (PortSpace) Shift.
//!
//! Run: `cargo run --release -p ftree-bench --bin ablations`

use ftree_analysis::{sequence_hsd, SequenceOptions};
use ftree_bench::{
    arg_num, exclusion_set, export_observability, init_obs, maybe_record, print_phase_report,
    surviving_ports, BenchJson, TextTable,
};
use ftree_collectives::{Cps, PortSpace, TopoAwareRd};
use ftree_core::{NodeOrder, RoutingAlgo};
use ftree_sim::{PacketSim, Progression, SimConfig, SwitchModel, TrafficPlan};
use ftree_topology::rlft::catalog;
use ftree_topology::Topology;

fn main() {
    let rec = init_obs();
    let max_stages: usize = arg_num("--stages", 64);
    let opts = SequenceOptions { max_stages };
    let topo = Topology::build(catalog::nodes_324());
    let n = topo.num_hosts() as u32;
    let mut out = BenchJson::new("ablations");
    out.topology(topo.spec().to_string());
    out.param("stages", max_stages as u64);
    println!(
        "Ablations on {} ({} hosts); metric: avg max HSD (1.00 = congestion-free)\n",
        topo.spec(),
        n
    );

    // 1. Routing ablation — on both a 2-level and a 3-level tree. Greedy
    // min-hop coincides with D-Mod-K at the leaf level (destination-order
    // round-robin), so the 2-level case ties; at 3 levels the digit
    // structure matters and local balancing collapses (worse than random:
    // its determinism funnels whole shift stages onto the same mid-level
    // ports).
    {
        let topo3 = Topology::build(catalog::nodes_1728());
        let mut t = TextTable::new(vec![
            "routing (Shift, topology order)",
            "324-node avg HSD",
            "1728-node avg HSD",
        ]);
        let mut rows: Vec<serde_json::Value> = Vec::new();
        for algo in [
            RoutingAlgo::DModK,
            RoutingAlgo::MinHopGreedy,
            RoutingAlgo::Random(1),
        ] {
            let order2 = NodeOrder::topology(&topo);
            let rt2 = algo.route(&topo);
            let r2 = sequence_hsd(&topo, &rt2, &order2, &Cps::Shift, opts).unwrap();
            let order3 = NodeOrder::topology(&topo3);
            let rt3 = algo.route(&topo3);
            let r3 = sequence_hsd(&topo3, &rt3, &order3, &Cps::Shift, opts).unwrap();
            t.row(vec![
                rt2.algorithm.clone(),
                format!("{:.2}", r2.avg_max),
                format!("{:.2}", r3.avg_max),
            ]);
            rows.push(serde_json::json!({
                "routing": rt2.algorithm,
                "avg_hsd_324": r2.avg_max,
                "avg_hsd_1728": r3.avg_max,
            }));
        }
        t.print();
        println!();
        out.metric("routing_ablation", rows);
    }

    // 2. Ordering ablation.
    {
        let rt = RoutingAlgo::DModK.route(&topo);
        let mut t = TextTable::new(vec!["node order (Ring, D-Mod-K)", "avg max HSD"]);
        let mut rows: Vec<serde_json::Value> = Vec::new();
        for order in [
            NodeOrder::topology(&topo),
            NodeOrder::random(&topo, 1),
            NodeOrder::adversarial_ring(&topo),
        ] {
            let r = sequence_hsd(&topo, &rt, &order, &Cps::Ring, opts).unwrap();
            t.row(vec![order.label.clone(), format!("{:.2}", r.avg_max)]);
            rows.push(serde_json::json!({"order": order.label, "avg_max_hsd": r.avg_max}));
        }
        t.print();
        println!();
        out.metric("ordering_ablation", rows);
    }

    // 3. Bidirectional sequence ablation.
    {
        let rt = RoutingAlgo::DModK.route(&topo);
        let order = NodeOrder::topology(&topo);
        let mut t = TextTable::new(vec![
            "bidirectional sequence (D-Mod-K, topo order)",
            "avg max HSD",
        ]);
        let plain = sequence_hsd(&topo, &rt, &order, &Cps::RecursiveDoubling, opts).unwrap();
        t.row(vec![
            "plain recursive doubling".to_string(),
            format!("{:.2}", plain.avg_max),
        ]);
        let aware = TopoAwareRd::new(topo.spec().ms().to_vec());
        let smart = sequence_hsd(&topo, &rt, &order, &aware, opts).unwrap();
        t.row(vec![
            "topology-aware (Sec. VI)".to_string(),
            format!("{:.2}", smart.avg_max),
        ]);
        t.print();
        println!();
        out.metric(
            "sequence_ablation",
            serde_json::json!({
                "plain_recdbl_avg_hsd": plain.avg_max,
                "topo_aware_avg_hsd": smart.avg_max,
            }),
        );
    }

    // 4. Switch-architecture ablation: how much of the random-order loss
    // is head-of-line blocking (fixable by ideal VOQ switches) versus pure
    // link oversubscription (fixable only by routing/ordering)?
    {
        let rt = RoutingAlgo::DModK.route(&topo);
        let order = NodeOrder::random(&topo, 1);
        let plan = TrafficPlan::from_cps(
            &order,
            &Cps::Shift,
            256 << 10,
            Progression::Asynchronous,
            12,
        );
        let mut t = TextTable::new(vec![
            "switch architecture (Shift, random order, 256K msgs)",
            "normalized BW",
        ]);
        let mut rows: Vec<serde_json::Value> = Vec::new();
        for (name, model) in [
            ("input FIFO (HOL blocking)", SwitchModel::InputFifo),
            (
                "virtual output queues (ideal)",
                SwitchModel::VirtualOutputQueues,
            ),
        ] {
            let cfg = SimConfig {
                switch_model: model,
                ..SimConfig::default()
            };
            let r = maybe_record(PacketSim::new(&topo, &rt, cfg, &plan), &rec).run();
            t.row(vec![name.to_string(), format!("{:.3}", r.normalized_bw)]);
            rows.push(serde_json::json!({"switch": name, "normalized_bw": r.normalized_bw}));
        }
        // Reference: the same workload with topology order needs neither.
        let good = NodeOrder::topology(&topo);
        let good_plan =
            TrafficPlan::from_cps(&good, &Cps::Shift, 256 << 10, Progression::Asynchronous, 12);
        let r = maybe_record(
            PacketSim::new(&topo, &rt, SimConfig::default(), &good_plan),
            &rec,
        )
        .run();
        t.row(vec![
            "input FIFO + topology order (the paper's fix)".to_string(),
            format!("{:.3}", r.normalized_bw),
        ]);
        rows.push(serde_json::json!({
            "switch": "input FIFO + topology order",
            "normalized_bw": r.normalized_bw,
        }));
        t.print();
        println!();
        out.metric("switch_ablation", rows);
    }

    // 5. Partial-job sequence ablation.
    {
        let rt = RoutingAlgo::DModK.route(&topo);
        let ports = surviving_ports(&exclusion_set(5, 18, n), n);
        let order = NodeOrder::topology_subset(ports.clone());
        let mut t = TextTable::new(vec![
            "partial job, 306/324 ranks (D-Mod-K, topo-subset order)",
            "avg max HSD",
        ]);
        let compacted = sequence_hsd(&topo, &rt, &order, &Cps::Shift, opts).unwrap();
        t.row(vec![
            "rank-compacted Shift".to_string(),
            format!("{:.2}", compacted.avg_max),
        ]);
        let preserved = PortSpace::new(Cps::Shift, n, ports);
        let kept = sequence_hsd(&topo, &rt, &order, &preserved, opts).unwrap();
        t.row(vec![
            "position-preserving Shift".to_string(),
            format!("{:.2}", kept.avg_max),
        ]);
        t.print();
        out.metric(
            "partial_job_ablation",
            serde_json::json!({
                "rank_compacted_avg_hsd": compacted.avg_max,
                "position_preserving_avg_hsd": kept.avg_max,
            }),
        );
    }

    print_phase_report(&rec);
    export_observability(&topo, &rec);
    out.write();
}
