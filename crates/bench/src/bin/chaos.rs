//! Chaos campaign: recovery SLOs under seeded fault scenarios.
//!
//! Sweeps a grid of catalog topologies × routing engines × chaos presets
//! (random cable faults, correlated switch outages, a link-flap storm, a
//! degraded-link brownout), one deterministically seeded cell at a time,
//! and measures what an operator would page on:
//!
//! * **sweeps to settle** — subnet-manager sweeps until the schedule is
//!   drained, plus how many flap events were coalesced away,
//! * **time to heal** — the worst sweep lag (oldest fault sitting
//!   unrepaired when its sweep finally ran),
//! * **message SLOs** — retransmits, lost messages (split out by
//!   partition-attributed losses), dropped packets (split out by
//!   degraded-link lottery drops) from a packet run through the timeline,
//! * **degraded HSD** — worst Shift-sequence height-split degree at the
//!   *peak* of the incident vs the healthy baseline,
//! * **invariants** — the routing invariant checker's verdict after every
//!   event sweep and at the settled end state (the campaign gate).
//!
//! Cells run in parallel; each derives its own seed from `--seed`, so the
//! whole campaign is reproducible bit for bit.
//!
//! Run: `cargo run --release -p ftree-bench --bin chaos
//!       [--seed N] [--stages N] [--full] [--json-out PATH]`
//! (default output: `results/BENCH_chaos.json`).
//!
//! `--deep-obs` runs a single deeply-instrumented cell (nodes_324,
//! D-Mod-K, random link faults) instead of the campaign grid: recorder +
//! per-channel telemetry attached, producing a Perfetto-loadable trace with
//! nested sweep/repair/message spans, a per-channel utilization heatmap SVG
//! and a contention-attribution report for the degraded fabric.

use ftree_analysis::{
    attribute_sequence, check_invariants, degraded_sequence_hsd, parallel_map,
    render_attribution_markdown, render_heatmap_svg, HeatmapOptions, SequenceOptions,
};
use ftree_bench::{arg_num, arg_value, has_flag, TextTable};
use ftree_collectives::Cps;
use ftree_core::{NodeOrder, RoutingAlgo, SubnetManager};
use ftree_sim::{FabricLifecycle, PacketSim, Progression, SimConfig, TrafficPlan, MICROSECOND};
use ftree_topology::rlft::catalog;
use ftree_topology::{ChaosGen, ChaosSchedule, Topology};

/// splitmix64 finalizer: per-cell seeds from one campaign seed.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

const PRESETS: [&str; 4] = ["random_links", "switch_outages", "flap_storm", "brownout"];

fn preset(name: &str, seed: u64, topo: &Topology) -> ChaosSchedule {
    let g = ChaosGen::new(seed);
    let us = MICROSECOND;
    match name {
        "random_links" => g.random_links(topo, 4, 50 * us, 100 * us),
        "switch_outages" => g.switch_outages(topo, 2, 50 * us, 150 * us),
        // Dwell can undercut the 2 us sweep delay: some flaps heal
        // themselves before their sweep and are coalesced away.
        "flap_storm" => g.flap_storm(topo, 3, 50 * us, 3, us / 2, 12 * us),
        "brownout" => g.brownout(topo, 3, 10 * us, 4, 20_000, 80 * us),
        _ => unreachable!("unknown preset {name}"),
    }
}

struct Cell {
    topo_idx: usize,
    topo_name: &'static str,
    algo: RoutingAlgo,
    algo_name: &'static str,
    preset: &'static str,
    seed: u64,
}

struct CellResult {
    row: serde_json::Value,
    invariant_ok: bool,
    messages_lost: u64,
    worst_heal_us: f64,
    label: String,
}

fn run_cell(topos: &[Topology], cell: &Cell, max_stages: usize) -> CellResult {
    let topo = &topos[cell.topo_idx];
    let chaos = preset(cell.preset, cell.seed, topo);
    let lowered = chaos.lower(topo).expect("preset fits the topology");

    // Control plane: drain the schedule sweep by sweep, proving the
    // invariants after every sweep that applied events.
    let mut sm = SubnetManager::with_engine(topo, lowered.faults.clone(), cell.algo.engine())
        .expect("schedule fits the topology");
    let mut invariant_ok = true;
    let mut sweeps = Vec::new();
    while let Some(t) = sm.next_event_time() {
        let r = sm.sweep(topo, t);
        if r.events_applied > 0 {
            invariant_ok &= check_invariants(topo, sm.table(), sm.failures()).ok();
        }
        sweeps.push(r);
    }
    invariant_ok &= check_invariants(topo, sm.table(), sm.failures()).ok();

    // Peak-of-incident HSD: rebuild the table as it stood right after the
    // sweep with the most dead cables, and compare worst Shift HSD against
    // the healthy baseline.
    let order = NodeOrder::topology(topo);
    let opts = SequenceOptions { max_stages };
    let healthy_hsd =
        degraded_sequence_hsd(topo, &cell.algo.route(topo), &order, &Cps::Shift, opts)
            .expect("healthy fabric routes every stage");
    let peak = sweeps.iter().max_by_key(|r| r.failed_links);
    let (peak_worst, peak_unroutable) = match peak {
        Some(p) if p.failed_links > 0 => {
            let mut sm2 =
                SubnetManager::with_engine(topo, lowered.faults.clone(), cell.algo.engine())
                    .expect("schedule fits the topology");
            sm2.sweep(topo, p.time);
            let hsd = degraded_sequence_hsd(topo, sm2.table(), &order, &Cps::Shift, opts)
                .expect("walkable stages");
            (hsd.worst, hsd.unroutable_flows)
        }
        _ => (healthy_hsd.worst, 0),
    };

    // Data plane: shift traffic straight through the timeline.
    let n = topo.num_hosts() as u32;
    let stages: Vec<Vec<(u32, u32)>> = [1u32, n / 2 + 1]
        .iter()
        .map(|&s| (0..n).map(|i| (i, (i + s) % n)).collect())
        .collect();
    let plan = TrafficPlan::uniform(stages, 32_768, Progression::Asynchronous);
    let mut lc = FabricLifecycle::from_chaos(topo, &chaos)
        .expect("preset fits the topology")
        .with_algo(cell.algo);
    lc.sweep_delay = 2 * MICROSECOND;
    lc.retransmit_timeout = 15 * MICROSECOND;
    let res = PacketSim::with_lifecycle(topo, SimConfig::default(), &plan, lc)
        .expect("schedule fits the topology")
        .run();

    // Recovery SLOs come from the *timed* run — its sweeps fire
    // `sweep_delay` after the event batch, so lag and coalescing are the
    // numbers an operator would actually see.
    let sweeps_to_settle = res.sweep_reports.len();
    let events_applied: usize = res.sweep_reports.iter().map(|r| r.events_applied).sum();
    let events_coalesced: usize = res.sweep_reports.iter().map(|r| r.events_coalesced).sum();
    let worst_heal_ps = res
        .sweep_reports
        .iter()
        .map(|r| r.oldest_event_age)
        .max()
        .unwrap_or(0);
    let worst_heal_us = worst_heal_ps as f64 / MICROSECOND as f64;
    let row = serde_json::json!({
        "topology": cell.topo_name,
        "engine": cell.algo_name,
        "preset": cell.preset,
        "seed": cell.seed,
        "sweeps_to_settle": sweeps_to_settle,
        "events_applied": events_applied,
        "events_coalesced": events_coalesced,
        "worst_heal_us": worst_heal_us,
        "invariant_ok": invariant_ok,
        "healthy_worst_hsd": healthy_hsd.worst,
        "peak_worst_hsd": peak_worst,
        "hsd_delta": peak_worst as i64 - healthy_hsd.worst as i64,
        "peak_unroutable_flows": peak_unroutable,
        "messages_delivered": res.messages_delivered,
        "messages_lost": res.messages_lost,
        "messages_lost_unreachable": res.messages_lost_unreachable,
        "retransmits": res.retransmits,
        "packets_dropped": res.packets_dropped,
        "packets_dropped_degraded": res.packets_dropped_degraded,
        "makespan_us": res.makespan as f64 / MICROSECOND as f64,
    });
    CellResult {
        row,
        invariant_ok,
        messages_lost: res.messages_lost,
        worst_heal_us,
        label: format!("{}/{}/{}", cell.topo_name, cell.algo_name, cell.preset),
    }
}

/// The `--deep-obs` cell: one instrumented incident on nodes_324. Writes
/// `results/chaos_deep.trace.json` (Perfetto), `results/chaos_deep_heatmap.svg`
/// and `results/chaos_deep_attribution.md`, plus a `chaos_deep` bench JSON.
fn deep_obs(base_seed: u64) {
    let rec = ftree_bench::init_obs();
    let mut out = ftree_bench::BenchJson::new("chaos_deep");
    out.topology("nodes_324");
    out.param("seed", base_seed);

    let topo = Topology::build(catalog::nodes_324());
    let seed = mix64(base_seed);
    let chaos = preset("random_links", seed, &topo);

    // Data plane: recorder (message spans, SM sweep/repair spans via the
    // installed global) plus bounded per-channel telemetry.
    let n = topo.num_hosts() as u32;
    let stages: Vec<Vec<(u32, u32)>> = [1u32, n / 2 + 1]
        .iter()
        .map(|&s| (0..n).map(|i| (i, (i + s) % n)).collect())
        .collect();
    let plan = TrafficPlan::uniform(stages.clone(), 32_768, Progression::Asynchronous);
    let mut lc = FabricLifecycle::from_chaos(&topo, &chaos)
        .expect("preset fits the topology")
        .with_algo(RoutingAlgo::DModK);
    lc.sweep_delay = 2 * MICROSECOND;
    lc.retransmit_timeout = 15 * MICROSECOND;
    let res = PacketSim::with_lifecycle(&topo, SimConfig::default(), &plan, lc)
        .expect("schedule fits the topology")
        .with_recorder(rec.clone())
        .with_telemetry(ftree_obs::TimeSeriesConfig::default())
        .run();

    let write = |path: &str, body: &str, what: &str| {
        let _ = std::fs::create_dir_all("results");
        match std::fs::write(path, body) {
            Ok(()) => eprintln!("wrote {what} to {path}"),
            Err(e) => eprintln!("warning: could not write {what} to {path}: {e}"),
        }
    };

    // 1. Perfetto trace with nested sweep/repair/message spans.
    let trace = ftree_sim::export_chrome_trace(&topo, &rec);
    let spans = rec
        .events()
        .iter()
        .filter(|e| matches!(e, ftree_obs::ObsEvent::SpanBegin { .. }))
        .count();
    write(
        "results/chaos_deep.trace.json",
        &(serde_json::to_string_pretty(&trace).expect("trace serializes") + "\n"),
        "Perfetto trace",
    );

    // 2. Per-channel utilization heatmap.
    let ts = res.telemetry.as_ref().expect("telemetry was attached");
    write(
        "results/chaos_deep_heatmap.svg",
        &render_heatmap_svg(Some(&topo), ts, &HeatmapOptions::default()),
        "utilization heatmap",
    );

    // 3. Contention attribution at the peak of the incident: rebuild the
    // table as it stood with the most dead cables and name the flow pairs
    // sharing every oversubscribed channel.
    let lowered = chaos.lower(&topo).expect("preset fits the topology");
    let mut sm =
        SubnetManager::with_engine(&topo, lowered.faults.clone(), RoutingAlgo::DModK.engine())
            .expect("schedule fits the topology");
    let mut peak_time = None;
    let mut peak_failed = 0usize;
    while let Some(t) = sm.next_event_time() {
        let r = sm.sweep(&topo, t);
        if r.failed_links > peak_failed {
            peak_failed = r.failed_links;
            peak_time = Some(r.time);
        }
    }
    let mut sm_peak =
        SubnetManager::with_engine(&topo, lowered.faults, RoutingAlgo::DModK.engine())
            .expect("schedule fits the topology");
    if let Some(t) = peak_time {
        sm_peak.sweep(&topo, t);
    }
    let order = NodeOrder::topology(&topo);
    let attributions = attribute_sequence(&topo, sm_peak.table(), Some(&order), &stages)
        .expect("degraded walks tolerate NoRoute");
    let hot_stages = attributions
        .iter()
        .filter(|a| !a.is_congestion_free())
        .count();
    let hot_channels: usize = attributions.iter().map(|a| a.contended.len()).sum();
    write(
        "results/chaos_deep_attribution.md",
        &render_attribution_markdown(&attributions),
        "contention attribution",
    );

    println!(
        "deep-obs cell (nodes_324/dmodk/random_links, seed {seed}): \
         {} events ({spans} spans), {} telemetry buckets x {} channels, \
         {hot_stages}/{} stages contended ({hot_channels} hot channels), \
         {} messages delivered, {} lost",
        rec.events().len(),
        ts.num_buckets(),
        ts.num_channels(),
        stages.len(),
        res.messages_delivered,
        res.messages_lost,
    );

    out.param("preset", "random_links");
    out.metric("events", rec.events().len() as u64);
    out.metric("spans", spans as u64);
    out.metric("events_dropped", rec.flight().dropped());
    out.metric("telemetry_buckets", ts.num_buckets() as u64);
    out.metric("telemetry_channels", ts.num_channels() as u64);
    out.metric("telemetry_drops", ts.total_drops());
    out.metric("peak_failed_links", peak_failed as u64);
    out.metric("hot_stages", hot_stages as u64);
    out.metric("hot_channels", hot_channels as u64);
    out.metric("messages_delivered", res.messages_delivered);
    out.metric("messages_lost", res.messages_lost);
    out.write();
}

fn main() {
    let base_seed: u64 = arg_num("--seed", 42);
    let max_stages: usize = arg_num("--stages", 8);
    if has_flag("--deep-obs") {
        deep_obs(base_seed);
        return;
    }
    let mut out = ftree_bench::BenchJson::new("chaos");
    out.param("seed", base_seed);
    out.param("stages", max_stages as u64);

    let mut topos: Vec<(&'static str, Topology)> = vec![
        ("fig4_pgft_16", Topology::build(catalog::fig4_pgft_16())),
        ("nodes_128", Topology::build(catalog::nodes_128())),
    ];
    if has_flag("--full") {
        topos.push(("nodes_324", Topology::build(catalog::nodes_324())));
    }
    let engines: [(&'static str, RoutingAlgo); 4] = [
        ("dmodk", RoutingAlgo::DModK),
        ("dmodc", RoutingAlgo::Dmodc),
        ("random", RoutingAlgo::Random(7)),
        ("minhop", RoutingAlgo::MinHopGreedy),
    ];

    let mut cells = Vec::new();
    for (ti, (topo_name, _)) in topos.iter().enumerate() {
        for (algo_name, algo) in engines {
            for (pi, preset) in PRESETS.iter().enumerate() {
                // Every cell gets its own seed, derived — not shared — so
                // adding a topology or preset never reshuffles the others.
                let seed = mix64(base_seed ^ mix64((ti as u64) << 32 | (pi as u64)));
                cells.push(Cell {
                    topo_idx: ti,
                    topo_name,
                    algo,
                    algo_name,
                    preset,
                    seed,
                });
            }
        }
    }
    println!(
        "Chaos campaign: {} topologies x {} engines x {} presets = {} cells (seed {base_seed})\n",
        topos.len(),
        engines.len(),
        PRESETS.len(),
        cells.len()
    );

    let topo_list: Vec<Topology> = topos.into_iter().map(|(_, t)| t).collect();
    let results = parallel_map(&cells, |cell| run_cell(&topo_list, cell, max_stages));

    let mut table = TextTable::new(vec![
        "cell",
        "sweeps",
        "coalesced",
        "heal (us)",
        "HSD peak/healthy",
        "lost (unreach)",
        "retx",
        "invariants",
    ]);
    for r in &results {
        let row = &r.row;
        table.row(vec![
            r.label.clone(),
            row["sweeps_to_settle"].to_string(),
            row["events_coalesced"].to_string(),
            format!("{:.1}", r.worst_heal_us),
            format!("{}/{}", row["peak_worst_hsd"], row["healthy_worst_hsd"]),
            format!(
                "{} ({})",
                row["messages_lost"], row["messages_lost_unreachable"]
            ),
            row["retransmits"].to_string(),
            if r.invariant_ok { "ok" } else { "VIOLATED" }.to_string(),
        ]);
    }
    table.print();

    // Worst cell: most lost messages, then slowest heal.
    let worst = results
        .iter()
        .max_by(|a, b| {
            (a.messages_lost, a.worst_heal_us)
                .partial_cmp(&(b.messages_lost, b.worst_heal_us))
                .unwrap()
        })
        .expect("campaign has cells");
    println!(
        "\nworst cell: {} — {} messages lost, worst heal {:.1} us",
        worst.label, worst.messages_lost, worst.worst_heal_us
    );

    let all_ok = results.iter().all(|r| r.invariant_ok);
    out.metric(
        "cells",
        results.iter().map(|r| r.row.clone()).collect::<Vec<_>>(),
    );
    out.metric("all_invariants_ok", all_ok);
    out.metric("worst_cell", worst.label.clone());
    out.metric("worst_cell_messages_lost", worst.messages_lost);
    out.metric("worst_cell_heal_us", worst.worst_heal_us);

    // Written before the gate assert so a failing run still leaves data.
    let path = arg_value("--json-out").unwrap_or_else(|| "results/BENCH_chaos.json".to_string());
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let body = serde_json::to_string_pretty(&out.render()).expect("bench json serializes");
    if let Err(e) = std::fs::write(&path, body + "\n") {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        eprintln!("wrote {path}");
    }

    assert!(
        all_ok,
        "CAMPAIGN GATE: a routing invariant was violated (see table above)"
    );
    println!("\nall {} cells hold every routing invariant", results.len());
}
