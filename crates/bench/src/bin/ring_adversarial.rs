//! Section II's adversarial experiment — the Ring permutation under an
//! adversarial MPI node order collapses to ~1/K of the injection bandwidth.
//!
//! The paper measures 231.5 MB/s effective bandwidth on the 1944-node QDR
//! cluster (links 4000 MB/s / worst oversubscription 18), a normalized
//! ratio of 7.1%. We rebuild the adversarial rank layout (every leaf's
//! flows funneled into one D-Mod-K up-port), compute the analytic HSD, and
//! measure bandwidth in the fluid simulator.
//!
//! Run: `cargo run --release -p ftree-bench --bin ring_adversarial`

use ftree_analysis::{sequence_hsd, SequenceOptions};
use ftree_bench::TextTable;
use ftree_collectives::{Cps, PermutationSequence};
use ftree_core::{NodeOrder, RoutingAlgo};
use ftree_sim::{run_fluid, Progression, SimConfig, TrafficPlan};
use ftree_topology::rlft::catalog;
use ftree_topology::Topology;

fn main() {
    let topo = Topology::build(catalog::nodes_1944());
    let rt = RoutingAlgo::DModK.route(&topo);
    let cfg = SimConfig::default();
    let bytes = 1u64 << 20;

    println!(
        "Ring adversarial reproduction: {} ({} hosts), QDR links {} MB/s, PCIe {} MB/s\n",
        topo.spec(),
        topo.num_hosts(),
        cfg.link_bw.mbps,
        cfg.host_bw.mbps
    );

    let orders = [
        NodeOrder::topology(&topo),
        NodeOrder::random(&topo, 1),
        NodeOrder::adversarial_ring(&topo),
    ];

    let mut table = TextTable::new(vec![
        "node order",
        "max HSD",
        "per-host BW (MB/s)",
        "normalized BW",
    ]);

    for order in &orders {
        let hsd = sequence_hsd(&topo, &rt, order, &Cps::Ring, SequenceOptions::default())
            .expect("routable");
        let plan = TrafficPlan::uniform(vec![order.port_flows(&Cps::Ring.stage(1944, 0))], bytes, Progression::Synchronized);
        let sim = run_fluid(&topo, &rt, cfg, &plan);
        let per_host = sim.normalized_bw * cfg.host_bw.mbps as f64;
        table.row(vec![
            order.label.clone(),
            format!("{}", hsd.worst),
            format!("{per_host:.1}"),
            format!("{:.1}%", sim.normalized_bw * 100.0),
        ]);
        eprintln!("  done {}", order.label);
    }
    table.print();
    println!(
        "\nPaper: adversarial order gives 231.5 MB/s ≈ 4000/18 (link BW over worst \
         oversubscription), i.e. 7.1% of nominal."
    );
}
