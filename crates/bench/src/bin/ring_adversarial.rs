//! Section II's adversarial experiment — the Ring permutation under an
//! adversarial MPI node order collapses to ~1/K of the injection bandwidth.
//!
//! The paper measures 231.5 MB/s effective bandwidth on the 1944-node QDR
//! cluster (links 4000 MB/s / worst oversubscription 18), a normalized
//! ratio of 7.1%. We rebuild the adversarial rank layout (every leaf's
//! flows funneled into one D-Mod-K up-port), compute the analytic HSD, and
//! measure bandwidth in the fluid simulator.
//!
//! Run: `cargo run --release -p ftree-bench --bin ring_adversarial`

use ftree_analysis::{sequence_hsd, SequenceOptions};
use ftree_bench::{export_observability, init_obs, print_phase_report, BenchJson, TextTable};
use ftree_collectives::{Cps, PermutationSequence};
use ftree_core::{NodeOrder, RoutingAlgo};
use ftree_sim::{run_fluid, Progression, SimConfig, TrafficPlan};
use ftree_topology::rlft::catalog;
use ftree_topology::Topology;

fn main() {
    let rec = init_obs();
    let topo = Topology::build(catalog::nodes_1944());
    let rt = RoutingAlgo::DModK.route(&topo);
    let cfg = SimConfig::default();
    let bytes = 1u64 << 20;
    let mut out = BenchJson::new("ring_adversarial");
    out.topology(topo.spec().to_string());
    out.param("bytes", bytes);
    out.param("link_bw_mbps", cfg.link_bw.mbps);
    out.param("host_bw_mbps", cfg.host_bw.mbps);

    println!(
        "Ring adversarial reproduction: {} ({} hosts), QDR links {} MB/s, PCIe {} MB/s\n",
        topo.spec(),
        topo.num_hosts(),
        cfg.link_bw.mbps,
        cfg.host_bw.mbps
    );

    let orders = [
        NodeOrder::topology(&topo),
        NodeOrder::random(&topo, 1),
        NodeOrder::adversarial_ring(&topo),
    ];

    let mut table = TextTable::new(vec![
        "node order",
        "max HSD",
        "per-host BW (MB/s)",
        "normalized BW",
    ]);

    let mut rows: Vec<serde_json::Value> = Vec::new();
    for order in &orders {
        let hsd = sequence_hsd(&topo, &rt, order, &Cps::Ring, SequenceOptions::default())
            .expect("routable");
        let plan = TrafficPlan::uniform(
            vec![order.port_flows(&Cps::Ring.stage(1944, 0))],
            bytes,
            Progression::Synchronized,
        );
        let sim = run_fluid(&topo, &rt, cfg, &plan);
        let per_host = sim.normalized_bw * cfg.host_bw.mbps as f64;
        table.row(vec![
            order.label.clone(),
            format!("{}", hsd.worst),
            format!("{per_host:.1}"),
            format!("{:.1}%", sim.normalized_bw * 100.0),
        ]);
        rows.push(serde_json::json!({
            "order": order.label,
            "max_hsd": hsd.worst,
            "per_host_bw_mbps": per_host,
            "normalized_bw": sim.normalized_bw,
        }));
        eprintln!("  done {}", order.label);
    }
    table.print();
    println!(
        "\nPaper: adversarial order gives 231.5 MB/s ≈ 4000/18 (link BW over worst \
         oversubscription), i.e. 7.1% of nominal."
    );

    out.metric("orders", rows);
    print_phase_report(&rec);
    export_observability(&topo, &rec);
    out.write();
}
