//! Table 1 binary — see [`ftree_bench::cases::table1`] for the experiment.
fn main() {
    ftree_bench::run_standalone(&ftree_bench::cases::table1::Table1);
}
