//! Graceful degradation under cable failures — static and dynamic.
//!
//! The paper's guarantees assume a healthy fabric; an operator needs to
//! know what one, five, or twenty dead cables cost. Part one fails
//! progressively more leaf↔spine cables of the 324-node RLFT, reroutes
//! with fault-aware D-Mod-K, and reports: residual HSD for the
//! (previously contention-free) Shift + topology order configuration, the
//! number of perturbed LFT entries, and fluid-simulated bandwidth.
//!
//! Part two plays a *timed* fault/recovery schedule: the subnet manager
//! absorbs each event with an incremental LFT repair (per-sweep health
//! report), and the packet simulator runs shift traffic straight through
//! the timeline — dropped packets are healed by timeout + retransmission.
//!
//! Run: `cargo run --release -p ftree-bench --bin failures [--stages N]`
//! with the shared observability flags `--json-out`, `--trace-out` and
//! `--events-out` (the dynamic-timeline packet run feeds the trace).

use ftree_analysis::{degraded_sequence_hsd, SequenceOptions};
use ftree_bench::{
    arg_num, export_observability, init_obs, print_phase_report, BenchJson, TextTable,
};
use ftree_collectives::{Cps, PermutationSequence};
use ftree_core::{DModK, NodeOrder, Router, SubnetManager};
use ftree_sim::{
    run_fluid, FabricLifecycle, PacketSim, Progression, SimConfig, TrafficPlan, MICROSECOND,
};
use ftree_topology::failures::LinkFailures;
use ftree_topology::rlft::catalog;
use ftree_topology::{ChaosGen, PortRef, Topology};

fn main() {
    let rec = init_obs();
    let max_stages: usize = arg_num("--stages", 48);
    let mut out = BenchJson::new("failures");
    out.param("stages", max_stages as u64);
    let topo = Topology::build(catalog::nodes_324());
    out.topology(topo.spec().to_string());
    let order = NodeOrder::topology(&topo);
    let baseline = DModK.route_healthy(&topo);
    let cfg = SimConfig::default();
    let n = topo.num_hosts() as u32;

    println!(
        "Failure injection on {} ({} hosts, {} switch-to-switch cables)\n",
        topo.spec(),
        n,
        topo.num_links() - topo.num_hosts()
    );

    let mut table = TextTable::new(vec![
        "failed cables",
        "Shift avg HSD",
        "Shift worst HSD",
        "unroutable flows",
        "perturbed LFT entries",
        "Ring normalized BW",
    ]);

    let mut static_rows: Vec<serde_json::Value> = Vec::new();
    for &failed_count in &[0usize, 1, 2, 5, 9, 18] {
        // Fail cables spread across leaves (deterministic pattern).
        let mut failures = LinkFailures::none(&topo);
        for i in 0..failed_count {
            let leaf = topo.node_at(1, (i * 5) % 18).unwrap();
            failures
                .fail_up_port(&topo, leaf, ((i * 7) % 18) as u32)
                .unwrap();
        }
        let rt = DModK.route(&topo, &failures).unwrap();
        rt.validate(&topo, 20_000).expect("fabric still connected");

        // How many forwarding decisions changed?
        let mut perturbed = 0usize;
        for sw in topo.switches() {
            for dst in 0..topo.num_hosts() {
                let a: Option<PortRef> = baseline.egress(sw, dst);
                let b: Option<PortRef> = rt.egress(sw, dst);
                if a != b {
                    perturbed += 1;
                }
            }
        }

        let hsd = degraded_sequence_hsd(
            &topo,
            &rt,
            &order,
            &Cps::Shift,
            SequenceOptions { max_stages },
        )
        .unwrap();

        let plan = TrafficPlan::uniform(
            vec![order.port_flows(&Cps::Ring.stage(n, 0))],
            1 << 20,
            Progression::Synchronized,
        );
        let bw = run_fluid(&topo, &rt, cfg, &plan).normalized_bw;

        table.row(vec![
            format!("{failed_count}"),
            format!("{:.3}", hsd.avg_max),
            format!("{}", hsd.worst),
            format!("{}", hsd.unroutable_flows),
            format!("{perturbed}"),
            format!("{bw:.3}"),
        ]);
        static_rows.push(serde_json::json!({
            "failed_cables": failed_count,
            "shift_avg_hsd": hsd.avg_max,
            "shift_worst_hsd": hsd.worst,
            "unroutable_flows": hsd.unroutable_flows,
            "perturbed_lft_entries": perturbed,
            "ring_normalized_bw": bw,
        }));
        eprintln!("  done {failed_count} failures");
    }
    table.print();
    println!(
        "\nEach failed cable perturbs only the destinations that crossed it \
         (sibling parallel cables absorb the detour), so HSD and bandwidth \
         degrade by small local increments rather than collapsing."
    );

    // ---- Part two: a timed fail/recover timeline ----------------------
    println!(
        "\nDynamic timeline: 4 random cables fail inside the first 50 us, \
         each repaired 100 us later (seed 42)\n"
    );
    // ChaosGen::random_links reproduces the legacy random_switch_links
    // stream exactly, so this timeline is bit-identical to older runs.
    let sched = ChaosGen::new(42)
        .random_links(&topo, 4, 50 * MICROSECOND, 100 * MICROSECOND)
        .lower(&topo)
        .expect("generated scenario fits the topology")
        .faults;

    let mut sm = SubnetManager::new(&topo, sched.clone()).expect("schedule fits the topology");
    let mut sweeps = TextTable::new(vec![
        "sweep",
        "t (us)",
        "events",
        "failed links",
        "entries recomputed",
        "entries changed",
        "unreachable pairs",
    ]);
    for r in sm.sweep_all(&topo) {
        sweeps.row(vec![
            format!("{}", r.sweep),
            format!("{:.1}", r.time as f64 / MICROSECOND as f64),
            format!("{}", r.events_applied),
            format!("{}", r.failed_links),
            format!("{}", r.entries_recomputed),
            format!("{}", r.entries_changed),
            format!("{}", r.unreachable_pairs),
        ]);
    }
    sweeps.print();

    // Retransmit-aware packet simulation straight through the timeline.
    let stages: Vec<Vec<(u32, u32)>> = (1..=4u32)
        .map(|k| (0..n).map(|i| (i, (i + 18 * k) % n)).collect())
        .collect();
    let plan = TrafficPlan::uniform(stages, 65_536, Progression::Asynchronous);
    let res = PacketSim::with_lifecycle(&topo, cfg, &plan, FabricLifecycle::new(sched))
        .expect("schedule fits the topology")
        .with_recorder(rec.clone())
        .run();
    println!(
        "\npacket sim through the timeline: {} messages delivered, \
         {} packets dropped, {} retransmits, {} lost, makespan {:.1} us, \
         normalized BW {:.3}",
        res.messages_delivered,
        res.packets_dropped,
        res.retransmits,
        res.messages_lost,
        res.makespan as f64 / MICROSECOND as f64,
        res.normalized_bw
    );

    out.metric("static_failures", static_rows);
    out.metric("dynamic_messages_delivered", res.messages_delivered);
    out.metric("dynamic_packets_dropped", res.packets_dropped);
    out.metric("dynamic_retransmits", res.retransmits);
    out.metric("dynamic_messages_lost", res.messages_lost);
    out.metric(
        "dynamic_makespan_us",
        res.makespan as f64 / MICROSECOND as f64,
    );
    out.metric("dynamic_normalized_bw", res.normalized_bw);
    out.metric("dynamic_efficiency", res.efficiency());
    out.metric("dynamic_sweeps", res.sweep_reports.len() as u64);
    print_phase_report(&rec);
    export_observability(&topo, &rec);
    out.write();
}
