//! Graceful degradation under cable failures.
//!
//! The paper's guarantees assume a healthy fabric; an operator needs to
//! know what one, five, or twenty dead cables cost. This experiment fails
//! progressively more leaf↔spine cables of the 324-node RLFT, reroutes
//! with fault-aware D-Mod-K, and reports: residual HSD for the
//! (previously contention-free) Shift + topology order configuration, the
//! number of perturbed LFT entries, and fluid-simulated bandwidth.
//!
//! Run: `cargo run --release -p ftree-bench --bin failures [--stages N]`

use ftree_analysis::{sequence_hsd, SequenceOptions};
use ftree_bench::{arg_num, TextTable};
use ftree_collectives::{Cps, PermutationSequence};
use ftree_core::{route_dmodk, route_dmodk_ft, NodeOrder};
use ftree_sim::{run_fluid, Progression, SimConfig, TrafficPlan};
use ftree_topology::failures::LinkFailures;
use ftree_topology::rlft::catalog;
use ftree_topology::{PortRef, Topology};

fn main() {
    let max_stages: usize = arg_num("--stages", 48);
    let topo = Topology::build(catalog::nodes_324());
    let order = NodeOrder::topology(&topo);
    let baseline = route_dmodk(&topo);
    let cfg = SimConfig::default();
    let n = topo.num_hosts() as u32;

    println!(
        "Failure injection on {} ({} hosts, {} switch-to-switch cables)\n",
        topo.spec(),
        n,
        topo.num_links() - topo.num_hosts()
    );

    let mut table = TextTable::new(vec![
        "failed cables",
        "Shift avg HSD",
        "Shift worst HSD",
        "perturbed LFT entries",
        "Ring normalized BW",
    ]);

    for &failed_count in &[0usize, 1, 2, 5, 9, 18] {
        // Fail cables spread across leaves (deterministic pattern).
        let mut failures = LinkFailures::none(&topo);
        for i in 0..failed_count {
            let leaf = topo.node_at(1, (i * 5) % 18).unwrap();
            failures.fail_up_port(&topo, leaf, ((i * 7) % 18) as u32);
        }
        let rt = route_dmodk_ft(&topo, &failures);
        rt.validate(&topo, 20_000).expect("fabric still connected");

        // How many forwarding decisions changed?
        let mut perturbed = 0usize;
        for sw in topo.switches() {
            for dst in 0..topo.num_hosts() {
                let a: Option<PortRef> = baseline.egress(sw, dst);
                let b: Option<PortRef> = rt.egress(sw, dst);
                if a != b {
                    perturbed += 1;
                }
            }
        }

        let hsd = sequence_hsd(
            &topo,
            &rt,
            &order,
            &Cps::Shift,
            SequenceOptions { max_stages },
        )
        .unwrap();

        let plan = TrafficPlan::uniform(vec![order.port_flows(&Cps::Ring.stage(n, 0))], 1 << 20, Progression::Synchronized);
        let bw = run_fluid(&topo, &rt, cfg, &plan).normalized_bw;

        table.row(vec![
            format!("{failed_count}"),
            format!("{:.3}", hsd.avg_max),
            format!("{}", hsd.worst),
            format!("{perturbed}"),
            format!("{bw:.3}"),
        ]);
        eprintln!("  done {failed_count} failures");
    }
    table.print();
    println!(
        "\nEach failed cable perturbs only the destinations that crossed it \
         (sibling parallel cables absorb the detour), so HSD and bandwidth \
         degrade by small local increments rather than collapsing."
    );
}
