//! Section VII validation — with D-Mod-K routing and topology node order,
//! the Shift and (topology-aware) Recursive-Doubling sequences obtain full
//! bandwidth and cut-through latency.
//!
//! Packet-level simulation on the 324-node RLFT plus fluid-model runs at
//! the paper's 1944-node scale.
//!
//! Run: `cargo run --release -p ftree-bench --bin validate_full_bw`

use ftree_bench::{
    arg_num, export_observability, init_obs, maybe_record, print_phase_report, BenchJson, TextTable,
};
use ftree_collectives::{Cps, PermutationSequence, TopoAwareRd};
use ftree_core::{Job, NodeOrder};
use ftree_sim::{run_fluid, PacketSim, Progression, SimConfig, TrafficPlan};
use ftree_topology::rlft::catalog;
use ftree_topology::Topology;

fn main() {
    let rec = init_obs();
    let cfg = SimConfig::default();
    let bytes: u64 = arg_num("--bytes", 128 << 10);
    let shift_stages: usize = arg_num("--shift-stages", 12);
    let mut out = BenchJson::new("validate_full_bw");
    out.topology("324-node RLFT (packet) + 1944-node RLFT (fluid)");
    out.param("bytes", bytes);
    out.param("shift_stages", shift_stages as u64);

    println!("Section VII validation: ordered + D-Mod-K => full BW & cut-through latency\n");

    // Packet-level at 324 nodes.
    {
        let topo = Topology::build(catalog::nodes_324());
        let job = Job::contention_free(&topo);
        let topo_rd = TopoAwareRd::new(topo.spec().ms().to_vec());
        let mut table = TextTable::new(vec![
            "sequence (324 nodes, packet sim)",
            "normalized BW",
            "stage efficiency",
            "mean msg latency (us)",
            "cut-through bound (us)",
        ]);
        // Shift runs asynchronously (every rank sends every stage, so
        // aggregate normalized BW is the right metric); the topology-aware
        // sequence runs synchronized and is judged per stage: with HSD = 1
        // every barrier-to-barrier interval is one message time, so
        // makespan ≈ stages * t_msg ("stage efficiency"). Remainder/proxy
        // stages idle most ranks by construction, which is why aggregate
        // normalized BW cannot reach 1.0 for it.
        let cases: Vec<(&str, &dyn PermutationSequence, usize, Progression)> = vec![
            (
                "Shift (sampled)",
                &Cps::Shift,
                shift_stages,
                Progression::Asynchronous,
            ),
            (
                "TopoAware RecDbl",
                &topo_rd,
                usize::MAX,
                Progression::Synchronized,
            ),
        ];
        let mut rows: Vec<serde_json::Value> = Vec::new();
        for (name, seq, max, mode) in cases {
            let plan = TrafficPlan::from_cps(&job.order, seq, bytes, mode, max);
            let stages = plan.stages().iter().filter(|s| !s.is_empty()).count() as u64;
            let r = maybe_record(PacketSim::new(&topo, &job.routing, cfg, &plan), &rec).run();
            let stage_eff = (stages * cfg.host_bw.transfer_time(bytes)) as f64 / r.makespan as f64;
            // Worst-case unloaded cut-through estimate: 6-hop path.
            let bound = cfg.cut_through_latency(bytes, 6);
            table.row(vec![
                name.to_string(),
                format!("{:.3}", r.normalized_bw),
                format!("{:.3}", stage_eff),
                format!("{:.1}", r.mean_latency / 1e6),
                format!("{:.1}", bound as f64 / 1e6),
            ]);
            rows.push(serde_json::json!({
                "sequence": name,
                "normalized_bw": r.normalized_bw,
                "stage_efficiency": stage_eff,
                "mean_latency_us": r.mean_latency / 1e6,
                "cut_through_bound_us": bound as f64 / 1e6,
            }));
            eprintln!("  done {name}");
        }
        table.print();
        out.metric("packet_324", rows);
        export_observability(&topo, &rec);
    }

    // Fluid model at 1944 nodes.
    {
        let topo = Topology::build(catalog::nodes_1944());
        let job = Job::contention_free(&topo);
        let order = NodeOrder::topology(&topo);
        let topo_rd = TopoAwareRd::new(topo.spec().ms().to_vec());
        let mut table = TextTable::new(vec![
            "sequence (1944 nodes, fluid sim)",
            "normalized BW",
            "stage efficiency",
        ]);
        let cases: Vec<(&str, &dyn PermutationSequence, usize)> = vec![
            ("Shift (sampled)", &Cps::Shift, shift_stages),
            ("TopoAware RecDbl", &topo_rd, usize::MAX),
        ];
        let mut rows: Vec<serde_json::Value> = Vec::new();
        for (name, seq, max) in cases {
            let plan = TrafficPlan::from_cps(&order, seq, bytes, Progression::Synchronized, max);
            let stages = plan.stages().iter().filter(|s| !s.is_empty()).count() as u64;
            let r = run_fluid(&topo, &job.routing, cfg, &plan);
            let stage_eff = (stages * cfg.host_bw.transfer_time(bytes)) as f64 / r.makespan as f64;
            table.row(vec![
                name.to_string(),
                format!("{:.3}", r.normalized_bw),
                format!("{stage_eff:.3}"),
            ]);
            rows.push(serde_json::json!({
                "sequence": name,
                "normalized_bw": r.normalized_bw,
                "stage_efficiency": stage_eff,
            }));
            eprintln!("  done {name} (1944)");
        }
        table.print();
        out.metric("fluid_1944", rows);
    }

    println!("\nPaper: both sequences reach the full PCIe-bound bandwidth (normalized 1.0).");
    print_phase_report(&rec);
    out.write();
}
