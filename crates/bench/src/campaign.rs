//! Campaign orchestrator: one build, thousands of runs.
//!
//! A [`CampaignSpec`] is a typed parameter grid — topologies × routing
//! engines × fault budgets × CPS × node orders — expanded into a
//! deterministic list of [`Cell`]s, each with its own SplitMix64-derived
//! seed. [`run_campaign`] groups cells by fabric, builds each immutable
//! `Topology`/`RoutingTable`/`PathArena` exactly once, shares them
//! read-only across every cell of that fabric (via
//! [`SharedRouteCache`]), runs the cells in parallel with the existing
//! `parallel_map` pool, and streams one NDJSON row per completed cell.
//!
//! Three properties the tests pin:
//!
//! * **Determinism** — a row's bytes are a pure function of the spec:
//!   no wall-clock, no thread ids, field order fixed by construction.
//!   The same spec produces byte-identical rows whatever the worker
//!   count or completion order.
//! * **Resume after kill** — rows already on disk (matching the spec's
//!   fingerprint) are skipped on rerun; a truncated trailing line from a
//!   kill is repaired away; a fingerprint mismatch refuses to mix grids.
//! * **Shared == serial** — [`run_serial_rebuild`] re-runs the grid the
//!   way the standalone binaries would (rebuilding every fabric per
//!   cell); its rows must be bit-identical to the shared-build rows,
//!   which is the evidence that sharing is purely a speed-up.

use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use ftree_analysis::{
    degraded_sequence_hsd, parallel_map, sequence_hsd_cached, RouteCache, SequenceOptions,
    SharedRouteCache,
};
use ftree_collectives::Cps;
use ftree_core::NodeOrder;
use ftree_obs::Recorder;
use ftree_topology::failures::LinkFailures;
use ftree_topology::rlft::catalog;
use ftree_topology::{PgftSpec, RouteError, RoutingTable, Topology};
use serde::Serialize;
use serde_json::{Map, Value};

/// SplitMix64 finalizer — the repo's standard seed-derivation mixer.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over raw bytes — stable fingerprints for specs and row sets.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The typed parameter grid. Serialized form is the on-disk spec format
/// (`campaign --spec grid.json`, parsed by [`CampaignSpec::from_json`]
/// with absent fields defaulting and unknown fields rejected); the
/// struct's canonical JSON is also what the fingerprint hashes, so any
/// parameter change invalidates resume.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CampaignSpec {
    /// Campaign name — the `bench` field of the aggregate document.
    pub name: String,
    /// Master seed: every cell and fault-pattern seed derives from it.
    pub seed: u64,
    /// Catalog topologies (`nodes_324`, `fig4_pgft_16`, ...).
    pub topologies: Vec<String>,
    /// Routing engines: `dmodk`, `dmodc`, `minhop`.
    pub engines: Vec<String>,
    /// CPS names: `shift`, `ring`, `recdbl`, `rechalv`, `binomial`,
    /// `dissemination`, `tournament`, `neighbor`.
    pub cps: Vec<String>,
    /// Node orders: `topology` (one instance) and/or `random`
    /// (`seeds_per_order` instances, distinct derived seeds).
    pub orders: Vec<String>,
    /// Random-order instances per (topology, engine, faults, cps) combo.
    pub seeds_per_order: u64,
    /// Stage-sampling bound forwarded to `SequenceOptions`.
    pub max_stages: usize,
    /// Failed switch-to-switch cable budgets; `0` = healthy fabric.
    pub fault_cables: Vec<usize>,
    /// Evaluation engines per cell: `hsd` (analytic hot-spot degree)
    /// and/or `fluid` (max-min fair flow simulation).
    pub sims: Vec<String>,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        Self {
            name: "simcampaign".to_string(),
            seed: 42,
            topologies: vec!["nodes_324".to_string()],
            engines: vec!["dmodk".to_string(), "dmodc".to_string()],
            cps: vec![
                "shift".to_string(),
                "recdbl".to_string(),
                "ring".to_string(),
                "binomial".to_string(),
            ],
            orders: vec!["topology".to_string(), "random".to_string()],
            seeds_per_order: 5,
            max_stages: 16,
            fault_cables: vec![0, 2],
            sims: vec!["hsd".to_string()],
        }
    }
}

fn spec_str(key: &str, v: &Value) -> Result<String, CampaignError> {
    v.as_str()
        .map(str::to_string)
        .ok_or_else(|| CampaignError::InvalidSpec(format!("{key} must be a string")))
}

fn spec_u64(key: &str, v: &Value) -> Result<u64, CampaignError> {
    v.as_u64()
        .ok_or_else(|| CampaignError::InvalidSpec(format!("{key} must be a non-negative integer")))
}

fn spec_str_list(key: &str, v: &Value) -> Result<Vec<String>, CampaignError> {
    v.as_array()
        .map(|items| {
            items
                .iter()
                .map(|e| spec_str(key, e))
                .collect::<Result<Vec<_>, _>>()
        })
        .unwrap_or_else(|| {
            Err(CampaignError::InvalidSpec(format!(
                "{key} must be an array of strings"
            )))
        })
}

fn spec_usize_list(key: &str, v: &Value) -> Result<Vec<usize>, CampaignError> {
    v.as_array()
        .map(|items| {
            items
                .iter()
                .map(|e| spec_u64(key, e).map(|n| n as usize))
                .collect::<Result<Vec<_>, _>>()
        })
        .unwrap_or_else(|| {
            Err(CampaignError::InvalidSpec(format!(
                "{key} must be an array of integers"
            )))
        })
}

impl CampaignSpec {
    /// Parses a spec document: absent fields inherit the defaults, unknown
    /// fields are rejected (a typo must not silently drop a grid axis).
    pub fn from_json(v: &Value) -> Result<Self, CampaignError> {
        let obj = v
            .as_object()
            .ok_or_else(|| CampaignError::InvalidSpec("spec must be a JSON object".into()))?;
        let mut spec = CampaignSpec::default();
        for (key, val) in obj {
            match key.as_str() {
                "name" => spec.name = spec_str(key, val)?,
                "seed" => spec.seed = spec_u64(key, val)?,
                "topologies" => spec.topologies = spec_str_list(key, val)?,
                "engines" => spec.engines = spec_str_list(key, val)?,
                "cps" => spec.cps = spec_str_list(key, val)?,
                "orders" => spec.orders = spec_str_list(key, val)?,
                "seeds_per_order" => spec.seeds_per_order = spec_u64(key, val)?,
                "max_stages" => spec.max_stages = spec_u64(key, val)? as usize,
                "fault_cables" => spec.fault_cables = spec_usize_list(key, val)?,
                "sims" => spec.sims = spec_str_list(key, val)?,
                other => return Err(CampaignError::UnknownName(format!("spec field {other}"))),
            }
        }
        Ok(spec)
    }

    /// [`CampaignSpec::from_json`] over raw text.
    pub fn from_json_str(body: &str) -> Result<Self, CampaignError> {
        let v: Value = serde_json::from_str(body)
            .map_err(|e| CampaignError::InvalidSpec(format!("spec is not valid JSON: {e:?}")))?;
        Self::from_json(&v)
    }
}

/// Errors the orchestrator reports instead of panicking: they carry enough
/// context to tell a spec typo from a mid-run I/O failure.
#[derive(Debug)]
pub enum CampaignError {
    /// Rows on disk belong to a different spec.
    FingerprintMismatch {
        expected: String,
        found: String,
    },
    /// An unresolvable topology/engine/cps/order name in the spec.
    UnknownName(String),
    /// A structurally empty or inconsistent grid.
    InvalidSpec(String),
    /// Routing failed while building a shared fabric.
    Route(String),
    Io(std::io::Error),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::FingerprintMismatch { expected, found } => write!(
                f,
                "rows file belongs to a different spec (fingerprint {found}, \
                 expected {expected}); pass --fresh to discard it"
            ),
            CampaignError::UnknownName(n) => write!(f, "unknown name in spec: {n}"),
            CampaignError::InvalidSpec(m) => write!(f, "invalid spec: {m}"),
            CampaignError::Route(m) => write!(f, "routing failed: {m}"),
            CampaignError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<std::io::Error> for CampaignError {
    fn from(e: std::io::Error) -> Self {
        CampaignError::Io(e)
    }
}

/// Resolves a catalog topology name.
pub fn resolve_topology(name: &str) -> Result<PgftSpec, CampaignError> {
    match name {
        "fig4_pgft_16" => Ok(catalog::fig4_pgft_16()),
        "nodes_128" => Ok(catalog::nodes_128()),
        "nodes_324" => Ok(catalog::nodes_324()),
        "nodes_648" => Ok(catalog::nodes_648()),
        "nodes_1728" => Ok(catalog::nodes_1728()),
        "nodes_1944" => Ok(catalog::nodes_1944()),
        other => Err(CampaignError::UnknownName(format!("topology {other}"))),
    }
}

/// Resolves a routing-engine name.
pub fn resolve_engine(name: &str) -> Result<ftree_core::RoutingAlgo, CampaignError> {
    match name {
        "dmodk" => Ok(ftree_core::RoutingAlgo::DModK),
        "dmodc" => Ok(ftree_core::RoutingAlgo::Dmodc),
        "minhop" => Ok(ftree_core::RoutingAlgo::MinHopGreedy),
        other => Err(CampaignError::UnknownName(format!("engine {other}"))),
    }
}

/// Resolves a CPS name.
pub fn resolve_cps(name: &str) -> Result<Cps, CampaignError> {
    match name {
        "shift" => Ok(Cps::Shift),
        "ring" => Ok(Cps::Ring),
        "recdbl" => Ok(Cps::RecursiveDoubling),
        "rechalv" => Ok(Cps::RecursiveHalving),
        "binomial" => Ok(Cps::Binomial),
        "dissemination" => Ok(Cps::Dissemination),
        "tournament" => Ok(Cps::Tournament),
        "neighbor" => Ok(Cps::NeighborExchange),
        other => Err(CampaignError::UnknownName(format!("cps {other}"))),
    }
}

/// One grid point: a fully determined experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Position in the expanded grid — the resume key.
    pub index: usize,
    pub topology: String,
    pub engine: String,
    pub fault_cables: usize,
    pub cps: String,
    pub order: String,
    /// Instance number within the order family (always 0 for `topology`).
    pub order_idx: u64,
    /// Evaluation engine: `hsd` or `fluid`.
    pub sim: String,
    /// Derived seed: `mix64(spec.seed ^ fnv1a64(coords_key))`.
    pub seed: u64,
}

impl Cell {
    /// Human-readable coordinates; also the recorder label and the input
    /// to the per-cell seed derivation.
    pub fn coords_key(&self) -> String {
        format!(
            "{}/{}/f{}/{}/{}/{}/{}",
            self.topology,
            self.engine,
            self.fault_cables,
            self.cps,
            self.order,
            self.order_idx,
            self.sim
        )
    }
}

impl CampaignSpec {
    /// Checks every name resolves and the grid is non-degenerate, before
    /// any fabric is built.
    pub fn validate(&self) -> Result<(), CampaignError> {
        if self.topologies.is_empty()
            || self.engines.is_empty()
            || self.cps.is_empty()
            || self.orders.is_empty()
            || self.fault_cables.is_empty()
            || self.sims.is_empty()
        {
            return Err(CampaignError::InvalidSpec(
                "every grid axis needs at least one entry".into(),
            ));
        }
        for t in &self.topologies {
            resolve_topology(t)?;
        }
        for e in &self.engines {
            resolve_engine(e)?;
        }
        for c in &self.cps {
            resolve_cps(c)?;
        }
        for o in &self.orders {
            if o != "topology" && o != "random" {
                return Err(CampaignError::UnknownName(format!("order {o}")));
            }
        }
        for s in &self.sims {
            if s != "hsd" && s != "fluid" {
                return Err(CampaignError::UnknownName(format!("sim {s}")));
            }
        }
        if self.orders.iter().any(|o| o == "random") && self.seeds_per_order == 0 {
            return Err(CampaignError::InvalidSpec(
                "seeds_per_order must be >= 1 when the random order is in the grid".into(),
            ));
        }
        if self.max_stages == 0 {
            return Err(CampaignError::InvalidSpec("max_stages must be >= 1".into()));
        }
        Ok(())
    }

    /// The spec's identity: FNV-1a over its canonical JSON, hex-printed.
    /// Stored in every row; resume refuses rows from a different grid.
    pub fn fingerprint(&self) -> String {
        let canon = serde_json::to_string(self).expect("spec serializes");
        format!("{:016x}", fnv1a64(canon.as_bytes()))
    }

    /// Expands the grid in fixed axis order (topology, engine, faults,
    /// cps, order, instance, sim) — cell indices are stable for a given
    /// spec.
    pub fn cells(&self) -> Vec<Cell> {
        let mut out = Vec::new();
        for topology in &self.topologies {
            for engine in &self.engines {
                for &fault_cables in &self.fault_cables {
                    for cps in &self.cps {
                        for order in &self.orders {
                            let instances = if order == "random" {
                                self.seeds_per_order
                            } else {
                                1
                            };
                            for order_idx in 0..instances {
                                for sim in &self.sims {
                                    let mut cell = Cell {
                                        index: out.len(),
                                        topology: topology.clone(),
                                        engine: engine.clone(),
                                        fault_cables,
                                        cps: cps.clone(),
                                        order: order.clone(),
                                        order_idx,
                                        sim: sim.clone(),
                                        seed: 0,
                                    };
                                    cell.seed =
                                        mix64(self.seed ^ fnv1a64(cell.coords_key().as_bytes()));
                                    out.push(cell);
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// The deterministic fault pattern shared by every cell of a
    /// `(topology, cable-budget)` pair. Only switch-to-switch cables are
    /// failed — the campaign measures path degradation, not amputation.
    pub fn fault_pattern(&self, topo: &Topology, topo_name: &str, cables: usize) -> LinkFailures {
        if cables == 0 {
            return LinkFailures::none(topo);
        }
        let seed = mix64(self.seed ^ fnv1a64(format!("faults/{topo_name}/{cables}").as_bytes()));
        LinkFailures::seeded_where(topo, seed, cables, |t, l| {
            !t.node(t.link(l).child).is_host()
        })
    }
}

/// Runs one cell against an already-built fabric and returns its metrics.
/// When `shared` is given (healthy fabric, shared arena) the cell borrows
/// a zero-copy [`RouteCache`] view; otherwise healthy cells build their
/// own cache — the serial-rebuild comparison path.
fn evaluate_cell(
    cell: &Cell,
    topo: &Topology,
    rt: &RoutingTable,
    shared: Option<&SharedRouteCache>,
    max_stages: usize,
) -> Result<Map<String, Value>, CampaignError> {
    let order = match cell.order.as_str() {
        "topology" => NodeOrder::topology(topo),
        "random" => NodeOrder::random(topo, cell.seed),
        other => return Err(CampaignError::UnknownName(format!("order {other}"))),
    };
    let seq = resolve_cps(&cell.cps)?;
    let opts = SequenceOptions { max_stages };
    let fail = |e: RouteError| CampaignError::Route(format!("cell {}: {e:?}", cell.coords_key()));

    if cell.sim == "fluid" {
        return evaluate_fluid_cell(cell, topo, rt, shared, max_stages, &order);
    }
    let mut m = Map::new();
    if cell.fault_cables == 0 {
        let view;
        let local;
        let cache: &RouteCache<'_> = match shared {
            Some(s) => {
                view = s.cache();
                &view
            }
            None => {
                local = RouteCache::new(topo, rt).map_err(fail)?;
                &local
            }
        };
        let hsd = sequence_hsd_cached(cache, &order, &seq, opts).map_err(fail)?;
        m.insert("stages".into(), hsd.per_stage_max.len().into());
        m.insert("avg_max_hsd".into(), hsd.avg_max.into());
        m.insert("worst_hsd".into(), hsd.worst.into());
        m.insert("congestion_free".into(), hsd.congestion_free.into());
    } else {
        let hsd = degraded_sequence_hsd(topo, rt, &order, &seq, opts).map_err(fail)?;
        m.insert("stages".into(), hsd.stages.into());
        m.insert("avg_max_hsd".into(), hsd.avg_max.into());
        m.insert("worst_hsd".into(), hsd.worst.into());
        m.insert("fully_served_stages".into(), hsd.fully_served_stages.into());
        m.insert("unroutable_flows".into(), hsd.unroutable_flows.into());
    }
    Ok(m)
}

/// Uniform payload for campaign fluid cells: 1 MiB per message — large
/// enough that rate ratios dominate, small enough that cell cost stays
/// proportional to the grid.
pub const FLUID_CELL_BYTES: u64 = 1 << 20;

/// Runs a `sim == "fluid"` cell: a barrier-synchronized max-min flow
/// simulation of the same (order, CPS, stage-sample) the HSD cells
/// analyze. Healthy cells reuse the shared `PathArena` as the solver's
/// [`ftree_sim::PathSource`]; degraded cells walk the degraded table and
/// skip-count unroutable flows, mirroring `degraded_sequence_hsd`.
fn evaluate_fluid_cell(
    cell: &Cell,
    topo: &Topology,
    rt: &RoutingTable,
    shared: Option<&SharedRouteCache>,
    max_stages: usize,
    order: &NodeOrder,
) -> Result<Map<String, Value>, CampaignError> {
    let seq = resolve_cps(&cell.cps)?;
    let plan = ftree_sim::TrafficPlan::from_cps(
        order,
        &seq,
        FLUID_CELL_BYTES,
        ftree_sim::Progression::Synchronized,
        max_stages,
    );
    let sim = ftree_sim::FluidSim::new(topo, rt, ftree_sim::SimConfig::default());
    let arena = shared.and_then(|s| s.arena());
    let result = match arena {
        Some(a) => sim.with_paths(a.as_ref()).run(&plan),
        None => sim.run(&plan),
    };
    let mut m = Map::new();
    m.insert("stages".into(), plan.stages().len().into());
    m.insert("makespan_ps".into(), result.makespan.into());
    m.insert("normalized_bw".into(), result.normalized_bw.into());
    m.insert("efficiency".into(), result.efficiency.into());
    m.insert(
        "messages_completed".into(),
        result.messages_completed.into(),
    );
    m.insert("solves".into(), result.solves.into());
    m.insert("flows_unroutable".into(), result.flows_unroutable.into());
    m.insert("stalled".into(), result.stalled.into());
    Ok(m)
}

/// The NDJSON row for one completed cell. Field order is fixed by
/// construction, there is no wall-clock and no thread identity: the
/// serialized bytes are a pure function of (spec, cell) — the determinism
/// contract.
pub fn cell_row(
    spec: &CampaignSpec,
    fingerprint: &str,
    cell: &Cell,
    metrics: Map<String, Value>,
) -> Value {
    serde_json::json!({
        "campaign": spec.name,
        "fingerprint": fingerprint,
        "cell": cell.index,
        "coords": {
            "topology": cell.topology,
            "engine": cell.engine,
            "fault_cables": cell.fault_cables,
            "cps": cell.cps,
            "order": cell.order,
            "order_idx": cell.order_idx,
            "sim": cell.sim,
        },
        "seed": cell.seed,
        "metrics": metrics,
    })
}

/// Evaluates `cell` under a fresh scoped [`Recorder`] labeled with its
/// coordinates (per-cell observability attribution, worker-thread safe)
/// and returns the serialized NDJSON line.
fn run_cell(
    spec: &CampaignSpec,
    fingerprint: &str,
    cell: &Cell,
    topo: &Topology,
    rt: &RoutingTable,
    shared: Option<&SharedRouteCache>,
) -> Result<String, CampaignError> {
    let rec = Arc::new(Recorder::new().with_label(cell.coords_key()));
    let metrics = ftree_obs::with_scoped(rec, || {
        evaluate_cell(cell, topo, rt, shared, spec.max_stages)
    })?;
    let row = cell_row(spec, fingerprint, cell, metrics);
    Ok(serde_json::to_string(&row).expect("row serializes"))
}

/// What `load_resume` found on disk.
#[derive(Debug)]
pub struct ResumeState {
    /// Cell indices whose rows are already complete.
    pub done: HashSet<usize>,
    /// The valid row lines, in file order.
    pub valid_lines: Vec<String>,
    /// True when the file held garbage (truncated kill tail, duplicate
    /// cells) that should be rewritten away before appending.
    pub repaired: bool,
}

/// Scans an existing rows file. Unparseable lines (the half-written tail
/// a kill leaves behind) are dropped; rows carrying a different spec
/// fingerprint are a hard error — resuming would silently mix grids.
pub fn load_resume(path: &Path, fingerprint: &str) -> Result<ResumeState, CampaignError> {
    let mut state = ResumeState {
        done: HashSet::new(),
        valid_lines: Vec::new(),
        repaired: false,
    };
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(state),
        Err(e) => return Err(e.into()),
    };
    for line in BufReader::new(file).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let row: Value = match serde_json::from_str(&line) {
            Ok(v) => v,
            Err(_) => {
                state.repaired = true;
                continue;
            }
        };
        let found = row["fingerprint"].as_str().unwrap_or("");
        if found != fingerprint {
            return Err(CampaignError::FingerprintMismatch {
                expected: fingerprint.to_string(),
                found: found.to_string(),
            });
        }
        let Some(cell) = row["cell"].as_u64() else {
            state.repaired = true;
            continue;
        };
        if !state.done.insert(cell as usize) {
            // Duplicate row (two appends of the same cell): keep the first.
            state.repaired = true;
            continue;
        }
        state.valid_lines.push(line);
    }
    Ok(state)
}

/// Raw valid row lines currently on disk (absent file = empty).
pub fn read_rows(path: &Path) -> Result<Vec<String>, CampaignError> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    let mut out = Vec::new();
    for line in BufReader::new(file).lines() {
        let line = line?;
        if !line.trim().is_empty() && serde_json::from_str::<Value>(&line).is_ok() {
            out.push(line);
        }
    }
    Ok(out)
}

/// Sorts row lines by cell index — completion order is nondeterministic
/// under parallelism, so comparisons and hashes always go through this.
pub fn sorted_rows(lines: &[String]) -> Vec<String> {
    let mut keyed: Vec<(usize, &String)> = lines
        .iter()
        .map(|l| {
            let idx = serde_json::from_str::<Value>(l)
                .ok()
                .and_then(|v| v["cell"].as_u64())
                .unwrap_or(u64::MAX) as usize;
            (idx, l)
        })
        .collect();
    keyed.sort_by_key(|(idx, _)| *idx);
    keyed.into_iter().map(|(_, l)| l.clone()).collect()
}

/// FNV-1a over the index-sorted row lines — the campaign's content hash,
/// equal across reruns, kill/resume merges and serial rebuilds.
pub fn rows_hash(lines: &[String]) -> String {
    let joined = sorted_rows(lines).join("\n");
    format!("{:016x}", fnv1a64(joined.as_bytes()))
}

/// What a campaign run did (build economics included — the aggregate
/// reports how much work sharing absorbed).
#[derive(Debug, Default, Clone, Serialize)]
pub struct CampaignOutcome {
    pub cells_total: usize,
    pub executed: usize,
    pub skipped: usize,
    pub topo_builds: usize,
    pub rt_builds: usize,
    pub arena_builds: usize,
}

/// Runs (or resumes) the campaign, streaming one NDJSON row per completed
/// cell to `rows_path`. Each topology is built once; each
/// `(engine, fault-budget)` routing once; each healthy routing gets one
/// shared `PathArena` used concurrently by all its cells.
pub fn run_campaign(
    spec: &CampaignSpec,
    rows_path: &Path,
    fresh: bool,
) -> Result<CampaignOutcome, CampaignError> {
    spec.validate()?;
    let fingerprint = spec.fingerprint();
    if fresh && rows_path.exists() {
        std::fs::remove_file(rows_path)?;
    }
    let resume = load_resume(rows_path, &fingerprint)?;
    if let Some(dir) = rows_path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    if resume.repaired {
        // Rewrite without the kill-truncated tail so the merged file ends
        // up exactly one clean line per cell.
        let mut f = File::create(rows_path)?;
        for line in &resume.valid_lines {
            writeln!(f, "{line}")?;
        }
        f.sync_all()?;
    }

    let cells = spec.cells();
    let todo: Vec<&Cell> = cells
        .iter()
        .filter(|c| !resume.done.contains(&c.index))
        .collect();
    let mut outcome = CampaignOutcome {
        cells_total: cells.len(),
        executed: todo.len(),
        skipped: cells.len() - todo.len(),
        ..Default::default()
    };
    if todo.is_empty() {
        return Ok(outcome);
    }

    let sink = Mutex::new(
        OpenOptions::new()
            .create(true)
            .append(true)
            .open(rows_path)?,
    );
    for topo_name in &spec.topologies {
        let topo_cells: Vec<&Cell> = todo
            .iter()
            .filter(|c| &c.topology == topo_name)
            .copied()
            .collect();
        if topo_cells.is_empty() {
            continue;
        }
        let topo = Arc::new(Topology::build(resolve_topology(topo_name)?));
        outcome.topo_builds += 1;
        for engine_name in &spec.engines {
            for &cables in &spec.fault_cables {
                let group: Vec<&Cell> = topo_cells
                    .iter()
                    .filter(|c| &c.engine == engine_name && c.fault_cables == cables)
                    .copied()
                    .collect();
                if group.is_empty() {
                    continue;
                }
                let failures = spec.fault_pattern(&topo, topo_name, cables);
                let rt = Arc::new(
                    resolve_engine(engine_name)?
                        .engine()
                        .route(&topo, &failures)
                        .map_err(|e| {
                            CampaignError::Route(format!(
                                "{topo_name}/{engine_name}/f{cables}: {e:?}"
                            ))
                        })?,
                );
                outcome.rt_builds += 1;
                let shared = if cables == 0 {
                    let s = SharedRouteCache::new(topo.clone(), rt.clone()).map_err(|e| {
                        CampaignError::Route(format!("{topo_name}/{engine_name}: {e:?}"))
                    })?;
                    if s.is_cached() {
                        outcome.arena_builds += 1;
                    }
                    Some(s)
                } else {
                    None
                };
                let results: Vec<Result<(), CampaignError>> = parallel_map(&group, |cell| {
                    let line = run_cell(spec, &fingerprint, cell, &topo, &rt, shared.as_ref())?;
                    let mut f = sink.lock().unwrap();
                    writeln!(f, "{line}")?;
                    f.flush()?;
                    Ok(())
                });
                for r in results {
                    r?;
                }
            }
        }
    }
    Ok(outcome)
}

/// The standalone-equivalent baseline: every cell rebuilds its own
/// topology, routing and (for healthy cells) path cache from scratch,
/// serially — exactly what running one binary per cell would cost. Returns
/// the rows in cell order; they must be bit-identical to the shared run's.
pub fn run_serial_rebuild(spec: &CampaignSpec) -> Result<Vec<String>, CampaignError> {
    spec.validate()?;
    let fingerprint = spec.fingerprint();
    let mut lines = Vec::new();
    for cell in spec.cells() {
        let topo = Topology::build(resolve_topology(&cell.topology)?);
        let failures = spec.fault_pattern(&topo, &cell.topology, cell.fault_cables);
        let rt = resolve_engine(&cell.engine)?
            .engine()
            .route(&topo, &failures)
            .map_err(|e| CampaignError::Route(format!("cell {}: {e:?}", cell.coords_key())))?;
        lines.push(run_cell(spec, &fingerprint, &cell, &topo, &rt, None)?);
    }
    Ok(lines)
}

/// Groups the grid by topology for progress reporting.
pub fn cells_by_topology(cells: &[Cell]) -> HashMap<&str, usize> {
    let mut m = HashMap::new();
    for c in cells {
        *m.entry(c.topology.as_str()).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_shape_and_seeds() {
        let spec = CampaignSpec::default();
        let cells = spec.cells();
        // 1 topo × 2 engines × 2 fault budgets × 4 cps × (1 + 5) orders
        // × 1 sim.
        assert_eq!(cells.len(), 96);
        // Indices are positional and dense.
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
        // Seeds are distinct (SplitMix64 over distinct coord keys).
        let seeds: HashSet<u64> = cells.iter().map(|c| c.seed).collect();
        assert_eq!(seeds.len(), cells.len());
        // Expansion is deterministic.
        assert_eq!(cells, spec.cells());
    }

    #[test]
    fn fingerprint_tracks_every_field() {
        let base = CampaignSpec::default();
        let fp = base.fingerprint();
        assert_eq!(fp, base.fingerprint());
        let mut changed = base.clone();
        changed.seed += 1;
        assert_ne!(fp, changed.fingerprint());
        let mut changed = base.clone();
        changed.max_stages += 1;
        assert_ne!(fp, changed.fingerprint());
        let mut changed = base.clone();
        changed.cps.pop();
        assert_ne!(fp, changed.fingerprint());
        let mut changed = base;
        changed.sims.push("fluid".to_string());
        assert_ne!(fp, changed.fingerprint());
    }

    #[test]
    fn sims_axis_expands_and_validates() {
        let spec = CampaignSpec {
            sims: vec!["hsd".to_string(), "fluid".to_string()],
            ..Default::default()
        };
        let cells = spec.cells();
        assert_eq!(cells.len(), 192, "fluid axis doubles the default grid");
        assert!(cells.iter().any(|c| c.sim == "fluid"));
        assert!(cells.iter().any(|c| c.sim == "hsd"));
        // hsd and fluid variants of the same coordinates get distinct seeds.
        let seeds: HashSet<u64> = cells.iter().map(|c| c.seed).collect();
        assert_eq!(seeds.len(), cells.len());
        assert!(spec.validate().is_ok());
        let bad = CampaignSpec {
            sims: vec!["packet".to_string()],
            ..Default::default()
        };
        assert!(matches!(bad.validate(), Err(CampaignError::UnknownName(_))));
        let empty = CampaignSpec {
            sims: vec![],
            ..Default::default()
        };
        assert!(matches!(
            empty.validate(),
            Err(CampaignError::InvalidSpec(_))
        ));
    }

    #[test]
    fn spec_round_trips_and_rejects_unknowns() {
        let spec = CampaignSpec::default();
        let json = serde_json::to_string(&spec).unwrap();
        let back = CampaignSpec::from_json_str(&json).unwrap();
        assert_eq!(spec, back);
        // Partial specs inherit defaults.
        let partial = CampaignSpec::from_json_str(r#"{"seed": 7}"#).unwrap();
        assert_eq!(partial.seed, 7);
        assert_eq!(partial.name, "simcampaign");
        assert_eq!(partial.fingerprint().len(), 16);
        // Typos are errors, not silently ignored axes.
        assert!(matches!(
            CampaignSpec::from_json_str(r#"{"sed": 7}"#),
            Err(CampaignError::UnknownName(_))
        ));
        assert!(CampaignSpec::from_json_str(r#"{"seed": "x"}"#).is_err());
    }

    #[test]
    fn validate_catches_bad_names() {
        let spec = CampaignSpec {
            engines: vec!["updown".to_string()],
            ..Default::default()
        };
        assert!(matches!(
            spec.validate(),
            Err(CampaignError::UnknownName(_))
        ));
        let spec = CampaignSpec {
            orders: vec!["random".to_string()],
            seeds_per_order: 0,
            ..Default::default()
        };
        assert!(matches!(
            spec.validate(),
            Err(CampaignError::InvalidSpec(_))
        ));
        assert!(CampaignSpec::default().validate().is_ok());
    }

    #[test]
    fn row_bytes_are_deterministic_and_sorted() {
        let spec = CampaignSpec::default();
        let fp = spec.fingerprint();
        let cell = &spec.cells()[0];
        let mut m = Map::new();
        m.insert("avg_max_hsd".into(), 1.0.into());
        let a = serde_json::to_string(&cell_row(&spec, &fp, cell, m.clone())).unwrap();
        let b = serde_json::to_string(&cell_row(&spec, &fp, cell, m)).unwrap();
        assert_eq!(a, b);
        // Field order is fixed by the json! literal — byte-stable layout.
        assert!(a.find("\"campaign\"").unwrap() < a.find("\"cell\"").unwrap());
        assert!(a.find("\"cell\"").unwrap() < a.find("\"coords\"").unwrap());
        assert!(!a.contains("wall"), "rows must not embed wall-clock");
    }

    #[test]
    fn sorted_rows_and_hash_ignore_completion_order() {
        let mk = |i: usize| format!("{{\"cell\":{i},\"v\":{i}}}");
        let fwd = vec![mk(0), mk(1), mk(2)];
        let rev = vec![mk(2), mk(0), mk(1)];
        assert_eq!(sorted_rows(&fwd), sorted_rows(&rev));
        assert_eq!(rows_hash(&fwd), rows_hash(&rev));
        assert_ne!(rows_hash(&fwd), rows_hash(&fwd[..2]));
    }

    #[test]
    fn resume_skips_valid_drops_garbage_refuses_foreign() {
        let dir =
            std::env::temp_dir().join(format!("ftree_campaign_resume_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rows.ndjson");
        let fp = "aaaaaaaaaaaaaaaa";
        let row =
            |cell: usize| format!("{{\"cell\":{cell},\"fingerprint\":\"{fp}\",\"metrics\":{{}}}}");
        std::fs::write(
            &path,
            format!("{}\n{}\n{}\n{{\"cell\":3,\"fing", row(0), row(2), row(2)),
        )
        .unwrap();
        let state = load_resume(&path, fp).unwrap();
        assert_eq!(state.done, HashSet::from([0, 2]));
        assert_eq!(state.valid_lines.len(), 2);
        assert!(
            state.repaired,
            "duplicate + truncated tail must flag repair"
        );
        // A different fingerprint refuses instead of mixing grids.
        let err = load_resume(&path, "bbbbbbbbbbbbbbbb").unwrap_err();
        assert!(matches!(err, CampaignError::FingerprintMismatch { .. }));
        std::fs::remove_file(&path).unwrap();
        let empty = load_resume(&path, fp).unwrap();
        assert!(empty.done.is_empty() && !empty.repaired);
    }
}
