//! Table 2 — formal CPS definitions with empirically verified properties.
//!
//! For each of the eight Table 2 sequences at a configurable rank count,
//! prints the stage count, the direction class, whether every stage is a
//! constant-displacement (partial) permutation, and the first stage — and
//! checks the paper's three key observations:
//!
//! 1. every unidirectional stage has constant displacement,
//! 2. sequences are either unidirectional or bidirectional (XOR),
//! 3. Shift is a superset of all other unidirectional sequences.

use ftree_collectives::{classify, Cps, PermutationSequence, SequenceClass};

use super::outln;
use crate::{BenchCase, BenchOutput, CaseCtx, TextTable};

fn definition(cps: Cps) -> &'static str {
    match cps {
        Cps::Dissemination => "n_i -> n_(i+2^s mod N)   0<=s<log2 N",
        Cps::Tournament => "n_(i+2^s) -> n_i   i ≡ 0 mod 2^(s+1)",
        Cps::Shift => "n_i -> n_(i+s mod N)   1<=s<=N-1",
        Cps::Ring => "n_i -> n_(i+1 mod N)",
        Cps::Binomial => "n_i -> n_(i+2^s)   i < 2^s, i+2^s < N",
        Cps::RecursiveDoubling => "n_i <-> n_(i xor 2^s)   s ascending (+pre/post)",
        Cps::RecursiveHalving => "n_i <-> n_(i xor 2^s)   s descending (+pre/post)",
        Cps::NeighborExchange => "n_(2k) <-> n_(2k+1) / n_(2k+1) <-> n_(2k+2)",
    }
}

/// The Table 2 case.
pub struct Table2;

impl BenchCase for Table2 {
    fn name(&self) -> &'static str {
        "table2"
    }

    fn run(&self, ctx: &mut CaseCtx<'_>) -> BenchOutput {
        let n: u32 = ctx.args.num("--ranks", 24);
        let mut out = BenchOutput::new("table2");
        out.topology("rank-space only (no fabric)");
        out.param("ranks", n);
        outln!(
            ctx,
            "Table 2 reproduction: CPS formal definitions, N = {n}\n"
        );

        let mut table = TextTable::new(vec![
            "CPS",
            "definition",
            "stages",
            "class",
            "const displacement",
        ]);

        for cps in Cps::ALL {
            if cps == Cps::NeighborExchange && !n.is_multiple_of(2) {
                continue;
            }
            let stages = cps.stages(n);
            let const_disp = stages
                .iter()
                .all(|st| st.is_empty() || st.constant_displacement(n).is_some());
            let class = match classify(&cps, n) {
                SequenceClass::Unidirectional => "unidirectional",
                SequenceClass::Bidirectional => "bidirectional",
            };
            table.row(vec![
                cps.label().to_string(),
                definition(cps).to_string(),
                format!("{}", stages.len()),
                class.to_string(),
                if const_disp { "yes" } else { "per-direction" }.to_string(),
            ]);

            // Observation 3: every unidirectional stage is contained in a
            // Shift stage with the same displacement.
            if !cps.is_bidirectional() {
                for st in &stages {
                    if let Some(d) = st.constant_displacement(n) {
                        if d == 0 {
                            continue;
                        }
                        let shift = Cps::Shift.stage(n, (d - 1) as usize);
                        assert!(
                            st.pairs.iter().all(|p| shift.pairs.contains(p)),
                            "{}: stage not contained in Shift",
                            cps.label()
                        );
                    }
                }
            }
        }
        ctx.print_table(&table);
        outln!(
            ctx,
            "\nVerified: every unidirectional stage is a subset of the Shift stage with \
             equal displacement (the paper's superset observation)."
        );

        out.metric("sequences", Cps::ALL.len());
        out.metric("superset_observation_verified", true);
        out
    }
}
