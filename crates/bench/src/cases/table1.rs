//! Table 1 — MPI collective algorithms and the permutation sequences they
//! employ, validated by execution.
//!
//! Prints the survey (18 algorithm rows, 8 distinct CPS) and, for every
//! algorithm implemented in `ftree-mpi`, runs it on live data, extracts the
//! communication trace, and reports the identified CPS next to the declared
//! one.

use ftree_collectives::{table1, Cps, MessageClass, MpiLibrary};
use ftree_mpi::{run_survey, verify_survey};

use super::outln;
use crate::{BenchCase, BenchOutput, CaseCtx, TextTable};

fn lib_label(l: MpiLibrary) -> &'static str {
    match l {
        MpiLibrary::Mvapich => "MVAPICH",
        MpiLibrary::OpenMpi => "OpenMPI",
        MpiLibrary::Both => "both",
    }
}

fn msg_label(m: MessageClass) -> &'static str {
    match m {
        MessageClass::Small => "small",
        MessageClass::Large => "large",
        MessageClass::Any => "any",
    }
}

/// The Table 1 case.
pub struct Table1;

impl BenchCase for Table1 {
    fn name(&self) -> &'static str {
        "table1"
    }

    fn run(&self, ctx: &mut CaseCtx<'_>) -> BenchOutput {
        let n: usize = ctx.args.num("--ranks", 12);
        let mut out = BenchOutput::new("table1");
        out.topology("rank-space only (no fabric)");
        out.param("ranks", n as u64);

        outln!(ctx, "Table 1 reproduction: the algorithm -> CPS survey\n");
        let mut decl = TextTable::new(vec![
            "collective",
            "algorithm",
            "library",
            "msgs",
            "CPS",
            "pow2",
        ]);
        for e in table1() {
            let cps: Vec<&str> = e.cps.iter().map(|c| c.label()).collect();
            decl.row(vec![
                e.collective.label().to_string(),
                e.algorithm.to_string(),
                lib_label(e.library).to_string(),
                msg_label(e.message_class).to_string(),
                cps.join(" + "),
                if e.pow2_only { "2" } else { "" }.to_string(),
            ]);
        }
        ctx.print_table(&decl);

        let distinct = ftree_collectives::table1::distinct_cps();
        outln!(
            ctx,
            "\n{} algorithms use only {} distinct CPS: {}",
            table1().len(),
            distinct.len(),
            distinct
                .iter()
                .map(|c| c.label())
                .collect::<Vec<_>>()
                .join(", ")
        );

        outln!(
            ctx,
            "\nExecutable validation at {n} ranks (traced CPS vs declared):\n"
        );
        let runs = run_survey(n);
        let mut exec = TextTable::new(vec![
            "collective",
            "algorithm",
            "ranks",
            "identified CPS",
            "match",
        ]);
        for run in &runs {
            let ids: Vec<String> = run
                .identified
                .iter()
                .map(|c: &Option<Cps>| c.map_or("?".to_string(), |c| c.label().to_string()))
                .collect();
            exec.row(vec![
                format!("{:?}", run.collective),
                run.algorithm.to_string(),
                format!("{}", run.n),
                ids.join(" + "),
                "OK".to_string(),
            ]);
        }
        let verified = verify_survey(&runs);
        ctx.print_table(&exec);
        outln!(
            ctx,
            "\n{verified}/{} executed algorithms match their declared CPS.",
            runs.len()
        );

        out.metric("survey_rows", table1().len());
        out.metric("distinct_cps", distinct.len());
        out.metric("executed", runs.len());
        out.metric("verified", verified);
        out
    }
}
