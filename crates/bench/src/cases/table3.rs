//! Table 3 — proposed routing + node ordering gives HSD = 1 on fully and
//! partially populated 2- and 3-level RLFTs; random ranking congests.
//!
//! Rows: (topology × population). "Cont.−X" = X randomly selected nodes
//! excluded from the communication; the sequence stays defined over port
//! positions (silent excluded ports), as the paper prescribes for partial
//! trees. Columns: avg max HSD for the proposed configuration (Shift and
//! the Sec. VI topology-aware recursive doubling), the random-ranking
//! baseline, and the improvement factor.

use ftree_analysis::{sequence_hsd_cached, RouteCache, SequenceOptions};
use ftree_collectives::{Cps, PortSpace, TopoAwareRd};
use ftree_core::{NodeOrder, RoutingAlgo};
use ftree_topology::Topology;

use super::{catalog_key, outln};
use crate::{
    exclusion_set, paper_topologies, surviving_ports, BenchCase, BenchOutput, CaseCtx, TextTable,
};

/// The Table 3 case.
pub struct Table3;

impl BenchCase for Table3 {
    fn name(&self) -> &'static str {
        "table3"
    }

    fn run(&self, ctx: &mut CaseCtx<'_>) -> BenchOutput {
        let max_stages: usize = ctx.args.num("--stages", 64);
        let rand_seeds: u64 = ctx.args.num("--rand-seeds", 5);
        let mut out = BenchOutput::new("table3");
        out.param("stages", max_stages as u64);
        out.param("rand_seeds", rand_seeds);
        let opts = SequenceOptions { max_stages };

        outln!(
            ctx,
            "Table 3 reproduction: avg max HSD (1.00 = congestion-free), Shift sampled to \
             {max_stages} stages, random ranking averaged over {rand_seeds} seeds\n"
        );

        let mut table = TextTable::new(vec![
            "topology",
            "population",
            "Shift HSD (proposed)",
            "TopoAwareRD HSD",
            "Random Ranking Avg HSD",
            "improvement",
        ]);

        let mut rows: Vec<serde_json::Value> = Vec::new();
        let mut last_topo = None;
        for (name, spec) in paper_topologies() {
            let key = catalog_key(spec.num_hosts());
            let topo = ctx.fabrics.topology(key, || Topology::build(spec));
            let rt = ctx
                .fabrics
                .routing(&format!("{key}/dmodk"), || RoutingAlgo::DModK.route(&topo));
            // One path arena per topology, shared by every population row
            // and random seed (bit-identical to per-call rebuilds; pinned
            // by the arena oracle tests).
            let cache = RouteCache::new(&topo, &rt).expect("routable");
            let n_total = topo.num_hosts() as u32;
            let populations: Vec<(String, Vec<u32>)> = vec![
                ("Full".to_string(), (0..n_total).collect()),
                (
                    "Cont.-1".to_string(),
                    surviving_ports(&exclusion_set(11, 1, n_total), n_total),
                ),
                (
                    format!("Cont.-{}", n_total / 18),
                    surviving_ports(
                        &exclusion_set(12, (n_total / 18) as usize, n_total),
                        n_total,
                    ),
                ),
                (
                    format!("Cont.-{}", n_total / 9),
                    surviving_ports(&exclusion_set(13, (n_total / 9) as usize, n_total), n_total),
                ),
            ];

            for (pop_name, ports) in populations {
                let full = ports.len() == n_total as usize;
                let proposed_order = NodeOrder::topology_subset(ports.clone());
                let shift = PortSpace::new(Cps::Shift, n_total, ports.clone());
                let n_ranks = shift.num_ranks();

                let proposed = sequence_hsd_cached(&cache, &proposed_order, &shift, opts)
                    .expect("routable")
                    .avg_max;

                // Topology-aware recursive doubling is defined for the full
                // machine; partial rows use the Shift column (paper Sec. VI
                // notes the partial construction follows leaf occupancy).
                let topo_rd = if full {
                    let seq = TopoAwareRd::new(topo.spec().ms().to_vec());
                    format!(
                        "{:.2}",
                        sequence_hsd_cached(&cache, &proposed_order, &seq, opts)
                            .expect("routable")
                            .avg_max
                    )
                } else {
                    "-".to_string()
                };

                // Random ranking: the realistic baseline — an n'-rank job
                // placed randomly, running the ordinary rank-space Shift.
                let mut acc = 0.0;
                for seed in 1..=rand_seeds {
                    let order = NodeOrder::random_subset(ports.clone(), seed);
                    acc += sequence_hsd_cached(&cache, &order, &Cps::Shift, opts)
                        .expect("routable")
                        .avg_max;
                }
                let random = acc / rand_seeds as f64;

                table.row(vec![
                    name.to_string(),
                    format!("{pop_name} ({n_ranks} ranks)"),
                    format!("{proposed:.2}"),
                    topo_rd.clone(),
                    format!("{random:.2}"),
                    format!("x{:.1}", random / proposed),
                ]);
                rows.push(serde_json::json!({
                    "topology": name,
                    "population": pop_name,
                    "ranks": n_ranks,
                    "proposed_shift_hsd": proposed,
                    "topo_rd_hsd": topo_rd,
                    "random_avg_hsd": random,
                    "improvement": random / proposed,
                }));
            }
            last_topo = Some(topo);
            eprintln!("  done {name}");
        }
        ctx.print_table(&table);
        outln!(
            ctx,
            "\nPaper shape: proposed column = 1.00 everywhere (congestion-free); \
             random ranking up to ~5x worse at 1944 nodes."
        );

        out.topology("paper roster: 128 / 324 / 1728 / 1944");
        out.metric("hsd_rows", rows);
        if let Some(topo) = &last_topo {
            ctx.export_observability(topo);
        }
        out
    }
}
