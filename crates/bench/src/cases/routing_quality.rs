//! Routing-quality sweep: fault rates × engines on the catalog fabrics.
//!
//! For every topology, every seeded failure pattern (a deterministic set of
//! dead switch-to-switch cables) and every routing engine, this computes
//! the routing-quality report — the per-channel distinct-destination load
//! (max, p99, mean), the pairs displaced off their healthy D-Mod-K path,
//! and the unreachable pairs — and prints one table per topology.
//!
//! The run doubles as the acceptance gate for the fault-resilient `Dmodc`
//! engine: on **every** pattern its max per-link destination load must be
//! ≤ the first-fit D-Mod-K repair's, and strictly lower on at least one
//! pattern per topology. The run fails (after writing its JSON) otherwise.

use ftree_analysis::routing_quality;
use ftree_core::{builtin_engines, DModK, Router};
use ftree_topology::failures::LinkFailures;
use ftree_topology::rlft::catalog;
use ftree_topology::{PgftSpec, Topology};

use super::outln;
use crate::{BenchCase, BenchOutput, CaseCtx, TextTable};

fn spec_by_name(name: &str) -> PgftSpec {
    match name {
        "fig4_pgft_16" => catalog::fig4_pgft_16(),
        "nodes_128" => catalog::nodes_128(),
        "nodes_324" => catalog::nodes_324(),
        other => panic!("unknown --topo {other}"),
    }
}

fn num_list(ctx: &CaseCtx<'_>, key: &str, default: &[u64]) -> Vec<u64> {
    match ctx.args.list(key) {
        Some(items) => items
            .iter()
            .map(|v| v.parse().unwrap_or_else(|_| panic!("bad {key} value {v}")))
            .collect(),
        None => default.to_vec(),
    }
}

/// The routing-quality sweep case.
pub struct RoutingQuality;

impl BenchCase for RoutingQuality {
    fn name(&self) -> &'static str {
        "routing_quality"
    }

    fn run(&self, ctx: &mut CaseCtx<'_>) -> BenchOutput {
        let topos: Vec<String> = match ctx.args.value("--topo") {
            Some(name) => vec![name.to_string()],
            None => ["fig4_pgft_16", "nodes_128", "nodes_324"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        };
        let rates = num_list(ctx, "--rates", &[1, 2, 5]);
        let seeds = num_list(ctx, "--seeds", &[11, 22, 33]);

        let mut out = BenchOutput::new("routing_quality");
        // Default to the BENCH_-prefixed name the experiment harness
        // collects; written before the gate verdict so a failing run still
        // leaves data.
        out.default_out("results/BENCH_routing_quality.json");
        out.topology(topos.join(","));
        out.param("rates", serde_json::json!(rates));
        out.param("seeds", serde_json::json!(seeds));
        out.param(
            "engines",
            serde_json::json!(["d-mod-k", "dmodc", "random", "minhop-greedy"]),
        );

        let mut rows: Vec<serde_json::Value> = Vec::new();
        // The acceptance gate: Dmodc never worse than first-fit D-Mod-K on
        // max destination load, strictly better somewhere on every topology.
        let mut dmodc_never_worse = true;
        let mut dmodc_strictly_better = 0u64;

        for topo_name in &topos {
            let topo = ctx
                .fabrics
                .topology(topo_name, || Topology::build(spec_by_name(topo_name)));
            let healthy = DModK.route_healthy(&topo);
            outln!(
                ctx,
                "\n{} — {} ({} hosts): max/p99/mean destination load per inter-switch channel",
                topo_name,
                topo.spec(),
                topo.num_hosts()
            );
            let mut table = TextTable::new(vec![
                "failed cables",
                "seed",
                "engine",
                "max",
                "p99",
                "mean",
                "displaced pairs",
                "unreachable pairs",
            ]);
            let mut topo_strictly_better = 0u64;
            for &rate in &rates {
                for &seed in &seeds {
                    // Switch-to-switch cables only: the sweep measures path
                    // degradation, not host amputation.
                    let failures =
                        LinkFailures::seeded_where(&topo, seed, rate as usize, |t, l| {
                            !t.node(t.link(l).child).is_host()
                        });
                    let mut firstfit_max = None;
                    let mut dmodc_max = None;
                    for engine in builtin_engines(seed) {
                        let rt = engine.route(&topo, &failures).unwrap();
                        let q = routing_quality(&topo, &rt, Some(&healthy)).unwrap();
                        table.row(vec![
                            format!("{}", failures.len()),
                            format!("{seed}"),
                            engine.name(),
                            format!("{}", q.max_load),
                            format!("{}", q.p99_load),
                            format!("{:.2}", q.mean_load),
                            format!("{}", q.displaced_pairs),
                            format!("{}", q.unreachable_pairs),
                        ]);
                        let kind = if engine.name().starts_with("dmodc") {
                            dmodc_max = Some(q.max_load);
                            "dmodc"
                        } else if engine.name().starts_with("random") {
                            "random"
                        } else if engine.name().starts_with("minhop") {
                            "minhop-greedy"
                        } else {
                            firstfit_max = Some(q.max_load);
                            "d-mod-k"
                        };
                        rows.push(serde_json::json!({
                            "topology": topo_name,
                            "failed_links": failures.len(),
                            "seed": seed,
                            "engine": kind,
                            "max_load": q.max_load,
                            "p99_load": q.p99_load,
                            "mean_load": q.mean_load,
                            "displaced_pairs": q.displaced_pairs,
                            "unreachable_pairs": q.unreachable_pairs,
                        }));
                    }
                    let (ff, dc) = (firstfit_max.unwrap(), dmodc_max.unwrap());
                    if dc > ff {
                        dmodc_never_worse = false;
                        eprintln!(
                            "GATE VIOLATION: {topo_name} rate {rate} seed {seed}: \
                             dmodc max {dc} > first-fit max {ff}"
                        );
                    }
                    if dc < ff {
                        topo_strictly_better += 1;
                    }
                }
            }
            ctx.print_table(&table);
            if topo_strictly_better == 0 {
                dmodc_never_worse = false;
                eprintln!("GATE VIOLATION: {topo_name}: dmodc never strictly beat first-fit");
            }
            dmodc_strictly_better += topo_strictly_better;
        }

        out.metric("rows", rows);
        out.metric("dmodc_never_worse_than_first_fit", dmodc_never_worse);
        out.metric("dmodc_strictly_better_patterns", dmodc_strictly_better);
        if dmodc_never_worse {
            outln!(
                ctx,
                "\ndmodc gate: never worse than first-fit on any pattern, strictly \
                 better on {dmodc_strictly_better}."
            );
        } else {
            out.fail_gate("dmodc routing-quality gate failed (see stderr)");
        }
        out
    }
}
