//! Figure 2 — normalized effective bandwidth vs message size for the Shift
//! and Recursive-Doubling CPS under a *random* MPI node order.
//!
//! The paper simulates a 1944-node InfiniBand cluster in OMNeT++ and
//! observes: (a) bandwidth falls as messages grow (head-of-line blocking
//! persists longer), (b) Recursive-Doubling is worse than Shift even for
//! small messages (its short stage sequence gives contention no chance to
//! average out), (c) the proposed ordering restores full bandwidth.
//!
//! Default run: packet-level simulation on the 324-node RLFT with a sampled
//! Shift sequence (the full 1944-node/1943-stage configuration is the
//! paper's multi-hour OMNeT++ run; pass `--full` to attempt it).

use ftree_collectives::{Cps, PermutationSequence};
use ftree_core::{NodeOrder, RoutingAlgo};
use ftree_sim::{PacketSim, Progression, SimConfig, TrafficPlan};
use ftree_topology::rlft::catalog;
use ftree_topology::Topology;

use super::outln;
use crate::{fmt_bytes, BenchCase, BenchOutput, CaseCtx, TextTable};

/// The Figure 2 case.
pub struct Fig2;

impl BenchCase for Fig2 {
    fn name(&self) -> &'static str {
        "fig2"
    }

    fn run(&self, ctx: &mut CaseCtx<'_>) -> BenchOutput {
        let full = ctx.args.flag("--full");
        let seed: u64 = ctx.args.num("--seed", 1);
        let mut out = BenchOutput::new("fig2");
        let (key, spec) = if full {
            ("nodes_1944", catalog::nodes_1944())
        } else {
            ("nodes_324", catalog::nodes_324())
        };
        let topo = ctx.fabrics.topology(key, || Topology::build(spec));
        let rt = ctx
            .fabrics
            .routing(&format!("{key}/dmodk"), || RoutingAlgo::DModK.route(&topo));
        let cfg = SimConfig::default();
        let shift_stages: usize = ctx.args.num("--shift-stages", if full { 64 } else { 16 });

        outln!(
            ctx,
            "Figure 2 reproduction: {} ({} hosts), D-Mod-K routing, packet-level sim",
            topo.spec(),
            topo.num_hosts()
        );
        outln!(
            ctx,
            "random node order seed {seed}; Shift sampled to {shift_stages} stages; \
             normalized to PCIe {} MB/s\n",
            cfg.host_bw.mbps
        );

        let sizes: &[u64] = if full {
            &[4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20]
        } else {
            &[4 << 10, 16 << 10, 64 << 10, 256 << 10, 512 << 10]
        };

        let random = NodeOrder::random(&topo, seed);
        let ordered = NodeOrder::topology(&topo);

        let mut table = TextTable::new(vec![
            "msg size",
            "Shift (random order)",
            "RecDbl (random order)",
            "Shift (topology order)",
        ]);

        let mut rows: Vec<serde_json::Value> = Vec::new();
        for &size in sizes {
            let run = |order: &NodeOrder, cps: &dyn PermutationSequence, max: usize| -> f64 {
                let plan = TrafficPlan::from_cps(order, cps, size, Progression::Asynchronous, max);
                ctx.maybe_record(PacketSim::new(&topo, &rt, cfg, &plan))
                    .run()
                    .normalized_bw
            };
            let shift_rand = run(&random, &Cps::Shift, shift_stages);
            let rd_rand = run(&random, &Cps::RecursiveDoubling, usize::MAX);
            let shift_ord = run(&ordered, &Cps::Shift, shift_stages);
            table.row(vec![
                fmt_bytes(size),
                format!("{shift_rand:.3}"),
                format!("{rd_rand:.3}"),
                format!("{shift_ord:.3}"),
            ]);
            rows.push(serde_json::json!({
                "bytes": size,
                "shift_random_bw": shift_rand,
                "recdbl_random_bw": rd_rand,
                "shift_topology_bw": shift_ord,
            }));
            eprintln!("  done {}", fmt_bytes(size));
        }
        ctx.print_table(&table);
        outln!(
            ctx,
            "\nPaper shape: random-order BW decreases with message size; \
             Recursive-Doubling lies below Shift; topology order stays at line rate."
        );

        out.topology(topo.spec().to_string());
        out.param("full", full);
        out.param("seed", seed);
        out.param("shift_stages", shift_stages as u64);
        out.metric("bandwidth_by_size", rows);
        ctx.export_observability(&topo);
        out
    }
}
