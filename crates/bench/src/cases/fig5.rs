//! Figure 5 — PGFT nodes, ports and their connection rule.
//!
//! Demonstrates the paper's port-numbering rule on a small 3-level PGFT
//! with parallel ports: two nodes whose digit vectors agree everywhere but
//! at the connecting level are cabled by `p` parallel links; the `k`-th
//! link joins up-port `b + k*w` to down-port `a + k*m`.

use ftree_topology::{io, PgftSpec, Topology};

use super::outln;
use crate::{BenchCase, BenchOutput, CaseCtx, TextTable};

/// The Figure 5 case.
pub struct Fig5;

impl BenchCase for Fig5 {
    fn name(&self) -> &'static str {
        "fig5"
    }

    fn run(&self, ctx: &mut CaseCtx<'_>) -> BenchOutput {
        let mut out = BenchOutput::new("fig5");
        // A small PGFT with non-trivial w and p at the top level.
        let topo = ctx.fabrics.topology("fig5_pgft", || {
            let spec = PgftSpec::from_slices(&[2, 2, 2], &[1, 2, 2], &[1, 1, 2]).unwrap();
            Topology::build(spec)
        });
        out.topology(topo.spec().to_string());

        outln!(
            ctx,
            "Figure 5 reproduction: connection rule of {}\n",
            topo.spec()
        );

        // Show the cabling between one level-2 node and its level-3 parents.
        let child = topo.node_at(2, 0).unwrap();
        let c = topo.node(child);
        outln!(
            ctx,
            "level-2 node {} (digits {:?}) has {} up-going ports:",
            topo.node_name(child),
            c.digits,
            c.up.len()
        );
        let mut table = TextTable::new(vec![
            "up-port q",
            "parent",
            "parent digits",
            "parent down-port r",
            "parallel index k",
        ]);
        let w = topo.spec().w(2);
        for (q, pp) in c.up.iter().enumerate() {
            let parent = topo.node(pp.peer);
            table.row(vec![
                format!("{q}"),
                topo.node_name(pp.peer),
                format!("{:?}", parent.digits),
                format!("{}", pp.peer_port),
                format!("{}", q as u32 / w),
            ]);
        }
        ctx.print_table(&table);

        outln!(ctx, "\nFull cable list ({} links):", topo.num_links());
        let _ = std::io::Write::write_all(ctx.out, io::write_text(&topo).as_bytes());

        out.metric("hosts", topo.num_hosts());
        out.metric("links", topo.num_links());
        out.metric("level2_up_ports", topo.node(child).up.len());
        ctx.export_observability(&topo);
        out
    }
}
