//! Figure 1 — routing and MPI node order cause or prevent blocking.
//!
//! The paper's 16-node example: traffic pattern `dst = (src + 4) mod 16`
//! (one stage of the Shift CPS). With a random MPI-node-order, several
//! up-going links carry two flows (hot spots); with the routing-aware
//! (topology) order every link carries exactly one flow.

use ftree_analysis::LinkLoads;
use ftree_collectives::{Cps, PermutationSequence};
use ftree_core::{DModK, NodeOrder, Router};
use ftree_topology::rlft::catalog;
use ftree_topology::{Direction, RoutingTable, Topology};

use super::outln;
use crate::{BenchCase, BenchOutput, CaseCtx, TextTable};

fn show_order(
    ctx: &mut CaseCtx<'_>,
    topo: &Topology,
    rt: &RoutingTable,
    order: &NodeOrder,
    title: &str,
    label: &str,
) -> (usize, u32) {
    let n = topo.num_hosts() as u32;
    // Stage with displacement 4: Shift stage index 3.
    let stage = Cps::Shift.stage(n, 3);
    let flows = order.port_flows(&stage);
    let loads = LinkLoads::compute(topo, rt, &flows).expect("routable");

    // For the figure we list, per leaf up-link, the MPI node numbers whose
    // traffic crosses it.
    let mut per_channel: Vec<Vec<u32>> = vec![Vec::new(); topo.num_channels()];
    for &(src, dst) in &flows {
        let path = rt.trace(topo, src as usize, dst as usize).unwrap();
        // Translate the destination port back to its MPI rank for display.
        let rank = order
            .map()
            .iter()
            .position(|&p| p == dst)
            .expect("dst is ranked") as u32;
        for ch in path.channels {
            if ch.direction() == Direction::Up && !topo.node(topo.channel_source(ch).0).is_host() {
                per_channel[ch.index()].push(rank);
            }
        }
    }

    outln!(ctx, "\n=== {title} ===");
    outln!(ctx, "MPI node order (rank -> end-port): {:?}", order.map());
    let mut table = TextTable::new(vec!["leaf switch", "up-port", "MPI dst ranks", "flows"]);
    let mut hot = 0usize;
    for leaf in topo.level_nodes(1) {
        for (q, pp) in topo.node(leaf).up.iter().enumerate() {
            let ch = topo.channel(pp.link, Direction::Up);
            let ranks = &per_channel[ch.index()];
            let count = loads.count(ch.index());
            if count > 1 {
                hot += 1;
            }
            table.row(vec![
                topo.node_name(leaf),
                format!("{q}"),
                format!("{ranks:?}"),
                format!("{count}{}", if count > 1 { "  <-- HOT" } else { "" }),
            ]);
        }
    }
    ctx.print_table(&table);
    let summary = loads.summarize();
    loads.observe(&ctx.rec, label);
    outln!(
        ctx,
        "hot up-links: {hot}; max HSD = {} ({})",
        summary.max,
        if summary.is_congestion_free() {
            "congestion-free"
        } else {
            "blocking"
        }
    );
    (hot, summary.max)
}

fn write_svg(
    ctx: &mut CaseCtx<'_>,
    topo: &Topology,
    rt: &RoutingTable,
    order: &NodeOrder,
    path: &str,
) {
    if !ctx.artifacts {
        return;
    }
    let stage = Cps::Shift.stage(topo.num_hosts() as u32, 3);
    let loads = LinkLoads::compute(topo, rt, &order.port_flows(&stage)).unwrap();
    let svg =
        ftree_analysis::render_svg(topo, Some(&loads), &ftree_analysis::SvgOptions::default());
    if std::fs::write(path, svg).is_ok() {
        outln!(ctx, "(rendered {path})");
    }
}

/// The Figure 1 case.
pub struct Fig1;

impl BenchCase for Fig1 {
    fn name(&self) -> &'static str {
        "fig1"
    }

    fn run(&self, ctx: &mut CaseCtx<'_>) -> BenchOutput {
        let mut out = BenchOutput::new("fig1");
        let topo = ctx
            .fabrics
            .topology("fig1_16", || Topology::build(catalog::fig1_16()));
        let rt = ctx
            .fabrics
            .routing("fig1_16/dmodk", || DModK.route_healthy(&topo));
        out.topology(topo.spec().to_string());
        outln!(
            ctx,
            "Figure 1 reproduction: {} ({} hosts), pattern dst = (src + 4) mod 16",
            topo.spec(),
            topo.num_hosts()
        );

        // (a) a random order exhibiting hot spots (seed chosen to show >= 3
        // hot up-links, like the figure's example).
        let mut chosen = None;
        for seed in 1..100 {
            let order = NodeOrder::random(&topo, seed);
            let stage = Cps::Shift.stage(16, 3);
            let loads = LinkLoads::compute(&topo, &rt, &order.port_flows(&stage)).unwrap();
            let hot = loads
                .counts()
                .iter()
                .enumerate()
                .filter(|&(i, &c)| {
                    c > 1 && ftree_topology::ChannelId(i as u32).direction() == Direction::Up
                })
                .count();
            if hot >= 3 {
                chosen = Some(order);
                break;
            }
        }
        let random = chosen.expect("some random order shows 3 hot spots");
        let (rand_hot, rand_max) = show_order(
            ctx,
            &topo,
            &rt,
            &random,
            "(a) random MPI node order",
            "random",
        );
        write_svg(ctx, &topo, &rt, &random, "fig1a.svg");

        // (b) routing-aware order: congestion-free.
        let ordered = NodeOrder::topology(&topo);
        let (ord_hot, ord_max) = show_order(
            ctx,
            &topo,
            &rt,
            &ordered,
            "(b) routing-aware (topology) order",
            "topology",
        );
        write_svg(ctx, &topo, &rt, &ordered, "fig1b.svg");

        out.param("pattern", "dst = (src + 4) mod 16");
        out.metric("random_hot_uplinks", rand_hot);
        out.metric("random_max_hsd", rand_max);
        out.metric("topology_hot_uplinks", ord_hot);
        out.metric("topology_max_hsd", ord_max);
        ctx.export_observability(&topo);
        out
    }
}
