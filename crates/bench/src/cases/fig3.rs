//! Figure 3 — average maximal Hot-Spot Degree vs cluster size for six
//! global collectives under random MPI node order.
//!
//! For each of the paper's four topologies (128, 324, 1728, 1944 nodes) and
//! each CPS (Binomial, Butterfly≡Recursive-Doubling, Dissemination, Ring,
//! Shift, Tournament), computes the mean-over-stages maximal HSD, averaged
//! over 25 random node orders, with min/max error bars — the paper's
//! analytic `ibdm` experiment.

use ftree_analysis::{random_order_sweep, SequenceOptions};
use ftree_collectives::Cps;
use ftree_core::RoutingAlgo;
use ftree_topology::Topology;

use super::{catalog_key, outln};
use crate::{paper_topologies, BenchCase, BenchOutput, CaseCtx, TextTable};

/// The Figure 3 case.
pub struct Fig3;

impl BenchCase for Fig3 {
    fn name(&self) -> &'static str {
        "fig3"
    }

    fn run(&self, ctx: &mut CaseCtx<'_>) -> BenchOutput {
        let n_seeds: u64 = ctx.args.num("--seeds", 25);
        let max_stages: usize = ctx.args.num("--stages", 64);
        let mut out = BenchOutput::new("fig3");
        out.param("seeds", n_seeds);
        out.param("stages", max_stages as u64);
        let seeds: Vec<u64> = (1..=n_seeds).collect();
        let opts = SequenceOptions { max_stages };

        let cps_list = [
            Cps::Binomial,
            Cps::RecursiveDoubling, // the paper's "Butterfly"
            Cps::Dissemination,
            Cps::Ring,
            Cps::Shift,
            Cps::Tournament,
        ];

        outln!(
            ctx,
            "Figure 3 reproduction: avg max HSD, {} random orders, Shift sampled to {} stages",
            seeds.len(),
            max_stages
        );
        outln!(ctx, "cells: mean [min, max] over random node orders\n");

        let mut table = TextTable::new(vec![
            "topology".to_string(),
            "Binomial".to_string(),
            "Butterfly".to_string(),
            "Dissemination".to_string(),
            "Ring".to_string(),
            "Shift".to_string(),
            "Tournament".to_string(),
        ]);

        let mut rows: Vec<serde_json::Value> = Vec::new();
        let mut last_topo = None;
        for (name, spec) in paper_topologies() {
            let key = catalog_key(spec.num_hosts());
            let topo = ctx.fabrics.topology(key, || Topology::build(spec));
            let rt = ctx
                .fabrics
                .routing(&format!("{key}/dmodk"), || RoutingAlgo::DModK.route(&topo));
            let mut cells = vec![name.to_string()];
            let mut row = serde_json::Map::new();
            row.insert("topology".into(), name.into());
            for cps in cps_list {
                let sweep =
                    random_order_sweep(&topo, &rt, &cps, &seeds, opts).expect("routable topology");
                cells.push(format!(
                    "{:.2} [{:.2}, {:.2}]",
                    sweep.mean, sweep.min, sweep.max
                ));
                row.insert(
                    format!("{cps:?}"),
                    serde_json::json!({"mean": sweep.mean, "min": sweep.min, "max": sweep.max}),
                );
            }
            table.row(cells);
            rows.push(row.into());
            last_topo = Some(topo);
            eprintln!("  done {name}");
        }
        ctx.print_table(&table);
        outln!(
            ctx,
            "\nPaper shape: Ring, Shift and Butterfly grow steeply with cluster size; \
             with topology order + D-Mod-K all of these drop to 1.00 (see table3)."
        );

        out.topology("paper roster: 128 / 324 / 1728 / 1944");
        out.metric("avg_max_hsd", rows);
        if let Some(topo) = &last_topo {
            ctx.export_observability(topo);
        }
        out
    }
}
