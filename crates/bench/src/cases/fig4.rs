//! Figure 4 — why Parallel-Ports Generalized Fat-Trees are required.
//!
//! Building a 16-node constant-CBB cluster from 8-port switches: the XGFT
//! formulation needs 4 spine switches with half their ports unused; the
//! PGFT formulation keeps the CBB with 2 fully-used spines via parallel
//! ports.

use ftree_topology::rlft::{catalog, check_rlft};
use ftree_topology::Topology;

use super::outln;
use crate::{BenchCase, BenchOutput, CaseCtx, TextTable};

fn describe(name: &str, topo: &Topology, table: &mut TextTable) {
    let spec = topo.spec();
    let spines = spec.nodes_at_level(2);
    let spine = topo.node_at(2, 0).unwrap();
    let used = topo.node(spine).down.len();
    let report = check_rlft(spec);
    table.row(vec![
        name.to_string(),
        spec.canonical_name(),
        format!("{}", spec.nodes_at_level(1)),
        format!("{spines}"),
        format!("{used}/8"),
        format!("{}", topo.num_links()),
        if report.is_rlft() {
            "yes".into()
        } else {
            "no".to_string()
        },
    ]);
}

/// The Figure 4 case.
pub struct Fig4;

impl BenchCase for Fig4 {
    fn name(&self) -> &'static str {
        "fig4"
    }

    fn run(&self, ctx: &mut CaseCtx<'_>) -> BenchOutput {
        let mut out = BenchOutput::new("fig4");
        outln!(
            ctx,
            "Figure 4 reproduction: 16 nodes from 8-port switches, constant CBB\n"
        );
        let mut table = TextTable::new(vec![
            "formulation",
            "spec",
            "leaves",
            "spines",
            "spine ports used",
            "links",
            "strict RLFT",
        ]);
        let xgft = ctx
            .fabrics
            .topology("fig4_xgft_16", || Topology::build(catalog::fig4_xgft_16()));
        let pgft = ctx
            .fabrics
            .topology("fig4_pgft_16", || Topology::build(catalog::fig4_pgft_16()));
        describe("(a) XGFT", &xgft, &mut table);
        describe("(b) PGFT", &pgft, &mut table);
        ctx.print_table(&table);
        outln!(
            ctx,
            "\nPaper: the PGFT halves the spine count by using two parallel ports per \
             leaf-spine pair, filling every switch port — the XGFT cannot express this."
        );

        out.topology(serde_json::json!({
            "xgft": xgft.spec().canonical_name(),
            "pgft": pgft.spec().canonical_name(),
        }));
        out.metric("xgft_spines", xgft.spec().nodes_at_level(2));
        out.metric("pgft_spines", pgft.spec().nodes_at_level(2));
        out.metric("xgft_links", xgft.num_links());
        out.metric("pgft_links", pgft.num_links());
        ctx.export_observability(&pgft);
        out
    }
}
