//! [`BenchCase`](crate::BenchCase) implementations of the paper experiments.
//!
//! Each module holds the logic that used to live in the binary of the same
//! name; the binaries are now one-line shims over
//! [`run_standalone`](crate::run_standalone) and the same cases run batched
//! under `campaign --cases`, where a shared
//! [`FabricCache`](crate::FabricCache) builds each topology and routing
//! table exactly once across the whole batch.

pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod routing_quality;
pub mod table1;
pub mod table2;
pub mod table3;

/// `writeln!` into a [`CaseCtx`](crate::CaseCtx)'s text sink, ignoring I/O
/// errors (a closed pipe must not kill an experiment).
macro_rules! outln {
    ($ctx:expr) => {{
        let _ = writeln!($ctx.out);
    }};
    ($ctx:expr, $($arg:tt)*) => {{
        let _ = writeln!($ctx.out, $($arg)*);
    }};
}
pub(crate) use outln;

/// Fabric-cache key for a paper-roster topology (host count → the catalog
/// constructor name, so batch mode shares builds with grid cells).
pub(crate) fn catalog_key(hosts: usize) -> &'static str {
    match hosts {
        16 => "fig4_pgft_16",
        128 => "nodes_128",
        324 => "nodes_324",
        1728 => "nodes_1728",
        1944 => "nodes_1944",
        _ => "custom",
    }
}
