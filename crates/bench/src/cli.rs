//! Unified bench CLI + case API.
//!
//! Every experiment in this repo used to be a standalone `main` with its own
//! copy of flag scanning and JSON writing. This module replaces that with
//! three pieces:
//!
//! * [`BenchArgs`] — typed view over an explicit argument vector (not the
//!   process environment), so the same parsing serves a standalone binary
//!   (`BenchArgs::from_env`) and a campaign cell (`BenchArgs::from_slice`).
//!   The shared flags every bench honors: `--json-out`, `--trace-out`,
//!   `--events-out`, `--csv`, `--threads`.
//! * [`BenchOutput`] — the one JSON-schema emitter
//!   (`{bench, topology, params, metrics, obs_metrics, wall_ms}`), plus a
//!   write-before-fail gate mechanism so acceptance asserts never eat the
//!   evidence they are judging.
//! * [`BenchCase`] — experiment logic as a value: `run(&mut CaseCtx)`
//!   instead of `fn main()`. A case runs identically as its own binary
//!   (via [`run_standalone`]), as one entry of a `campaign --cases` batch
//!   (sharing a [`FabricCache`] so topologies/routings build once), or as
//!   material for future grid cells.
//!
//! The [`registry`] lists every migrated case; binaries are one-line shims
//! over it.

use std::collections::HashMap;
use std::io::Write;
use std::str::FromStr;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ftree_obs::Recorder;
use ftree_topology::{RoutingTable, Topology};
use serde_json::{Map, Value};

/// Typed view over an argument vector. Parsing is positional-free: flags
/// (`--csv`) and `--key value` pairs, scanned left to right.
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    argv: Vec<String>,
}

impl BenchArgs {
    /// The process arguments (without `argv[0]`).
    pub fn from_env() -> Self {
        Self {
            argv: std::env::args().skip(1).collect(),
        }
    }

    /// An explicit argument vector — how campaign cells and tests invoke
    /// cases without touching the process environment.
    pub fn from_slice<S: AsRef<str>>(args: &[S]) -> Self {
        Self {
            argv: args.iter().map(|a| a.as_ref().to_string()).collect(),
        }
    }

    /// The raw argument vector.
    pub fn raw(&self) -> &[String] {
        &self.argv
    }

    /// True when bare `flag` (e.g. `--full`) is present.
    pub fn flag(&self, flag: &str) -> bool {
        self.argv.iter().any(|a| a == flag)
    }

    /// Value of `--key value`, if present.
    pub fn value(&self, key: &str) -> Option<&str> {
        let mut it = self.argv.iter();
        while let Some(a) = it.next() {
            if a == key {
                return it.next().map(String::as_str);
            }
        }
        None
    }

    /// Parsed `--key value` with default on absence or parse failure.
    pub fn num<T: FromStr>(&self, key: &str, default: T) -> T {
        self.value(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Comma-separated `--key a,b,c` as a list.
    pub fn list(&self, key: &str) -> Option<Vec<String>> {
        self.value(key).map(|v| {
            v.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect()
        })
    }

    /// `--json-out <path>`: where the [`BenchOutput`] document goes.
    pub fn json_out(&self) -> Option<&str> {
        self.value("--json-out")
    }

    /// `--trace-out <path>`: Chrome trace-event JSON destination.
    pub fn trace_out(&self) -> Option<&str> {
        self.value("--trace-out")
    }

    /// `--events-out <path>`: raw NDJSON event-stream destination.
    pub fn events_out(&self) -> Option<&str> {
        self.value("--events-out")
    }

    /// `--csv`: tables render as CSV instead of aligned text.
    pub fn csv(&self) -> bool {
        self.flag("--csv")
    }

    /// `--threads <n>`: worker-thread override (0/absent = one per core).
    pub fn threads(&self) -> Option<usize> {
        self.value("--threads").and_then(|v| v.parse().ok())
    }

    /// Applies `--threads` to the analysis-layer thread pool.
    pub fn apply_threads(&self) {
        if let Some(n) = self.threads() {
            ftree_analysis::set_parallelism(n);
        }
    }

    /// True when this invocation asked for event capture: benches attach
    /// recorders to simulations only on demand, keeping default runs on the
    /// zero-overhead path.
    pub fn events_requested(&self) -> bool {
        self.trace_out().is_some() || self.events_out().is_some()
    }
}

/// Machine-readable result emitter: every experiment builds one of these
/// alongside its text tables and writes it at the end.
///
/// Emitted schema: `{bench, topology, params, metrics, obs_metrics,
/// wall_ms}` — the contract checked by CI, aggregated by
/// `run_all_experiments.sh` and ingested by `ftree-report`.
pub struct BenchOutput {
    bench: String,
    topology: Value,
    params: Map<String, Value>,
    metrics: Map<String, Value>,
    started: Instant,
    gate_failure: Option<String>,
    default_path: Option<String>,
}

impl BenchOutput {
    /// Starts the wall clock for experiment `bench`.
    pub fn new(bench: &str) -> Self {
        Self {
            bench: bench.to_string(),
            topology: Value::Null,
            params: Map::new(),
            metrics: Map::new(),
            started: Instant::now(),
            gate_failure: None,
            default_path: None,
        }
    }

    /// Overrides the default output path used when `--json-out` is absent
    /// (e.g. `routing_quality` historically writes
    /// `results/BENCH_routing_quality.json`).
    pub fn default_out(&mut self, path: impl Into<String>) -> &mut Self {
        self.default_path = Some(path.into());
        self
    }

    /// The experiment name (also the default output stem).
    pub fn bench(&self) -> &str {
        &self.bench
    }

    /// Describes the (primary) topology under test.
    pub fn topology(&mut self, desc: impl Into<Value>) -> &mut Self {
        self.topology = desc.into();
        self
    }

    /// Records one input parameter (sizes, seeds, modes).
    pub fn param(&mut self, key: &str, value: impl Into<Value>) -> &mut Self {
        self.params.insert(key.to_string(), value.into());
        self
    }

    /// Records one result metric.
    pub fn metric(&mut self, key: &str, value: impl Into<Value>) -> &mut Self {
        self.metrics.insert(key.to_string(), value.into());
        self
    }

    /// The recorded metrics.
    pub fn metrics(&self) -> &Map<String, Value> {
        &self.metrics
    }

    /// Records an acceptance-gate failure *without* aborting: the JSON is
    /// still written (evidence first), then the harness fails the run. This
    /// preserves the historical write-then-assert ordering of gated benches
    /// under both standalone and campaign execution.
    pub fn fail_gate(&mut self, msg: impl Into<String>) -> &mut Self {
        let msg = msg.into();
        if self.gate_failure.is_none() {
            self.gate_failure = Some(msg);
        }
        self
    }

    /// The first recorded gate failure, if any.
    pub fn gate_failure(&self) -> Option<&str> {
        self.gate_failure.as_deref()
    }

    /// The JSON document (adds `wall_ms` measured since construction and,
    /// when a recorder is active — thread-scoped or process-global — its
    /// full metrics snapshot: counters, gauges and histograms with
    /// p50/p95/p99 estimates — under `obs_metrics`).
    pub fn render(&self) -> Value {
        let obs_metrics = ftree_obs::global()
            .map(|rec| serde_json::to_value(&rec.snapshot()).expect("snapshot serializes"))
            .unwrap_or(Value::Null);
        serde_json::json!({
            "bench": self.bench,
            "topology": self.topology,
            "params": self.params,
            "metrics": self.metrics,
            "obs_metrics": obs_metrics,
            "wall_ms": self.started.elapsed().as_secs_f64() * 1e3,
        })
    }

    /// Writes to `args`' `--json-out` when given, `results/<bench>.json`
    /// otherwise. Failures warn instead of panicking so a read-only working
    /// directory never kills an experiment.
    pub fn write_args(&self, args: &BenchArgs) {
        let path = args
            .json_out()
            .or(self.default_path.as_deref())
            .map(str::to_string)
            .unwrap_or_else(|| format!("results/{}.json", self.bench));
        let body = serde_json::to_string_pretty(&self.render()).expect("bench json serializes");
        crate::write_output(&path, &(body + "\n"), "results JSON");
    }

    /// [`BenchOutput::write_args`] against the process arguments — the
    /// compatibility path for benches not yet migrated onto [`BenchCase`].
    pub fn write(self) {
        self.write_args(&BenchArgs::from_env());
    }
}

/// Memoized fabric builds shared across the cases of one process: the first
/// request for a key builds, every later request clones the `Arc`. This is
/// where `campaign --cases` gets its setup amortization — fig2/fig4/table1
/// all want `fig4_pgft_16` + D-Mod-K and build it exactly once.
#[derive(Default)]
pub struct FabricCache {
    topos: Mutex<HashMap<String, Arc<Topology>>>,
    routings: Mutex<HashMap<String, Arc<RoutingTable>>>,
    topo_builds: Mutex<u64>,
    routing_builds: Mutex<u64>,
}

impl FabricCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The topology stored under `key`, building it on first request.
    pub fn topology(&self, key: &str, build: impl FnOnce() -> Topology) -> Arc<Topology> {
        let mut map = self.topos.lock().unwrap();
        if let Some(t) = map.get(key) {
            return t.clone();
        }
        let t = Arc::new(build());
        *self.topo_builds.lock().unwrap() += 1;
        map.insert(key.to_string(), t.clone());
        t
    }

    /// The routing table stored under `key` (conventionally
    /// `"<topo>/<engine>"`), building it on first request.
    pub fn routing(&self, key: &str, build: impl FnOnce() -> RoutingTable) -> Arc<RoutingTable> {
        let mut map = self.routings.lock().unwrap();
        if let Some(rt) = map.get(key) {
            return rt.clone();
        }
        let rt = Arc::new(build());
        *self.routing_builds.lock().unwrap() += 1;
        map.insert(key.to_string(), rt.clone());
        rt
    }

    /// `(topology, routing)` build counts — how much work the cache
    /// actually absorbed, reported by the campaign aggregate.
    pub fn build_counts(&self) -> (u64, u64) {
        (
            *self.topo_builds.lock().unwrap(),
            *self.routing_builds.lock().unwrap(),
        )
    }
}

/// Everything a [`BenchCase`] may touch while running. No case reads the
/// process environment: arguments, observability and fabric reuse all flow
/// through here, which is what makes cases callable as campaign cells.
pub struct CaseCtx<'a> {
    /// Parsed arguments (standalone argv or a cell's synthetic vector).
    pub args: &'a BenchArgs,
    /// This run's recorder (also reachable via `ftree_obs::global()` while
    /// the case runs).
    pub rec: Arc<Recorder>,
    /// Text output sink (stdout standalone; may be redirected in batches).
    pub out: &'a mut dyn Write,
    /// Shared fabric builds (see [`FabricCache`]).
    pub fabrics: &'a FabricCache,
    /// True when side artifacts (SVG plots) should be written. Campaign
    /// batches disable it unless asked, keeping cells output-pure.
    pub artifacts: bool,
}

impl CaseCtx<'_> {
    /// Prints `table` to the text sink, honoring `--csv`.
    pub fn print_table(&mut self, table: &crate::TextTable) {
        let body = if self.args.csv() {
            table.render_csv()
        } else {
            table.render()
        };
        let _ = self.out.write_all(body.as_bytes());
    }

    /// Attaches this run's recorder to `sim` when event capture was
    /// requested (`--trace-out`/`--events-out`), passes it through
    /// untouched otherwise.
    pub fn maybe_record<'s>(&self, sim: ftree_sim::PacketSim<'s>) -> ftree_sim::PacketSim<'s> {
        if self.args.events_requested() {
            sim.with_recorder(self.rec.clone())
        } else {
            sim
        }
    }

    /// Honors `--trace-out` / `--events-out` for this run (`topo` labels
    /// the trace's channel and fault tracks).
    pub fn export_observability(&self, topo: &Topology) {
        crate::export_observability_args(topo, &self.rec, self.args);
    }
}

/// One experiment, callable from a binary shim, a `campaign --cases`
/// batch, or anywhere else that can supply a [`CaseCtx`].
pub trait BenchCase: Sync {
    /// Stable case name — the binary name, the registry key and the
    /// default `results/<name>.json` stem.
    fn name(&self) -> &'static str;
    /// Runs the experiment and returns its result document. Gate failures
    /// are recorded via [`BenchOutput::fail_gate`], not panics, so results
    /// are always written before verdicts.
    fn run(&self, ctx: &mut CaseCtx<'_>) -> BenchOutput;
}

/// Every case migrated onto this API, in catalog order.
pub fn registry() -> &'static [&'static dyn BenchCase] {
    &[
        &crate::cases::fig1::Fig1,
        &crate::cases::fig2::Fig2,
        &crate::cases::fig3::Fig3,
        &crate::cases::fig4::Fig4,
        &crate::cases::fig5::Fig5,
        &crate::cases::table1::Table1,
        &crate::cases::table2::Table2,
        &crate::cases::table3::Table3,
        &crate::cases::routing_quality::RoutingQuality,
    ]
}

/// Looks up a registered case by [`BenchCase::name`].
pub fn find_case(name: &str) -> Option<&'static dyn BenchCase> {
    registry().iter().copied().find(|c| c.name() == name)
}

/// Runs `case` exactly as the pre-redesign standalone binaries did:
/// process argv, process-global recorder, phase report on stdout, JSON to
/// `--json-out` or the default path, then any gate failure aborts (after
/// the evidence is on disk).
pub fn run_standalone(case: &dyn BenchCase) {
    let args = BenchArgs::from_env();
    args.apply_threads();
    let rec = crate::init_obs();
    let fabrics = FabricCache::new();
    let mut stdout = std::io::stdout();
    let output = {
        let mut ctx = CaseCtx {
            args: &args,
            rec: rec.clone(),
            out: &mut stdout,
            fabrics: &fabrics,
            artifacts: true,
        };
        case.run(&mut ctx)
    };
    crate::print_phase_report(&rec);
    output.write_args(&args);
    if let Some(msg) = output.gate_failure() {
        panic!("{}: gate failed: {msg}", case.name());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_from_slice() {
        let a = BenchArgs::from_slice(&[
            "--csv",
            "--seed",
            "7",
            "--json-out",
            "/tmp/x.json",
            "--threads",
            "2",
            "--engines",
            "dmodk, dmodc",
        ]);
        assert!(a.csv());
        assert!(a.flag("--csv"));
        assert!(!a.flag("--full"));
        assert_eq!(a.num("--seed", 0u64), 7);
        assert_eq!(a.num("--missing", 42u32), 42);
        assert_eq!(a.json_out(), Some("/tmp/x.json"));
        assert_eq!(a.threads(), Some(2));
        assert_eq!(a.list("--engines").unwrap(), vec!["dmodk", "dmodc"]);
        assert!(!a.events_requested());
        assert_eq!(a.value("--seed"), Some("7"));
    }

    #[test]
    fn output_schema_and_gate() {
        let mut b = BenchOutput::new("unit");
        b.topology("fig4_pgft_16");
        b.param("bytes", 4096);
        b.metric("normalized_bw", 0.98);
        assert!(b.gate_failure().is_none());
        b.fail_gate("first");
        b.fail_gate("second (ignored)");
        assert_eq!(b.gate_failure(), Some("first"));
        let doc = b.render();
        assert_eq!(doc["bench"], "unit");
        assert_eq!(doc["topology"], "fig4_pgft_16");
        assert_eq!(doc["params"]["bytes"], 4096);
        assert_eq!(doc["metrics"]["normalized_bw"], 0.98);
        assert!(doc["wall_ms"].as_f64().unwrap() >= 0.0);
    }

    #[test]
    fn fabric_cache_builds_once() {
        use ftree_topology::rlft::catalog;
        let cache = FabricCache::new();
        let t1 = cache.topology("fig4", || Topology::build(catalog::fig4_pgft_16()));
        let t2 = cache.topology("fig4", || panic!("must not rebuild"));
        assert!(Arc::ptr_eq(&t1, &t2));
        let rt1 = cache.routing("fig4/dmodk", || {
            use ftree_core::Router;
            ftree_core::DModK.route_healthy(&t1)
        });
        let rt2 = cache.routing("fig4/dmodk", || panic!("must not rebuild"));
        assert!(Arc::ptr_eq(&rt1, &rt2));
        assert_eq!(cache.build_counts(), (1, 1));
    }

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let names: Vec<&str> = registry().iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate case names");
        for n in names {
            assert!(find_case(n).is_some());
        }
        assert!(find_case("nope").is_none());
    }
}
