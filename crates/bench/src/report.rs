//! Regression ledger and Markdown reporting behind the `ftree-report` bin.
//!
//! Every experiment binary writes a `{bench, topology, params, metrics,
//! wall_ms}` JSON document (see [`crate::BenchJson`]). This module ingests
//! everything under `results/`, stamps each run with build provenance (git
//! sha, rustc version, thread count, topology-catalog hash), appends one
//! row per run to `results/LEDGER.ndjson`, renders a Markdown report with
//! per-bench metric trajectories, and — the CI gate — checks fresh results
//! against the committed baseline, replacing the ad-hoc `jq`/`awk` checks
//! that used to live in the workflow file.
//!
//! The gates are pure functions over parsed JSON so they are unit-testable
//! with synthetic regressed inputs; the bin is a thin filesystem shell.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

use ftree_topology::Topology;
use serde_json::Value;

/// Fraction of the committed baseline speedup a fresh perf run must reach.
pub const PERF_MIN_RATIO: f64 = 0.85;

/// Build/run provenance stamped onto every ledger row.
#[derive(Debug, Clone)]
pub struct Provenance {
    /// Unix seconds at capture.
    pub unix_ts: u64,
    /// `git rev-parse --short HEAD`, or `"unknown"` outside a checkout.
    pub git_sha: String,
    /// `rustc --version`, or `"unknown"` when rustc is not on PATH.
    pub rustc: String,
    /// Available parallelism of the machine that produced the results.
    pub threads: u64,
    /// Combined fingerprint of every paper-catalog topology, hex-formatted:
    /// ties a ledger row to the exact fabrics the numbers were measured on.
    pub catalog_hash: String,
}

fn cmd_line(cmd: &str, args: &[&str]) -> Option<String> {
    let out = Command::new(cmd).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let s = String::from_utf8_lossy(&out.stdout).trim().to_string();
    (!s.is_empty()).then_some(s)
}

/// FNV-style fold of the paper-catalog topology fingerprints.
pub fn catalog_hash() -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    for (_, spec) in crate::paper_topologies() {
        let fp = Topology::build(spec).fingerprint();
        h = (h ^ fp).wrapping_mul(0x100000001b3);
    }
    format!("{h:016x}")
}

impl Provenance {
    /// Captures provenance from the current process/checkout. Never fails:
    /// missing tools degrade to `"unknown"`.
    pub fn capture() -> Self {
        Self {
            unix_ts: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            git_sha: cmd_line("git", &["rev-parse", "--short", "HEAD"])
                .unwrap_or_else(|| "unknown".into()),
            rustc: cmd_line("rustc", &["--version"]).unwrap_or_else(|| "unknown".into()),
            threads: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
            catalog_hash: catalog_hash(),
        }
    }
}

/// One ingested results document.
#[derive(Debug, Clone)]
pub struct RunDoc {
    /// Source file path.
    pub path: PathBuf,
    /// The parsed `{bench, ...}` document.
    pub doc: Value,
}

impl RunDoc {
    /// The document's `bench` name.
    pub fn bench(&self) -> &str {
        self.doc
            .get("bench")
            .and_then(|b| b.as_str())
            .unwrap_or("?")
    }
}

/// Reads every `*.json` under `dir` that parses as a bench document (has a
/// string `"bench"` key). Returns the docs plus human-readable notes about
/// files that were skipped — nothing is dropped silently.
pub fn ingest_dir(dir: &Path) -> (Vec<RunDoc>, Vec<String>) {
    let mut docs = Vec::new();
    let mut skipped = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        skipped.push(format!("results dir {} not readable", dir.display()));
        return (docs, skipped);
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    for path in paths {
        let Ok(body) = std::fs::read_to_string(&path) else {
            skipped.push(format!("{}: unreadable", path.display()));
            continue;
        };
        match serde_json::from_str::<Value>(&body) {
            Ok(doc) if doc.get("bench").and_then(|b| b.as_str()).is_some() => {
                docs.push(RunDoc { path, doc });
            }
            Ok(_) => skipped.push(format!("{}: no \"bench\" key, skipped", path.display())),
            Err(e) => skipped.push(format!("{}: parse error ({e:?}), skipped", path.display())),
        }
    }
    (docs, skipped)
}

/// Builds the provenance-stamped ledger row for one run.
pub fn ledger_row(run: &RunDoc, prov: &Provenance) -> Value {
    serde_json::json!({
        "ts": prov.unix_ts,
        "git_sha": prov.git_sha,
        "rustc": prov.rustc,
        "threads": prov.threads,
        "catalog_hash": prov.catalog_hash,
        "source": run.path.file_name().and_then(|n| n.to_str()).unwrap_or("?"),
        "bench": run.bench(),
        "topology": run.doc.get("topology").cloned().unwrap_or(Value::Null),
        "metrics": run.doc.get("metrics").cloned().unwrap_or(Value::Null),
        "wall_ms": run.doc.get("wall_ms").cloned().unwrap_or(Value::Null),
    })
}

/// Appends one NDJSON line per run to the ledger at `path` (created on
/// first use).
pub fn append_ledger(path: &Path, rows: &[Value]) -> std::io::Result<()> {
    if rows.is_empty() {
        return Ok(());
    }
    let mut body = String::new();
    for row in rows {
        body.push_str(&serde_json::to_string(row).expect("ledger row serializes"));
        body.push('\n');
    }
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    f.write_all(body.as_bytes())
}

/// Parses ledger NDJSON into rows (bad lines are skipped and counted).
pub fn parse_ledger(body: &str) -> (Vec<Value>, usize) {
    let mut rows = Vec::new();
    let mut bad = 0usize;
    for line in body.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<Value>(line) {
            Ok(v) => rows.push(v),
            Err(_) => bad += 1,
        }
    }
    (rows, bad)
}

/// Scalar metrics of a ledger row / bench doc, in object order.
fn scalar_metrics(metrics: &Value) -> Vec<(String, f64)> {
    let Some(obj) = metrics.as_object() else {
        return Vec::new();
    };
    obj.iter()
        .filter_map(|(k, v)| v.as_f64().map(|x| (k.clone(), x)))
        .collect()
}

fn fmt_metric(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e12 {
        format!("{x:.0}")
    } else {
        format!("{x:.4}")
    }
}

/// Renders the Markdown report: current results per bench, then per-bench
/// metric trajectories across ledger history (oldest → newest).
pub fn render_report(
    docs: &[RunDoc],
    ledger: &[Value],
    prov: &Provenance,
    check_failures: &[String],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# ftree results report\n");
    let _ = writeln!(
        out,
        "Generated at unix `{}` on `{}` ({} threads), commit `{}`, catalog `{}`.\n",
        prov.unix_ts, prov.rustc, prov.threads, prov.git_sha, prov.catalog_hash
    );

    if check_failures.is_empty() {
        let _ = writeln!(out, "**Gate status: PASS** — no regressions detected.\n");
    } else {
        let _ = writeln!(out, "**Gate status: FAIL**\n");
        for f in check_failures {
            let _ = writeln!(out, "- {f}");
        }
        out.push('\n');
    }

    let _ = writeln!(out, "## Current runs\n");
    let _ = writeln!(out, "| bench | source | topology | key metrics | wall ms |");
    let _ = writeln!(out, "|---|---|---|---|---|");
    for run in docs {
        let metrics = run.doc.get("metrics").cloned().unwrap_or(Value::Null);
        let keys: Vec<String> = scalar_metrics(&metrics)
            .into_iter()
            .take(4)
            .map(|(k, v)| format!("{k}={}", fmt_metric(v)))
            .collect();
        let topo = run
            .doc
            .get("topology")
            .map(|t| match t.as_str() {
                Some(s) => s.to_string(),
                None => serde_json::to_string(t).unwrap_or_default(),
            })
            .unwrap_or_default();
        let wall = run
            .doc
            .get("wall_ms")
            .and_then(|w| w.as_f64())
            .map(|w| format!("{w:.1}"))
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} |",
            run.bench(),
            run.path.file_name().and_then(|n| n.to_str()).unwrap_or("?"),
            topo,
            keys.join(", "),
            wall
        );
    }
    out.push('\n');

    // Trajectories: rows grouped by bench, oldest first (ledger append order).
    let mut benches: Vec<String> = Vec::new();
    for row in ledger {
        if let Some(b) = row.get("bench").and_then(|b| b.as_str()) {
            if !benches.iter().any(|x| x == b) {
                benches.push(b.to_string());
            }
        }
    }
    if !benches.is_empty() {
        let _ = writeln!(out, "## Trajectories\n");
    }
    for bench in &benches {
        let rows: Vec<&Value> = ledger
            .iter()
            .filter(|r| r.get("bench").and_then(|b| b.as_str()) == Some(bench.as_str()))
            .collect();
        let _ = writeln!(out, "### {bench} ({} run(s))\n", rows.len());
        // Columns: union capped at the first 5 scalar metrics of the newest row.
        let newest = rows.last().expect("non-empty group");
        let cols: Vec<String> = scalar_metrics(newest.get("metrics").unwrap_or(&Value::Null))
            .into_iter()
            .take(5)
            .map(|(k, _)| k)
            .collect();
        let _ = writeln!(out, "| ts | git | {} |", cols.join(" | "));
        let _ = writeln!(out, "|---|---|{}", "---|".repeat(cols.len()));
        for row in rows {
            let metrics = row.get("metrics").cloned().unwrap_or(Value::Null);
            let scalars = scalar_metrics(&metrics);
            let cells: Vec<String> = cols
                .iter()
                .map(|c| {
                    scalars
                        .iter()
                        .find(|(k, _)| k == c)
                        .map(|(_, v)| fmt_metric(*v))
                        .unwrap_or_else(|| "-".into())
                })
                .collect();
            let _ = writeln!(
                out,
                "| {} | {} | {} |",
                row.get("ts").and_then(|t| t.as_u64()).unwrap_or(0),
                row.get("git_sha").and_then(|g| g.as_str()).unwrap_or("?"),
                cells.join(" | ")
            );
        }
        out.push('\n');
    }
    out
}

/// The committed baseline documents the gates compare fresh runs against.
/// Either may be absent (its gates are then skipped with a note).
#[derive(Debug, Default, Clone)]
pub struct Baselines {
    /// The committed `BENCH_perf.json` document.
    pub perf: Option<Value>,
    /// The committed `BENCH_simcampaign.json` campaign aggregate.
    pub campaign: Option<Value>,
    /// The committed `BENCH_fluid.json` fluid-solver document.
    pub fluid: Option<Value>,
}

impl Baselines {
    /// Perf-only baselines — the pre-campaign call shape, used by tests
    /// that exercise a single gate.
    pub fn perf_only(doc: Option<Value>) -> Self {
        Self {
            perf: doc,
            campaign: None,
            fluid: None,
        }
    }
}

/// Runs every regression gate over the ingested docs. Returns one message
/// per failed gate; empty means PASS. `baselines` carries the committed
/// `BENCH_perf.json` / `BENCH_simcampaign.json` documents (when present,
/// fresh runs are gated against them at [`PERF_MIN_RATIO`]).
pub fn check_regressions(docs: &[RunDoc], baselines: &Baselines) -> Vec<String> {
    let mut failures = Vec::new();
    let baseline = baselines.perf.as_ref();

    // Perf gate: any perf doc other than the baseline itself must reach
    // PERF_MIN_RATIO of the committed speedup (same-machine ratio, so it
    // ports across runner hardware).
    if let Some(base) = baseline {
        let base_speedup = base
            .get("metrics")
            .and_then(|m| m.get("speedup"))
            .and_then(|s| s.as_f64());
        match base_speedup {
            None => failures.push("baseline BENCH_perf.json has no metrics.speedup".into()),
            Some(b) => {
                for run in docs.iter().filter(|r| r.bench() == "perf") {
                    if run.doc.get("metrics") == base.get("metrics") {
                        continue; // the committed baseline itself
                    }
                    let fresh = run
                        .doc
                        .get("metrics")
                        .and_then(|m| m.get("speedup"))
                        .and_then(|s| s.as_f64());
                    match fresh {
                        None => failures.push(format!(
                            "{}: perf run has no metrics.speedup",
                            run.path.display()
                        )),
                        Some(f) if f < PERF_MIN_RATIO * b => failures.push(format!(
                            "perf regression: fresh speedup {f:.4} < {PERF_MIN_RATIO} x baseline {b:.4} ({})",
                            run.path.display()
                        )),
                        Some(_) => {}
                    }
                }
            }
        }
    }

    // Packet-throughput gate: fresh perf runs carrying packet metrics, and
    // any `bench: "packet"` smoke doc, must reach PERF_MIN_RATIO of the
    // committed engine-vs-oracle packet speedup. Gating the *ratio* (both
    // engines timed on the same machine in the same run) rather than raw
    // events/sec keeps the gate portable across runner hardware and load,
    // exactly like the HSD-sweep speedup gate above.
    if let Some(base) = baseline {
        let base_speedup = base
            .get("metrics")
            .and_then(|m| m.get("packet_speedup"))
            .and_then(|s| s.as_f64());
        if let Some(b) = base_speedup {
            for run in docs.iter().filter(|r| r.bench() == "perf") {
                if run.doc.get("metrics") == base.get("metrics") {
                    continue; // the committed baseline itself
                }
                let fresh = run
                    .doc
                    .get("metrics")
                    .and_then(|m| m.get("packet_speedup"))
                    .and_then(|s| s.as_f64());
                if let Some(f) = fresh {
                    if f < PERF_MIN_RATIO * b {
                        failures.push(format!(
                            "packet-throughput regression: fresh packet speedup {f:.4} < {PERF_MIN_RATIO} x baseline {b:.4} ({})",
                            run.path.display()
                        ));
                    }
                }
            }
            for run in docs.iter().filter(|r| r.bench() == "packet") {
                let fresh = run
                    .doc
                    .get("metrics")
                    .and_then(|m| m.get("speedup"))
                    .and_then(|s| s.as_f64());
                match fresh {
                    None => failures.push(format!(
                        "{}: packet run has no metrics.speedup",
                        run.path.display()
                    )),
                    Some(f) if f < PERF_MIN_RATIO * b => failures.push(format!(
                        "packet-throughput regression: fresh packet speedup {f:.4} < {PERF_MIN_RATIO} x baseline {b:.4} ({})",
                        run.path.display()
                    )),
                    Some(_) => {}
                }
            }
        }
    }

    // Bit-identity gate: a packet doc that admits the engines diverged is a
    // correctness failure regardless of throughput.
    for run in docs.iter().filter(|r| r.bench() == "packet") {
        let identical = run
            .doc
            .get("metrics")
            .and_then(|m| m.get("identical"))
            .and_then(|v| v.as_bool());
        if identical != Some(true) {
            failures.push(format!(
                "packet bit-identity violation: identical != true ({})",
                run.path.display()
            ));
        }
    }

    // Chaos gate: every campaign must hold all routing invariants.
    for run in docs.iter().filter(|r| r.bench() == "chaos") {
        let ok = run
            .doc
            .get("metrics")
            .and_then(|m| m.get("all_invariants_ok"))
            .and_then(|v| v.as_bool());
        if ok != Some(true) {
            failures.push(format!(
                "chaos invariant violation: all_invariants_ok != true ({})",
                run.path.display()
            ));
        }
    }

    // Routing-quality gate: Dmodc must never lose to first-fit.
    for run in docs.iter().filter(|r| r.bench() == "routing_quality") {
        let never_worse = run
            .doc
            .get("metrics")
            .and_then(|m| m.get("dmodc_never_worse_than_first_fit"))
            .and_then(|v| v.as_bool());
        if never_worse != Some(true) {
            failures.push(format!(
                "routing-quality regression: dmodc worse than first-fit ({})",
                run.path.display()
            ));
        }
    }

    // Campaign orchestration gate: fresh `simcampaign` aggregates carrying
    // a `--compare` measurement must keep the shared-build speedup within
    // PERF_MIN_RATIO of the committed baseline (a ratio of two wall times
    // from the same machine, so it ports across runner hardware). Resumed
    // or compare-less runs carry no speedup and are not speed-gated.
    if let Some(base) = baselines.campaign.as_ref() {
        let base_speedup = base
            .get("metrics")
            .and_then(|m| m.get("speedup_vs_serial_rebuild"))
            .and_then(|s| s.as_f64());
        match base_speedup {
            None => failures.push(
                "baseline BENCH_simcampaign.json has no metrics.speedup_vs_serial_rebuild".into(),
            ),
            Some(b) => {
                for run in docs.iter().filter(|r| r.bench() == "simcampaign") {
                    if run.doc.get("metrics") == base.get("metrics") {
                        continue; // the committed baseline itself
                    }
                    let fresh = run
                        .doc
                        .get("metrics")
                        .and_then(|m| m.get("speedup_vs_serial_rebuild"))
                        .and_then(|s| s.as_f64());
                    if let Some(f) = fresh {
                        if f < PERF_MIN_RATIO * b {
                            failures.push(format!(
                                "campaign regression: fresh speedup {f:.4} < {PERF_MIN_RATIO} x baseline {b:.4} ({})",
                                run.path.display()
                            ));
                        }
                    }
                }
            }
        }
    }

    // Fluid-solver gate: fresh `fluid` docs must keep the rebuilt-vs-oracle
    // max-min speedup within PERF_MIN_RATIO of the committed baseline —
    // again a same-machine ratio, so it ports across runner hardware.
    if let Some(base) = baselines.fluid.as_ref() {
        let base_speedup = base
            .get("metrics")
            .and_then(|m| m.get("speedup"))
            .and_then(|s| s.as_f64());
        match base_speedup {
            None => failures.push("baseline BENCH_fluid.json has no metrics.speedup".into()),
            Some(b) => {
                for run in docs.iter().filter(|r| r.bench() == "fluid") {
                    if run.doc.get("metrics") == base.get("metrics") {
                        continue; // the committed baseline itself
                    }
                    let fresh = run
                        .doc
                        .get("metrics")
                        .and_then(|m| m.get("speedup"))
                        .and_then(|s| s.as_f64());
                    match fresh {
                        None => failures.push(format!(
                            "{}: fluid run has no metrics.speedup",
                            run.path.display()
                        )),
                        Some(f) if f < PERF_MIN_RATIO * b => failures.push(format!(
                            "fluid regression: fresh speedup {f:.4} < {PERF_MIN_RATIO} x baseline {b:.4} ({})",
                            run.path.display()
                        )),
                        Some(_) => {}
                    }
                }
            }
        }
    }

    // Fluid equivalence gate: a fluid doc that admits the rebuilt solver
    // diverged from the oracle is a correctness failure regardless of
    // throughput, baseline or not (same shape as the packet gate).
    for run in docs.iter().filter(|r| r.bench() == "fluid") {
        let identical = run
            .doc
            .get("metrics")
            .and_then(|m| m.get("identical"))
            .and_then(|v| v.as_bool());
        if identical != Some(true) {
            failures.push(format!(
                "fluid equivalence violation: identical != true ({})",
                run.path.display()
            ));
        }
    }

    // Campaign determinism gate: a compare run whose shared-build rows
    // diverged from the serial rebuild is a correctness failure regardless
    // of throughput (same shape as the packet bit-identity gate).
    for run in docs.iter().filter(|r| r.bench() == "simcampaign") {
        let identical = run
            .doc
            .get("metrics")
            .and_then(|m| m.get("serial_rows_identical"))
            .and_then(|v| v.as_bool());
        if identical == Some(false) {
            failures.push(format!(
                "campaign determinism violation: serial_rows_identical == false ({})",
                run.path.display()
            ));
        }
    }

    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perf_doc(speedup: f64) -> Value {
        serde_json::json!({
            "bench": "perf",
            "topology": "nodes_1728",
            "params": {"seeds": 25},
            "metrics": {"speedup": speedup, "wall_ms_before": 10.0, "wall_ms_after": 7.0},
            "wall_ms": 100.0,
        })
    }

    fn perf_doc_with_packet(speedup: f64, packet_speedup: f64) -> Value {
        serde_json::json!({
            "bench": "perf",
            "topology": "nodes_1728",
            "params": {"seeds": 25, "packet_reps": 3},
            "metrics": {"speedup": speedup, "wall_ms_before": 10.0, "wall_ms_after": 7.0,
                        "packet_events_per_sec": 9.4e6,
                        "packet_speedup": packet_speedup, "packet_identical": true},
            "wall_ms": 100.0,
        })
    }

    fn packet_doc(speedup: f64, identical: bool) -> Value {
        serde_json::json!({
            "bench": "packet",
            "topology": "nodes_1728",
            "params": {"order": "random", "seed": 42, "stages": 32},
            "metrics": {"events_per_sec": 9.4e6, "speedup": speedup, "identical": identical},
            "wall_ms": 50.0,
        })
    }

    fn run(name: &str, doc: Value) -> RunDoc {
        RunDoc {
            path: PathBuf::from(name),
            doc,
        }
    }

    /// The acceptance-pinned case: a synthetic regressed fresh perf run
    /// against the committed 1.4249 baseline must fail the gate.
    #[test]
    fn synthetic_perf_regression_fails_the_gate() {
        let baseline = perf_doc(1.4249);
        let regressed = run("results/BENCH_perf_fresh.json", perf_doc(1.0));
        let failures =
            check_regressions(&[regressed], &Baselines::perf_only(Some(baseline.clone())));
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("perf regression"), "{failures:?}");

        // 0.85 x 1.4249 = 1.2112: a fresh 1.3 passes.
        let ok = run("results/BENCH_perf_fresh.json", perf_doc(1.3));
        assert!(check_regressions(&[ok], &Baselines::perf_only(Some(baseline))).is_empty());
    }

    #[test]
    fn baseline_itself_is_not_compared_against_itself() {
        let baseline = perf_doc(1.4249);
        let same = run("results/BENCH_perf.json", perf_doc(1.4249));
        assert!(check_regressions(&[same], &Baselines::perf_only(Some(baseline))).is_empty());
    }

    /// A regressed packet smoke and a regressed fresh-perf packet ratio
    /// both fail against the committed engine-vs-oracle speedup; ratios
    /// at or above 0.85x pass.
    #[test]
    fn packet_throughput_gate() {
        let baseline = perf_doc_with_packet(2.04, 2.4);

        // 0.85 x 2.4 = 2.04: 1.9 fails, 2.1 passes.
        let slow_smoke = run("results/BENCH_packet.json", packet_doc(1.9, true));
        let failures =
            check_regressions(&[slow_smoke], &Baselines::perf_only(Some(baseline.clone())));
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("packet-throughput"), "{failures:?}");

        let ok_smoke = run("results/BENCH_packet.json", packet_doc(2.1, true));
        assert!(
            check_regressions(&[ok_smoke], &Baselines::perf_only(Some(baseline.clone())))
                .is_empty()
        );

        let slow_perf = run(
            "results/BENCH_perf_fresh.json",
            perf_doc_with_packet(2.04, 1.9),
        );
        let failures = check_regressions(&[slow_perf], &Baselines::perf_only(Some(baseline)));
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("packet-throughput"), "{failures:?}");
    }

    /// A packet doc that admits the engines diverged fails even when fast,
    /// and even with no baseline to compare throughput against.
    #[test]
    fn packet_bit_identity_gate() {
        let diverged = run("results/BENCH_packet.json", packet_doc(9.9, false));
        let failures = check_regressions(&[diverged], &Baselines::default());
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("bit-identity"), "{failures:?}");

        let ok = run("results/BENCH_packet.json", packet_doc(9.9, true));
        assert!(check_regressions(&[ok], &Baselines::default()).is_empty());
    }

    /// A baseline without packet metrics (pre-rebuild) gates nothing new —
    /// old committed baselines must not fail fresh packet-less runs.
    #[test]
    fn packet_gate_skipped_without_packet_baseline() {
        let baseline = perf_doc(1.4249);
        let smoke = run("results/BENCH_packet.json", packet_doc(0.01, true));
        let fresh = run("results/BENCH_perf_fresh.json", perf_doc(1.4));
        assert!(
            check_regressions(&[smoke, fresh], &Baselines::perf_only(Some(baseline))).is_empty()
        );
    }

    #[test]
    fn chaos_and_quality_gates() {
        let bad_chaos = run(
            "results/BENCH_chaos.json",
            serde_json::json!({"bench": "chaos", "metrics": {"all_invariants_ok": false}}),
        );
        let bad_quality = run(
            "results/BENCH_routing_quality.json",
            serde_json::json!({"bench": "routing_quality",
                               "metrics": {"dmodc_never_worse_than_first_fit": false}}),
        );
        let failures = check_regressions(&[bad_chaos, bad_quality], &Baselines::default());
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures[0].contains("chaos"));
        assert!(failures[1].contains("routing-quality"));
    }

    fn campaign_doc(speedup: Option<f64>, identical: Option<bool>) -> Value {
        let mut metrics: serde_json::Map<String, Value> = serde_json::Map::new();
        metrics.insert("cells".into(), 96.into());
        metrics.insert("executed".into(), 96.into());
        metrics.insert("skipped".into(), 0.into());
        metrics.insert("rows_hash".into(), "a20efa1ac44f6ee1".into());
        metrics.insert("wall_ms_campaign".into(), 120.0.into());
        if let Some(s) = speedup {
            metrics.insert("speedup_vs_serial_rebuild".into(), s.into());
            metrics.insert("wall_ms_serial".into(), (120.0 * s).into());
        }
        if let Some(i) = identical {
            metrics.insert("serial_rows_identical".into(), i.into());
        }
        serde_json::json!({
            "bench": "simcampaign",
            "topology": "nodes_324",
            "params": {"fingerprint": "4f6243bca75570d5"},
            "metrics": metrics,
            "wall_ms": 130.0,
        })
    }

    fn campaign_baselines(doc: Value) -> Baselines {
        Baselines {
            campaign: Some(doc),
            ..Baselines::default()
        }
    }

    fn fluid_doc(speedup: f64, identical: bool) -> Value {
        serde_json::json!({
            "bench": "fluid",
            "topology": "nodes_1728",
            "params": {"order": "random", "seed": 42, "stages": 8, "cps": "shift"},
            "metrics": {"speedup": speedup, "wall_ms": 40.0,
                        "wall_ms_oracle": 40.0 * speedup, "identical": identical,
                        "solves": 135, "makespan_ps": 11796480000u64,
                        "flagship_wall_ms": 5000.0, "flagship_stages": 323,
                        "flagship_hosts": 11664},
            "wall_ms": 1400.0,
        })
    }

    fn fluid_baselines(doc: Value) -> Baselines {
        Baselines {
            fluid: Some(doc),
            ..Baselines::default()
        }
    }

    /// A fresh fluid run below 0.85x of the committed rebuilt-vs-oracle
    /// speedup fails; at or above it passes; the baseline never gates
    /// itself.
    #[test]
    fn fluid_speedup_gate() {
        let baselines = fluid_baselines(fluid_doc(20.0, true));

        // 0.85 x 20.0 = 17.0: 15.0 fails, 18.0 passes.
        let slow = run("results/BENCH_fluid_fresh.json", fluid_doc(15.0, true));
        let failures = check_regressions(&[slow], &baselines);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("fluid regression"), "{failures:?}");

        let ok = run("results/BENCH_fluid_fresh.json", fluid_doc(18.0, true));
        assert!(check_regressions(&[ok], &baselines).is_empty());

        let itself = run("results/BENCH_fluid.json", fluid_doc(20.0, true));
        assert!(check_regressions(&[itself], &baselines).is_empty());
    }

    /// A fluid doc that admits the rebuilt solver diverged from the oracle
    /// fails even when fast, and even with no baseline at all.
    #[test]
    fn fluid_equivalence_gate() {
        let diverged = run("results/BENCH_fluid.json", fluid_doc(99.0, false));
        let failures = check_regressions(&[diverged], &Baselines::default());
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(
            failures[0].contains("equivalence violation"),
            "{failures:?}"
        );

        let ok = run("results/BENCH_fluid.json", fluid_doc(99.0, true));
        assert!(check_regressions(&[ok], &Baselines::default()).is_empty());
    }

    /// A fresh campaign run below 0.85x of the committed sharing speedup
    /// fails; at or above it passes; the baseline never gates itself.
    #[test]
    fn campaign_speedup_gate() {
        let baselines = campaign_baselines(campaign_doc(Some(2.0), Some(true)));

        // 0.85 x 2.0 = 1.70: 1.5 fails, 1.8 passes.
        let slow = run(
            "results/BENCH_simcampaign_fresh.json",
            campaign_doc(Some(1.5), Some(true)),
        );
        let failures = check_regressions(&[slow], &baselines);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("campaign regression"), "{failures:?}");

        let ok = run(
            "results/BENCH_simcampaign_fresh.json",
            campaign_doc(Some(1.8), Some(true)),
        );
        assert!(check_regressions(&[ok], &baselines).is_empty());

        let itself = run(
            "results/BENCH_simcampaign.json",
            campaign_doc(Some(2.0), Some(true)),
        );
        assert!(check_regressions(&[itself], &baselines).is_empty());
    }

    /// Resumed / compare-less campaign runs (no speedup metric) are not
    /// speed-gated, but a diverged serial comparison always fails — even
    /// with no baseline at all.
    #[test]
    fn campaign_identity_gate_and_compare_less_runs() {
        let baselines = campaign_baselines(campaign_doc(Some(2.0), Some(true)));
        let resumed = run(
            "results/BENCH_simcampaign_fresh.json",
            campaign_doc(None, None),
        );
        assert!(check_regressions(&[resumed], &baselines).is_empty());

        let diverged = run(
            "results/BENCH_simcampaign_fresh.json",
            campaign_doc(Some(3.0), Some(false)),
        );
        let failures = check_regressions(&[diverged], &Baselines::default());
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(
            failures[0].contains("determinism violation"),
            "{failures:?}"
        );
    }

    #[test]
    fn ledger_rows_carry_provenance() {
        let prov = Provenance {
            unix_ts: 1_754_700_000,
            git_sha: "abc1234".into(),
            rustc: "rustc 1.99.0".into(),
            threads: 8,
            catalog_hash: "00ff".into(),
        };
        let r = run("results/BENCH_perf.json", perf_doc(1.42));
        let row = ledger_row(&r, &prov);
        assert_eq!(row["bench"].as_str(), Some("perf"));
        assert_eq!(row["git_sha"].as_str(), Some("abc1234"));
        assert_eq!(row["threads"].as_u64(), Some(8));
        assert_eq!(row["catalog_hash"].as_str(), Some("00ff"));
        assert_eq!(row["source"].as_str(), Some("BENCH_perf.json"));
        // NDJSON round trip.
        let line = serde_json::to_string(&row).unwrap();
        let (rows, bad) = parse_ledger(&format!("{line}\nnot json\n{line}\n"));
        assert_eq!(rows.len(), 2);
        assert_eq!(bad, 1);
        assert_eq!(rows[0], row);
    }

    #[test]
    fn report_renders_trajectories_and_gate_status() {
        let prov = Provenance {
            unix_ts: 1,
            git_sha: "aaa".into(),
            rustc: "rustc".into(),
            threads: 4,
            catalog_hash: "cc".into(),
        };
        let docs = vec![run("results/BENCH_perf.json", perf_doc(1.42))];
        let ledger = vec![
            ledger_row(&run("results/BENCH_perf.json", perf_doc(1.30)), &prov),
            ledger_row(&run("results/BENCH_perf.json", perf_doc(1.42)), &prov),
        ];
        let md = render_report(&docs, &ledger, &prov, &[]);
        assert!(md.contains("Gate status: PASS"));
        assert!(md.contains("### perf (2 run(s))"));
        assert!(md.contains("1.3000") && md.contains("1.4200"), "{md}");

        let md_fail = render_report(&docs, &ledger, &prov, &["perf regression: x".into()]);
        assert!(md_fail.contains("Gate status: FAIL"));
        assert!(md_fail.contains("perf regression: x"));
    }

    #[test]
    fn catalog_hash_is_stable_and_hex() {
        let a = catalog_hash();
        let b = catalog_hash();
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
