//! Migration pinning: every case moved onto the `BenchCase` API must
//! produce the same result document its pre-redesign standalone binary
//! did for a fixed seed.
//!
//! The goldens under `tests/golden/` were captured from the original
//! binaries (before the cli/cases refactor) as
//! `jq -S 'del(.wall_ms, .obs_metrics)'` of their `--json-out` files —
//! i.e. the full deterministic payload with only the wall clock and
//! recorder snapshot stripped. Each test replays the exact argument
//! vector the golden was captured with and compares the structural JSON
//! (map equality is key-order independent, so jq's re-sorting is
//! irrelevant).
//!
//! Heavy cases (full paper roster in debug builds) are `#[ignore]`d
//! under `debug_assertions`; CI's release test job runs
//! `--include-ignored`.

use std::sync::Arc;

use ftree_bench::{find_case, BenchArgs, CaseCtx, FabricCache};
use ftree_obs::Recorder;
use serde_json::Value;

fn run_case(name: &str, argv: &[&str]) -> Value {
    let case = find_case(name).unwrap_or_else(|| panic!("case {name} not registered"));
    let args = BenchArgs::from_slice(argv);
    let fabrics = FabricCache::new();
    let mut sink: Vec<u8> = Vec::new();
    let output = {
        let mut ctx = CaseCtx {
            args: &args,
            rec: Arc::new(Recorder::new()),
            out: &mut sink,
            fabrics: &fabrics,
            artifacts: false,
        };
        case.run(&mut ctx)
    };
    assert!(
        output.gate_failure().is_none(),
        "{name}: unexpected gate failure: {:?}",
        output.gate_failure()
    );
    assert!(!sink.is_empty(), "{name}: case produced no text output");
    output.render()
}

fn golden(name: &str) -> Value {
    let path = format!("{}/tests/golden/{name}.json", env!("CARGO_MANIFEST_DIR"));
    let body = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    serde_json::from_str(&body).unwrap_or_else(|e| panic!("parse {path}: {e:?}"))
}

/// Structural equivalence, numerically tolerant: jq's `-S` pass rewrote
/// whole floats (`2.0` → `2`) when the goldens were captured, so numbers
/// compare by value, not by JSON token type. Maps compare key-set-wise,
/// arrays positionally.
fn equiv(a: &Value, b: &Value) -> bool {
    if let (Some(x), Some(y)) = (a.as_f64(), b.as_f64()) {
        return x == y;
    }
    if let (Some(ao), Some(bo)) = (a.as_object(), b.as_object()) {
        return ao.len() == bo.len()
            && ao
                .iter()
                .all(|(k, v)| bo.get(k).is_some_and(|w| equiv(v, w)));
    }
    if let (Some(aa), Some(ba)) = (a.as_array(), b.as_array()) {
        return aa.len() == ba.len() && aa.iter().zip(ba.iter()).all(|(x, y)| equiv(x, y));
    }
    a == b
}

/// Compares the deterministic fields — everything the golden kept.
fn assert_matches_golden(name: &str, fresh: &Value, gold: &Value) {
    for key in ["bench", "topology", "params", "metrics"] {
        let (f, g) = (fresh.get(key), gold.get(key));
        assert!(
            match (f, g) {
                (Some(fv), Some(gv)) => equiv(fv, gv),
                (None, None) => true,
                _ => false,
            },
            "{name}: field `{key}` diverged from the pre-refactor binary\n fresh: {f:?}\n  gold: {g:?}"
        );
    }
}

macro_rules! golden_case {
    ($(#[$attr:meta])* $test:ident, $name:literal, $argv:expr) => {
        $(#[$attr])*
        #[test]
        fn $test() {
            let fresh = run_case($name, &$argv);
            assert_matches_golden($name, &fresh, &golden($name));
        }
    };
}

golden_case!(fig1_matches_golden, "fig1", [] as [&str; 0]);
golden_case!(
    #[cfg_attr(
        debug_assertions,
        ignore = "packet sim too slow in debug; release CI covers it"
    )]
    fig2_matches_golden,
    "fig2",
    ["--seed", "1", "--shift-stages", "4"]
);
golden_case!(
    #[cfg_attr(
        debug_assertions,
        ignore = "full paper roster too slow in debug; release CI covers it"
    )]
    fig3_matches_golden,
    "fig3",
    ["--seeds", "2", "--stages", "4"]
);
golden_case!(fig4_matches_golden, "fig4", [] as [&str; 0]);
golden_case!(fig5_matches_golden, "fig5", [] as [&str; 0]);
golden_case!(table1_matches_golden, "table1", ["--ranks", "12"]);
golden_case!(table2_matches_golden, "table2", ["--ranks", "24"]);
golden_case!(
    #[cfg_attr(
        debug_assertions,
        ignore = "full paper roster too slow in debug; release CI covers it"
    )]
    table3_matches_golden,
    "table3",
    ["--stages", "4", "--rand-seeds", "2"]
);
golden_case!(
    routing_quality_matches_golden,
    "routing_quality",
    ["--topo", "fig4_pgft_16"]
);

/// The same case run twice through the API produces identical documents —
/// the determinism the campaign runner builds on.
#[test]
fn case_reruns_are_deterministic() {
    let a = run_case("fig4", &[]);
    let b = run_case("fig4", &[]);
    assert_matches_golden("fig4-rerun", &a, &b);
}
