//! Campaign orchestrator integration tests: full tiny-grid runs against
//! real files, kill/resume semantics, and the bit-identity guarantees the
//! aggregate document advertises (`rows_hash`, `serial_rows_identical`).

use std::fs::OpenOptions;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use ftree_bench::campaign::{
    load_resume, read_rows, rows_hash, run_campaign, run_serial_rebuild, sorted_rows,
    CampaignError, CampaignSpec,
};
use serde_json::Value;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn tempdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ftree-campaign-it-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create tempdir");
    dir
}

/// 48 cells on the 16-host paper fabric: 1 topo x 2 engines x 2 fault
/// budgets x 2 cps x (1 topology-order + 2 random-order) instances x 2
/// sims (analytic HSD + fluid).
fn tiny_spec() -> CampaignSpec {
    CampaignSpec {
        name: "it-tiny".to_string(),
        seed: 7,
        topologies: vec!["fig4_pgft_16".to_string()],
        engines: vec!["dmodk".to_string(), "dmodc".to_string()],
        cps: vec!["shift".to_string(), "ring".to_string()],
        orders: vec!["topology".to_string(), "random".to_string()],
        seeds_per_order: 2,
        max_stages: 4,
        fault_cables: vec![0, 1],
        sims: vec!["hsd".to_string(), "fluid".to_string()],
    }
}

#[test]
fn full_run_then_rerun_skips_everything() {
    let dir = tempdir();
    let rows_path = dir.join("rows.ndjson");
    let spec = tiny_spec();

    let first = run_campaign(&spec, &rows_path, false).expect("first run");
    assert_eq!(first.cells_total, 48);
    assert_eq!(first.executed, 48);
    assert_eq!(first.skipped, 0);
    assert_eq!(first.topo_builds, 1, "one topology shared across all cells");
    assert_eq!(first.rt_builds, 4, "one routing per (engine, fault budget)");
    assert_eq!(first.arena_builds, 2, "one arena per healthy routing");

    let rows = read_rows(&rows_path).expect("read rows");
    assert_eq!(rows.len(), 48);
    let fp = spec.fingerprint();
    let mut indices: Vec<u64> = rows
        .iter()
        .map(|l| {
            let v: Value = serde_json::from_str(l).expect("row parses");
            assert_eq!(v["fingerprint"].as_str(), Some(fp.as_str()));
            assert_eq!(v["campaign"].as_str(), Some("it-tiny"));
            assert!(v["metrics"].as_object().is_some(), "row has metrics");
            v["cell"].as_u64().expect("cell index")
        })
        .collect();
    indices.sort_unstable();
    assert_eq!(indices, (0..48).collect::<Vec<u64>>(), "dense, no dups");

    let bytes_before = std::fs::read(&rows_path).expect("raw bytes");
    let second = run_campaign(&spec, &rows_path, false).expect("rerun");
    assert_eq!(second.executed, 0, "resume skips completed cells");
    assert_eq!(second.skipped, 48);
    assert_eq!(
        std::fs::read(&rows_path).expect("raw bytes"),
        bytes_before,
        "a fully-resumed run must not rewrite the file"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_resume_merge_is_bit_identical() {
    let dir = tempdir();
    let full_path = dir.join("full.ndjson");
    let hurt_path = dir.join("killed.ndjson");
    let spec = tiny_spec();

    run_campaign(&spec, &full_path, false).expect("reference run");
    let reference = sorted_rows(&read_rows(&full_path).expect("rows"));
    assert_eq!(reference.len(), 48);

    // Simulate a kill: keep ~8 complete rows, then a half-written tail.
    let body = std::fs::read_to_string(&full_path).expect("body");
    let keep: Vec<&str> = body.lines().take(8).collect();
    {
        let mut f = std::fs::File::create(&hurt_path).expect("create");
        for line in &keep {
            writeln!(f, "{line}").expect("write");
        }
        let tail = body.lines().nth(8).expect("ninth row");
        write!(f, "{}", &tail[..tail.len() / 2]).expect("truncated tail");
    }

    let resumed = run_campaign(&spec, &hurt_path, false).expect("resume");
    assert_eq!(resumed.skipped, 8, "the 8 intact rows survive");
    assert_eq!(resumed.executed, 40, "the rest re-run");

    let merged = sorted_rows(&read_rows(&hurt_path).expect("rows"));
    assert_eq!(merged, reference, "kill/resume merge is bit-identical");
    assert_eq!(rows_hash(&merged), rows_hash(&reference));

    // The rewrite dropped the garbage tail: every line on disk parses.
    let mut raw = String::new();
    std::fs::File::open(&hurt_path)
        .expect("open")
        .read_to_string(&mut raw)
        .expect("read");
    assert_eq!(raw.lines().count(), 48);
    for line in raw.lines() {
        serde_json::from_str::<Value>(line).expect("every line valid JSON");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn foreign_fingerprint_refuses_without_fresh() {
    let dir = tempdir();
    let rows_path = dir.join("rows.ndjson");
    let spec = tiny_spec();
    run_campaign(&spec, &rows_path, false).expect("seed the file");

    let mut other = tiny_spec();
    other.seeds_per_order = 3; // any parameter change rotates the fingerprint
    let err = run_campaign(&other, &rows_path, false).expect_err("must refuse");
    match err {
        CampaignError::FingerprintMismatch { expected, found } => {
            assert_eq!(expected, other.fingerprint());
            assert_eq!(found, spec.fingerprint());
        }
        other => panic!("expected FingerprintMismatch, got {other:?}"),
    }
    let msg = format!("{}", run_campaign(&other, &rows_path, false).unwrap_err());
    assert!(
        msg.contains("--fresh"),
        "error must point at --fresh: {msg}"
    );

    // --fresh discards the foreign file and runs the new grid.
    let outcome = run_campaign(&other, &rows_path, true).expect("fresh run");
    assert_eq!(outcome.executed, outcome.cells_total);
    let rows = read_rows(&rows_path).expect("rows");
    let fp = other.fingerprint();
    for line in &rows {
        let v: Value = serde_json::from_str(line).expect("parses");
        assert_eq!(v["fingerprint"].as_str(), Some(fp.as_str()));
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shared_build_serial_rebuild_and_fresh_rerun_agree() {
    let dir = tempdir();
    let path_a = dir.join("a.ndjson");
    let path_b = dir.join("b.ndjson");
    let spec = tiny_spec();

    run_campaign(&spec, &path_a, false).expect("shared run");
    let shared = sorted_rows(&read_rows(&path_a).expect("rows"));

    let serial = sorted_rows(&run_serial_rebuild(&spec).expect("serial rebuild"));
    assert_eq!(
        shared, serial,
        "per-cell fabric rebuilds must reproduce the shared-build rows byte for byte"
    );

    run_campaign(&spec, &path_b, false).expect("independent rerun");
    let rerun = sorted_rows(&read_rows(&path_b).expect("rows"));
    assert_eq!(shared, rerun, "same spec, same rows, any path");
    assert_eq!(rows_hash(&shared), rows_hash(&rerun));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fluid_cells_report_flow_metrics() {
    let dir = tempdir();
    let rows_path = dir.join("rows.ndjson");
    let spec = tiny_spec();
    run_campaign(&spec, &rows_path, false).expect("run");
    let rows = read_rows(&rows_path).expect("rows");
    let mut fluid_rows = 0;
    for line in &rows {
        let v: Value = serde_json::from_str(line).expect("parses");
        let sim = v["coords"]["sim"]
            .as_str()
            .expect("sim coord present")
            .to_string();
        let m = v["metrics"].clone();
        match sim.as_str() {
            "fluid" => {
                fluid_rows += 1;
                assert!(m["makespan_ps"].as_u64().expect("makespan") > 0);
                let nbw = m["normalized_bw"].as_f64().expect("normalized_bw");
                assert!(nbw > 0.0 && nbw <= 1.01, "normalized_bw {nbw}");
                assert!(m["solves"].as_u64().expect("solves") > 0);
                assert!(m["messages_completed"].as_u64().expect("completed") > 0);
                assert_eq!(m["stalled"].as_bool(), Some(false));
                if v["coords"]["fault_cables"].as_u64() == Some(0) {
                    assert_eq!(m["flows_unroutable"].as_u64(), Some(0), "healthy");
                }
            }
            "hsd" => assert!(m["avg_max_hsd"].as_f64().is_some()),
            other => panic!("unexpected sim {other}"),
        }
    }
    assert_eq!(fluid_rows, 24, "half the grid is fluid cells");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn load_resume_reports_duplicates_as_repair() {
    let dir = tempdir();
    let rows_path = dir.join("rows.ndjson");
    let spec = tiny_spec();
    run_campaign(&spec, &rows_path, false).expect("seed the file");

    // Append a duplicate of the first row — e.g. two racing appends.
    let first_line = read_rows(&rows_path).expect("rows")[0].clone();
    let mut f = OpenOptions::new()
        .append(true)
        .open(&rows_path)
        .expect("open append");
    writeln!(f, "{first_line}").expect("append dup");
    drop(f);

    let state = load_resume(&rows_path, &spec.fingerprint()).expect("load");
    assert!(state.repaired, "duplicate row must flag a repair");
    assert_eq!(state.done.len(), 48);
    assert_eq!(state.valid_lines.len(), 48, "duplicate dropped, first kept");

    std::fs::remove_dir_all(&dir).ok();
}
