//! Simulator throughput benchmarks: packet events per run and fluid
//! max-min solve cost at evaluation scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ftree_collectives::{Cps, PermutationSequence};
use ftree_core::{DModK, NodeOrder, Router};
use ftree_sim::{run_fluid, PacketSim, Progression, SimConfig, TrafficPlan};
use ftree_topology::rlft::catalog;
use ftree_topology::Topology;

fn bench_packet_sim(c: &mut Criterion) {
    let topo = Topology::build(catalog::nodes_128());
    let rt = DModK.route_healthy(&topo);
    let cfg = SimConfig::default();
    let mut group = c.benchmark_group("packet_sim_128");
    group.sample_size(10);
    for (name, order) in [
        ("ordered", NodeOrder::topology(&topo)),
        ("random", NodeOrder::random(&topo, 1)),
    ] {
        let plan =
            TrafficPlan::from_cps(&order, &Cps::Shift, 64 << 10, Progression::Asynchronous, 8);
        group.bench_with_input(BenchmarkId::from_parameter(name), &plan, |b, p| {
            b.iter(|| black_box(PacketSim::new(&topo, &rt, cfg, p).run()))
        });
    }
    group.finish();
}

fn bench_fluid_sim(c: &mut Criterion) {
    let cfg = SimConfig::default();
    let mut group = c.benchmark_group("fluid_sim_ring");
    group.sample_size(10);
    for (name, spec) in [
        ("324", catalog::nodes_324()),
        ("1944", catalog::nodes_1944()),
    ] {
        let topo = Topology::build(spec);
        let rt = DModK.route_healthy(&topo);
        let order = NodeOrder::random(&topo, 1);
        let n = topo.num_hosts() as u32;
        let plan = TrafficPlan::uniform(
            vec![order.port_flows(&Cps::Ring.stage(n, 0))],
            1 << 20,
            Progression::Synchronized,
        );
        group.bench_with_input(BenchmarkId::from_parameter(name), &plan, |b, p| {
            b.iter(|| black_box(run_fluid(&topo, &rt, cfg, p)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_packet_sim, bench_fluid_sim);
criterion_main!(benches);
