//! Rebuilt packet engine vs the preserved serial oracle on the gate
//! workload (nodes_1728, random-order Shift) — the criterion twin of
//! `perf --packet`, for statistically sound before/after numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ftree_collectives::Cps;
use ftree_core::{DModK, NodeOrder, Router};
use ftree_sim::{OracleSim, PacketSim, Progression, SimConfig, TrafficPlan};
use ftree_topology::rlft::catalog;
use ftree_topology::Topology;

fn bench_packet_engine(c: &mut Criterion) {
    let topo = Topology::build(catalog::nodes_1728());
    let rt = DModK.route_healthy(&topo);
    let cfg = SimConfig::default();
    let order = NodeOrder::random(&topo, 42);
    // 8 stages (not the perf bin's 32) keeps a 10-sample criterion run
    // tolerable; the per-event costs are identical.
    let plan = TrafficPlan::from_cps(&order, &Cps::Shift, 2048, Progression::Asynchronous, 8);

    let mut group = c.benchmark_group("packet_engine_1728");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("oracle"), &plan, |b, p| {
        b.iter(|| black_box(OracleSim::new(&topo, &rt, cfg, p).run()))
    });
    group.bench_with_input(BenchmarkId::from_parameter("rebuilt"), &plan, |b, p| {
        b.iter(|| black_box(PacketSim::new(&topo, &rt, cfg, p).run()))
    });
    group.finish();
}

criterion_group!(benches, bench_packet_engine);
criterion_main!(benches);
