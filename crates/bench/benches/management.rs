//! Fabric-management benchmarks: fault-aware rerouting and job allocation
//! — the operations a subnet manager performs online.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ftree_core::{Allocator, DModK, Reachability, Router};
use ftree_topology::failures::LinkFailures;
use ftree_topology::rlft::catalog;
use ftree_topology::Topology;

fn bench_fault_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_reroute");
    group.sample_size(10);
    for (name, spec) in [
        ("324", catalog::nodes_324()),
        ("1944", catalog::nodes_1944()),
    ] {
        let topo = Topology::build(spec);
        let mut failures = LinkFailures::none(&topo);
        for i in 0..4u32 {
            let leaf = topo.node_at(1, (i as usize * 5) % 18).unwrap();
            failures
                .fail_up_port(&topo, leaf, (i * 7) % topo.spec().up_ports(1))
                .unwrap();
        }
        group.bench_with_input(BenchmarkId::new("reachability", name), &failures, |b, f| {
            b.iter(|| black_box(Reachability::compute(&topo, f)))
        });
        group.bench_with_input(BenchmarkId::new("full_reroute", name), &failures, |b, f| {
            b.iter(|| black_box(DModK.route(&topo, f).unwrap()))
        });
    }
    group.finish();
}

fn bench_allocator(c: &mut Criterion) {
    let topo = Topology::build(catalog::nodes_1944());
    c.bench_function("allocator_churn_1944", |b| {
        b.iter(|| {
            let mut alloc = Allocator::new(&topo);
            let mut ids = Vec::new();
            // Fill with a mix, release half, refill.
            for ranks in [540usize, 360, 180, 90, 36, 18, 7, 3] {
                if let Ok(a) = alloc.allocate(ranks) {
                    ids.push(a.id);
                }
            }
            for id in ids.iter().step_by(2) {
                alloc.release(*id).unwrap();
            }
            for ranks in [108usize, 54, 5] {
                let _ = alloc.allocate(ranks);
            }
            black_box(alloc.free_ports())
        })
    });
}

criterion_group!(benches, bench_fault_routing, bench_allocator);
criterion_main!(benches);
