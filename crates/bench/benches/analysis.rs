//! Hot-spot-degree analysis benchmarks: the ibdm-substitute throughput
//! that makes the Figure 3 / Table 3 sweeps cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ftree_analysis::{sequence_hsd, stage_hsd, SequenceOptions};
use ftree_collectives::{Cps, PermutationSequence};
use ftree_core::{DModK, NodeOrder, Router};
use ftree_topology::rlft::catalog;
use ftree_topology::Topology;

fn bench_stage_hsd(c: &mut Criterion) {
    let mut group = c.benchmark_group("stage_hsd");
    for (name, spec) in [
        ("324", catalog::nodes_324()),
        ("1944", catalog::nodes_1944()),
    ] {
        let topo = Topology::build(spec);
        let rt = DModK.route_healthy(&topo);
        let order = NodeOrder::random(&topo, 1);
        let n = topo.num_hosts() as u32;
        let flows = order.port_flows(&Cps::Shift.stage(n, 7));
        group.bench_with_input(BenchmarkId::from_parameter(name), &flows, |b, f| {
            b.iter(|| black_box(stage_hsd(&topo, &rt, f).unwrap()))
        });
    }
    group.finish();
}

fn bench_sequence_hsd(c: &mut Criterion) {
    let topo = Topology::build(catalog::nodes_324());
    let rt = DModK.route_healthy(&topo);
    let order = NodeOrder::topology(&topo);
    c.bench_function("sequence_hsd_shift324_sampled32", |b| {
        b.iter(|| {
            black_box(
                sequence_hsd(
                    &topo,
                    &rt,
                    &order,
                    &Cps::Shift,
                    SequenceOptions { max_stages: 32 },
                )
                .unwrap(),
            )
        })
    });
}

criterion_group!(benches, bench_stage_hsd, bench_sequence_hsd);
criterion_main!(benches);
