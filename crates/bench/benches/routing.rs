//! Routing-table construction benchmarks: the subnet-manager-side cost of
//! D-Mod-K versus the baselines at the paper's cluster scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ftree_core::{DModK, MinHopGreedy, RandomUpstream, Router};
use ftree_topology::rlft::catalog;
use ftree_topology::Topology;

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_build");
    for (name, spec) in [
        ("128", catalog::nodes_128()),
        ("324", catalog::nodes_324()),
        ("1944", catalog::nodes_1944()),
    ] {
        let topo = Topology::build(spec);
        group.bench_with_input(BenchmarkId::new("dmodk", name), &topo, |b, t| {
            b.iter(|| black_box(DModK.route_healthy(t)))
        });
        group.bench_with_input(BenchmarkId::new("minhop", name), &topo, |b, t| {
            b.iter(|| black_box(MinHopGreedy.route_healthy(t)))
        });
        group.bench_with_input(BenchmarkId::new("random", name), &topo, |b, t| {
            b.iter(|| black_box(RandomUpstream::new(1).route_healthy(t)))
        });
    }
    group.finish();
}

fn bench_topology_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_build");
    for (name, spec) in [
        ("324", catalog::nodes_324()),
        ("1944", catalog::nodes_1944()),
        ("11664", catalog::rlft3_full(18)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, s| {
            b.iter(|| black_box(Topology::build(s.clone())))
        });
    }
    group.finish();
}

fn bench_path_trace(c: &mut Criterion) {
    let topo = Topology::build(catalog::nodes_1944());
    let rt = DModK.route_healthy(&topo);
    c.bench_function("trace_1944_cross_tree", |b| {
        let mut dst = 0usize;
        b.iter(|| {
            dst = (dst + 997) % 1944;
            black_box(rt.trace(&topo, dst, (dst + 972) % 1944).unwrap())
        })
    });
}

criterion_group!(
    benches,
    bench_routing,
    bench_topology_build,
    bench_path_trace
);
criterion_main!(benches);
