//! CPS generation and MPI-engine benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ftree_collectives::{Cps, PermutationSequence, TopoAwareRd};
use ftree_mpi::data::{allgather_world, alltoall_world};

fn bench_stage_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("cps_stage_1944");
    for cps in [Cps::Shift, Cps::Dissemination, Cps::RecursiveDoubling] {
        group.bench_with_input(BenchmarkId::from_parameter(cps.label()), &cps, |b, cps| {
            let mut s = 0usize;
            b.iter(|| {
                s = (s + 1) % cps.num_stages(1944);
                black_box(cps.stage(1944, s))
            })
        });
    }
    group.finish();
}

fn bench_topo_aware_schedule(c: &mut Criterion) {
    let seq = TopoAwareRd::new(vec![18, 18, 6]);
    c.bench_function("topo_aware_full_sequence_1944", |b| {
        b.iter(|| {
            for id in seq.schedule() {
                black_box(seq.stage_for(id));
            }
        })
    });
}

fn bench_collective_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpi_engine");
    group.sample_size(20);
    group.bench_function("ring_allgather_n128_b8", |b| {
        b.iter(|| {
            let mut w = allgather_world(128, 8);
            ftree_mpi::allgather::ring_allgather(&mut w, 8);
            black_box(w)
        })
    });
    group.bench_function("pairwise_alltoall_n64_b8", |b| {
        b.iter(|| {
            let mut w = alltoall_world(64, 8);
            ftree_mpi::alltoall::pairwise_alltoall(&mut w, 8);
            black_box(w)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_stage_generation,
    bench_topo_aware_schedule,
    bench_collective_execution
);
criterion_main!(benches);
