//! Path-arena route-cache benchmarks: the before/after pairs behind the
//! `perf` experiment binary, at criterion resolution.
//!
//! Four comparisons, each one layer of the optimization stack:
//!
//! * `path_lookup` — re-tracing a route through the LFTs vs reading the
//!   arena's CSR slice,
//! * `stage_hsd` — the serial trace-per-flow stage engine vs the
//!   scratch-buffer arena engine,
//! * `sequence_sweep` — a Figure-3-style multi-seed sweep, reference
//!   serial engine vs the cached parallel engine,
//! * `packet_sim` — the static simulator event loop with per-packet LFT
//!   lookups vs the precomputed next-channel table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ftree_analysis::{random_order_sweep, reference, RouteCache, SequenceOptions, StageScratch};
use ftree_collectives::{Cps, PermutationSequence};
use ftree_core::{DModK, NodeOrder, Router};
use ftree_sim::{PacketSim, Progression, SimConfig, TrafficPlan};
use ftree_topology::rlft::catalog;
use ftree_topology::Topology;

fn bench_path_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("path_lookup");
    let topo = Topology::build(catalog::nodes_324());
    let rt = DModK.route_healthy(&topo);
    let cache = RouteCache::new(&topo, &rt).unwrap();
    let arena = cache.arena().expect("324 hosts fit the default budget");
    let n = topo.num_hosts();
    group.bench_function("trace", |b| {
        b.iter(|| {
            let mut hops = 0usize;
            for src in 0..64 {
                let path = rt.trace(&topo, src, (src * 31 + 7) % n).unwrap();
                hops += path.channels.len();
            }
            black_box(hops)
        })
    });
    group.bench_function("arena", |b| {
        b.iter(|| {
            let mut hops = 0usize;
            for src in 0..64 {
                hops += arena.channels(src, (src * 31 + 7) % n).unwrap().len();
            }
            black_box(hops)
        })
    });
    group.finish();
}

fn bench_stage_hsd(c: &mut Criterion) {
    let mut group = c.benchmark_group("stage_hsd");
    for (name, spec) in [
        ("324", catalog::nodes_324()),
        ("1944", catalog::nodes_1944()),
    ] {
        let topo = Topology::build(spec);
        let rt = DModK.route_healthy(&topo);
        let order = NodeOrder::random(&topo, 1);
        let n = topo.num_hosts() as u32;
        let flows = order.port_flows(&Cps::Shift.stage(n, 7));
        group.bench_with_input(BenchmarkId::new("reference", name), &flows, |b, f| {
            b.iter(|| black_box(reference::stage_hsd(&topo, &rt, f).unwrap()))
        });
        let cache = RouteCache::new(&topo, &rt).unwrap();
        let mut scratch = StageScratch::for_cache(&cache);
        group.bench_with_input(BenchmarkId::new("arena", name), &flows, |b, f| {
            b.iter(|| black_box(cache.stage_hsd(f, &mut scratch).unwrap()))
        });
    }
    group.finish();
}

fn bench_sequence_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequence_sweep");
    group.sample_size(10);
    let topo = Topology::build(catalog::nodes_324());
    let rt = DModK.route_healthy(&topo);
    let seeds: Vec<u64> = (1..=5).collect();
    let opts = SequenceOptions { max_stages: 16 };
    group.bench_function("reference", |b| {
        b.iter(|| {
            black_box(reference::random_order_sweep(&topo, &rt, &Cps::Shift, &seeds, opts).unwrap())
        })
    });
    group.bench_function("cached", |b| {
        b.iter(|| black_box(random_order_sweep(&topo, &rt, &Cps::Shift, &seeds, opts).unwrap()))
    });
    group.finish();
}

fn bench_packet_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("packet_sim");
    group.sample_size(10);
    let topo = Topology::build(catalog::nodes_128());
    let rt = DModK.route_healthy(&topo);
    let n = topo.num_hosts() as u32;
    let stages: Vec<Vec<(u32, u32)>> = (0..2)
        .map(|s| (0..n).map(|i| (i, (i * 7 + s + 1) % n)).collect())
        .collect();
    let plan = TrafficPlan::uniform(stages, 16_384, Progression::Asynchronous);
    group.bench_function("lft_lookup", |b| {
        b.iter(|| {
            black_box(
                PacketSim::new(&topo, &rt, SimConfig::default(), &plan)
                    .without_route_cache()
                    .run(),
            )
        })
    });
    group.bench_function("next_channel_table", |b| {
        b.iter(|| black_box(PacketSim::new(&topo, &rt, SimConfig::default(), &plan).run()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_path_lookup,
    bench_stage_hsd,
    bench_sequence_sweep,
    bench_packet_sim
);
criterion_main!(benches);
