//! Simulator calibration constants and time arithmetic.
//!
//! Calibrated like the paper's OMNeT++ model (Sec. II): InfiniBand QDR
//! links (4000 MB/s unidirectional) on Mellanox IS4 36-port switches, hosts
//! limited by PCIe Gen2 8x (3250 MB/s). Time is kept in integer picoseconds
//! so event ordering is exact and runs are bit-reproducible.

use serde::{Deserialize, Serialize};

/// Simulation time in picoseconds.
pub type Time = u64;

/// One nanosecond in simulation ticks.
pub const NANOSECOND: Time = 1_000;
/// One microsecond in simulation ticks.
pub const MICROSECOND: Time = 1_000_000;

/// Bandwidth in megabytes per second, with exact byte→time conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bandwidth {
    /// MB/s (1 MB = 1e6 bytes, matching the paper's link numbers).
    pub mbps: u64,
}

impl Bandwidth {
    /// Bandwidth of `mbps` megabytes per second.
    pub const fn new(mbps: u64) -> Self {
        Self { mbps }
    }

    /// Time to serialize `bytes` at this bandwidth, in picoseconds.
    ///
    /// `t = bytes / (mbps * 1e6 B/s) = bytes * 1e6 / mbps` ps.
    #[inline]
    pub fn transfer_time(self, bytes: u64) -> Time {
        debug_assert!(self.mbps > 0);
        bytes * 1_000_000 / self.mbps
    }

    /// Bytes transferable in `t` picoseconds (rounded down).
    #[inline]
    pub fn bytes_in(self, t: Time) -> u64 {
        t * self.mbps / 1_000_000
    }
}

/// Switch queueing architecture for the packet simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwitchModel {
    /// One FIFO per input port: a blocked head blocks everything behind it
    /// (head-of-line blocking) — the paper's degradation mechanism and the
    /// default.
    InputFifo,
    /// Virtual output queues: a packet contends only for its own egress,
    /// eliminating HOL blocking (ideal switch). Used as an ablation to
    /// isolate how much of the random-order bandwidth loss is HOL-induced
    /// versus pure link oversubscription.
    VirtualOutputQueues,
}

/// Packet-level simulator configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SimConfig {
    /// Switch-to-switch (and switch-to-host) link bandwidth.
    pub link_bw: Bandwidth,
    /// Host injection bandwidth (PCIe bound).
    pub host_bw: Bandwidth,
    /// Maximum transfer unit — message payload per packet, bytes.
    pub mtu: u64,
    /// Per-hop switch forwarding latency (arbitration + crossbar), ps.
    pub switch_latency: Time,
    /// Cable propagation delay per hop, ps.
    pub wire_latency: Time,
    /// Input-buffer capacity per switch input port, in packets (credits).
    pub input_buffer_packets: usize,
    /// Maximum per-host start skew, ps (models OS jitter / imperfect clock
    /// synchronization — paper Sec. VII). 0 disables jitter. Applied to the
    /// initial start in asynchronous mode and to every stage release in
    /// synchronized mode.
    pub jitter: Time,
    /// Seed for the deterministic jitter hash.
    pub jitter_seed: u64,
    /// Switch queueing architecture.
    pub switch_model: SwitchModel,
}

impl Default for SimConfig {
    /// The paper's calibration: QDR fabric, PCIe Gen2 x8 hosts, 2 KB MTU,
    /// 36-port-switch-class latencies, modest input buffering.
    fn default() -> Self {
        Self {
            link_bw: Bandwidth::new(4000),
            host_bw: Bandwidth::new(3250),
            mtu: 2048,
            switch_latency: 100 * NANOSECOND,
            wire_latency: 25 * NANOSECOND,
            input_buffer_packets: 8,
            jitter: 0,
            jitter_seed: 0,
            switch_model: SwitchModel::InputFifo,
        }
    }
}

/// Deterministic per-(host, stage) jitter in `[0, max]` (splitmix64 hash;
/// no RNG state, so runs stay reproducible).
pub fn jitter_ps(seed: u64, host: u32, stage: u32, max: Time) -> Time {
    if max == 0 {
        return 0;
    }
    let mut z = seed
        .wrapping_add(0x9e3779b97f4a7c15)
        .wrapping_add(u64::from(host).wrapping_mul(0xbf58476d1ce4e5b9))
        .wrapping_add(u64::from(stage).wrapping_mul(0x94d049bb133111eb));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    z % (max + 1)
}

impl SimConfig {
    /// Number of MTU packets needed for a message of `bytes`.
    #[inline]
    pub fn packets_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.mtu).max(1)
    }

    /// Unloaded cut-through latency of a `bytes`-sized message over `hops`
    /// hops: per-hop header latency plus one serialization of the payload.
    pub fn cut_through_latency(&self, bytes: u64, hops: usize) -> Time {
        (self.switch_latency + self.wire_latency) * hops as Time
            + self.link_bw.transfer_time(bytes.min(self.mtu))
            + self.host_bw.transfer_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_matches_hand_calc() {
        // 4000 MB/s = 4 bytes/ns: 2048 B take 512 ns.
        let bw = Bandwidth::new(4000);
        assert_eq!(bw.transfer_time(2048), 512 * NANOSECOND);
        // PCIe 3250 MB/s: 3250 bytes per us.
        let host = Bandwidth::new(3250);
        assert_eq!(host.transfer_time(3_250_000), MICROSECOND * 1000);
    }

    #[test]
    fn bytes_in_inverts_transfer_time() {
        let bw = Bandwidth::new(4000);
        for bytes in [1u64, 100, 2048, 1 << 20] {
            let t = bw.transfer_time(bytes);
            let back = bw.bytes_in(t);
            assert!(back <= bytes && bytes - back <= 4, "{bytes} -> {back}");
        }
    }

    #[test]
    fn packet_count() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.packets_for(1), 1);
        assert_eq!(cfg.packets_for(2048), 1);
        assert_eq!(cfg.packets_for(2049), 2);
        assert_eq!(cfg.packets_for(1 << 20), 512);
        assert_eq!(cfg.packets_for(0), 1, "empty messages still send a header");
    }

    #[test]
    fn cut_through_latency_is_hop_linear_in_header_only() {
        let cfg = SimConfig::default();
        let l2 = cfg.cut_through_latency(2048, 2);
        let l4 = cfg.cut_through_latency(2048, 4);
        assert_eq!(
            l4 - l2,
            2 * (cfg.switch_latency + cfg.wire_latency),
            "extra hops must only add per-hop header latency (cut-through)"
        );
    }
}
