//! Calendar-queue event scheduler for the packet simulator.
//!
//! A discrete-event simulator spends a large share of its cycles inside the
//! pending-event set. `BinaryHeap` gives `O(log n)` pushes and pops with
//! pointer-hostile sift patterns; a calendar queue exploits the fact that
//! simulated network events cluster tightly in time (every future event is a
//! handful of serialization times away) to make both operations amortized
//! `O(1)`:
//!
//! * time is quantized into fixed-width *days* (buckets); a power-of-two
//!   ring of days forms the current *year*,
//! * a push lands in its day with a single shift/mask (or in the overflow
//!   list, if it is beyond the current year — retransmission timers, far
//!   jitter kicks, scripted fault times),
//! * a pop drains the current day through a sorted run: the day's events are
//!   sorted once when the day opens, then consumed by cursor,
//! * when a year ends, the overflow list is stable-sorted and the next
//!   year's days are seeded from it.
//!
//! Ordering contract: entries are popped in ascending `(time, seq)` order —
//! exactly the order `BinaryHeap<Event>` with the reverse `(time, seq)`
//! comparison produced, so an engine swapping one for the other is
//! event-for-event identical.
//!
//! Monotonicity contract: a push's time must be `>=` the time of the last
//! popped entry (simulators never schedule into the past). Same-time pushes
//! into the currently draining day are supported and slot in after every
//! already-consumed entry.

/// An entry orderable by the `(time, seq)` calendar key.
pub trait CalEntry: Copy {
    /// Primary/secondary sort key: `(timestamp, tie-break sequence)`.
    fn cal_key(&self) -> (u64, u64);
}

impl CalEntry for (u64, u64) {
    fn cal_key(&self) -> (u64, u64) {
        *self
    }
}

/// A calendar queue over `(time, seq)`-keyed entries.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    /// Ring of day buckets for the current year (power-of-two length).
    days: Vec<Vec<T>>,
    /// Day width in time units (power of two).
    width: u64,
    shift: u32,
    /// Start time of the current year (aligned to `width * days.len()`).
    year_start: u64,
    /// Index of the day currently being drained.
    cur_day: usize,
    /// Sorted run of the current day, consumed by cursor.
    run: Vec<T>,
    run_pos: usize,
    /// Entries at or beyond the current year's end, in insertion order
    /// (insertion order == seq order, so a stable sort by time recovers the
    /// full `(time, seq)` order).
    overflow: Vec<T>,
    len: usize,
    /// Largest key handed out so far (debug monotonicity checks).
    last_popped: (u64, u64),
}

impl<T: CalEntry> CalendarQueue<T> {
    /// Creates a queue tuned for a typical inter-event delta of
    /// `width_hint` time units, with roughly `days_hint` day buckets. Both
    /// are rounded up to powers of two; the hints only affect performance,
    /// never ordering.
    pub fn new(width_hint: u64, days_hint: usize) -> Self {
        let width = width_hint.max(1).next_power_of_two();
        let days = days_hint.max(2).next_power_of_two();
        Self {
            days: (0..days).map(|_| Vec::new()).collect(),
            width,
            shift: width.trailing_zeros(),
            year_start: 0,
            cur_day: 0,
            run: Vec::new(),
            run_pos: 0,
            overflow: Vec::new(),
            len: 0,
            last_popped: (0, 0),
        }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn year_span(&self) -> u64 {
        self.width * self.days.len() as u64
    }

    /// Inserts an entry. Time must be `>=` the last popped entry's time.
    #[inline]
    pub fn push(&mut self, entry: T) {
        let (t, _) = entry.cal_key();
        debug_assert!(
            t >= self.last_popped.0,
            "calendar push into the past: {t} < {}",
            self.last_popped.0
        );
        self.len += 1;
        let year_end = self.year_start + self.year_span();
        if t >= year_end {
            self.overflow.push(entry);
            return;
        }
        let day = ((t - self.year_start) >> self.shift) as usize;
        if day == self.cur_day {
            // The day being drained: keep the sorted run sorted. The entry's
            // key exceeds every consumed key (monotonicity + fresh seq), so
            // the insertion point is at or after the cursor.
            let key = entry.cal_key();
            let at =
                self.run[self.run_pos..].partition_point(|e| e.cal_key() <= key) + self.run_pos;
            self.run.insert(at, entry);
        } else {
            debug_assert!(day > self.cur_day, "past day within the year");
            self.days[day].push(entry);
        }
    }

    /// Smallest `(time, seq)` key currently queued, without removing it.
    ///
    /// Deliberately non-mutating: the day cursor only ever advances on
    /// [`CalendarQueue::pop`]. The sharded driver peeks every core each
    /// window and then pushes barrier events that may precede an idle
    /// core's next (far-future) event; if peeking advanced the cursor,
    /// those pushes would land "in the past". The scan costs `O(days)`
    /// only when the current run is drained.
    pub fn peek_key(&self) -> Option<(u64, u64)> {
        if self.run_pos < self.run.len() {
            // The run is the earliest day (including same-day pushes, which
            // insert sorted), so its head is the global minimum.
            return Some(self.run[self.run_pos].cal_key());
        }
        if self.len == 0 {
            return None;
        }
        for day in &self.days[self.cur_day..] {
            if let Some(k) = day.iter().map(|e| e.cal_key()).min() {
                return Some(k);
            }
        }
        self.overflow.iter().map(|e| e.cal_key()).min()
    }

    /// The not-yet-consumed tail of the current sorted run: the next
    /// entries that will pop, in order, without opening further days.
    /// Drivers use it to prefetch the state the upcoming handlers will
    /// touch while the current one executes.
    #[inline]
    pub fn upcoming(&self) -> &[T] {
        &self.run[self.run_pos..]
    }

    /// Removes and returns the earliest entry.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        if self.run_pos < self.run.len() {
            let e = self.run[self.run_pos];
            self.run_pos += 1;
            self.len -= 1;
            debug_assert!({
                let k = e.cal_key();
                let ok = k >= self.last_popped;
                self.last_popped = k;
                ok
            });
            return Some(e);
        }
        if self.len == 0 {
            return None;
        }
        self.open_next_day();
        self.pop()
    }

    /// Advances `cur_day` (rolling years as needed) until the sorted run
    /// holds at least one entry. Caller guarantees `len > 0`.
    fn open_next_day(&mut self) {
        debug_assert!(self.len > 0 && self.run_pos >= self.run.len());
        loop {
            if !self.days[self.cur_day].is_empty() {
                self.run.clear();
                self.run_pos = 0;
                std::mem::swap(&mut self.run, &mut self.days[self.cur_day]);
                // seq values are globally unique, so an unstable sort on the
                // full (time, seq) key is order-exact.
                self.run.sort_unstable_by_key(|e| e.cal_key());
                return;
            }
            if self.cur_day + 1 < self.days.len() {
                self.cur_day += 1;
                continue;
            }
            // Year exhausted: every remaining entry lives in the overflow.
            debug_assert!(
                !self.overflow.is_empty(),
                "len > 0 with empty days must mean overflow entries"
            );
            // Insertion order == seq order, so a stable sort by time yields
            // (time, seq) order.
            self.overflow.sort_by_key(|e| e.cal_key().0);
            let min_t = self.overflow[0].cal_key().0;
            let span = self.year_span();
            self.year_start = min_t - (min_t % span);
            let year_end = self.year_start + span;
            let keep = self.overflow.partition_point(|e| e.cal_key().0 < year_end);
            for e in self.overflow.drain(..keep) {
                let day = ((e.cal_key().0 - self.year_start) >> self.shift) as usize;
                self.days[day].push(e);
            }
            self.cur_day = ((min_t - self.year_start) >> self.shift) as usize;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains the queue fully, asserting ascending (time, seq) order.
    fn drain(q: &mut CalendarQueue<(u64, u64)>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e);
        }
        assert!(q.is_empty());
        let mut sorted = out.clone();
        sorted.sort();
        assert_eq!(out, sorted, "must drain in (time, seq) order");
        out
    }

    #[test]
    fn same_timestamp_entries_pop_in_seq_order() {
        let mut q = CalendarQueue::new(16, 8);
        // Same time, pushed with shuffled seq values.
        for seq in [5u64, 1, 9, 3, 7, 0, 8, 2, 6, 4] {
            q.push((100u64, seq));
        }
        let out = drain(&mut q);
        assert_eq!(out, (0..10).map(|s| (100, s)).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut q = CalendarQueue::new(4, 4);
        let mut seq = 0u64;
        let mut push = |q: &mut CalendarQueue<(u64, u64)>, t: u64| {
            q.push((t, seq));
            seq += 1;
        };
        push(&mut q, 10);
        push(&mut q, 10);
        push(&mut q, 12);
        assert_eq!(q.pop(), Some((10, 0)));
        // Same-time push into the draining day, after a consumed entry.
        push(&mut q, 10);
        push(&mut q, 11);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((10, 3)));
        assert_eq!(q.pop(), Some((11, 4)));
        assert_eq!(q.pop(), Some((12, 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn far_future_entries_route_through_overflow() {
        let mut q = CalendarQueue::new(2, 2); // tiny year: span 8
        q.push((1, 0));
        q.push((1_000_000, 1)); // far overflow
        q.push((50, 2)); // one year-rollover away
        q.push((3, 3));
        assert_eq!(drain(&mut q), vec![(1, 0), (3, 3), (50, 2), (1_000_000, 1)]);
    }

    #[test]
    fn overflow_ties_keep_seq_order_across_years() {
        let mut q = CalendarQueue::new(2, 2); // span 8
                                              // All far future, same timestamp, seq out of push order is
                                              // impossible by contract — push in seq order, expect seq order out.
        for seq in 0..64u64 {
            q.push((1 << 20, seq));
        }
        let out = drain(&mut q);
        assert_eq!(out, (0..64).map(|s| (1 << 20, s)).collect::<Vec<_>>());
    }

    #[test]
    fn bucket_rotation_over_many_years() {
        // Entries spaced exactly one day apart for many years: exercises
        // day advancement, year rollover, and overflow re-seeding together.
        let mut q = CalendarQueue::new(8, 4); // width 8, 4 days, span 32
        let times: Vec<u64> = (0..200).map(|i| i * 8).collect();
        for (seq, &t) in times.iter().enumerate() {
            q.push((t, seq as u64));
        }
        let out = drain(&mut q);
        assert_eq!(out.len(), 200);
        assert_eq!(out.first(), Some(&(0, 0)));
        assert_eq!(out.last(), Some(&(199 * 8, 199)));
    }

    #[test]
    fn randomized_against_binary_heap() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        // Deterministic splitmix-ish pseudo-random workload mixing pushes
        // (with bounded forward deltas, occasionally huge) and pops.
        let mut rng: u64 = 0x9e3779b97f4a7c15;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut q = CalendarQueue::new(64, 16);
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        for _ in 0..10_000 {
            let r = next();
            if r % 3 != 0 || heap.is_empty() {
                let delta = match r % 7 {
                    0 => r % 4,            // same-day, possibly same-time
                    6 => 100_000 + r % 64, // far future (overflow)
                    _ => r % 700,          // typical forward delta
                };
                let e = (now + delta, seq);
                seq += 1;
                q.push(e);
                heap.push(Reverse(e));
            } else {
                let want = heap.pop().unwrap().0;
                let got = q.pop().unwrap();
                assert_eq!(got, want);
                now = got.0;
            }
        }
        while let Some(Reverse(want)) = heap.pop() {
            assert_eq!(q.pop(), Some(want));
        }
        assert!(q.is_empty() && q.pop().is_none());
    }

    #[test]
    fn peek_does_not_block_earlier_pushes() {
        // The sharded-driver pattern: peek an idle queue whose only entry
        // is far in the future (beyond the current year), decline to pop,
        // then receive a barrier push at an earlier time.
        let mut q = CalendarQueue::new(4, 4); // span 16
        q.push((1_000, 0));
        assert_eq!(q.peek_key(), Some((1_000, 0)));
        q.push((5, 1)); // earlier than the peeked head — must be fine
        assert_eq!(drain(&mut q), vec![(5, 1), (1_000, 0)]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = CalendarQueue::new(4, 4);
        q.push((7, 0));
        q.push((3, 1));
        q.push((900, 2));
        while !q.is_empty() {
            let k = q.peek_key().unwrap();
            assert_eq!(q.pop().unwrap().cal_key(), k);
        }
        assert_eq!(q.peek_key(), None);
    }
}
