//! Topology-aware views of recorded simulation runs.
//!
//! [`ftree_obs::chrome_trace`] is topology-agnostic: it takes label
//! closures. This module binds those closures to a [`Topology`] so traces
//! come out with real fabric names (`H0003 -> S1[0,1] (up p2)`) on every
//! channel track.

use ftree_obs::Recorder;
use ftree_topology::{ChannelId, Topology};

/// Renders everything `rec` captured as a Chrome trace-event JSON document
/// (loadable in `chrome://tracing` or <https://ui.perfetto.dev>), labelling
/// channel and fault tracks with `topo`'s node names.
pub fn export_chrome_trace(topo: &Topology, rec: &Recorder) -> serde_json::Value {
    let events = rec.events();
    ftree_obs::chrome_trace(
        &events,
        |ch| topo.channel_label(ChannelId(ch)),
        |link| topo.link_label(link),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::packet::PacketSim;
    use crate::traffic::{Progression, TrafficPlan};
    use ftree_core::{DModK, Router};
    use ftree_topology::rlft::catalog;
    use std::sync::Arc;

    #[test]
    fn trace_labels_use_fabric_names() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let rt = DModK.route_healthy(&topo);
        let plan = TrafficPlan::uniform(vec![vec![(0, 9)]], 4096, Progression::Asynchronous);
        let rec = Arc::new(Recorder::new());
        let r = PacketSim::new(&topo, &rt, SimConfig::default(), &plan)
            .with_recorder(rec.clone())
            .run();
        assert_eq!(r.messages_delivered, 1);
        assert!(!rec.events().is_empty(), "channel activity was recorded");
        let trace = export_chrome_trace(&topo, &rec);
        let rendered = trace.to_string();
        assert!(
            rendered.contains("H0000 ->"),
            "host 0's up channel is named"
        );
        assert!(rendered.contains("traceEvents"));
    }
}
