//! Fluid flow-level simulator: max-min fair bandwidth sharing.
//!
//! The packet simulator captures head-of-line blocking but costs one event
//! per packet-hop; paper-scale clusters (1944 end-ports) over long
//! sequences are out of its budget — exactly why the paper pairs its
//! OMNeT++ model with an analytic tool. This fluid model is the middle
//! ground: messages are continuous flows, every directed channel is a
//! capacity, and active flows receive **max-min fair** rates (water-filling
//! over bottleneck channels). Time advances from flow completion to flow
//! completion; each completion re-solves the allocation.
//!
//! The model reproduces contention-driven bandwidth ratios (e.g. the ~1/K
//! adversarial Ring collapse, the full-bandwidth contention-free runs); it
//! deliberately does not model buffer-occupancy effects such as the
//! message-size dependence of Figure 2 — that is the packet simulator's
//! job.

use ftree_topology::{RoutingTable, Topology};

use crate::config::{SimConfig, Time};
use crate::traffic::{Progression, TrafficPlan};

/// Result of a fluid simulation run.
#[derive(Debug, Clone)]
pub struct FluidResult {
    /// Completion time of the last flow, ps.
    pub makespan: Time,
    /// Total payload bytes moved.
    pub total_payload: u64,
    /// Number of messages completed.
    pub messages_completed: u64,
    /// Aggregate bandwidth / aggregate host injection capacity.
    pub normalized_bw: f64,
    /// Makespan relative to the busiest host's pure injection time
    /// (~1.0 = no contention stalls on the critical path).
    pub efficiency: f64,
    /// Number of max-min re-solves performed.
    pub solves: u64,
}

struct Flow {
    /// Channels traversed.
    path: Vec<u32>,
    /// Bytes left to move.
    remaining: f64,
    /// Total payload of this message.
    bytes: u64,
    /// Source host (for schedule progression).
    src: u32,
    /// Current rate, bytes/ps.
    rate: f64,
}

struct HostSched {
    /// (dst, stage, bytes) message list.
    msgs: Vec<(u32, u32, u64)>,
    next: usize,
}

/// Runs the fluid model over a traffic plan.
pub fn run_fluid(
    topo: &Topology,
    rt: &RoutingTable,
    cfg: SimConfig,
    plan: &TrafficPlan,
) -> FluidResult {
    let n = topo.num_hosts();
    // Channel capacities in bytes/ps. Host-adjacent channels are PCIe-bound
    // in both directions.
    let mut capacity = vec![cfg.link_bw.mbps as f64 / 1e6; topo.num_channels()];
    for h in 0..n {
        let host = topo.host(h);
        for pp in &topo.node(host).up {
            let up = topo.channel(pp.link, ftree_topology::Direction::Up);
            let down = topo.channel(pp.link, ftree_topology::Direction::Down);
            capacity[up.index()] = cfg.host_bw.mbps as f64 / 1e6;
            capacity[down.index()] = cfg.host_bw.mbps as f64 / 1e6;
        }
    }

    let mut hosts: Vec<HostSched> = (0..n)
        .map(|_| HostSched {
            msgs: Vec::new(),
            next: 0,
        })
        .collect();
    let mut stage_counts = vec![0u64; plan.stages().len()];
    for (s, flows) in plan.stages().iter().enumerate() {
        for (k, &(src, dst)) in flows.iter().enumerate() {
            if src != dst {
                hosts[src as usize]
                    .msgs
                    .push((dst, s as u32, plan.flow_bytes(s, k)));
                stage_counts[s] += 1;
            }
        }
    }

    let mut active: Vec<Flow> = Vec::new();
    let mut now: f64 = 0.0;
    let mut total_payload = 0u64;
    let mut completed = 0u64;
    let mut solves = 0u64;
    let mut current_stage = match plan.mode {
        Progression::Synchronized => stage_counts.iter().position(|&c| c > 0).unwrap_or(0) as u32,
        Progression::Asynchronous => 0,
    };
    let mut stage_remaining = stage_counts
        .get(current_stage as usize)
        .copied()
        .unwrap_or(0);

    // Start a host's next eligible message.
    let start_host = |hosts: &mut Vec<HostSched>,
                      active: &mut Vec<Flow>,
                      h: usize,
                      current_stage: u32,
                      mode: Progression| {
        let hs = &mut hosts[h];
        if hs.next >= hs.msgs.len() {
            return;
        }
        let (dst, stage, bytes) = hs.msgs[hs.next];
        if mode == Progression::Synchronized && stage != current_stage {
            return;
        }
        hs.next += 1;
        let path = rt
            .trace(topo, h, dst as usize)
            .expect("routable flow")
            .channels
            .iter()
            .map(|c| c.0)
            .collect();
        active.push(Flow {
            path,
            remaining: bytes as f64,
            bytes,
            src: h as u32,
            rate: 0.0,
        });
    };

    for h in 0..n {
        start_host(&mut hosts, &mut active, h, current_stage, plan.mode);
    }

    while !active.is_empty() {
        // Max-min fair allocation (water-filling).
        solves += 1;
        let mut residual = capacity.clone();
        let mut flows_on: Vec<u32> = vec![0; topo.num_channels()];
        for f in &active {
            for &ch in &f.path {
                flows_on[ch as usize] += 1;
            }
        }
        let mut frozen = vec![false; active.len()];
        let mut remaining_flows = active.len();
        while remaining_flows > 0 {
            // Bottleneck: channel with the smallest fair share.
            let mut best_share = f64::INFINITY;
            let mut best_ch = usize::MAX;
            for (ch, &cnt) in flows_on.iter().enumerate() {
                if cnt > 0 {
                    let share = residual[ch] / cnt as f64;
                    if share < best_share {
                        best_share = share;
                        best_ch = ch;
                    }
                }
            }
            debug_assert!(best_ch != usize::MAX);
            // Freeze all unfrozen flows crossing the bottleneck.
            for (fi, f) in active.iter_mut().enumerate() {
                if !frozen[fi] && f.path.contains(&(best_ch as u32)) {
                    frozen[fi] = true;
                    remaining_flows -= 1;
                    f.rate = best_share;
                    for &ch in &f.path {
                        residual[ch as usize] = (residual[ch as usize] - best_share).max(0.0);
                        flows_on[ch as usize] -= 1;
                    }
                }
            }
        }

        // Advance to the earliest completion.
        let dt = active
            .iter()
            .map(|f| f.remaining / f.rate)
            .fold(f64::INFINITY, f64::min);
        debug_assert!(dt.is_finite() && dt >= 0.0);
        now += dt;
        let mut finished_hosts = Vec::new();
        active.retain_mut(|f| {
            f.remaining -= f.rate * dt;
            if f.remaining <= 1e-6 * (f.bytes as f64).max(1.0) {
                total_payload += f.bytes;
                completed += 1;
                finished_hosts.push(f.src);
                false
            } else {
                true
            }
        });
        match plan.mode {
            Progression::Asynchronous => {
                for h in finished_hosts {
                    start_host(
                        &mut hosts,
                        &mut active,
                        h as usize,
                        current_stage,
                        plan.mode,
                    );
                }
            }
            Progression::Synchronized => {
                stage_remaining -= finished_hosts.len() as u64;
                if stage_remaining == 0 {
                    // Advance to the next non-empty stage.
                    let next = stage_counts
                        .iter()
                        .enumerate()
                        .find(|&(s, &c)| s as u32 > current_stage && c > 0);
                    if let Some((s, &c)) = next {
                        current_stage = s as u32;
                        stage_remaining = c;
                        for h in 0..n {
                            start_host(&mut hosts, &mut active, h, current_stage, plan.mode);
                        }
                    }
                }
            }
        }
    }

    let active_hosts = hosts.iter().filter(|h| !h.msgs.is_empty()).count().max(1);
    let max_host_bytes = hosts
        .iter()
        .map(|h| h.msgs.iter().map(|&(_, _, b)| b).sum::<u64>())
        .max()
        .unwrap_or(0);
    let makespan = now as Time;
    let efficiency = if now <= 0.0 {
        0.0
    } else {
        (max_host_bytes * 1_000_000 / cfg.host_bw.mbps.max(1)) as f64 / now
    };
    let normalized_bw = if now <= 0.0 {
        0.0
    } else {
        (total_payload as f64 / now) / (active_hosts as f64 * cfg.host_bw.mbps as f64 / 1e6)
    };
    FluidResult {
        makespan,
        total_payload,
        messages_completed: completed,
        normalized_bw,
        efficiency,
        solves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficPlan;
    use ftree_core::{DModK, Router};
    use ftree_topology::rlft::catalog;
    use ftree_topology::Topology;

    fn fluid(
        topo: &Topology,
        stages: Vec<Vec<(u32, u32)>>,
        bytes: u64,
        mode: Progression,
    ) -> FluidResult {
        let rt = DModK.route_healthy(topo);
        let plan = TrafficPlan::uniform(stages, bytes, mode);
        run_fluid(topo, &rt, SimConfig::default(), &plan)
    }

    #[test]
    fn single_flow_runs_at_host_rate() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let r = fluid(
            &topo,
            vec![vec![(0, 9)]],
            3_250_000,
            Progression::Asynchronous,
        );
        // 3.25 MB at 3250 MB/s = 1 ms = 1e9 ps.
        assert_eq!(r.messages_completed, 1);
        let expected = 1_000_000_000u64;
        assert!(
            (r.makespan as i64 - expected as i64).unsigned_abs() < expected / 100,
            "makespan {} vs {expected}",
            r.makespan
        );
    }

    #[test]
    fn contention_free_permutation_is_full_rate() {
        let topo = Topology::build(catalog::nodes_128());
        let n = topo.num_hosts() as u32;
        let stage: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 5) % n)).collect();
        let r = fluid(&topo, vec![stage], 1 << 20, Progression::Synchronized);
        assert!(
            r.normalized_bw > 0.99,
            "expected line rate, got {}",
            r.normalized_bw
        );
    }

    #[test]
    fn shared_uplink_halves_rates() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        // dsts 4 and 8 share the leaf-0 up-port (both ≡ 0 mod 4): the two
        // flows split one 4000 MB/s link -> 2000 MB/s each, slower than the
        // 3250 MB/s host bound.
        let free = fluid(
            &topo,
            vec![vec![(0, 4), (1, 5)]],
            1 << 20,
            Progression::Synchronized,
        );
        let hot = fluid(
            &topo,
            vec![vec![(0, 4), (1, 8)]],
            1 << 20,
            Progression::Synchronized,
        );
        let ratio = hot.makespan as f64 / free.makespan as f64;
        assert!(
            (ratio - 3250.0 / 2000.0).abs() < 0.02,
            "expected PCIe/2000 slowdown, got {ratio}"
        );
    }

    #[test]
    fn async_mode_completes_all_messages() {
        let topo = Topology::build(catalog::nodes_128());
        let n = topo.num_hosts() as u32;
        let stages: Vec<Vec<(u32, u32)>> = (0..4)
            .map(|s| (0..n).map(|i| (i, (i + s + 1) % n)).collect())
            .collect();
        let r = fluid(&topo, stages, 1 << 16, Progression::Asynchronous);
        assert_eq!(r.messages_completed, 4 * 128);
        assert!(r.normalized_bw > 0.95, "{}", r.normalized_bw);
    }

    #[test]
    fn empty_plan() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let r = fluid(&topo, vec![], 1024, Progression::Synchronized);
        assert_eq!(r.messages_completed, 0);
        assert_eq!(r.makespan, 0);
    }
}
