//! Fluid flow-level simulator: max-min fair bandwidth sharing.
//!
//! The packet simulator captures head-of-line blocking but costs one event
//! per packet-hop; paper-scale clusters (1944 end-ports) over long
//! sequences are out of its budget — exactly why the paper pairs its
//! OMNeT++ model with an analytic tool. This fluid model is the middle
//! ground: messages are continuous flows, every directed channel is a
//! capacity, and active flows receive **max-min fair** rates (water-filling
//! over bottleneck channels). Time advances from flow completion to flow
//! completion; each completion re-solves the allocation.
//!
//! The model reproduces contention-driven bandwidth ratios (e.g. the ~1/K
//! adversarial Ring collapse, the full-bandwidth contention-free runs); it
//! deliberately does not model buffer-occupancy effects such as the
//! message-size dependence of Figure 2 — that is the packet simulator's
//! job.
//!
//! Two implementations share this module:
//!
//! * [`FluidSim`] — the production solver. Flow↔channel incidence lives in
//!   a CSR built once per stage (paths come from a [`PathSource`] such as
//!   the analysis layer's `PathArena`, falling back to allocation-free
//!   [`RoutingTable::walk`]); bottleneck selection pops a lazy min-heap
//!   keyed `(share_bits, channel)` instead of scanning every channel; all
//!   scratch is reused across solves with touched-only reset. Freeze order
//!   and f64 operation order match the oracle exactly, so results are
//!   bit-identical on any input the oracle can handle (see DESIGN 4.15).
//! * [`OracleFluid`] — the original dense solver preserved verbatim as the
//!   equivalence oracle, following the repo's `OracleSim` pattern.
//!
//! The production solver additionally survives two inputs that break the
//! oracle: it skips (and counts) unroutable flows instead of panicking,
//! and it stops with [`FluidResult::stalled`] when every active flow is
//! clamped to rate zero instead of spinning forever.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ftree_topology::{RouteError, RoutingTable, Topology};

use crate::config::{SimConfig, Time};
use crate::traffic::{Progression, TrafficPlan};

/// Result of a fluid simulation run.
#[derive(Debug, Clone)]
pub struct FluidResult {
    /// Completion time of the last flow, ps.
    pub makespan: Time,
    /// Total payload bytes moved.
    pub total_payload: u64,
    /// Number of messages completed.
    pub messages_completed: u64,
    /// Aggregate bandwidth / aggregate host injection capacity.
    pub normalized_bw: f64,
    /// Makespan relative to the busiest host's pure injection time
    /// (~1.0 = no contention stalls on the critical path).
    pub efficiency: f64,
    /// Number of max-min re-solves performed.
    pub solves: u64,
    /// Messages skipped because the routing table had no route for them
    /// (degraded fabrics); always 0 from [`OracleFluid`], which panics
    /// instead.
    pub flows_unroutable: u64,
    /// True when the run ended early because every active flow froze at
    /// rate 0 (all its residual capacity clamped to zero — e.g. a
    /// zero-bandwidth fabric). The oracle's `debug_assert` vanishes in
    /// release builds and it spins forever on such inputs.
    pub stalled: bool,
}

/// Pre-resolved source→destination channel paths, letting [`FluidSim`]
/// skip routing-table walks entirely. The analysis layer's `PathArena`
/// implements this.
pub trait PathSource: Sync {
    /// Channel indices of the `src`→`dst` path, or `None` when the pair is
    /// not cached or was unroutable at build time. `None` is never wrong,
    /// only slower: the solver falls back to walking the routing table.
    fn channels(&self, src: usize, dst: usize) -> Option<&[u32]>;
}

/// Production fluid solver. Construct once per (topology, routing, config)
/// and [`FluidSim::run`] any number of plans against it; attach a
/// [`PathSource`] with [`FluidSim::with_paths`] to skip table walks.
pub struct FluidSim<'a> {
    topo: &'a Topology,
    rt: &'a RoutingTable,
    cfg: SimConfig,
    paths: Option<&'a dyn PathSource>,
}

impl<'a> FluidSim<'a> {
    /// Creates a solver over a fabric.
    pub fn new(topo: &'a Topology, rt: &'a RoutingTable, cfg: SimConfig) -> Self {
        Self {
            topo,
            rt,
            cfg,
            paths: None,
        }
    }

    /// Sources flow paths from `paths` instead of walking `rt` (pairs the
    /// source does not cover still fall back to the walk).
    pub fn with_paths(mut self, paths: &'a dyn PathSource) -> Self {
        self.paths = Some(paths);
        self
    }

    /// Runs the fluid model over a traffic plan.
    pub fn run(&self, plan: &TrafficPlan) -> FluidResult {
        let mut e = Engine::new(self.topo, self.rt, &self.cfg, self.paths, plan.mode);
        e.ingest(plan);
        e.open_first();
        while !e.alive.is_empty() {
            e.solve();
            if !e.advance_and_retire() {
                break;
            }
            e.progress();
        }
        e.finish(&self.cfg)
    }
}

/// Runs the fluid model over a traffic plan (production solver).
pub fn run_fluid(
    topo: &Topology,
    rt: &RoutingTable,
    cfg: SimConfig,
    plan: &TrafficPlan,
) -> FluidResult {
    FluidSim::new(topo, rt, cfg).run(plan)
}

/// Channel capacities in bytes/ps. Host-adjacent channels are PCIe-bound
/// in both directions.
fn build_capacities(topo: &Topology, cfg: &SimConfig) -> Vec<f64> {
    let mut capacity = vec![cfg.link_bw.mbps as f64 / 1e6; topo.num_channels()];
    for h in 0..topo.num_hosts() {
        let host = topo.host(h);
        for pp in &topo.node(host).up {
            let up = topo.channel(pp.link, ftree_topology::Direction::Up);
            let down = topo.channel(pp.link, ftree_topology::Direction::Down);
            capacity[up.index()] = cfg.host_bw.mbps as f64 / 1e6;
            capacity[down.index()] = cfg.host_bw.mbps as f64 / 1e6;
        }
    }
    capacity
}

/// All mutable solver state. Flows are stored SoA with paths in one shared
/// CSR buffer; channels keep insertion-ordered member lists so the freeze
/// sweep visits flows in exactly the oracle's scan order.
struct Engine<'a> {
    topo: &'a Topology,
    rt: &'a RoutingTable,
    lookup: Option<&'a dyn PathSource>,
    mode: Progression,

    // Host schedules: per-host (dst, stage, bytes) lists with a cursor.
    msgs: Vec<Vec<(u32, u32, u64)>>,
    next_msg: Vec<usize>,
    stage_counts: Vec<u64>,
    current_stage: u32,
    stage_remaining: u64,

    // Flow SoA (reset per sync stage; grows monotonically in async mode).
    paths: Vec<u32>,
    path_off: Vec<u32>,
    path_len: Vec<u32>,
    remaining: Vec<f64>,
    rate: Vec<f64>,
    fbytes: Vec<u64>,
    fsrc: Vec<u32>,
    frozen_at: Vec<u64>,
    done: Vec<bool>,
    /// Unfinished flow ids in insertion order (stable compaction).
    alive: Vec<u32>,

    // Per-channel state, all sized num_channels and reset touched-only.
    capacity: Vec<f64>,
    residual: Vec<f64>,
    cnt: Vec<u32>,
    /// Unfinished flows crossing the channel (maintained across solves).
    live: Vec<u32>,
    share_bits: Vec<u64>,
    touch_gen: Vec<u64>,
    gen: u64,
    /// Member flows per channel, appended in flow-id order.
    ch_flows: Vec<Vec<u32>>,
    /// Channels with live flows (pruned lazily at solve start).
    active_ch: Vec<u32>,
    in_active: Vec<bool>,
    /// Channels whose `ch_flows` list is non-empty since the last stage
    /// reset — the only ones a reset must clear.
    listed_ch: Vec<u32>,
    in_listed: Vec<bool>,

    heap: BinaryHeap<Reverse<(u64, u32)>>,
    touched: Vec<u32>,
    finished_hosts: Vec<u32>,

    now: f64,
    total_payload: u64,
    completed: u64,
    solves: u64,
    skipped: u64,
    stalled: bool,
}

impl<'a> Engine<'a> {
    fn new(
        topo: &'a Topology,
        rt: &'a RoutingTable,
        cfg: &SimConfig,
        lookup: Option<&'a dyn PathSource>,
        mode: Progression,
    ) -> Self {
        let nc = topo.num_channels();
        let n = topo.num_hosts();
        Self {
            topo,
            rt,
            lookup,
            mode,
            msgs: vec![Vec::new(); n],
            next_msg: vec![0; n],
            stage_counts: Vec::new(),
            current_stage: 0,
            stage_remaining: 0,
            paths: Vec::new(),
            path_off: Vec::new(),
            path_len: Vec::new(),
            remaining: Vec::new(),
            rate: Vec::new(),
            fbytes: Vec::new(),
            fsrc: Vec::new(),
            frozen_at: Vec::new(),
            done: Vec::new(),
            alive: Vec::new(),
            capacity: build_capacities(topo, cfg),
            residual: vec![0.0; nc],
            cnt: vec![0; nc],
            live: vec![0; nc],
            share_bits: vec![0; nc],
            touch_gen: vec![0; nc],
            gen: 0,
            ch_flows: vec![Vec::new(); nc],
            active_ch: Vec::new(),
            in_active: vec![false; nc],
            listed_ch: Vec::new(),
            in_listed: vec![false; nc],
            heap: BinaryHeap::new(),
            touched: Vec::new(),
            finished_hosts: Vec::new(),
            now: 0.0,
            total_payload: 0,
            completed: 0,
            solves: 0,
            skipped: 0,
            stalled: false,
        }
    }

    fn ingest(&mut self, plan: &TrafficPlan) {
        self.stage_counts = vec![0u64; plan.stages().len()];
        for (s, flows) in plan.stages().iter().enumerate() {
            for (k, &(src, dst)) in flows.iter().enumerate() {
                if src != dst {
                    self.msgs[src as usize].push((dst, s as u32, plan.flow_bytes(s, k)));
                    self.stage_counts[s] += 1;
                }
            }
        }
    }

    /// Starts the host's next eligible message; skips (and counts)
    /// unroutable ones, trying the next message in its place.
    fn start_host(&mut self, h: usize) {
        while self.next_msg[h] < self.msgs[h].len() {
            let (dst, stage, bytes) = self.msgs[h][self.next_msg[h]];
            if self.mode == Progression::Synchronized && stage != self.current_stage {
                return;
            }
            self.next_msg[h] += 1;
            let off = self.paths.len();
            let routed = match self.lookup.and_then(|lk| lk.channels(h, dst as usize)) {
                Some(chs) => {
                    self.paths.extend_from_slice(chs);
                    Ok(())
                }
                None => {
                    let (rt, topo, buf) = (self.rt, self.topo, &mut self.paths);
                    rt.walk(topo, h, dst as usize, |c| buf.push(c.0))
                }
            };
            match routed {
                Ok(()) => {
                    self.register_flow(off, h, bytes);
                    return;
                }
                Err(RouteError::NoRoute { .. }) => {
                    // Same tolerance as `degraded_stage_hsd`: a missing
                    // entry on a degraded fabric skips the flow.
                    self.paths.truncate(off);
                    self.skipped += 1;
                    if self.mode == Progression::Synchronized {
                        self.stage_remaining -= 1;
                    }
                }
                Err(e) => panic!("fluid: structural routing error {h}->{dst}: {e}"),
            }
        }
    }

    fn register_flow(&mut self, off: usize, src: usize, bytes: u64) {
        let fi = self.path_off.len() as u32;
        self.path_off.push(off as u32);
        self.path_len.push((self.paths.len() - off) as u32);
        self.remaining.push(bytes as f64);
        self.rate.push(0.0);
        self.fbytes.push(bytes);
        self.fsrc.push(src as u32);
        self.frozen_at.push(0);
        self.done.push(false);
        self.alive.push(fi);
        for k in off..self.paths.len() {
            let c = self.paths[k] as usize;
            self.live[c] += 1;
            if !self.in_active[c] {
                self.in_active[c] = true;
                self.active_ch.push(c as u32);
            }
            if !self.in_listed[c] {
                self.in_listed[c] = true;
                self.listed_ch.push(c as u32);
            }
            self.ch_flows[c].push(fi);
        }
    }

    fn start_wave(&mut self) {
        for h in 0..self.msgs.len() {
            self.start_host(h);
        }
    }

    fn open_first(&mut self) {
        self.current_stage = match self.mode {
            Progression::Synchronized => {
                self.stage_counts.iter().position(|&c| c > 0).unwrap_or(0) as u32
            }
            Progression::Asynchronous => 0,
        };
        self.stage_remaining = self
            .stage_counts
            .get(self.current_stage as usize)
            .copied()
            .unwrap_or(0);
        self.start_wave();
        if self.mode == Progression::Synchronized && self.alive.is_empty() {
            // Every flow of the opening stage was unroutable.
            self.advance_sync_stage();
        }
    }

    /// Opens the next non-empty stage, skipping over stages whose flows
    /// are all unroutable. Called with no flows in flight, so the flow CSR
    /// and channel lists from the finished stage can be reclaimed.
    fn advance_sync_stage(&mut self) {
        loop {
            let next = self
                .stage_counts
                .iter()
                .enumerate()
                .find(|&(s, &c)| s as u32 > self.current_stage && c > 0);
            let Some((s, &c)) = next else { return };
            self.reset_stage();
            self.current_stage = s as u32;
            self.stage_remaining = c;
            self.start_wave();
            if !self.alive.is_empty() || self.stage_remaining > 0 {
                return;
            }
        }
    }

    /// Touched-only reclaim of per-stage flow state (sync mode only; async
    /// flows span the whole run).
    fn reset_stage(&mut self) {
        debug_assert!(self.alive.is_empty());
        self.paths.clear();
        self.path_off.clear();
        self.path_len.clear();
        self.remaining.clear();
        self.rate.clear();
        self.fbytes.clear();
        self.fsrc.clear();
        self.frozen_at.clear();
        self.done.clear();
        for i in 0..self.listed_ch.len() {
            let c = self.listed_ch[i] as usize;
            debug_assert_eq!(self.live[c], 0);
            self.ch_flows[c].clear();
            self.in_listed[c] = false;
        }
        self.listed_ch.clear();
        for i in 0..self.active_ch.len() {
            self.in_active[self.active_ch[i] as usize] = false;
        }
        self.active_ch.clear();
    }

    /// One max-min water-filling pass. Identical arithmetic and freeze
    /// order to the oracle: the heap pops the minimal `(share, channel)`
    /// pair — `f64::to_bits` is order-preserving for the non-negative
    /// finite shares produced here, and ties break toward the lower
    /// channel index exactly like the oracle's strict-`<` ascending scan.
    fn solve(&mut self) {
        self.solves += 1;
        let epoch = self.solves;
        self.heap.clear();
        let mut i = 0;
        while i < self.active_ch.len() {
            let c = self.active_ch[i] as usize;
            if self.live[c] == 0 {
                self.in_active[c] = false;
                self.active_ch.swap_remove(i);
                continue;
            }
            self.residual[c] = self.capacity[c];
            self.cnt[c] = self.live[c];
            let bits = (self.residual[c] / self.cnt[c] as f64).to_bits();
            self.share_bits[c] = bits;
            self.heap.push(Reverse((bits, c as u32)));
            i += 1;
        }
        let mut unfrozen = self.alive.len();
        while unfrozen > 0 {
            // Lazy deletion: entries whose channel was already exhausted
            // (cnt 0) or re-shared since the push are stale — skip them.
            let (bits, best_ch) = loop {
                let Reverse((b, c)) = self
                    .heap
                    .pop()
                    .expect("some channel carries every unfrozen flow");
                if self.cnt[c as usize] > 0 && self.share_bits[c as usize] == b {
                    break (b, c);
                }
            };
            let best_share = f64::from_bits(bits);
            self.gen += 1;
            let g = self.gen;
            self.touched.clear();
            // Freeze the bottleneck's members in flow-id order (== the
            // oracle's active-vector scan order), compacting out retired
            // flows as we go.
            let mut list = std::mem::take(&mut self.ch_flows[best_ch as usize]);
            let mut w = 0;
            for r in 0..list.len() {
                let fi = list[r] as usize;
                if self.done[fi] {
                    continue;
                }
                list[w] = fi as u32;
                w += 1;
                if self.frozen_at[fi] == epoch {
                    continue;
                }
                self.frozen_at[fi] = epoch;
                unfrozen -= 1;
                self.rate[fi] = best_share;
                let off = self.path_off[fi] as usize;
                let end = off + self.path_len[fi] as usize;
                for k in off..end {
                    let c = self.paths[k] as usize;
                    self.residual[c] = (self.residual[c] - best_share).max(0.0);
                    self.cnt[c] -= 1;
                    if self.touch_gen[c] != g {
                        self.touch_gen[c] = g;
                        self.touched.push(c as u32);
                    }
                }
            }
            list.truncate(w);
            self.ch_flows[best_ch as usize] = list;
            for t in 0..self.touched.len() {
                let c = self.touched[t] as usize;
                if self.cnt[c] > 0 {
                    let b = (self.residual[c] / self.cnt[c] as f64).to_bits();
                    self.share_bits[c] = b;
                    self.heap.push(Reverse((b, c as u32)));
                }
            }
        }
    }

    /// Advances to the earliest completion and retires every flow
    /// finishing at that instant in one pass. Returns false on a
    /// zero-rate stall.
    fn advance_and_retire(&mut self) -> bool {
        let mut dt = f64::INFINITY;
        for i in 0..self.alive.len() {
            let fi = self.alive[i] as usize;
            if self.rate[fi] > 0.0 {
                dt = dt.min(self.remaining[fi] / self.rate[fi]);
            }
        }
        if !dt.is_finite() {
            // Every active flow froze at rate 0 (capacity clamped to
            // zero along all paths). The oracle's debug_assert compiles
            // out in release and it spins forever; stop the clock.
            self.stalled = true;
            return false;
        }
        debug_assert!(dt >= 0.0);
        self.now += dt;
        self.finished_hosts.clear();
        let mut w = 0;
        for r in 0..self.alive.len() {
            let fi = self.alive[r] as usize;
            self.remaining[fi] -= self.rate[fi] * dt;
            if self.remaining[fi] <= 1e-6 * (self.fbytes[fi] as f64).max(1.0) {
                self.total_payload += self.fbytes[fi];
                self.completed += 1;
                self.finished_hosts.push(self.fsrc[fi]);
                self.done[fi] = true;
                let off = self.path_off[fi] as usize;
                let end = off + self.path_len[fi] as usize;
                for k in off..end {
                    self.live[self.paths[k] as usize] -= 1;
                }
            } else {
                self.alive[w] = fi as u32;
                w += 1;
            }
        }
        self.alive.truncate(w);
        true
    }

    fn progress(&mut self) {
        match self.mode {
            Progression::Asynchronous => {
                for i in 0..self.finished_hosts.len() {
                    let h = self.finished_hosts[i] as usize;
                    self.start_host(h);
                }
            }
            Progression::Synchronized => {
                self.stage_remaining -= self.finished_hosts.len() as u64;
                if self.stage_remaining == 0 && self.alive.is_empty() {
                    self.advance_sync_stage();
                }
            }
        }
    }

    fn finish(self, cfg: &SimConfig) -> FluidResult {
        let active_hosts = self.msgs.iter().filter(|m| !m.is_empty()).count().max(1);
        let max_host_bytes = self
            .msgs
            .iter()
            .map(|m| m.iter().map(|&(_, _, b)| b).sum::<u64>())
            .max()
            .unwrap_or(0);
        let now = self.now;
        let makespan = now as Time;
        let efficiency = if now <= 0.0 {
            0.0
        } else {
            (max_host_bytes * 1_000_000 / cfg.host_bw.mbps.max(1)) as f64 / now
        };
        let normalized_bw = if now <= 0.0 {
            0.0
        } else {
            (self.total_payload as f64 / now)
                / (active_hosts as f64 * cfg.host_bw.mbps as f64 / 1e6)
        };
        FluidResult {
            makespan,
            total_payload: self.total_payload,
            messages_completed: self.completed,
            normalized_bw,
            efficiency,
            solves: self.solves,
            flows_unroutable: self.skipped,
            stalled: self.stalled,
        }
    }
}

/// The original dense fluid solver, preserved verbatim as the equivalence
/// oracle for [`FluidSim`] (the repo's `OracleSim` pattern). O(channels)
/// per bottleneck pick and O(flows × path) per freeze sweep — run it only
/// at test scale.
pub struct OracleFluid;

struct Flow {
    /// Channels traversed.
    path: Vec<u32>,
    /// Bytes left to move.
    remaining: f64,
    /// Total payload of this message.
    bytes: u64,
    /// Source host (for schedule progression).
    src: u32,
    /// Current rate, bytes/ps.
    rate: f64,
}

struct HostSched {
    /// (dst, stage, bytes) message list.
    msgs: Vec<(u32, u32, u64)>,
    next: usize,
}

impl OracleFluid {
    /// Runs the fluid model over a traffic plan (reference implementation).
    pub fn run(
        topo: &Topology,
        rt: &RoutingTable,
        cfg: SimConfig,
        plan: &TrafficPlan,
    ) -> FluidResult {
        let n = topo.num_hosts();
        // Channel capacities in bytes/ps. Host-adjacent channels are
        // PCIe-bound in both directions.
        let mut capacity = vec![cfg.link_bw.mbps as f64 / 1e6; topo.num_channels()];
        for h in 0..n {
            let host = topo.host(h);
            for pp in &topo.node(host).up {
                let up = topo.channel(pp.link, ftree_topology::Direction::Up);
                let down = topo.channel(pp.link, ftree_topology::Direction::Down);
                capacity[up.index()] = cfg.host_bw.mbps as f64 / 1e6;
                capacity[down.index()] = cfg.host_bw.mbps as f64 / 1e6;
            }
        }

        let mut hosts: Vec<HostSched> = (0..n)
            .map(|_| HostSched {
                msgs: Vec::new(),
                next: 0,
            })
            .collect();
        let mut stage_counts = vec![0u64; plan.stages().len()];
        for (s, flows) in plan.stages().iter().enumerate() {
            for (k, &(src, dst)) in flows.iter().enumerate() {
                if src != dst {
                    hosts[src as usize]
                        .msgs
                        .push((dst, s as u32, plan.flow_bytes(s, k)));
                    stage_counts[s] += 1;
                }
            }
        }

        let mut active: Vec<Flow> = Vec::new();
        let mut now: f64 = 0.0;
        let mut total_payload = 0u64;
        let mut completed = 0u64;
        let mut solves = 0u64;
        let mut current_stage = match plan.mode {
            Progression::Synchronized => {
                stage_counts.iter().position(|&c| c > 0).unwrap_or(0) as u32
            }
            Progression::Asynchronous => 0,
        };
        let mut stage_remaining = stage_counts
            .get(current_stage as usize)
            .copied()
            .unwrap_or(0);

        // Start a host's next eligible message.
        let start_host = |hosts: &mut Vec<HostSched>,
                          active: &mut Vec<Flow>,
                          h: usize,
                          current_stage: u32,
                          mode: Progression| {
            let hs = &mut hosts[h];
            if hs.next >= hs.msgs.len() {
                return;
            }
            let (dst, stage, bytes) = hs.msgs[hs.next];
            if mode == Progression::Synchronized && stage != current_stage {
                return;
            }
            hs.next += 1;
            let path = rt
                .trace(topo, h, dst as usize)
                .expect("routable flow")
                .channels
                .iter()
                .map(|c| c.0)
                .collect();
            active.push(Flow {
                path,
                remaining: bytes as f64,
                bytes,
                src: h as u32,
                rate: 0.0,
            });
        };

        for h in 0..n {
            start_host(&mut hosts, &mut active, h, current_stage, plan.mode);
        }

        while !active.is_empty() {
            // Max-min fair allocation (water-filling).
            solves += 1;
            let mut residual = capacity.clone();
            let mut flows_on: Vec<u32> = vec![0; topo.num_channels()];
            for f in &active {
                for &ch in &f.path {
                    flows_on[ch as usize] += 1;
                }
            }
            let mut frozen = vec![false; active.len()];
            let mut remaining_flows = active.len();
            while remaining_flows > 0 {
                // Bottleneck: channel with the smallest fair share.
                let mut best_share = f64::INFINITY;
                let mut best_ch = usize::MAX;
                for (ch, &cnt) in flows_on.iter().enumerate() {
                    if cnt > 0 {
                        let share = residual[ch] / cnt as f64;
                        if share < best_share {
                            best_share = share;
                            best_ch = ch;
                        }
                    }
                }
                debug_assert!(best_ch != usize::MAX);
                // Freeze all unfrozen flows crossing the bottleneck.
                for (fi, f) in active.iter_mut().enumerate() {
                    if !frozen[fi] && f.path.contains(&(best_ch as u32)) {
                        frozen[fi] = true;
                        remaining_flows -= 1;
                        f.rate = best_share;
                        for &ch in &f.path {
                            residual[ch as usize] = (residual[ch as usize] - best_share).max(0.0);
                            flows_on[ch as usize] -= 1;
                        }
                    }
                }
            }

            // Advance to the earliest completion.
            let dt = active
                .iter()
                .map(|f| f.remaining / f.rate)
                .fold(f64::INFINITY, f64::min);
            debug_assert!(dt.is_finite() && dt >= 0.0);
            now += dt;
            let mut finished_hosts = Vec::new();
            active.retain_mut(|f| {
                f.remaining -= f.rate * dt;
                if f.remaining <= 1e-6 * (f.bytes as f64).max(1.0) {
                    total_payload += f.bytes;
                    completed += 1;
                    finished_hosts.push(f.src);
                    false
                } else {
                    true
                }
            });
            match plan.mode {
                Progression::Asynchronous => {
                    for h in finished_hosts {
                        start_host(
                            &mut hosts,
                            &mut active,
                            h as usize,
                            current_stage,
                            plan.mode,
                        );
                    }
                }
                Progression::Synchronized => {
                    stage_remaining -= finished_hosts.len() as u64;
                    if stage_remaining == 0 {
                        // Advance to the next non-empty stage.
                        let next = stage_counts
                            .iter()
                            .enumerate()
                            .find(|&(s, &c)| s as u32 > current_stage && c > 0);
                        if let Some((s, &c)) = next {
                            current_stage = s as u32;
                            stage_remaining = c;
                            for h in 0..n {
                                start_host(&mut hosts, &mut active, h, current_stage, plan.mode);
                            }
                        }
                    }
                }
            }
        }

        let active_hosts = hosts.iter().filter(|h| !h.msgs.is_empty()).count().max(1);
        let max_host_bytes = hosts
            .iter()
            .map(|h| h.msgs.iter().map(|&(_, _, b)| b).sum::<u64>())
            .max()
            .unwrap_or(0);
        let makespan = now as Time;
        let efficiency = if now <= 0.0 {
            0.0
        } else {
            (max_host_bytes * 1_000_000 / cfg.host_bw.mbps.max(1)) as f64 / now
        };
        let normalized_bw = if now <= 0.0 {
            0.0
        } else {
            (total_payload as f64 / now) / (active_hosts as f64 * cfg.host_bw.mbps as f64 / 1e6)
        };
        FluidResult {
            makespan,
            total_payload,
            messages_completed: completed,
            normalized_bw,
            efficiency,
            solves,
            flows_unroutable: 0,
            stalled: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficPlan;
    use ftree_core::{DModK, Router};
    use ftree_topology::rlft::catalog;
    use ftree_topology::Topology;

    fn fluid(
        topo: &Topology,
        stages: Vec<Vec<(u32, u32)>>,
        bytes: u64,
        mode: Progression,
    ) -> FluidResult {
        let rt = DModK.route_healthy(topo);
        let plan = TrafficPlan::uniform(stages, bytes, mode);
        run_fluid(topo, &rt, SimConfig::default(), &plan)
    }

    #[test]
    fn single_flow_runs_at_host_rate() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let r = fluid(
            &topo,
            vec![vec![(0, 9)]],
            3_250_000,
            Progression::Asynchronous,
        );
        // 3.25 MB at 3250 MB/s = 1 ms = 1e9 ps.
        assert_eq!(r.messages_completed, 1);
        let expected = 1_000_000_000u64;
        assert!(
            (r.makespan as i64 - expected as i64).unsigned_abs() < expected / 100,
            "makespan {} vs {expected}",
            r.makespan
        );
    }

    #[test]
    fn contention_free_permutation_is_full_rate() {
        let topo = Topology::build(catalog::nodes_128());
        let n = topo.num_hosts() as u32;
        let stage: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 5) % n)).collect();
        let r = fluid(&topo, vec![stage], 1 << 20, Progression::Synchronized);
        assert!(
            r.normalized_bw > 0.99,
            "expected line rate, got {}",
            r.normalized_bw
        );
    }

    #[test]
    fn shared_uplink_halves_rates() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        // dsts 4 and 8 share the leaf-0 up-port (both ≡ 0 mod 4): the two
        // flows split one 4000 MB/s link -> 2000 MB/s each, slower than the
        // 3250 MB/s host bound.
        let free = fluid(
            &topo,
            vec![vec![(0, 4), (1, 5)]],
            1 << 20,
            Progression::Synchronized,
        );
        let hot = fluid(
            &topo,
            vec![vec![(0, 4), (1, 8)]],
            1 << 20,
            Progression::Synchronized,
        );
        let ratio = hot.makespan as f64 / free.makespan as f64;
        assert!(
            (ratio - 3250.0 / 2000.0).abs() < 0.02,
            "expected PCIe/2000 slowdown, got {ratio}"
        );
    }

    #[test]
    fn async_mode_completes_all_messages() {
        let topo = Topology::build(catalog::nodes_128());
        let n = topo.num_hosts() as u32;
        let stages: Vec<Vec<(u32, u32)>> = (0..4)
            .map(|s| (0..n).map(|i| (i, (i + s + 1) % n)).collect())
            .collect();
        let r = fluid(&topo, stages, 1 << 16, Progression::Asynchronous);
        assert_eq!(r.messages_completed, 4 * 128);
        assert!(r.normalized_bw > 0.95, "{}", r.normalized_bw);
    }

    #[test]
    fn empty_plan() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let r = fluid(&topo, vec![], 1024, Progression::Synchronized);
        assert_eq!(r.messages_completed, 0);
        assert_eq!(r.makespan, 0);
    }

    #[test]
    fn production_matches_oracle_bitwise_smoke() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let rt = DModK.route_healthy(&topo);
        let n = topo.num_hosts() as u32;
        for mode in [Progression::Synchronized, Progression::Asynchronous] {
            let stages: Vec<Vec<(u32, u32)>> = (0..3)
                .map(|s| (0..n).map(|i| (i, (i + s + 1) % n)).collect())
                .collect();
            let plan = TrafficPlan::uniform(stages, 1 << 18, mode);
            let a = OracleFluid::run(&topo, &rt, SimConfig::default(), &plan);
            let b = run_fluid(&topo, &rt, SimConfig::default(), &plan);
            assert_eq!(a.makespan, b.makespan);
            assert_eq!(a.total_payload, b.total_payload);
            assert_eq!(a.messages_completed, b.messages_completed);
            assert_eq!(a.solves, b.solves);
            assert_eq!(a.normalized_bw.to_bits(), b.normalized_bw.to_bits());
            assert_eq!(a.efficiency.to_bits(), b.efficiency.to_bits());
        }
    }

    #[test]
    fn zero_bandwidth_fabric_stalls_instead_of_hanging() {
        use crate::config::Bandwidth;
        let topo = Topology::build(catalog::fig4_pgft_16());
        let rt = DModK.route_healthy(&topo);
        let cfg = SimConfig {
            link_bw: Bandwidth { mbps: 0 },
            host_bw: Bandwidth { mbps: 0 },
            ..SimConfig::default()
        };
        let plan = TrafficPlan::uniform(
            vec![vec![(0, 4), (1, 5)]],
            1 << 16,
            Progression::Synchronized,
        );
        // The oracle spins forever on this input in release builds.
        let r = run_fluid(&topo, &rt, cfg, &plan);
        assert!(r.stalled);
        assert_eq!(r.messages_completed, 0);
    }

    #[test]
    fn unroutable_flows_are_skipped_and_counted() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let empty = RoutingTable::empty(&topo, "none");
        let n = topo.num_hosts() as u32;
        for mode in [Progression::Synchronized, Progression::Asynchronous] {
            let stages: Vec<Vec<(u32, u32)>> = (0..2)
                .map(|s| (0..n).map(|i| (i, (i + s + 1) % n)).collect())
                .collect();
            let plan = TrafficPlan::uniform(stages, 1 << 16, mode);
            let r = run_fluid(&topo, &empty, SimConfig::default(), &plan);
            assert_eq!(r.messages_completed, 0);
            assert_eq!(r.flows_unroutable, 2 * n as u64);
            assert_eq!(r.makespan, 0);
            assert!(!r.stalled);
        }
    }

    #[test]
    fn path_source_injection_is_bit_identical_to_walk() {
        use std::collections::HashMap;
        struct MapPaths(HashMap<(usize, usize), Vec<u32>>);
        impl PathSource for MapPaths {
            fn channels(&self, src: usize, dst: usize) -> Option<&[u32]> {
                self.0.get(&(src, dst)).map(|v| v.as_slice())
            }
        }
        let topo = Topology::build(catalog::fig4_pgft_16());
        let rt = DModK.route_healthy(&topo);
        let n = topo.num_hosts();
        let mut map = HashMap::new();
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    let p = rt.trace(&topo, s, d).unwrap();
                    map.insert((s, d), p.channels.iter().map(|c| c.0).collect());
                }
            }
        }
        let src = MapPaths(map);
        let stages: Vec<Vec<(u32, u32)>> = (0..3)
            .map(|s| (0..n as u32).map(|i| (i, (i + s + 1) % n as u32)).collect())
            .collect();
        let plan = TrafficPlan::uniform(stages, 1 << 18, Progression::Synchronized);
        let walk = FluidSim::new(&topo, &rt, SimConfig::default()).run(&plan);
        let cached = FluidSim::new(&topo, &rt, SimConfig::default())
            .with_paths(&src)
            .run(&plan);
        assert_eq!(walk.makespan, cached.makespan);
        assert_eq!(walk.solves, cached.solves);
        assert_eq!(walk.normalized_bw.to_bits(), cached.normalized_bw.to_bits());
    }
}
