//! Fabric lifecycle configuration: what the packet simulator does when
//! cables die and come back mid-run.
//!
//! A [`FabricLifecycle`] bundles a [`FaultSchedule`] (the scripted timeline
//! of link fail/recover events) with the reaction parameters:
//!
//! * the subnet manager sweeps `sweep_delay` after each event batch and
//!   repairs the routing table incrementally (see `ftree_core::sm`),
//! * hosts arm a retransmission timer when the last packet of a message
//!   hits the wire; an undelivered message is resent whole, with capped
//!   exponential backoff, up to `max_retries` attempts.
//!
//! Between the physical failure and the repairing sweep the fabric has a
//! *blackhole window*: packets routed onto the dead cable are lost and the
//! sender's timeout is the only recovery. That window — not the reroute
//! itself — dominates the time-to-heal, which is why `sweep_delay` is a
//! first-class knob.

use ftree_core::RoutingAlgo;
use ftree_topology::{ChaosSchedule, DegradeEvent, FaultSchedule, Topology, TopologyError};

use crate::config::{Time, MICROSECOND};

/// Lifecycle parameters for a dynamic-fabric simulation.
#[derive(Debug, Clone)]
pub struct FabricLifecycle {
    /// Timed link fail/recover events, played against the live fabric.
    pub schedule: FaultSchedule,
    /// Timed link degradations (slowdown + probabilistic loss on alive
    /// cables), sorted by `(time, link)`. Degradations affect only the data
    /// plane — the subnet manager never reroutes around a slow link.
    pub degradations: Vec<DegradeEvent>,
    /// Routing engine the embedded subnet manager drives (default
    /// [`RoutingAlgo::DModK`], whose repair is incremental and exact).
    pub algo: RoutingAlgo,
    /// Delay between a link event and the subnet-manager sweep that repairs
    /// the routing table (discovery + recompute + LFT programming).
    pub sweep_delay: Time,
    /// Base retransmission timeout, armed when a message's last packet is
    /// handed to the wire.
    pub retransmit_timeout: Time,
    /// Exponential-backoff cap: attempt `a` waits
    /// `retransmit_timeout << min(a, backoff_cap)`.
    pub backoff_cap: u32,
    /// Give up on a message after this many retransmissions (it is counted
    /// as lost, and in synchronized mode the stage barrier is released).
    pub max_retries: u32,
}

impl FabricLifecycle {
    /// Lifecycle with production-flavored defaults: D-Mod-K routing, 5 µs
    /// sweeps, 50 µs base timeout, backoff capped at 64x, 12 attempts.
    pub fn new(schedule: FaultSchedule) -> Self {
        Self {
            schedule,
            degradations: Vec::new(),
            algo: RoutingAlgo::DModK,
            sweep_delay: 5 * MICROSECOND,
            retransmit_timeout: 50 * MICROSECOND,
            backoff_cap: 6,
            max_retries: 12,
        }
    }

    /// Builds a lifecycle from a typed chaos scenario: hard faults become
    /// the schedule, degradations the data-plane slowdown/loss timeline.
    pub fn from_chaos(topo: &Topology, chaos: &ChaosSchedule) -> Result<Self, TopologyError> {
        let lowered = chaos.lower(topo)?;
        Ok(Self::new(lowered.faults).with_degradations(lowered.degradations))
    }

    /// Same lifecycle, driving a different routing engine.
    pub fn with_algo(mut self, algo: RoutingAlgo) -> Self {
        self.algo = algo;
        self
    }

    /// Same lifecycle with a degradation timeline (re-sorted by
    /// `(time, link)` so the simulator can replay it with a cursor).
    pub fn with_degradations(mut self, mut degradations: Vec<DegradeEvent>) -> Self {
        degradations.sort_by_key(|d| (d.time, d.link));
        self.degradations = degradations;
        self
    }

    /// Retransmission timeout for the given attempt (0 = first send), with
    /// capped exponential backoff.
    pub fn rto(&self, attempt: u32) -> Time {
        self.retransmit_timeout << attempt.min(self.backoff_cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let lc = FabricLifecycle::new(FaultSchedule::empty());
        let base = lc.retransmit_timeout;
        assert_eq!(lc.rto(0), base);
        assert_eq!(lc.rto(1), 2 * base);
        assert_eq!(lc.rto(6), 64 * base);
        assert_eq!(lc.rto(7), 64 * base, "capped");
        assert_eq!(lc.rto(u32::MAX), 64 * base);
    }
}
