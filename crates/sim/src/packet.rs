//! Production packet engine: calendar-queue scheduler, SoA state, and an
//! optional sharded-parallel mode.
//!
//! Behaviorally this is the same simulator as [`crate::OracleSim`] — an
//! input-buffered, credit-flow-controlled InfiniBand-like fabric (paper
//! Sec. II) — rebuilt for raw event throughput:
//!
//! * the `BinaryHeap<Event>` scheduler is replaced by a
//!   [`CalendarQueue`](crate::calendar::CalendarQueue) with amortized O(1)
//!   push/pop (events cluster within a few serialization times of `now`),
//! * per-channel state is one packed 32-byte cache-aligned record
//!   (`ChState`: busy deadline, occupancy, intrusive wait-queue and
//!   buffer-list heads, flag bits) in a flat `Vec` — one cache line per
//!   event touch instead of a line per field; waiters are tag-packed
//!   `u64`s in a free-list pool with parked VOQ packets in a side pool;
//!   packets otherwise travel *by value* inside events and intrusive
//!   buffer lists, eliminating the packet slab and its pointer chasing,
//! * per-message serialization times are precomputed, removing the
//!   byte→time division from the hot path,
//! * the serial path fuses each grant's `ChannelFree` + `DrainDone` pair
//!   (always co-scheduled at the departure instant with adjacent seqs)
//!   into one calendar entry, and grants an idle uncontended channel
//!   directly instead of round-tripping through its wait queue,
//! * [`PacketSim::with_shards`] enables conservative-lookahead parallel
//!   execution: nodes are sharded, and all shards advance independently
//!   through windows of the minimum packet serialization time (the safe
//!   horizon), merging newly scheduled events at a barrier in global
//!   `(time, seq)` order so results stay bit-identical to the serial run.
//!
//! Every optimization is pinned by bit-identity suites against the
//! preserved oracle (`tests/engine_oracle.rs`) and by the golden NDJSON /
//! recorder-perturbation tests: `SimResult` (including `channel_busy` and
//! the `f64` metrics compared via `to_bits`), recorder event streams, and
//! telemetry buckets are exactly those of the original engine.
//!
//! # Sharded mode and its safety argument (DESIGN 4.13)
//!
//! Every event handler's mutable footprint is local to one *anchor* node:
//! `Arrival{ch}` touches only state of `target(ch)`, `ChannelFree{ch}` and
//! `DrainDone{ch}` only state of `source(ch)`, `HostKick{h}` only host
//! `h`'s node. This locality is achieved by replacing the oracle's
//! target-side credit count (`buffer.len() + reserved`) with a
//! source-side occupancy counter `occ[ch]` (incremented on grant,
//! decremented on `DrainDone`, unchanged by arrivals), and by carrying
//! the message start time inside each packet instead of reading the
//! sender's `msg_start` at delivery. Within a lookahead window
//! `[T, T + L)` (`L` = minimum serialization time over all packet sizes),
//! shards only process events whose handlers commute across shards, and
//! every newly scheduled event lands at `>= now + L >= T + L`, i.e. in a
//! later window. The barrier merges each window's new events in global
//! parent `(time, seq)` order and assigns sequence numbers exactly as the
//! serial engine would, so the sharded run is event-for-event identical.
//!
//! Runs that need global state — lifecycle/chaos schedules, synchronized
//! progression, an attached recorder, or telemetry — silently fall back
//! to the (still calendar-queue-fast) serial path; VOQ switches and host
//! jitter are parallel-safe.

use std::sync::Arc;

use ftree_core::SubnetManager;
use ftree_obs::{ChannelTimeSeries, ObsEvent, Recorder, SpanAttrs, SpanId, TimeSeriesConfig};
use ftree_topology::{
    ChannelId, LinkEventKind, LinkFailures, NextChannelTable, NodeId, RoutingTable, Topology,
    TopologyError,
};

use crate::calendar::{CalEntry, CalendarQueue};
use crate::config::{jitter_ps, SimConfig, SwitchModel, Time};
use crate::lifecycle::FabricLifecycle;
use crate::result::drop_roll;
pub use crate::result::SimResult;
use crate::traffic::{Progression, TrafficPlan};

const NONE: u32 = u32::MAX;

// Event kinds (same semantics as the oracle's `EventKind` variants).
const K_ARRIVAL: u8 = 0;
const K_CH_FREE: u8 = 1;
const K_DRAIN: u8 = 2;
const K_KICK: u8 = 3;
const K_FABRIC: u8 = 4;
const K_SWEEP: u8 = 5;
const K_RETX: u8 = 6;
/// Fused `ChannelFree` + `DrainDone` (serial engine only): a switch-hop
/// grant emits both at the same departure instant with consecutive
/// sequence numbers, so no other event can ever interleave between them.
/// One queue entry carries both; its handler runs the two bodies in seq
/// order and counts two processed events. Cuts calendar traffic on the
/// dominant grant path by a third without touching observable order.
const K_FREE_DRAIN: u8 = 7;

/// A packet, carried by value through events and input buffers.
#[derive(Debug, Clone, Copy, Default)]
struct Pkt {
    dst: u32,
    src: u32,
    /// Per-host message index (schedule position of the sender).
    msg: u32,
    size: u32,
    /// bit 0: is_last; bits 1..: send attempt.
    meta: u32,
    /// Message start time (first-bit-out), carried so delivery-side latency
    /// accounting never reads sender-shard state.
    start: Time,
}

impl Pkt {
    #[inline]
    fn is_last(self) -> bool {
        self.meta & 1 != 0
    }
    #[inline]
    fn attempt(self) -> u32 {
        self.meta >> 1
    }
}

/// A scheduled event. `a` is the channel (`Arrival`/`ChannelFree`/
/// `DrainDone`) or host (`HostKick`/`RetransmitCheck`); retransmit checks
/// reuse `pkt.msg` for the message and `pkt.size` for the attempt.
#[derive(Debug, Clone, Copy)]
struct Ev {
    time: Time,
    seq: u64,
    a: u32,
    kind: u8,
    pkt: Pkt,
}

impl CalEntry for Ev {
    #[inline]
    fn cal_key(&self) -> (u64, u64) {
        (self.time, self.seq)
    }
}

/// An event emitted during a parallel window, before its global sequence
/// number is known (assigned at the barrier).
#[derive(Debug, Clone, Copy)]
struct PendEv {
    time: Time,
    a: u32,
    kind: u8,
    pkt: Pkt,
}

/// Slab of intrusively linked list nodes: `.1` is the next index, reused
/// as the free-list link when released.
#[derive(Debug)]
struct Pool<T> {
    slots: Vec<(T, u32)>,
    free: u32,
}

impl<T: Copy> Pool<T> {
    fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: NONE,
        }
    }

    #[inline]
    fn alloc(&mut self, v: T) -> u32 {
        if self.free != NONE {
            let id = self.free;
            self.free = self.slots[id as usize].1;
            self.slots[id as usize] = (v, NONE);
            id
        } else {
            self.slots.push((v, NONE));
            (self.slots.len() - 1) as u32
        }
    }

    #[inline]
    fn release(&mut self, id: u32) {
        self.slots[id as usize].1 = self.free;
        self.free = id;
    }

    /// Pops node `id`, returning its value and next link.
    #[inline]
    fn take(&mut self, id: u32) -> (T, u32) {
        let (v, next) = self.slots[id as usize];
        self.release(id);
        (v, next)
    }
}

/// `ChState.flags` bit: the egress channel is serializing a packet.
const F_BUSY: u8 = 1;
/// `ChState.flags` bit: the input FIFO's head has an outstanding request.
const F_HEAD_REQ: u8 = 2;

/// Hot mutable per-channel state. An event handler touches two or three
/// channels (the arrival channel, its input buffer, the granted egress),
/// and with one field per array that cost one cache line per *field* per
/// channel. Packing every hot field into 32 aligned bytes makes it one
/// line per *channel* — the difference between ~15 and ~4 potential
/// misses per event once the fabric outgrows L2.
#[derive(Debug, Clone, Copy)]
#[repr(align(32))]
struct ChState {
    /// Cumulative busy time (the `channel_busy` result column).
    busy_ps: Time,
    /// Source-side occupancy of the channel's target buffer
    /// (== oracle's `buffer.len() + reserved`).
    occ: u32,
    /// Intrusive waiter-queue head/tail (`NONE` when empty).
    wq_head: u32,
    wq_tail: u32,
    /// Ring position (0..cap) of the input FIFO's head packet.
    buf_head: u32,
    /// Input FIFO depth.
    buf_len: u32,
    /// [`F_BUSY`] | [`F_HEAD_REQ`].
    flags: u8,
}

impl ChState {
    const EMPTY: ChState = ChState {
        busy_ps: 0,
        occ: 0,
        wq_head: NONE,
        wq_tail: NONE,
        buf_head: 0,
        buf_len: 0,
        flags: 0,
    };

    #[inline]
    fn busy(&self) -> bool {
        self.flags & F_BUSY != 0
    }

    #[inline]
    fn head_req(&self) -> bool {
        self.flags & F_HEAD_REQ != 0
    }
}

/// A grant request queued at an egress channel, packed into a `u64` so a
/// pool slot is 16 bytes (four per cache line) instead of a 48-byte
/// struct: bits 0..32 the requester id `a`, bits 32..34 the tag
/// (0 = host `a` injection, 1 = head of input FIFO `a`, 2 = VOQ resident
/// packet from input `a`), bits 34..64 the side-slab slot of the carried
/// packet (tag 2 only — the InputFifo hot path never allocates one).
type Waiter = u64;

const TAG_HOST: u8 = 0;
const TAG_INPUT: u8 = 1;
const TAG_PACKET: u8 = 2;

#[inline]
fn waiter_pack(tag: u8, a: u32, pkt_slot: u32) -> Waiter {
    a as u64 | ((tag as u64) << 32) | ((pkt_slot as u64) << 34)
}

#[inline]
fn waiter_unpack(w: Waiter) -> (u8, u32, u32) {
    (((w >> 32) & 3) as u8, w as u32, (w >> 34) as u32)
}

/// Immutable per-run precomputation: flattened schedules, channel
/// geometry, and serialization tables (all divisions done up front).
#[derive(Debug)]
struct Prep {
    num_hosts: usize,
    num_channels: usize,
    /// Channel target node id.
    ch_target: Vec<u32>,
    /// Channel source node id (shard anchoring).
    ch_src: Vec<u32>,
    ch_link: Vec<u32>,
    /// Target has a finite input buffer (i.e. is a switch).
    ch_finite: Vec<bool>,
    /// Host id → node id.
    host_node: Vec<u32>,
    /// Input-buffer credits per finite channel.
    cap: u32,
    mtu: u32,
    /// wire + switch latency per hop.
    hdr_lat: Time,
    host_ser_mtu: Time,
    link_ser_mtu: Time,
    /// Conservative parallel lookahead: minimum serialization time of any
    /// packet the plan can produce.
    lookahead: Time,
    /// Host h's messages are the global indices `msg_base[h]..msg_base[h+1]`.
    msg_base: Vec<u32>,
    msg_dst: Vec<u32>,
    msg_bytes: Vec<u64>,
    msg_stage: Vec<u32>,
    msg_pkts: Vec<u64>,
    msg_last_size: Vec<u32>,
    msg_host_ser_last: Vec<Time>,
    msg_link_ser_last: Vec<Time>,
    stage_message_counts: Vec<u64>,
    num_stages: u32,
    max_host_bytes: u64,
    n_active: usize,
    has_degradations: bool,
}

/// Shared read-only view handed to every shard worker.
#[derive(Clone, Copy)]
struct Shared<'s> {
    topo: &'s Topology,
    rt: Option<&'s RoutingTable>,
    tbl: Option<&'s NextChannelTable>,
    cfg: &'s SimConfig,
    mode: Progression,
    prep: &'s Prep,
}

impl<'s> Shared<'s> {
    #[inline]
    fn gmsg(&self, host: u32, msg: u32) -> usize {
        (self.prep.msg_base[host as usize] + msg) as usize
    }
}

/// Per-shard mutable simulation state. The serial engine is exactly one
/// `Core` owning every node; shard workers own disjoint entries of the
/// same (full-sized) arrays, per the anchoring rules in the module doc.
struct Core {
    cal: CalendarQueue<Ev>,
    now: Time,
    /// Parallel-window emission mode: buffer children in `out` (sequenced
    /// at the barrier) instead of pushing them with `seq` directly.
    collect: bool,
    out: Vec<PendEv>,
    /// `(time, seq, children)` per event processed in the current window.
    parents: Vec<(Time, u64, u32)>,
    /// Serial-mode sequence counter (the driver owns it in parallel mode).
    seq: u64,
    // --- channels: hot state packed per channel ---
    ch: Vec<ChState>,
    /// Input-buffer ring capacity per channel (== credits).
    cap: usize,
    waiters: Pool<Waiter>,
    /// Side slab for packets carried by VOQ waiters (tag 2).
    voq_pkts: Pool<Pkt>,
    /// Flat per-channel packet rings: channel `c` owns
    /// `bufs[c * cap .. (c + 1) * cap]`. Credit flow control bounds each
    /// FIFO at `cap`, so fixed rings replace a linked slab — contiguous,
    /// no free-list walk, prefetchable.
    bufs: Vec<Pkt>,
    // --- hosts ---
    h_next: Vec<u32>,
    h_cur_msg: Vec<u32>,
    h_cur_left: Vec<u64>,
    h_active: Vec<bool>,
    /// Per-host retransmit FIFO heads/tails into `retx_pool` — a free-list
    /// slab instead of a `VecDeque` per host, so retransmissions under
    /// drop storms reuse nodes instead of allocating per queue.
    h_retx_head: Vec<u32>,
    h_retx_tail: Vec<u32>,
    retx_pool: Pool<u32>,
    /// Start time per global message index.
    msg_start: Vec<Time>,
    // --- metrics ---
    events_processed: u64,
    delivered: u64,
    total_payload: u64,
    last_delivery: Time,
    latency_sum: u128,
    latency_max: Time,
    packets_dropped: u64,
    packets_dropped_degraded: u64,
    retransmits: u64,
    messages_lost: u64,
    messages_lost_unreachable: u64,
    duplicate_payload: u64,
    // --- serial-only features (None/empty on parallel workers) ---
    lifecycle: Option<FabricLifecycle>,
    sm: Option<SubnetManager>,
    phys: LinkFailures,
    phys_cursor: usize,
    degrade_cursor: usize,
    link_latency_mult: Vec<u32>,
    link_drop_ppm: Vec<u32>,
    drop_rolls: u64,
    msg_attempt: Vec<u32>,
    msg_rx: Vec<u64>,
    msg_done: Vec<bool>,
    recorder: Option<Arc<Recorder>>,
    msg_span: Vec<u64>,
    telemetry: Option<ChannelTimeSeries>,
    // --- synchronized-mode bookkeeping ---
    stage_remaining: u64,
    current_stage: u32,
}

impl Core {
    fn new(sh: &Shared) -> Self {
        let nc = sh.prep.num_channels;
        let nh = sh.prep.num_hosts;
        // Calibrated on the paper-scale topologies (nodes_1728/nodes_1944,
        // QDR timing): 2 ns days keep sorted runs around 10^2 entries even
        // at 1944-host event density, and 2048 days span 4.2 us — several
        // MTU serializations — so in-horizon events stay inside the year
        // and only timers/jitter kicks ride the overflow list.
        let cal = CalendarQueue::new(2048, 2048);
        let cap = sh.prep.cap.max(1) as usize;
        Core {
            cal,
            now: 0,
            collect: false,
            out: Vec::new(),
            parents: Vec::new(),
            seq: 0,
            ch: vec![ChState::EMPTY; nc],
            cap,
            waiters: Pool::new(),
            voq_pkts: Pool::new(),
            bufs: vec![Pkt::default(); nc * cap],
            h_next: vec![0; nh],
            h_cur_msg: vec![NONE; nh],
            h_cur_left: vec![0; nh],
            h_active: vec![false; nh],
            h_retx_head: vec![NONE; nh],
            h_retx_tail: vec![NONE; nh],
            retx_pool: Pool::new(),
            msg_start: vec![0; sh.prep.msg_dst.len()],
            events_processed: 0,
            delivered: 0,
            total_payload: 0,
            last_delivery: 0,
            latency_sum: 0,
            latency_max: 0,
            packets_dropped: 0,
            packets_dropped_degraded: 0,
            retransmits: 0,
            messages_lost: 0,
            messages_lost_unreachable: 0,
            duplicate_payload: 0,
            lifecycle: None,
            sm: None,
            phys: LinkFailures::none(sh.topo),
            phys_cursor: 0,
            degrade_cursor: 0,
            link_latency_mult: Vec::new(),
            link_drop_ppm: Vec::new(),
            drop_rolls: 0,
            msg_attempt: Vec::new(),
            msg_rx: Vec::new(),
            msg_done: Vec::new(),
            recorder: None,
            msg_span: Vec::new(),
            telemetry: None,
            stage_remaining: 0,
            current_stage: 0,
        }
    }

    /// Schedules an event: sequenced immediately in serial mode, buffered
    /// for barrier sequencing during a parallel window.
    #[inline]
    fn emit(&mut self, time: Time, kind: u8, a: u32, pkt: Pkt) {
        if self.collect {
            self.out.push(PendEv { time, a, kind, pkt });
        } else {
            self.cal.push(Ev {
                time,
                seq: self.seq,
                a,
                kind,
                pkt,
            });
            self.seq += 1;
        }
    }

    /// Emits the `ChannelFree(e)` / `DrainDone(i)` pair of a switch-hop
    /// grant. Serial mode fuses them into one [`K_FREE_DRAIN`] entry
    /// (consuming both sequence numbers); parallel windows keep them
    /// separate because the two halves anchor to different shards.
    #[inline]
    fn emit_free_drain(&mut self, time: Time, e: u32, i: u32) {
        if self.collect {
            self.emit(time, K_CH_FREE, e, Pkt::default());
            self.emit(time, K_DRAIN, i, Pkt::default());
        } else {
            self.cal.push(Ev {
                time,
                seq: self.seq,
                a: e,
                kind: K_FREE_DRAIN,
                pkt: Pkt {
                    msg: i,
                    ..Pkt::default()
                },
            });
            self.seq += 2;
        }
    }

    // --- intrusive per-channel queues ---

    #[inline]
    fn wq_push(&mut self, ch: u32, w: Waiter) {
        let id = self.waiters.alloc(w);
        let t = self.ch[ch as usize].wq_tail;
        if t == NONE {
            self.ch[ch as usize].wq_head = id;
        } else {
            self.waiters.slots[t as usize].1 = id;
        }
        self.ch[ch as usize].wq_tail = id;
    }

    #[inline]
    fn wq_pop(&mut self, ch: u32) -> Waiter {
        let id = self.ch[ch as usize].wq_head;
        let (w, next) = self.waiters.slots[id as usize];
        self.ch[ch as usize].wq_head = next;
        if next == NONE {
            self.ch[ch as usize].wq_tail = NONE;
        }
        self.waiters.release(id);
        w
    }

    #[inline]
    fn buf_push(&mut self, ch: u32, pkt: Pkt) {
        let c = ch as usize;
        let st = &mut self.ch[c];
        let len = st.buf_len;
        debug_assert!(len < self.cap as u32, "credit flow control violated");
        let mut pos = st.buf_head + len;
        if pos >= self.cap as u32 {
            pos -= self.cap as u32;
        }
        st.buf_len = len + 1;
        self.bufs[c * self.cap + pos as usize] = pkt;
    }

    #[inline]
    fn buf_front(&self, ch: u32) -> Option<Pkt> {
        let c = ch as usize;
        let st = &self.ch[c];
        (st.buf_len > 0).then(|| self.bufs[c * self.cap + st.buf_head as usize])
    }

    #[inline]
    fn buf_pop(&mut self, ch: u32) -> Pkt {
        let c = ch as usize;
        let st = &mut self.ch[c];
        let head = st.buf_head;
        st.buf_head = if head + 1 == self.cap as u32 {
            0
        } else {
            head + 1
        };
        st.buf_len -= 1;
        self.bufs[c * self.cap + head as usize]
    }

    // --- routing and timing ---

    /// The routing table in force right now (the SM's live table in
    /// lifecycle runs, the caller's static table otherwise).
    #[inline]
    fn route<'s>(&'s self, sh: &Shared<'s>) -> &'s RoutingTable {
        match &self.sm {
            Some(sm) => sm.table(),
            None => sh.rt.expect("static simulation always has a table"),
        }
    }

    /// Serialization time scaled by the link degradation multiplier (the
    /// base time when no degradations are configured — the common case).
    #[inline]
    fn xfer(&self, sh: &Shared, e: u32, base: Time) -> Time {
        if self.link_latency_mult.is_empty() {
            return base;
        }
        base * self.link_latency_mult[sh.prep.ch_link[e as usize] as usize] as Time
    }

    #[inline]
    fn has_credit(&self, sh: &Shared, ch: u32) -> bool {
        !sh.prep.ch_finite[ch as usize] || self.ch[ch as usize].occ < sh.prep.cap
    }

    /// Host `h`'s up-channel toward `dst` (`None` when a multi-cabled host
    /// currently has no route — lifecycle runs only).
    fn host_channel(&self, sh: &Shared, h: u32, dst: u32) -> Option<u32> {
        let node = NodeId(sh.prep.host_node[h as usize]);
        if let Some(tbl) = sh.tbl {
            return tbl.next_channel(node, dst as usize).map(|ch| ch.0);
        }
        let port = self.route(sh).egress(node, dst as usize)?;
        Some(sh.topo.egress_channel(node, port).0)
    }

    /// Egress channel a resident packet needs at node `here` (`None` when
    /// the LFT entry is currently cleared — a lifecycle blackhole). With
    /// route-decision recording enabled the cache stays in force: the
    /// `RouteDecision` event is synthesized from the cached channel's
    /// source port, byte-identical to the slow path's.
    fn egress_for(&mut self, sh: &Shared, here: u32, dst: u32) -> Option<u32> {
        let route_events = self
            .recorder
            .as_ref()
            .is_some_and(|rec| rec.route_events_enabled());
        if let Some(tbl) = sh.tbl {
            let ch = tbl.next_channel(NodeId(here), dst as usize)?;
            if route_events {
                let (_, port) = sh.topo.channel_source(ch);
                if let Some(rec) = &self.recorder {
                    rec.record(ObsEvent::RouteDecision {
                        t: self.now,
                        node: here,
                        dst,
                        port: format!("{port:?}"),
                    });
                }
            }
            return Some(ch.0);
        }
        let port = self.route(sh).egress(NodeId(here), dst as usize)?;
        if route_events {
            if let Some(rec) = &self.recorder {
                rec.record(ObsEvent::RouteDecision {
                    t: self.now,
                    node: here,
                    dst,
                    port: format!("{port:?}"),
                });
            }
        }
        Some(sh.topo.egress_channel(NodeId(here), port).0)
    }

    // --- message spans (recorder runs only) ---

    fn begin_msg_span(&mut self, sh: &Shared, h: u32, msg: u32) {
        let Some(rec) = &self.recorder else { return };
        let g = sh.gmsg(h, msg);
        let mut attrs = SpanAttrs::new();
        attrs.insert("src".to_string(), h.into());
        attrs.insert("dst".to_string(), sh.prep.msg_dst[g].into());
        attrs.insert("msg".to_string(), msg.into());
        attrs.insert("bytes".to_string(), sh.prep.msg_bytes[g].into());
        attrs.insert("stage".to_string(), sh.prep.msg_stage[g].into());
        let id = rec.span_begin_at(self.now, "message", SpanId::NONE, attrs);
        self.msg_span[g] = id.0;
    }

    fn end_msg_span(&mut self, sh: &Shared, src: u32, msg: u32, outcome: &str) {
        let Some(rec) = &self.recorder else { return };
        let Some(&id) = self.msg_span.get(sh.gmsg(src, msg)) else {
            return;
        };
        if id == 0 {
            return;
        }
        let mut attrs = SpanAttrs::new();
        attrs.insert("outcome".to_string(), outcome.into());
        if !self.msg_attempt.is_empty() {
            let attempts = self.msg_attempt[sh.gmsg(src, msg)] + 1;
            attrs.insert("attempts".to_string(), attempts.into());
        }
        rec.span_end_at_with(self.now, SpanId(id), attrs);
    }

    // --- host progression and arbitration ---

    /// Kicks host `h`: if it has a startable message (a retransmission, a
    /// mid-send message, or the next fresh one), request its up-channel.
    fn host_request(&mut self, sh: &Shared, h: u32) {
        let hi = h as usize;
        if self.h_active[hi] {
            return;
        }
        if self.h_cur_msg[hi] == NONE {
            // Select the next sending unit: retransmissions first (they
            // bypass the stage barrier — their stage is already open), then
            // the next fresh message.
            if self.h_retx_head[hi] != NONE {
                let (msg, next) = self.retx_pool.take(self.h_retx_head[hi]);
                self.h_retx_head[hi] = next;
                if next == NONE {
                    self.h_retx_tail[hi] = NONE;
                }
                self.h_cur_msg[hi] = msg;
                self.h_cur_left[hi] = sh.prep.msg_pkts[sh.gmsg(h, msg)];
            } else {
                let next = self.h_next[hi];
                let g = sh.prep.msg_base[hi] + next;
                if g >= sh.prep.msg_base[hi + 1] {
                    return;
                }
                if sh.mode == Progression::Synchronized
                    && sh.prep.msg_stage[g as usize] != self.current_stage
                {
                    return;
                }
                self.h_cur_msg[hi] = next;
                self.h_cur_left[hi] = sh.prep.msg_pkts[g as usize];
                self.msg_start[g as usize] = self.now;
                self.h_next[hi] = next + 1;
                if self.recorder.is_some() {
                    self.begin_msg_span(sh, h, next);
                }
            }
        }
        let msg = self.h_cur_msg[hi];
        let dst = sh.prep.msg_dst[sh.gmsg(h, msg)];
        match self.host_channel(sh, h, dst) {
            Some(ch) => {
                self.h_active[hi] = true;
                self.request_grant(sh, ch, TAG_HOST, h, Pkt::default());
            }
            None => {
                // No route right now (multi-cabled host cut off). The unit
                // stays current; the post-sweep rekick retries it.
                assert!(
                    self.lifecycle.is_some(),
                    "host must have a route in a static simulation"
                );
            }
        }
    }

    /// Queues a request at egress `e` and arbitrates. When `e` is idle
    /// with credit and an empty waiter queue — the common case on an
    /// uncongested fabric — the push/immediate-pop pair collapses into a
    /// direct grant, skipping the waiter pool entirely. Observably
    /// identical: `try_grant` would pop this exact request first.
    #[inline]
    fn request_grant(&mut self, sh: &Shared, e: u32, tag: u8, a: u32, pkt: Pkt) {
        let st = &self.ch[e as usize];
        if !st.busy() && st.wq_head == NONE && self.has_credit(sh, e) {
            match tag {
                TAG_HOST => self.grant_host(sh, e, a),
                TAG_INPUT => self.grant_input(sh, e, a),
                _ => self.grant_packet(sh, e, pkt, a),
            }
            // The grant made `e` busy; no further grant can follow now.
        } else {
            let slot = if tag == TAG_PACKET {
                self.voq_pkts.alloc(pkt)
            } else {
                0
            };
            self.wq_push(e, waiter_pack(tag, a, slot));
            self.try_grant(sh, e);
        }
    }

    /// Attempts to grant the egress channel `e` to its next requester.
    fn try_grant(&mut self, sh: &Shared, e: u32) {
        loop {
            let st = &self.ch[e as usize];
            if st.busy() || st.wq_head == NONE {
                return;
            }
            if !self.has_credit(sh, e) {
                return; // retried on DrainDone at e
            }
            let (tag, a, slot) = waiter_unpack(self.wq_pop(e));
            match tag {
                TAG_HOST => self.grant_host(sh, e, a),
                TAG_INPUT => self.grant_input(sh, e, a),
                _ => {
                    let pkt = self.voq_pkts.slots[slot as usize].0;
                    self.voq_pkts.release(slot);
                    self.grant_packet(sh, e, pkt, a);
                }
            }
        }
    }

    /// Marks `e` busy for `serialize`, accounting utilization and the
    /// target-buffer occupancy of the granted transfer.
    #[inline]
    fn seize(&mut self, sh: &Shared, e: u32, serialize: Time, bytes: u32) {
        if let Some(rec) = &self.recorder {
            rec.record(ObsEvent::ChannelBusy {
                t: self.now,
                ch: e,
                dur: serialize,
                bytes: bytes as u64,
            });
        }
        if let Some(ts) = &mut self.telemetry {
            ts.record_busy(e, self.now, serialize);
        }
        let st = &mut self.ch[e as usize];
        st.busy_ps += serialize;
        st.flags |= F_BUSY;
        if sh.prep.ch_finite[e as usize] {
            st.occ += 1;
        }
    }

    fn grant_host(&mut self, sh: &Shared, e: u32, h: u32) {
        let hi = h as usize;
        let msg = self.h_cur_msg[hi];
        let left = self.h_cur_left[hi];
        let g = sh.gmsg(h, msg);
        let is_last = left == 1;
        let size = if is_last {
            sh.prep.msg_last_size[g]
        } else {
            sh.prep.mtu
        };
        self.h_active[hi] = false;
        // "Sent to the wire": the unit completes with its last packet; the
        // host then moves to the next unit (in sync mode a fresh message
        // still waits for the stage barrier).
        if is_last {
            self.h_cur_msg[hi] = NONE;
        } else {
            self.h_cur_left[hi] = left - 1;
        }
        let attempt = if self.lifecycle.is_some() {
            self.msg_attempt[g]
        } else {
            0
        };
        let pkt = Pkt {
            dst: sh.prep.msg_dst[g],
            src: h,
            msg,
            size,
            meta: (attempt << 1) | is_last as u32,
            start: self.msg_start[g],
        };
        // Injection serializes at the PCIe-bound host bandwidth (scaled if
        // the host cable itself is degraded).
        let base = if is_last {
            sh.prep.msg_host_ser_last[g]
        } else {
            sh.prep.host_ser_mtu
        };
        let serialize = self.xfer(sh, e, base);
        let depart = self.now + serialize;
        self.seize(sh, e, serialize, size);
        self.emit(depart, K_CH_FREE, e, Pkt::default());
        self.emit(depart + sh.prep.hdr_lat, K_ARRIVAL, e, pkt);
        if is_last {
            // Arm the retransmission timer as the last packet hits the wire.
            let rto = self.lifecycle.as_ref().map(|lc| lc.rto(attempt));
            if let Some(rto) = rto {
                self.emit(
                    depart + rto,
                    K_RETX,
                    h,
                    Pkt {
                        msg,
                        size: attempt,
                        ..Pkt::default()
                    },
                );
            }
        }
        // The host can line up its next packet (granted no earlier than the
        // ChannelFree above).
        self.host_request(sh, h);
    }

    fn grant_input(&mut self, sh: &Shared, e: u32, i: u32) {
        let pkt = self.buf_pop(i);
        self.ch[i as usize].flags &= !F_HEAD_REQ;
        // The packet keeps occupying a slot of buffer `i` while draining
        // (popped from the FIFO but still reserved), so `occ[i]` is
        // unchanged until the DrainDone below.
        let g = sh.gmsg(pkt.src, pkt.msg);
        let base = if pkt.is_last() {
            sh.prep.msg_link_ser_last[g]
        } else {
            sh.prep.link_ser_mtu
        };
        let serialize = self.xfer(sh, e, base);
        let depart = self.now + serialize;
        self.seize(sh, e, serialize, pkt.size);
        self.emit_free_drain(depart, e, i);
        self.emit(depart + sh.prep.hdr_lat, K_ARRIVAL, e, pkt);
        // New head of buffer `i` may request its own egress.
        self.request_for_head(sh, i);
    }

    /// VOQ grant: the packet was addressed directly; its input slot drains
    /// when the tail leaves.
    fn grant_packet(&mut self, sh: &Shared, e: u32, pkt: Pkt, input: u32) {
        let g = sh.gmsg(pkt.src, pkt.msg);
        let base = if pkt.is_last() {
            sh.prep.msg_link_ser_last[g]
        } else {
            sh.prep.link_ser_mtu
        };
        let serialize = self.xfer(sh, e, base);
        let depart = self.now + serialize;
        self.seize(sh, e, serialize, pkt.size);
        self.emit_free_drain(depart, e, input);
        self.emit(depart + sh.prep.hdr_lat, K_ARRIVAL, e, pkt);
    }

    /// Makes the head packet of input buffer `i` request its egress. Heads
    /// with no current route (cleared LFT entry) are dropped on the spot —
    /// the freed credit may unblock upstream senders — and the next head
    /// tries in turn.
    fn request_for_head(&mut self, sh: &Shared, i: u32) {
        if self.ch[i as usize].head_req() {
            return;
        }
        let here = sh.prep.ch_target[i as usize];
        loop {
            let Some(pkt) = self.buf_front(i) else { return };
            match self.egress_for(sh, here, pkt.dst) {
                Some(e) => {
                    self.ch[i as usize].flags |= F_HEAD_REQ;
                    self.request_grant(sh, e, TAG_INPUT, i, Pkt::default());
                    return;
                }
                None => {
                    assert!(
                        self.lifecycle.is_some(),
                        "switch must route every destination in a static simulation"
                    );
                    let p = self.buf_pop(i);
                    self.ch[i as usize].occ -= 1;
                    self.packets_dropped += 1;
                    if let Some(ts) = &mut self.telemetry {
                        ts.record_drop(i, self.now);
                    }
                    if let Some(rec) = &self.recorder {
                        rec.record(ObsEvent::PacketDrop {
                            t: self.now,
                            ch: i,
                            src: p.src,
                            dst: p.dst,
                            msg: p.msg,
                            attempt: p.attempt(),
                        });
                    }
                    self.try_grant(sh, i);
                }
            }
        }
    }

    /// Drops a packet at channel `ch`'s far end: frees the occupancy its
    /// transfer reserved (switch targets) and retries grants waiting on
    /// that credit.
    fn drop_packet(&mut self, sh: &Shared, pkt: Pkt, ch: u32) {
        self.packets_dropped += 1;
        if let Some(ts) = &mut self.telemetry {
            ts.record_drop(ch, self.now);
        }
        if let Some(rec) = &self.recorder {
            rec.record(ObsEvent::PacketDrop {
                t: self.now,
                ch,
                src: pkt.src,
                dst: pkt.dst,
                msg: pkt.msg,
                attempt: pkt.attempt(),
            });
        }
        if sh.prep.ch_finite[ch as usize] {
            self.ch[ch as usize].occ = self.ch[ch as usize].occ.saturating_sub(1);
            self.try_grant(sh, ch);
        }
    }

    /// Message-completion accounting for lifecycle runs: per-attempt packet
    /// counting (robust to drops, reroute reordering and late duplicates).
    fn lifecycle_deliver(&mut self, sh: &Shared, pkt: Pkt) {
        let g = sh.gmsg(pkt.src, pkt.msg);
        let bytes = sh.prep.msg_bytes[g];
        if self.msg_done[g] || pkt.attempt() != self.msg_attempt[g] {
            // A late original racing its own retransmission.
            self.duplicate_payload += pkt.size as u64;
            return;
        }
        self.msg_rx[g] += 1;
        if self.msg_rx[g] < sh.prep.msg_pkts[g] {
            return;
        }
        // Goodput is credited once, at completion, so partial attempts that
        // were cut short by drops never inflate it.
        self.msg_done[g] = true;
        self.total_payload += bytes;
        self.delivered += 1;
        self.last_delivery = self.now;
        if let Some(rec) = &self.recorder {
            rec.record(ObsEvent::Delivery {
                t: self.now,
                src: pkt.src,
                dst: pkt.dst,
                msg: pkt.msg,
                bytes,
            });
        }
        self.end_msg_span(sh, pkt.src, pkt.msg, "delivered");
        let lat = self.now - self.msg_start[g];
        self.latency_sum += lat as u128;
        self.latency_max = self.latency_max.max(lat);
        if sh.mode == Progression::Synchronized {
            self.stage_remaining -= 1;
            if self.stage_remaining == 0 {
                self.advance_stage(sh);
            }
        }
    }

    fn handle_arrival(&mut self, sh: &Shared, pkt: Pkt, ch: u32) {
        // A dead cable loses everything that was crossing it.
        if self.lifecycle.is_some() && !self.phys.is_live(sh.prep.ch_link[ch as usize]) {
            self.drop_packet(sh, pkt, ch);
            return;
        }
        // A degraded cable loses packets probabilistically. The roll is a
        // stateless hash of (jitter seed, roll ordinal), so a run is exactly
        // reproducible under a fixed seed.
        if !self.link_drop_ppm.is_empty() {
            let ppm = self.link_drop_ppm[sh.prep.ch_link[ch as usize] as usize];
            if ppm > 0 {
                let roll = drop_roll(sh.cfg.jitter_seed, self.drop_rolls);
                self.drop_rolls += 1;
                if roll < ppm as u64 {
                    self.packets_dropped_degraded += 1;
                    self.drop_packet(sh, pkt, ch);
                    return;
                }
            }
        }
        if !sh.prep.ch_finite[ch as usize] {
            // Host target: delivery.
            debug_assert_eq!(pkt.dst, sh.prep.ch_target[ch as usize], "packet misrouted");
            if self.lifecycle.is_some() {
                self.lifecycle_deliver(sh, pkt);
            } else {
                self.total_payload += pkt.size as u64;
                if pkt.is_last() {
                    self.delivered += 1;
                    self.last_delivery = self.now;
                    if let Some(rec) = &self.recorder {
                        rec.record(ObsEvent::Delivery {
                            t: self.now,
                            src: pkt.src,
                            dst: pkt.dst,
                            msg: pkt.msg,
                            bytes: sh.prep.msg_bytes[sh.gmsg(pkt.src, pkt.msg)],
                        });
                    }
                    self.end_msg_span(sh, pkt.src, pkt.msg, "delivered");
                    let lat = self.now - pkt.start;
                    self.latency_sum += lat as u128;
                    self.latency_max = self.latency_max.max(lat);
                    if sh.mode == Progression::Synchronized {
                        self.stage_remaining -= 1;
                        if self.stage_remaining == 0 {
                            self.advance_stage(sh);
                        }
                    }
                }
            }
        } else {
            match sh.cfg.switch_model {
                SwitchModel::InputFifo => {
                    // Occupancy-neutral: the arrival reservation converts
                    // into a FIFO slot (`reserved - 1, len + 1`).
                    self.buf_push(ch, pkt);
                    let depth = self.ch[ch as usize].buf_len;
                    if let Some(ts) = &mut self.telemetry {
                        ts.record_queue_depth(ch, self.now, depth);
                    }
                    if depth == 1 {
                        self.request_for_head(sh, ch);
                    }
                }
                SwitchModel::VirtualOutputQueues => {
                    // The arrival reservation stays until DrainDone; the
                    // packet immediately contends for its own egress.
                    match self.egress_for(sh, sh.prep.ch_target[ch as usize], pkt.dst) {
                        Some(e) => {
                            self.request_grant(sh, e, TAG_PACKET, ch, pkt);
                        }
                        None => {
                            assert!(
                                self.lifecycle.is_some(),
                                "switch must route every destination in a static simulation"
                            );
                            self.drop_packet(sh, pkt, ch);
                        }
                    }
                }
            }
        }
    }

    /// Kicks every host, applying per-host jitter when configured
    /// (serial engine only — the parallel driver primes hosts itself).
    fn kick_all_hosts(&mut self, sh: &Shared) {
        let stage = if sh.mode == Progression::Synchronized {
            self.current_stage
        } else {
            0
        };
        for h in 0..sh.prep.num_hosts as u32 {
            let delay = jitter_ps(sh.cfg.jitter_seed, h, stage, sh.cfg.jitter);
            if delay == 0 {
                self.host_request(sh, h);
            } else {
                let t = self.now + delay;
                self.emit(t, K_KICK, h, Pkt::default());
            }
        }
    }

    /// Sync-mode barrier: release the next non-empty stage.
    fn advance_stage(&mut self, sh: &Shared) {
        loop {
            self.current_stage += 1;
            if self.current_stage >= sh.prep.num_stages {
                return;
            }
            let count = sh.prep.stage_message_counts[self.current_stage as usize];
            if count > 0 {
                self.stage_remaining = count;
                self.kick_all_hosts(sh);
                return;
            }
        }
    }

    /// Applies every due degradation event to the per-link slowdown/loss
    /// state. Degradations are data-plane only: the SM is never notified.
    fn apply_degrade_events(&mut self) {
        loop {
            let ev = match self
                .lifecycle
                .as_ref()
                .and_then(|lc| lc.degradations.get(self.degrade_cursor))
            {
                Some(&ev) if ev.time <= self.now => ev,
                _ => return,
            };
            self.degrade_cursor += 1;
            self.link_latency_mult[ev.link as usize] = ev.latency_mult.max(1);
            self.link_drop_ppm[ev.link as usize] = ev.drop_ppm.min(1_000_000);
            if let Some(rec) = &self.recorder {
                rec.record(ObsEvent::LinkDegrade {
                    t: self.now,
                    link: ev.link,
                    latency_mult: ev.latency_mult.max(1),
                    drop_ppm: ev.drop_ppm.min(1_000_000),
                });
            }
        }
    }

    /// Applies every due schedule event to the physical liveness view.
    fn apply_fabric_events(&mut self) {
        self.apply_degrade_events();
        loop {
            let ev = match self
                .lifecycle
                .as_ref()
                .and_then(|lc| lc.schedule.events().get(self.phys_cursor))
            {
                Some(&ev) if ev.time <= self.now => ev,
                _ => return,
            };
            self.phys_cursor += 1;
            let effective = match ev.kind {
                LinkEventKind::Fail => self.phys.fail(ev.link),
                LinkEventKind::Recover => self.phys.recover(ev.link),
            }
            .unwrap_or(false);
            if effective {
                if let Some(rec) = &self.recorder {
                    rec.record(match ev.kind {
                        LinkEventKind::Fail => ObsEvent::LinkFail {
                            t: self.now,
                            link: ev.link,
                        },
                        LinkEventKind::Recover => ObsEvent::LinkRecover {
                            t: self.now,
                            link: ev.link,
                        },
                    });
                }
            }
        }
    }

    /// Subnet-manager sweep: repair the routing table, then re-kick every
    /// idle host (routes that were missing may exist again).
    fn handle_sm_sweep(&mut self, sh: &Shared) {
        if let Some(sm) = self.sm.as_mut() {
            if let Some(rec) = &self.recorder {
                let sweep = sm.reports().len();
                rec.record(ObsEvent::SweepBegin { t: self.now, sweep });
            }
            let report = sm.sweep(sh.topo, self.now);
            if let Some(rec) = &self.recorder {
                rec.record(ObsEvent::SweepEnd {
                    t: self.now,
                    report: serde_json::to_value(&report).expect("SweepReport serializes"),
                });
            }
        }
        for h in 0..sh.prep.num_hosts as u32 {
            self.host_request(sh, h);
        }
    }

    /// Retransmission timer fired: if the guarded attempt is still the
    /// current one and undelivered, queue a resend (or give up).
    fn handle_retransmit_check(&mut self, sh: &Shared, host: u32, msg: u32, attempt: u32) {
        let Some(lc) = self.lifecycle.as_ref() else {
            return;
        };
        let max_retries = lc.max_retries;
        let g = sh.gmsg(host, msg);
        // Partition-aware early exit: once the schedule is fully applied and
        // the SM's reachability proves the destination unreachable, further
        // retries cannot succeed — write the message off now instead of
        // burning the rest of the retry budget against a partition.
        let partitioned = self.sm.as_ref().is_some_and(|sm| {
            sm.is_settled() && {
                let dst = sh.prep.msg_dst[g];
                !sm.reachability()
                    .ok(sh.topo.host(host as usize), dst as usize)
            }
        });
        if self.msg_done[g] || self.msg_attempt[g] != attempt {
            return; // delivered in time, or a newer attempt owns the timer
        }
        if partitioned || self.msg_attempt[g] >= max_retries {
            // Abandon: mark closed so stale arrivals count as duplicates,
            // and release the stage barrier in sync mode.
            self.msg_done[g] = true;
            self.messages_lost += 1;
            if partitioned {
                self.messages_lost_unreachable += 1;
            }
            if let Some(rec) = &self.recorder {
                rec.record(ObsEvent::MessageLost {
                    t: self.now,
                    host,
                    msg,
                });
            }
            self.end_msg_span(sh, host, msg, "lost");
            if sh.mode == Progression::Synchronized {
                self.stage_remaining -= 1;
                if self.stage_remaining == 0 {
                    self.advance_stage(sh);
                }
            }
            return;
        }
        self.msg_attempt[g] += 1;
        self.msg_rx[g] = 0;
        let attempt = self.msg_attempt[g];
        self.retransmits += 1;
        if let Some(rec) = &self.recorder {
            rec.record(ObsEvent::Retransmit {
                t: self.now,
                host,
                msg,
                attempt,
            });
        }
        let id = self.retx_pool.alloc(msg);
        let hi = host as usize;
        if self.h_retx_tail[hi] != NONE {
            self.retx_pool.slots[self.h_retx_tail[hi] as usize].1 = id;
        } else {
            self.h_retx_head[hi] = id;
        }
        self.h_retx_tail[hi] = id;
        self.host_request(sh, host);
    }

    /// Issues cache prefetches for the state `ev`'s handler will touch.
    /// Called for the next entries of the calendar's sorted run while the
    /// current handler executes: the route-table row (tens of MB at fabric
    /// scale — a guaranteed miss when cold) and the input-FIFO ring both
    /// have one-event-ahead-predictable addresses. Purely a latency hint —
    /// results are unaffected.
    #[inline]
    fn prefetch_for(&self, sh: &Shared, ev: &Ev) {
        let a = ev.a as usize;
        // Every handler lands on its channel's packed state line first.
        #[cfg(target_arch = "x86_64")]
        unsafe {
            std::arch::x86_64::_mm_prefetch(
                self.ch.as_ptr().add(a) as *const i8,
                std::arch::x86_64::_MM_HINT_T0,
            );
        }
        if ev.kind != K_ARRIVAL {
            return;
        }
        if !sh.prep.ch_finite[a] {
            return; // host delivery touches no table and no ring
        }
        if let Some(tbl) = sh.tbl {
            tbl.prefetch(NodeId(sh.prep.ch_target[a]), ev.pkt.dst as usize);
        }
        #[cfg(target_arch = "x86_64")]
        unsafe {
            std::arch::x86_64::_mm_prefetch(
                self.bufs.as_ptr().add(a * self.cap) as *const i8,
                std::arch::x86_64::_MM_HINT_T0,
            );
        }
    }

    /// Prefetches for the next few already-sorted events (the sorted run
    /// makes upcoming work visible one step early — a luxury the old
    /// binary heap could not offer).
    #[inline]
    fn prefetch_upcoming(&self, sh: &Shared) {
        let up = self.cal.upcoming();
        for ev in up.iter().take(2) {
            self.prefetch_for(sh, ev);
        }
    }

    fn dispatch(&mut self, sh: &Shared, ev: Ev) {
        match ev.kind {
            K_ARRIVAL => self.handle_arrival(sh, ev.pkt, ev.a),
            K_CH_FREE => {
                self.ch[ev.a as usize].flags &= !F_BUSY;
                self.try_grant(sh, ev.a);
            }
            K_DRAIN => {
                // A slot freed at `ch`'s buffer may unblock grants of
                // channel `ch` itself (its grants need this credit).
                let st = &mut self.ch[ev.a as usize];
                st.occ = st.occ.saturating_sub(1);
                self.try_grant(sh, ev.a);
            }
            K_FREE_DRAIN => {
                // Both halves at one instant, seqs (s, s+1): nothing can
                // interleave, so running them back-to-back is order-exact.
                self.ch[ev.a as usize].flags &= !F_BUSY;
                self.try_grant(sh, ev.a);
                let st = &mut self.ch[ev.pkt.msg as usize];
                st.occ = st.occ.saturating_sub(1);
                self.try_grant(sh, ev.pkt.msg);
                self.events_processed += 1; // the fused second half
            }
            K_KICK => self.host_request(sh, ev.a),
            K_FABRIC => self.apply_fabric_events(),
            K_SWEEP => self.handle_sm_sweep(sh),
            K_RETX => self.handle_retransmit_check(sh, ev.a, ev.pkt.msg, ev.pkt.size),
            _ => unreachable!("unknown event kind"),
        }
    }

    /// Processes every queued event with `time < t_end`, logging each
    /// parent's child count for barrier sequencing.
    fn run_window(&mut self, sh: &Shared, t_end: Time) {
        while let Some((t, _)) = self.cal.peek_key() {
            if t >= t_end {
                return;
            }
            let ev = self.cal.pop().expect("peeked entry exists");
            debug_assert!(ev.time >= self.now, "time must be monotonic");
            self.now = ev.time;
            self.events_processed += 1;
            self.prefetch_upcoming(sh);
            let mark = self.out.len();
            self.dispatch(sh, ev);
            self.parents
                .push((ev.time, ev.seq, (self.out.len() - mark) as u32));
        }
    }
}

/// The production packet-level simulator. Same model and bit-identical
/// results as [`crate::OracleSim`]; see the module docs for what changed
/// under the hood.
pub struct PacketSim<'a> {
    topo: &'a Topology,
    /// Static routing table (`None` in lifecycle runs, which route through
    /// the subnet manager's continuously repaired table).
    rt: Option<&'a RoutingTable>,
    /// Dense `(node, dst) → channel` cache precomputed from the static
    /// table; static runs only — lifecycle runs route through the SM's
    /// live table, which changes under repair.
    next_tbl: Option<NextChannelTable>,
    lifecycle: Option<FabricLifecycle>,
    sm: Option<SubnetManager>,
    recorder: Option<Arc<Recorder>>,
    telemetry: Option<ChannelTimeSeries>,
    cfg: SimConfig,
    mode: Progression,
    shards: usize,
    prep: Prep,
}

impl<'a> PacketSim<'a> {
    /// Prepares a simulation of `plan` over the statically routed topology.
    pub fn new(
        topo: &'a Topology,
        rt: &'a RoutingTable,
        cfg: SimConfig,
        plan: &TrafficPlan,
    ) -> Self {
        Self::build(topo, Some(rt), cfg, plan, None)
            .expect("static simulation construction cannot fail")
    }

    /// Prepares a dynamic-fabric simulation: routing comes from an embedded
    /// [`SubnetManager`] that lives through `lifecycle.schedule`, repairing
    /// the table incrementally while traffic is in flight.
    pub fn with_lifecycle(
        topo: &'a Topology,
        cfg: SimConfig,
        plan: &TrafficPlan,
        lifecycle: FabricLifecycle,
    ) -> Result<Self, TopologyError> {
        Self::build(topo, None, cfg, plan, Some(lifecycle))
    }

    fn build(
        topo: &'a Topology,
        rt: Option<&'a RoutingTable>,
        cfg: SimConfig,
        plan: &TrafficPlan,
        lifecycle: Option<FabricLifecycle>,
    ) -> Result<Self, TopologyError> {
        assert!(
            cfg.mtu > 0 && cfg.mtu <= u32::MAX as u64,
            "mtu must fit u32"
        );
        let n = topo.num_hosts();
        // Flatten the per-host schedules in (stage, flow) order, exactly as
        // the oracle builds its `HostState::schedule` vectors.
        let mut per_host: Vec<Vec<(u32, u64, u32)>> = vec![Vec::new(); n];
        let mut stage_message_counts = vec![0u64; plan.stages().len()];
        for (s, flows) in plan.stages().iter().enumerate() {
            for (k, &(src, dst)) in flows.iter().enumerate() {
                if src != dst {
                    per_host[src as usize].push((dst, plan.flow_bytes(s, k), s as u32));
                    stage_message_counts[s] += 1;
                }
            }
        }
        let total_msgs: usize = per_host.iter().map(Vec::len).sum();
        assert!(total_msgs < u32::MAX as usize, "message count must fit u32");
        let mut msg_base = Vec::with_capacity(n + 1);
        let mut msg_dst = Vec::with_capacity(total_msgs);
        let mut msg_bytes = Vec::with_capacity(total_msgs);
        let mut msg_stage = Vec::with_capacity(total_msgs);
        let mut msg_pkts = Vec::with_capacity(total_msgs);
        let mut msg_last_size = Vec::with_capacity(total_msgs);
        let mut msg_host_ser_last = Vec::with_capacity(total_msgs);
        let mut msg_link_ser_last = Vec::with_capacity(total_msgs);
        let host_ser_mtu = cfg.host_bw.transfer_time(cfg.mtu);
        let link_ser_mtu = cfg.link_bw.transfer_time(cfg.mtu);
        let mut lookahead = Time::MAX;
        let mut max_host_bytes = 0u64;
        let mut n_active = 0usize;
        for sched in &per_host {
            msg_base.push(msg_dst.len() as u32);
            if !sched.is_empty() {
                n_active += 1;
            }
            max_host_bytes = max_host_bytes.max(sched.iter().map(|&(_, b, _)| b).sum());
            for &(dst, bytes, stage) in sched {
                let total = cfg.packets_for(bytes);
                // Size of the final packet, as the oracle computes it at
                // grant time: the remainder after `total - 1` full MTUs,
                // clamped to `[1, mtu]`.
                let idx = total - 1;
                let last = (bytes - cfg.mtu * idx.min(bytes / cfg.mtu))
                    .max(1)
                    .min(cfg.mtu);
                let h_last = cfg.host_bw.transfer_time(last);
                let l_last = cfg.link_bw.transfer_time(last);
                if total > 1 {
                    lookahead = lookahead.min(host_ser_mtu).min(link_ser_mtu);
                }
                lookahead = lookahead.min(h_last).min(l_last);
                msg_dst.push(dst);
                msg_bytes.push(bytes);
                msg_stage.push(stage);
                msg_pkts.push(total);
                msg_last_size.push(last as u32);
                msg_host_ser_last.push(h_last);
                msg_link_ser_last.push(l_last);
            }
        }
        msg_base.push(msg_dst.len() as u32);
        let nc = topo.num_channels();
        let mut ch_target = Vec::with_capacity(nc);
        let mut ch_src = Vec::with_capacity(nc);
        let mut ch_link = Vec::with_capacity(nc);
        let mut ch_finite = Vec::with_capacity(nc);
        for c in 0..nc as u32 {
            let ch = ChannelId(c);
            let target = topo.channel_target(ch);
            ch_target.push(target.0);
            ch_src.push(topo.channel_source(ch).0 .0);
            ch_link.push(ch.link());
            ch_finite.push(!topo.node(target).is_host());
        }
        let host_node: Vec<u32> = (0..n).map(|h| topo.host(h).0).collect();
        let sm = match &lifecycle {
            Some(lc) => Some(SubnetManager::with_engine(
                topo,
                lc.schedule.clone(),
                lc.algo.engine(),
            )?),
            None => None,
        };
        let has_degradations = lifecycle
            .as_ref()
            .is_some_and(|lc| !lc.degradations.is_empty());
        let next_tbl = rt.map(|rt| NextChannelTable::build(topo, rt));
        let prep = Prep {
            num_hosts: n,
            num_channels: nc,
            ch_target,
            ch_src,
            ch_link,
            ch_finite,
            host_node,
            cap: cfg.input_buffer_packets.min(u32::MAX as usize) as u32,
            mtu: cfg.mtu as u32,
            hdr_lat: cfg.wire_latency + cfg.switch_latency,
            host_ser_mtu,
            link_ser_mtu,
            lookahead: if lookahead == Time::MAX {
                1
            } else {
                lookahead.max(1)
            },
            msg_base,
            msg_dst,
            msg_bytes,
            msg_stage,
            msg_pkts,
            msg_last_size,
            msg_host_ser_last,
            msg_link_ser_last,
            stage_message_counts,
            num_stages: plan.stages().len() as u32,
            max_host_bytes,
            n_active: n_active.max(1),
            has_degradations,
        };
        Ok(Self {
            topo,
            rt,
            next_tbl,
            lifecycle,
            sm,
            recorder: None,
            telemetry: None,
            cfg,
            mode: plan.mode,
            shards: 1,
            prep,
        })
    }

    /// Attaches an observability recorder: structured events (channel
    /// activity, drops, deliveries, fabric faults, SM sweeps) flow into its
    /// flight recorder and run totals into its metrics registry. Event
    /// timestamps are simulation time, so recorded streams are exactly as
    /// reproducible as the run itself; the simulated outcome is bit-identical
    /// with or without a recorder.
    pub fn with_recorder(mut self, rec: Arc<Recorder>) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Enables per-channel time-bucketed telemetry (utilization, queue
    /// depth, drops); the filled reservoir comes back in
    /// [`SimResult::telemetry`]. Purely additive: the simulated outcome is
    /// bit-identical with or without it.
    pub fn with_telemetry(mut self, cfg: TimeSeriesConfig) -> Self {
        self.telemetry = Some(ChannelTimeSeries::new(cfg));
        self
    }

    /// Drops the precomputed next-channel cache so every hop routes through
    /// [`RoutingTable::egress`] again. Diagnostic knob: the equivalence
    /// tests (and `ci.yml`'s perf-smoke job) run static simulations both
    /// ways and assert bit-identical results.
    pub fn without_route_cache(mut self) -> Self {
        self.next_tbl = None;
        self
    }

    /// Requests sharded-parallel execution over `k` worker shards
    /// (conservative lookahead; results stay bit-identical). Takes effect
    /// only for runs the parallel mode supports — static fabric,
    /// asynchronous progression, no recorder or telemetry; anything else
    /// silently runs the serial engine. `k <= 1` is the serial engine.
    pub fn with_shards(mut self, k: usize) -> Self {
        self.shards = k.max(1);
        self
    }

    /// Runs to completion and returns the metrics.
    pub fn run(self) -> SimResult {
        let _phase = ftree_obs::ObsPhase::new(
            self.recorder.clone().or_else(ftree_obs::global),
            "sim::packet_run",
        );
        let par = self.shards > 1
            && self.lifecycle.is_none()
            && self.recorder.is_none()
            && self.telemetry.is_none()
            && self.mode == Progression::Asynchronous;
        let k = if par { self.shards } else { 1 };
        let PacketSim {
            topo,
            rt,
            next_tbl,
            lifecycle,
            sm,
            recorder,
            telemetry,
            cfg,
            mode,
            shards: _,
            prep,
        } = self;
        let sh = Shared {
            topo,
            rt,
            tbl: next_tbl.as_ref(),
            cfg: &cfg,
            mode,
            prep: &prep,
        };
        let mut cores: Vec<Core> = (0..k).map(|_| Core::new(&sh)).collect();
        // Serial-only features live on the (single) core.
        {
            let c0 = &mut cores[0];
            c0.lifecycle = lifecycle;
            c0.sm = sm;
            c0.recorder = recorder;
            c0.telemetry = telemetry;
            if c0.recorder.is_some() {
                c0.msg_span = vec![0; prep.msg_dst.len()];
            }
            if c0.lifecycle.is_some() {
                c0.msg_attempt = vec![0; prep.msg_dst.len()];
                c0.msg_rx = vec![0; prep.msg_dst.len()];
                c0.msg_done = vec![false; prep.msg_dst.len()];
            }
            if prep.has_degradations {
                c0.link_latency_mult = vec![1; topo.num_links()];
                c0.link_drop_ppm = vec![0; topo.num_links()];
            }
        }
        if par {
            run_parallel(&sh, &mut cores);
        } else {
            run_serial(&sh, &mut cores[0]);
        }
        finish(&sh, cores)
    }
}

/// The classic event loop: one core owns everything, events are sequenced
/// at schedule time and popped from the calendar in `(time, seq)` order.
fn run_serial(sh: &Shared, core: &mut Core) {
    // Script the fabric lifecycle: physical link changes at each event
    // time, an SM sweep one `sweep_delay` later. Scheduled before any
    // traffic so same-instant fabric events order ahead of arrivals.
    if core.lifecycle.is_some() {
        let (times, degrade_times, sweep_delay) = {
            let lc = core.lifecycle.as_ref().expect("checked above");
            let mut ts: Vec<Time> = lc.schedule.events().iter().map(|e| e.time).collect();
            ts.dedup();
            let mut ds: Vec<Time> = lc.degradations.iter().map(|d| d.time).collect();
            ds.dedup();
            (ts, ds, lc.sweep_delay)
        };
        for t in times {
            core.emit(t, K_FABRIC, 0, Pkt::default());
            core.emit(t + sweep_delay, K_SWEEP, 0, Pkt::default());
        }
        // Degradations change the data plane only — no SM sweep.
        for t in degrade_times {
            core.emit(t, K_FABRIC, 0, Pkt::default());
        }
    }
    // Prime the first non-empty stage (sync mode) / all hosts.
    if sh.mode == Progression::Synchronized {
        match sh.prep.stage_message_counts.iter().position(|&c| c > 0) {
            Some(s) => {
                core.current_stage = s as u32;
                core.stage_remaining = sh.prep.stage_message_counts[s];
            }
            None => return,
        }
    }
    core.kick_all_hosts(sh);
    while let Some(ev) = core.cal.pop() {
        debug_assert!(ev.time >= core.now, "time must be monotonic");
        core.now = ev.time;
        core.events_processed += 1;
        core.prefetch_upcoming(sh);
        core.dispatch(sh, ev);
    }
}

/// Assigns the next global sequence number to `pe` and pushes it onto its
/// anchor shard's calendar (the shard whose state its handler mutates).
fn push_seq(cores: &mut [Core], sh: &Shared, gseq: &mut u64, pe: PendEv) {
    let k = cores.len();
    let ev = Ev {
        time: pe.time,
        seq: *gseq,
        a: pe.a,
        kind: pe.kind,
        pkt: pe.pkt,
    };
    *gseq += 1;
    let node = match pe.kind {
        K_ARRIVAL => sh.prep.ch_target[pe.a as usize],
        K_CH_FREE | K_DRAIN => sh.prep.ch_src[pe.a as usize],
        K_KICK => sh.prep.host_node[pe.a as usize],
        _ => unreachable!("parallel windows never schedule lifecycle events"),
    };
    cores[node as usize % k].cal.push(ev);
}

/// Barrier: replay each shard's window log in global parent `(time, seq)`
/// order, sequencing children exactly as the serial engine would have.
fn merge_route(cores: &mut [Core], sh: &Shared, gseq: &mut u64) {
    let k = cores.len();
    let mut pi = vec![0usize; k];
    let mut ci = vec![0usize; k];
    let mut merged: Vec<PendEv> = Vec::new();
    loop {
        let mut best: Option<(Time, u64, usize)> = None;
        for c in 0..k {
            if let Some(&(t, s, _)) = cores[c].parents.get(pi[c]) {
                if best.is_none_or(|(bt, bs, _)| (t, s) < (bt, bs)) {
                    best = Some((t, s, c));
                }
            }
        }
        let Some((_, _, c)) = best else { break };
        let n = cores[c].parents[pi[c]].2 as usize;
        pi[c] += 1;
        merged.extend_from_slice(&cores[c].out[ci[c]..ci[c] + n]);
        ci[c] += n;
    }
    for c in cores.iter_mut() {
        c.parents.clear();
        c.out.clear();
    }
    for pe in merged {
        push_seq(cores, sh, gseq, pe);
    }
}

/// Conservative-lookahead driver: all shards advance through the same
/// `[T, T + L)` window concurrently (disjoint state), then a barrier
/// merges and routes the window's newly scheduled events.
fn run_parallel(sh: &Shared, cores: &mut [Core]) {
    let k = cores.len();
    for c in cores.iter_mut() {
        c.collect = true;
    }
    let mut gseq: u64 = 0;
    // Prime hosts in id order, sequencing each host's emissions before the
    // next host's — the exact serial kick order.
    for h in 0..sh.prep.num_hosts as u32 {
        let c = (sh.prep.host_node[h as usize] as usize) % k;
        let delay = jitter_ps(sh.cfg.jitter_seed, h, 0, sh.cfg.jitter);
        if delay == 0 {
            cores[c].host_request(sh, h);
        } else {
            let t = cores[c].now + delay;
            cores[c].emit(t, K_KICK, h, Pkt::default());
        }
        if !cores[c].out.is_empty() {
            let mut pend = std::mem::take(&mut cores[c].out);
            for &pe in &pend {
                push_seq(cores, sh, &mut gseq, pe);
            }
            pend.clear();
            cores[c].out = pend;
        }
    }
    let la = sh.prep.lookahead;
    loop {
        let mut t0: Option<Time> = None;
        for c in cores.iter_mut() {
            if let Some((t, _)) = c.cal.peek_key() {
                t0 = Some(t0.map_or(t, |x| x.min(t)));
            }
        }
        let Some(t0) = t0 else { break };
        let t_end = t0.saturating_add(la);
        std::thread::scope(|s| {
            for core in cores.iter_mut() {
                if core.cal.peek_key().is_some_and(|(t, _)| t < t_end) {
                    s.spawn(move || core.run_window(sh, t_end));
                }
            }
        });
        merge_route(cores, sh, &mut gseq);
    }
}

/// Folds the per-shard metric accumulators together and assembles the
/// result exactly as the oracle's `finish` does.
fn finish(sh: &Shared, cores: Vec<Core>) -> SimResult {
    let mut it = cores.into_iter();
    let mut acc = it.next().expect("at least one core");
    let mut channel_busy: Vec<Time> = acc.ch.iter().map(|s| s.busy_ps).collect();
    for c in it {
        acc.events_processed += c.events_processed;
        acc.delivered += c.delivered;
        acc.total_payload += c.total_payload;
        acc.last_delivery = acc.last_delivery.max(c.last_delivery);
        acc.latency_sum += c.latency_sum;
        acc.latency_max = acc.latency_max.max(c.latency_max);
        acc.packets_dropped += c.packets_dropped;
        acc.packets_dropped_degraded += c.packets_dropped_degraded;
        acc.retransmits += c.retransmits;
        acc.messages_lost += c.messages_lost;
        acc.messages_lost_unreachable += c.messages_lost_unreachable;
        acc.duplicate_payload += c.duplicate_payload;
        for (a, b) in channel_busy.iter_mut().zip(&c.ch) {
            *a += b.busy_ps;
        }
    }
    let makespan = acc.last_delivery;
    let normalized_bw = if makespan == 0 {
        0.0
    } else {
        // bytes/ps -> MB/s: * 1e6
        let agg_mbps = acc.total_payload as f64 / makespan as f64 * 1_000_000.0;
        agg_mbps / (sh.prep.n_active as f64 * sh.cfg.host_bw.mbps as f64)
    };
    if let Some(rec) = &acc.recorder {
        rec.counter("sim.messages_delivered").add(acc.delivered);
        rec.counter("sim.packets_dropped").add(acc.packets_dropped);
        rec.counter("sim.retransmits").add(acc.retransmits);
        rec.counter("sim.messages_lost").add(acc.messages_lost);
        rec.counter("sim.messages_lost_unreachable")
            .add(acc.messages_lost_unreachable);
        rec.counter("sim.packets_dropped_degraded")
            .add(acc.packets_dropped_degraded);
        rec.counter("sim.events").add(acc.events_processed);
        rec.counter("sim.payload_bytes").add(acc.total_payload);
        rec.gauge("sim.makespan_ps").set(makespan as i64);
        let busy = rec.histogram("sim.channel_busy_ps");
        for &b in &channel_busy {
            if b > 0 {
                busy.record(b);
            }
        }
    }
    SimResult {
        makespan,
        total_payload: acc.total_payload,
        messages_delivered: acc.delivered,
        normalized_bw,
        mean_latency: if acc.delivered == 0 {
            0.0
        } else {
            acc.latency_sum as f64 / acc.delivered as f64
        },
        max_latency: acc.latency_max,
        max_host_bytes: sh.prep.max_host_bytes,
        host_bw_mbps: sh.cfg.host_bw.mbps,
        events: acc.events_processed,
        channel_busy,
        packets_dropped: acc.packets_dropped,
        packets_dropped_degraded: acc.packets_dropped_degraded,
        retransmits: acc.retransmits,
        messages_lost: acc.messages_lost,
        messages_lost_unreachable: acc.messages_lost_unreachable,
        duplicate_payload: acc.duplicate_payload,
        sweep_reports: acc.sm.map(|sm| sm.reports().to_vec()).unwrap_or_default(),
        telemetry: acc.telemetry,
    }
}
