//! Final metrics of a packet-level simulation run, shared by the production
//! engine ([`crate::PacketSim`]) and the preserved reference engine
//! ([`crate::OracleSim`]) so bit-identity suites compare the same type.

use ftree_core::SweepReport;
use ftree_obs::ChannelTimeSeries;

use crate::config::Time;

/// Final metrics of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Time of the last delivery, ps.
    pub makespan: Time,
    /// Total payload bytes delivered.
    pub total_payload: u64,
    /// Number of messages delivered.
    pub messages_delivered: u64,
    /// Aggregate effective bandwidth divided by the aggregate host
    /// injection capacity — the paper's "normalized BW" (1.0 = every active
    /// host streams at full PCIe rate for the whole run).
    pub normalized_bw: f64,
    /// Mean message latency (first-bit-out to last-bit-in), ps.
    pub mean_latency: f64,
    /// Worst message latency, ps.
    pub max_latency: Time,
    /// Bytes injected by the busiest host — the injection-critical path.
    /// With heterogeneous schedules (pre/post proxy stages) aggregate
    /// normalized BW cannot reach 1.0 even without contention;
    /// `efficiency()` compares the makespan against this critical path
    /// instead.
    pub max_host_bytes: u64,
    /// Host injection bandwidth, for efficiency computation.
    pub host_bw_mbps: u64,
    /// Number of events processed (sanity/performance reporting).
    pub events: u64,
    /// Accumulated busy time per directed channel (serialization only),
    /// for utilization analysis.
    pub channel_busy: Vec<Time>,
    /// Packets lost to dead cables or cleared routes (lifecycle runs only).
    pub packets_dropped: u64,
    /// Message retransmissions started (lifecycle runs only).
    pub retransmits: u64,
    /// Messages abandoned after exhausting retransmissions **or** written
    /// off early because their destination is provably unreachable.
    pub messages_lost: u64,
    /// Subset of `messages_lost` abandoned by the partition-aware early
    /// exit: the schedule was fully applied, the subnet manager's
    /// reachability said the destination cannot be reached, so the sender
    /// stopped burning its retry budget.
    pub messages_lost_unreachable: u64,
    /// Subset of `packets_dropped` lost to degraded (alive but lossy)
    /// cables rather than dead ones.
    pub packets_dropped_degraded: u64,
    /// Bytes delivered more than once (late originals racing retransmits);
    /// excluded from `total_payload` and `normalized_bw`.
    pub duplicate_payload: u64,
    /// One report per subnet-manager sweep (lifecycle runs only).
    pub sweep_reports: Vec<SweepReport>,
    /// Per-channel time-bucketed telemetry, when enabled with
    /// `with_telemetry` (`None` otherwise — the default, and always `None`
    /// in bit-identity-gated runs).
    pub telemetry: Option<ChannelTimeSeries>,
}

impl SimResult {
    /// Makespan relative to the critical host's pure injection time:
    /// ~1.0 means the busiest host streamed at line rate with no
    /// contention stalls.
    pub fn efficiency(&self) -> f64 {
        if self.makespan == 0 || self.host_bw_mbps == 0 {
            return 0.0;
        }
        // Computed in f64: the integer form truncated `bytes * 1e6 / mbps`
        // to 0 whenever `bytes * 1e6 < mbps` (e.g. tiny latency probes).
        let ideal = self.max_host_bytes as f64 * 1_000_000.0 / self.host_bw_mbps as f64;
        ideal / self.makespan as f64
    }

    /// Fraction of the run a channel spent transmitting.
    pub fn utilization(&self, channel: usize) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.channel_busy[channel] as f64 / self.makespan as f64
        }
    }

    /// The highest utilization over all channels.
    pub fn peak_utilization(&self) -> f64 {
        (0..self.channel_busy.len())
            .map(|c| self.utilization(c))
            .fold(0.0, f64::max)
    }
}

/// Deterministic drop lottery for degraded links: a splitmix-style hash of
/// the run's jitter seed and the roll ordinal, mapped to `[0, 1_000_000)`
/// for comparison against a link's `drop_ppm`.
pub(crate) fn drop_roll(seed: u64, ordinal: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(ordinal)
        .wrapping_add(0x00d4_0990);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) % 1_000_000
}
