//! # ftree-sim — InfiniBand-like fat-tree network simulators
//!
//! The OMNeT++-model substitute of the paper's evaluation (Sec. II/VII),
//! calibrated to the same constants: QDR 4000 MB/s links, PCIe Gen2 8x
//! 3250 MB/s hosts, 36-port-class switches.
//!
//! Two fidelity levels:
//!
//! * [`PacketSim`] — event-driven packet-level model with input-buffered
//!   switches, credit flow control and head-of-line blocking; reproduces
//!   the message-size-dependent bandwidth collapse of Figure 2,
//! * [`run_fluid`] — flow-level max-min fair model; reproduces
//!   contention-driven bandwidth ratios at paper scale (1944 end-ports) in
//!   milliseconds of CPU.
//!
//! Workloads come from [`TrafficPlan::from_cps`]: any CPS, any node order,
//! asynchronous or barrier-synchronized progression.
//!
//! ```
//! use ftree_sim::{PacketSim, Progression, SimConfig, TrafficPlan};
//! use ftree_collectives::Cps;
//! use ftree_core::Job;
//! use ftree_topology::{rlft::catalog, Topology};
//!
//! let topo = Topology::build(catalog::fig4_pgft_16());
//! let job = Job::contention_free(&topo);
//! let plan = TrafficPlan::from_cps(&job.order, &Cps::Ring, 262_144,
//!                                  Progression::Asynchronous, usize::MAX);
//! let result = PacketSim::new(&topo, &job.routing, SimConfig::default(), &plan).run();
//! assert!(result.normalized_bw > 0.9);
//! ```

#![warn(missing_docs)]

pub mod calendar;
pub mod config;
pub mod fluid;
pub mod lifecycle;
pub mod observe;
pub mod oracle;
pub mod packet;
pub mod result;
pub mod traffic;

pub use config::{jitter_ps, Bandwidth, SimConfig, SwitchModel, Time, MICROSECOND, NANOSECOND};
pub use fluid::{run_fluid, FluidResult, FluidSim, OracleFluid, PathSource};
pub use lifecycle::FabricLifecycle;
pub use observe::export_chrome_trace;
pub use oracle::OracleSim;
pub use packet::{PacketSim, SimResult};
pub use traffic::{Progression, TrafficPlan};
