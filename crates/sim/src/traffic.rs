//! Traffic plans: CPS sequences rendered into per-stage port-space flows.
//!
//! Both simulators consume a [`TrafficPlan`]: stage-ordered lists of
//! `(src_port, dst_port)` messages, progressed either asynchronously (each
//! end-port advances when its previous message has been sent to the wire —
//! the paper's Sec. II model) or synchronously (global barrier per stage —
//! the worst-case model behind the HSD analysis).
//!
//! Plans come in two flavours:
//!
//! * [`TrafficPlan::uniform`] / [`TrafficPlan::from_cps`] — every message
//!   carries the same payload (the paper's Figure 2 workloads),
//! * [`TrafficPlan::sized`] — per-flow payloads, for simulating *actual*
//!   collective algorithms whose message sizes vary per stage (recursive
//!   doubling doubles its payload every stage, ring allgather ships one
//!   block per round, …). Built from executed `ftree-mpi` collectives via
//!   `World::traffic_stages`.

use serde::{Deserialize, Serialize};

use ftree_collectives::PermutationSequence;
use ftree_core::NodeOrder;

/// How end-ports advance through their destination sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Progression {
    /// Independent per-host progression (Sec. II: "end-ports progress
    /// through their destinations sequence independently when the previous
    /// message has been sent to the wire").
    Asynchronous,
    /// Global barrier between stages.
    Synchronized,
}

/// A complete workload for one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficPlan {
    /// Port-space flows per stage.
    stages: Vec<Vec<(u32, u32)>>,
    /// Per-flow payload bytes, parallel to `stages`; `None` = uniform.
    sizes: Option<Vec<Vec<u64>>>,
    /// Payload per flow for uniform plans.
    bytes_per_message: u64,
    /// Progression model.
    pub mode: Progression,
}

impl TrafficPlan {
    /// Uniform plan: every flow moves `bytes_per_message` bytes.
    pub fn uniform(
        stages: Vec<Vec<(u32, u32)>>,
        bytes_per_message: u64,
        mode: Progression,
    ) -> Self {
        Self {
            stages,
            sizes: None,
            bytes_per_message,
            mode,
        }
    }

    /// Per-flow-sized plan: each stage entry is `(src, dst, bytes)`.
    pub fn sized(stages: Vec<Vec<(u32, u32, u64)>>, mode: Progression) -> Self {
        let mut pairs = Vec::with_capacity(stages.len());
        let mut sizes = Vec::with_capacity(stages.len());
        for stage in stages {
            pairs.push(stage.iter().map(|&(s, d, _)| (s, d)).collect());
            sizes.push(stage.iter().map(|&(_, _, b)| b).collect());
        }
        Self {
            stages: pairs,
            sizes: Some(sizes),
            bytes_per_message: 0,
            mode,
        }
    }

    /// Renders a CPS over a node order into a uniform traffic plan,
    /// optionally sampling at most `max_stages` evenly-spaced stages (long
    /// sequences like the full Shift are cyclic; sampling preserves the
    /// workload's statistics while bounding runtime).
    pub fn from_cps(
        order: &NodeOrder,
        seq: &dyn PermutationSequence,
        bytes_per_message: u64,
        mode: Progression,
        max_stages: usize,
    ) -> Self {
        let n = order.num_ranks() as u32;
        let total = seq.num_stages(n);
        let indices: Vec<usize> = if total <= max_stages {
            (0..total).collect()
        } else {
            let stride = total as f64 / max_stages as f64;
            (0..max_stages)
                .map(|i| ((i as f64 * stride) as usize).min(total - 1))
                .collect()
        };
        let stages = indices
            .into_iter()
            .map(|s| order.port_flows(&seq.stage(n, s)))
            .collect();
        Self::uniform(stages, bytes_per_message, mode)
    }

    /// Stage flow lists.
    #[inline]
    pub fn stages(&self) -> &[Vec<(u32, u32)>] {
        &self.stages
    }

    /// Payload of flow `k` of stage `s`.
    #[inline]
    pub fn flow_bytes(&self, stage: usize, k: usize) -> u64 {
        match &self.sizes {
            Some(sizes) => sizes[stage][k],
            None => self.bytes_per_message,
        }
    }

    /// Total number of (non-self) messages in the plan.
    pub fn num_messages(&self) -> usize {
        self.stages
            .iter()
            .map(|st| st.iter().filter(|&&(s, d)| s != d).count())
            .sum()
    }

    /// Total payload bytes the plan will move (excluding self-flows).
    pub fn total_bytes(&self) -> u64 {
        self.stages
            .iter()
            .enumerate()
            .map(|(s, st)| {
                st.iter()
                    .enumerate()
                    .filter(|&(_, &(src, dst))| src != dst)
                    .map(|(k, _)| self.flow_bytes(s, k))
                    .sum::<u64>()
            })
            .sum()
    }

    /// Bytes injected by the busiest host — the injection critical path.
    /// Accumulated in a dense per-host vector (no hashing, deterministic
    /// iteration).
    pub fn max_host_bytes(&self) -> u64 {
        let n = self
            .stages
            .iter()
            .flat_map(|st| st.iter().map(|&(src, _)| src))
            .max()
            .map_or(0, |m| m as usize + 1);
        let mut per_host = vec![0u64; n];
        for (s, st) in self.stages.iter().enumerate() {
            for (k, &(src, dst)) in st.iter().enumerate() {
                if src != dst {
                    per_host[src as usize] += self.flow_bytes(s, k);
                }
            }
        }
        per_host.into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftree_collectives::Cps;
    use ftree_core::NodeOrder;
    use ftree_topology::rlft::catalog;
    use ftree_topology::Topology;

    #[test]
    fn full_sequence_rendered() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let order = NodeOrder::topology(&topo);
        let plan = TrafficPlan::from_cps(
            &order,
            &Cps::Shift,
            4096,
            Progression::Asynchronous,
            usize::MAX,
        );
        assert_eq!(plan.stages().len(), 15);
        assert_eq!(plan.num_messages(), 15 * 16);
        assert_eq!(plan.total_bytes(), 15 * 16 * 4096);
        assert_eq!(plan.max_host_bytes(), 15 * 4096);
    }

    #[test]
    fn sampling_limits_stage_count() {
        let topo = Topology::build(catalog::nodes_128());
        let order = NodeOrder::topology(&topo);
        let plan = TrafficPlan::from_cps(&order, &Cps::Shift, 4096, Progression::Synchronized, 10);
        assert_eq!(plan.stages().len(), 10);
        // Every sampled stage is a full permutation of 128 flows.
        assert!(plan.stages().iter().all(|st| st.len() == 128));
    }

    #[test]
    fn flows_follow_the_order() {
        let order = NodeOrder::from_map((0..16).rev().collect::<Vec<u32>>(), "reversed");
        let plan = TrafficPlan::from_cps(
            &order,
            &Cps::Ring,
            1024,
            Progression::Asynchronous,
            usize::MAX,
        );
        // rank 0 -> rank 1 becomes port 15 -> port 14
        assert!(plan.stages()[0].contains(&(15, 14)));
    }

    #[test]
    fn sized_plan_tracks_per_flow_bytes() {
        let plan = TrafficPlan::sized(
            vec![
                vec![(0, 1, 100), (1, 2, 200)],
                vec![(2, 3, 50), (3, 3, 999)], // self-flow excluded from totals
            ],
            Progression::Synchronized,
        );
        assert_eq!(plan.flow_bytes(0, 1), 200);
        assert_eq!(plan.num_messages(), 3);
        assert_eq!(plan.total_bytes(), 350);
        assert_eq!(plan.max_host_bytes(), 200);
    }
}
