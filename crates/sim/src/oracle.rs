//! Reference packet engine — the preserved oracle.
//!
//! This is the original `BinaryHeap` + `VecDeque` discrete-event simulator,
//! kept verbatim (modulo the struct name) as the behavioral specification
//! for the rebuilt production engine in [`crate::packet`]. It is
//! deliberately NOT optimized: every optimization in the production engine
//! is pinned against this one by the bit-identity suite in
//! `tests/engine_oracle.rs` (SimResult fields including `channel_busy`,
//! recorder NDJSON bytes, telemetry buckets) across catalog topologies,
//! routing engines, switch models, and chaos schedules.
//!
//! The OMNeT++-model substitute (paper Sec. II): an input-buffered,
//! credit-flow-controlled InfiniBand-like fabric in which hot spots cause
//! head-of-line blocking that spreads backward through the tree — the
//! mechanism behind the published bandwidth collapse for random node
//! orders.
//!
//! Model summary:
//!
//! * messages are segmented into MTU packets; packets traverse the LFT
//!   route hop by hop (virtual cut-through approximated at packet
//!   granularity),
//! * every directed channel serializes at link bandwidth; host-sourced
//!   channels serialize at the PCIe bound,
//! * each switch input port has a finite packet FIFO; a packet is granted
//!   an egress channel only when the channel is idle **and** the next input
//!   buffer has a free credit — a blocked head blocks everything behind it,
//! * hosts progress through their destination sequence asynchronously
//!   ("when the previous message has been sent to the wire", Sec. II) or
//!   synchronously (global barrier per stage),
//! * all state transitions are integer-time and FIFO-arbitered, so runs are
//!   bit-reproducible.
//!
//! With a [`FabricLifecycle`] (see [`OracleSim::with_lifecycle`]) the run
//! additionally plays a timed fault/recovery schedule: packets crossing a
//! dead cable are dropped, a [`ftree_core::SubnetManager`] repairs the
//! routing table incrementally `sweep_delay` after each event, and hosts
//! retransmit timed-out messages with capped exponential backoff. Static
//! runs (`OracleSim::new`) take none of these code paths and remain
//! bit-identical to the pre-lifecycle simulator.

use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

use ftree_core::SubnetManager;
use ftree_obs::{ChannelTimeSeries, ObsEvent, Recorder, SpanAttrs, SpanId, TimeSeriesConfig};
use ftree_topology::{
    LinkEventKind, LinkFailures, NextChannelTable, NodeId, RoutingTable, Topology, TopologyError,
};

use crate::config::{SimConfig, SwitchModel, Time};
use crate::lifecycle::FabricLifecycle;
use crate::result::{drop_roll, SimResult};
use crate::traffic::{Progression, TrafficPlan};

const NO_PACKET: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Packet {
    dst: u32,
    src_host: u32,
    msg: u32,
    size: u64,
    is_last: bool,
    /// Which send attempt of the message this packet belongs to (always 0
    /// in static runs); stale-attempt arrivals are counted as duplicates.
    attempt: u32,
    next_free: u32,
}

/// Who is asking an egress channel for a grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Requester {
    /// The host attached below this up-channel (injection).
    Host(u32),
    /// The head of the given input FIFO (InputFifo switch model).
    Input(u32),
    /// A specific resident packet (VirtualOutputQueues model: packets
    /// contend independently, no HOL coupling).
    Packet { pkt: u32, input: u32 },
}

#[derive(Debug, Default)]
struct ChannelState {
    busy: bool,
    waiting: VecDeque<Requester>,
    /// Input FIFO at the channel's target (switch targets only).
    buffer: VecDeque<u32>,
    /// Slots reserved by granted-but-not-yet-arrived packets plus packets
    /// draining out of this buffer.
    reserved: usize,
    /// True while this input's head packet has an outstanding request.
    head_requested: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    Arrival {
        pkt: u32,
        ch: u32,
    },
    ChannelFree {
        ch: u32,
    },
    DrainDone {
        ch: u32,
    },
    /// Delayed host start (OS-jitter modeling).
    HostKick {
        host: u32,
    },
    /// Apply due fault-schedule events to the physical fabric (lifecycle).
    FabricEvent,
    /// Subnet-manager sweep: repair the routing table (lifecycle).
    SmSweep,
    /// Check whether a message attempt was delivered; retransmit if not.
    RetransmitCheck {
        host: u32,
        msg: u32,
        attempt: u32,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    time: Time,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap via reverse compare on (time, seq).
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug)]
struct HostState {
    /// (dst_host, bytes, stage) personal schedule.
    schedule: Vec<(u32, u64, u32)>,
    /// Next fresh (never-sent) schedule entry.
    next: usize,
    /// Message being sent right now: `(msg index, packets left)`.
    current: Option<(u32, u64)>,
    /// Messages queued for retransmission (served before fresh ones).
    retx: VecDeque<u32>,
    active: bool,
}

/// Per-message delivery tracking (lifecycle runs only).
#[derive(Debug, Clone, Copy, Default)]
struct MsgState {
    /// Current send attempt (0 = first).
    attempt: u32,
    /// Packets of the current attempt received at the destination.
    rx_pkts: u64,
    /// Delivered (or abandoned — no further accounting either way).
    delivered: bool,
}

/// The simulator.
pub struct OracleSim<'a> {
    topo: &'a Topology,
    /// Static routing table (`None` in lifecycle runs, which route through
    /// the subnet manager's continuously repaired table).
    rt: Option<&'a RoutingTable>,
    /// Dense `(node, dst) → channel` cache precomputed from the static
    /// table; static runs only — lifecycle runs route through the SM's
    /// live table, which changes under repair. Bypassed while route-decision
    /// events are being recorded (the slow path emits them).
    next_tbl: Option<NextChannelTable>,
    /// Lifecycle parameters, when simulating a dynamic fabric.
    lifecycle: Option<FabricLifecycle>,
    /// The subnet manager owning the live routing table (lifecycle runs).
    sm: Option<SubnetManager>,
    /// Physical link liveness — follows the schedule instantly, while the
    /// SM's failure view lags by `sweep_delay` (the blackhole window).
    phys: LinkFailures,
    /// Next unapplied schedule event (physical view).
    phys_cursor: usize,
    /// Next unapplied degradation event (lifecycle runs only).
    degrade_cursor: usize,
    /// Per-link serialization multiplier (empty = no degradations
    /// configured; indexed by physical link id otherwise).
    link_latency_mult: Vec<u32>,
    /// Per-link drop probability in parts per million (parallel to
    /// `link_latency_mult`).
    link_drop_ppm: Vec<u32>,
    /// Monotonic counter feeding the deterministic degraded-drop rolls.
    drop_rolls: u64,
    /// Per-host, per-message delivery state (lifecycle runs only).
    msg_state: Vec<Vec<MsgState>>,
    /// Observability sink (`None` = zero-overhead run; see
    /// [`OracleSim::with_recorder`]).
    recorder: Option<Arc<Recorder>>,
    /// Per-message sim-time span ids (allocated only with a recorder
    /// attached; 0 = no span). Indexed like `msg_start`.
    msg_span: Vec<Vec<u64>>,
    /// Per-channel bucketed utilization/queue/drop telemetry (`None` =
    /// disabled; see [`OracleSim::with_telemetry`]).
    telemetry: Option<ChannelTimeSeries>,
    cfg: SimConfig,
    channels: Vec<ChannelState>,
    packets: Vec<Packet>,
    free_packets: u32,
    events: BinaryHeap<Event>,
    seq: u64,
    now: Time,
    hosts: Vec<HostState>,
    mode: Progression,
    /// Remaining undelivered messages in the current stage (sync mode).
    stage_remaining: u64,
    current_stage: u32,
    num_stages: u32,
    /// Per-stage message counts (sync mode bookkeeping).
    stage_message_counts: Vec<u64>,
    // metrics
    msg_start: Vec<Vec<Time>>,
    delivered: u64,
    total_payload: u64,
    last_delivery: Time,
    latency_sum: u128,
    latency_max: Time,
    events_processed: u64,
    channel_busy: Vec<Time>,
    packets_dropped: u64,
    packets_dropped_degraded: u64,
    retransmits: u64,
    messages_lost: u64,
    messages_lost_unreachable: u64,
    duplicate_payload: u64,
}

impl<'a> OracleSim<'a> {
    /// Prepares a simulation of `plan` over the statically routed topology.
    pub fn new(
        topo: &'a Topology,
        rt: &'a RoutingTable,
        cfg: SimConfig,
        plan: &TrafficPlan,
    ) -> Self {
        Self::build(topo, Some(rt), cfg, plan, None)
            .expect("static simulation construction cannot fail")
    }

    /// Prepares a dynamic-fabric simulation: routing comes from an embedded
    /// [`SubnetManager`] that lives through `lifecycle.schedule`, repairing
    /// the table incrementally while traffic is in flight.
    pub fn with_lifecycle(
        topo: &'a Topology,
        cfg: SimConfig,
        plan: &TrafficPlan,
        lifecycle: FabricLifecycle,
    ) -> Result<Self, TopologyError> {
        Self::build(topo, None, cfg, plan, Some(lifecycle))
    }

    fn build(
        topo: &'a Topology,
        rt: Option<&'a RoutingTable>,
        cfg: SimConfig,
        plan: &TrafficPlan,
        lifecycle: Option<FabricLifecycle>,
    ) -> Result<Self, TopologyError> {
        let n = topo.num_hosts();
        let mut hosts: Vec<HostState> = (0..n)
            .map(|_| HostState {
                schedule: Vec::new(),
                next: 0,
                current: None,
                retx: VecDeque::new(),
                active: false,
            })
            .collect();
        let mut stage_message_counts = vec![0u64; plan.stages().len()];
        for (s, flows) in plan.stages().iter().enumerate() {
            for (k, &(src, dst)) in flows.iter().enumerate() {
                if src != dst {
                    hosts[src as usize]
                        .schedule
                        .push((dst, plan.flow_bytes(s, k), s as u32));
                    stage_message_counts[s] += 1;
                }
            }
        }
        let msg_start = hosts
            .iter()
            .map(|h| vec![0 as Time; h.schedule.len()])
            .collect();
        let sm = match &lifecycle {
            Some(lc) => Some(SubnetManager::with_engine(
                topo,
                lc.schedule.clone(),
                lc.algo.engine(),
            )?),
            None => None,
        };
        let msg_state = if lifecycle.is_some() {
            hosts
                .iter()
                .map(|h| vec![MsgState::default(); h.schedule.len()])
                .collect()
        } else {
            Vec::new()
        };
        let next_tbl = rt.map(|rt| NextChannelTable::build(topo, rt));
        let has_degradations = lifecycle
            .as_ref()
            .is_some_and(|lc| !lc.degradations.is_empty());
        Ok(Self {
            topo,
            rt,
            next_tbl,
            lifecycle,
            sm,
            phys: LinkFailures::none(topo),
            phys_cursor: 0,
            degrade_cursor: 0,
            link_latency_mult: if has_degradations {
                vec![1; topo.num_links()]
            } else {
                Vec::new()
            },
            link_drop_ppm: if has_degradations {
                vec![0; topo.num_links()]
            } else {
                Vec::new()
            },
            drop_rolls: 0,
            msg_state,
            recorder: None,
            msg_span: Vec::new(),
            telemetry: None,
            cfg,
            channels: (0..topo.num_channels())
                .map(|_| ChannelState::default())
                .collect(),
            packets: Vec::new(),
            free_packets: NO_PACKET,
            events: BinaryHeap::new(),
            seq: 0,
            now: 0,
            hosts,
            mode: plan.mode,
            stage_remaining: 0,
            current_stage: 0,
            num_stages: plan.stages().len() as u32,
            stage_message_counts,
            msg_start,
            delivered: 0,
            total_payload: 0,
            last_delivery: 0,
            latency_sum: 0,
            latency_max: 0,
            events_processed: 0,
            channel_busy: vec![0; topo.num_channels()],
            packets_dropped: 0,
            packets_dropped_degraded: 0,
            retransmits: 0,
            messages_lost: 0,
            messages_lost_unreachable: 0,
            duplicate_payload: 0,
        })
    }

    /// Attaches an observability recorder: structured events (channel
    /// activity, drops, deliveries, fabric faults, SM sweeps) flow into its
    /// flight recorder and run totals into its metrics registry. Event
    /// timestamps are simulation time, so recorded streams are exactly as
    /// reproducible as the run itself; the simulated outcome is bit-identical
    /// with or without a recorder.
    pub fn with_recorder(mut self, rec: Arc<Recorder>) -> Self {
        self.recorder = Some(rec);
        self.msg_span = self
            .hosts
            .iter()
            .map(|h| vec![0u64; h.schedule.len()])
            .collect();
        self
    }

    /// Enables per-channel time-bucketed telemetry (utilization, queue
    /// depth, drops); the filled reservoir comes back in
    /// [`SimResult::telemetry`]. Purely additive: the simulated outcome is
    /// bit-identical with or without it.
    pub fn with_telemetry(mut self, cfg: TimeSeriesConfig) -> Self {
        self.telemetry = Some(ChannelTimeSeries::new(cfg));
        self
    }

    /// Opens the sim-time span tracking message `msg` of host `h` (recorder
    /// runs only).
    fn begin_msg_span(&mut self, h: u32, msg: u32) {
        let Some(rec) = &self.recorder else { return };
        let (dst, bytes, stage) = self.hosts[h as usize].schedule[msg as usize];
        let mut attrs = SpanAttrs::new();
        attrs.insert("src".to_string(), h.into());
        attrs.insert("dst".to_string(), dst.into());
        attrs.insert("msg".to_string(), msg.into());
        attrs.insert("bytes".to_string(), bytes.into());
        attrs.insert("stage".to_string(), stage.into());
        let id = rec.span_begin_at(self.now, "message", SpanId::NONE, attrs);
        self.msg_span[h as usize][msg as usize] = id.0;
    }

    /// Closes the message span with its outcome (no-op when none is open).
    fn end_msg_span(&mut self, src: u32, msg: u32, outcome: &str) {
        let Some(rec) = &self.recorder else { return };
        let Some(&id) = self
            .msg_span
            .get(src as usize)
            .and_then(|v| v.get(msg as usize))
        else {
            return;
        };
        if id == 0 {
            return;
        }
        let mut attrs = SpanAttrs::new();
        attrs.insert("outcome".to_string(), outcome.into());
        if !self.msg_state.is_empty() {
            let attempts = self.msg_state[src as usize][msg as usize].attempt + 1;
            attrs.insert("attempts".to_string(), attempts.into());
        }
        rec.span_end_at_with(self.now, SpanId(id), attrs);
    }

    /// Drops the precomputed next-channel cache so every hop routes through
    /// [`RoutingTable::egress`] again. Diagnostic knob: the equivalence
    /// tests (and `ci.yml`'s perf-smoke job) run static simulations both
    /// ways and assert bit-identical results.
    pub fn without_route_cache(mut self) -> Self {
        self.next_tbl = None;
        self
    }

    /// The routing table in force right now (the SM's live table in
    /// lifecycle runs, the caller's static table otherwise).
    fn route(&self) -> &RoutingTable {
        match &self.sm {
            Some(sm) => sm.table(),
            None => self.rt.expect("static simulation always has a table"),
        }
    }

    /// Serialization time for `size` bytes onto channel `e`, scaled by the
    /// channel's link degradation multiplier (1 when no degradations are
    /// configured or the link is healthy).
    #[inline]
    fn degraded_transfer(&self, e: u32, base: Time) -> Time {
        if self.link_latency_mult.is_empty() {
            return base;
        }
        let mult = self.link_latency_mult[ftree_topology::ChannelId(e).link() as usize];
        base * mult as Time
    }

    fn schedule_event(&mut self, time: Time, kind: EventKind) {
        self.events.push(Event {
            time,
            seq: self.seq,
            kind,
        });
        self.seq += 1;
    }

    fn alloc_packet(&mut self, p: Packet) -> u32 {
        if self.free_packets != NO_PACKET {
            let id = self.free_packets;
            self.free_packets = self.packets[id as usize].next_free;
            self.packets[id as usize] = p;
            id
        } else {
            self.packets.push(p);
            (self.packets.len() - 1) as u32
        }
    }

    fn release_packet(&mut self, id: u32) {
        self.packets[id as usize].next_free = self.free_packets;
        self.free_packets = id;
    }

    /// Host `h`'s up-channel toward `dst` (RLFT hosts have a single cable;
    /// `None` when a multi-cabled host currently has no route).
    fn host_channel(&self, h: u32, dst: u32) -> Option<u32> {
        let host = self.topo.host(h as usize);
        if let Some(tbl) = &self.next_tbl {
            return tbl.next_channel(host, dst as usize).map(|ch| ch.0);
        }
        let port = self.route().egress(host, dst as usize)?;
        Some(self.topo.egress_channel(host, port).0)
    }

    /// Target of a channel is a switch (has an input buffer there)?
    fn channel_buffer_capacity(&self, ch: u32) -> usize {
        let target = self.topo.channel_target(ftree_topology::ChannelId(ch));
        if self.topo.node(target).is_host() {
            usize::MAX
        } else {
            self.cfg.input_buffer_packets
        }
    }

    fn has_credit(&self, ch: u32) -> bool {
        let cap = self.channel_buffer_capacity(ch);
        if cap == usize::MAX {
            return true;
        }
        let st = &self.channels[ch as usize];
        st.buffer.len() + st.reserved < cap
    }

    /// Kicks host `h`: if it has a startable message (a retransmission, a
    /// mid-send message, or the next fresh one), request its up-channel.
    fn host_request(&mut self, h: u32) {
        if self.hosts[h as usize].active {
            return;
        }
        if self.hosts[h as usize].current.is_none() {
            // Select the next sending unit: retransmissions first (they
            // bypass the stage barrier — their stage is already open), then
            // the next fresh message.
            if let Some(msg) = self.hosts[h as usize].retx.pop_front() {
                let bytes = self.hosts[h as usize].schedule[msg as usize].1;
                self.hosts[h as usize].current = Some((msg, self.cfg.packets_for(bytes)));
            } else {
                let next = self.hosts[h as usize].next;
                if next >= self.hosts[h as usize].schedule.len() {
                    return;
                }
                let (_, bytes, stage) = self.hosts[h as usize].schedule[next];
                if self.mode == Progression::Synchronized && stage != self.current_stage {
                    return;
                }
                self.hosts[h as usize].current = Some((next as u32, self.cfg.packets_for(bytes)));
                self.msg_start[h as usize][next] = self.now;
                self.hosts[h as usize].next = next + 1;
                if self.recorder.is_some() {
                    self.begin_msg_span(h, next as u32);
                }
            }
        }
        let (msg, _) = self.hosts[h as usize].current.expect("just selected");
        let dst = self.hosts[h as usize].schedule[msg as usize].0;
        match self.host_channel(h, dst) {
            Some(ch) => {
                self.hosts[h as usize].active = true;
                self.channels[ch as usize]
                    .waiting
                    .push_back(Requester::Host(h));
                self.try_grant(ch);
            }
            None => {
                // No route right now (multi-cabled host cut off). The unit
                // stays current; the post-sweep rekick retries it.
                assert!(
                    self.lifecycle.is_some(),
                    "host must have a route in a static simulation"
                );
            }
        }
    }

    /// Attempts to grant the egress channel `e` to its next requester.
    fn try_grant(&mut self, e: u32) {
        loop {
            if self.channels[e as usize].busy {
                return;
            }
            let Some(&req) = self.channels[e as usize].waiting.front() else {
                return;
            };
            if !self.has_credit(e) {
                return; // retried on DrainDone/Arrival at e's buffer
            }
            self.channels[e as usize].waiting.pop_front();
            match req {
                Requester::Host(h) => self.grant_host(e, h),
                Requester::Input(i) => self.grant_input(e, i),
                Requester::Packet { pkt, input } => self.grant_packet(e, pkt, input),
            }
        }
    }

    fn grant_host(&mut self, e: u32, h: u32) {
        let hs = &mut self.hosts[h as usize];
        let (msg, left) = hs.current.expect("granted host has a packet to send");
        let (dst, bytes, _) = hs.schedule[msg as usize];
        let total_pkts = self.cfg.packets_for(bytes);
        let pkt_index = total_pkts - left;
        let size = if left == 1 {
            bytes - self.cfg.mtu * pkt_index.min(bytes / self.cfg.mtu)
        } else {
            self.cfg.mtu
        }
        .max(1)
        .min(self.cfg.mtu);
        let is_last = left == 1;
        hs.active = false;
        // "Sent to the wire": the unit completes with its last packet; the
        // host then moves to the next unit (in sync mode a fresh message
        // still waits for the stage barrier).
        hs.current = if is_last { None } else { Some((msg, left - 1)) };
        let attempt = if self.lifecycle.is_some() {
            self.msg_state[h as usize][msg as usize].attempt
        } else {
            0
        };
        let pkt = self.alloc_packet(Packet {
            dst,
            src_host: h,
            msg,
            size,
            is_last,
            attempt,
            next_free: NO_PACKET,
        });
        // Injection serializes at the PCIe-bound host bandwidth (scaled if
        // the host cable itself is degraded).
        let serialize = self.degraded_transfer(e, self.cfg.host_bw.transfer_time(size));
        let depart = self.now + serialize;
        if let Some(rec) = &self.recorder {
            rec.record(ObsEvent::ChannelBusy {
                t: self.now,
                ch: e,
                dur: serialize,
                bytes: size,
            });
        }
        if let Some(ts) = &mut self.telemetry {
            ts.record_busy(e, self.now, serialize);
        }
        self.channel_busy[e as usize] += serialize;
        self.channels[e as usize].busy = true;
        if self.channel_buffer_capacity(e) != usize::MAX {
            self.channels[e as usize].reserved += 1;
        }
        self.schedule_event(depart, EventKind::ChannelFree { ch: e });
        self.schedule_event(
            depart + self.cfg.wire_latency + self.cfg.switch_latency,
            EventKind::Arrival { pkt, ch: e },
        );
        if is_last {
            // Arm the retransmission timer as the last packet hits the wire.
            if let Some(lc) = &self.lifecycle {
                let rto = lc.rto(attempt);
                self.schedule_event(
                    depart + rto,
                    EventKind::RetransmitCheck {
                        host: h,
                        msg,
                        attempt,
                    },
                );
            }
        }
        // The host can line up its next packet (granted no earlier than the
        // ChannelFree above).
        self.host_request(h);
    }

    fn grant_input(&mut self, e: u32, i: u32) {
        let pkt_id = self.channels[i as usize]
            .buffer
            .pop_front()
            .expect("requesting input has a head packet");
        self.channels[i as usize].head_requested = false;
        // The packet keeps occupying a slot of buffer `i` while draining.
        self.channels[i as usize].reserved += 1;
        let size = self.packets[pkt_id as usize].size;
        let serialize = self.degraded_transfer(e, self.cfg.link_bw.transfer_time(size));
        let depart = self.now + serialize;
        if let Some(rec) = &self.recorder {
            rec.record(ObsEvent::ChannelBusy {
                t: self.now,
                ch: e,
                dur: serialize,
                bytes: size,
            });
        }
        if let Some(ts) = &mut self.telemetry {
            ts.record_busy(e, self.now, serialize);
        }
        self.channel_busy[e as usize] += serialize;
        self.channels[e as usize].busy = true;
        if self.channel_buffer_capacity(e) != usize::MAX {
            self.channels[e as usize].reserved += 1;
        }
        self.schedule_event(depart, EventKind::ChannelFree { ch: e });
        self.schedule_event(depart, EventKind::DrainDone { ch: i });
        self.schedule_event(
            depart + self.cfg.wire_latency + self.cfg.switch_latency,
            EventKind::Arrival { pkt: pkt_id, ch: e },
        );
        // New head of buffer `i` may request its own egress.
        self.request_for_head(i);
    }

    /// VOQ grant: the packet was addressed directly; its input slot drains
    /// when the tail leaves.
    fn grant_packet(&mut self, e: u32, pkt_id: u32, input: u32) {
        let size = self.packets[pkt_id as usize].size;
        let serialize = self.degraded_transfer(e, self.cfg.link_bw.transfer_time(size));
        let depart = self.now + serialize;
        if let Some(rec) = &self.recorder {
            rec.record(ObsEvent::ChannelBusy {
                t: self.now,
                ch: e,
                dur: serialize,
                bytes: size,
            });
        }
        if let Some(ts) = &mut self.telemetry {
            ts.record_busy(e, self.now, serialize);
        }
        self.channel_busy[e as usize] += serialize;
        self.channels[e as usize].busy = true;
        if self.channel_buffer_capacity(e) != usize::MAX {
            self.channels[e as usize].reserved += 1;
        }
        self.schedule_event(depart, EventKind::ChannelFree { ch: e });
        self.schedule_event(depart, EventKind::DrainDone { ch: input });
        self.schedule_event(
            depart + self.cfg.wire_latency + self.cfg.switch_latency,
            EventKind::Arrival { pkt: pkt_id, ch: e },
        );
    }

    /// Egress channel a resident packet needs at node `here` (`None` when
    /// the LFT entry is currently cleared — a lifecycle blackhole).
    fn egress_for(&self, here: ftree_topology::NodeId, pkt_id: u32) -> Option<u32> {
        let dst = self.packets[pkt_id as usize].dst;
        let route_events = self
            .recorder
            .as_ref()
            .is_some_and(|rec| rec.route_events_enabled());
        if !route_events {
            // Static-run fast path: one table load replaces the LFT decode
            // plus port→channel mapping. Taken only when no RouteDecision
            // event would be emitted, so traces stay identical.
            if let Some(tbl) = &self.next_tbl {
                return tbl.next_channel(here, dst as usize).map(|ch| ch.0);
            }
        }
        let port = self.route().egress(here, dst as usize)?;
        if route_events {
            if let Some(rec) = &self.recorder {
                rec.record(ObsEvent::RouteDecision {
                    t: self.now,
                    node: here.0,
                    dst,
                    port: format!("{port:?}"),
                });
            }
        }
        Some(self.topo.egress_channel(here, port).0)
    }

    /// Makes the head packet of input buffer `i` request its egress. Heads
    /// with no current route (cleared LFT entry) are dropped on the spot —
    /// the freed credit may unblock upstream senders — and the next head
    /// tries in turn.
    fn request_for_head(&mut self, i: u32) {
        if self.channels[i as usize].head_requested {
            return;
        }
        let here = self.topo.channel_target(ftree_topology::ChannelId(i));
        loop {
            let Some(&pkt_id) = self.channels[i as usize].buffer.front() else {
                return;
            };
            match self.egress_for(here, pkt_id) {
                Some(e) => {
                    self.channels[i as usize].head_requested = true;
                    self.channels[e as usize]
                        .waiting
                        .push_back(Requester::Input(i));
                    self.try_grant(e);
                    return;
                }
                None => {
                    assert!(
                        self.lifecycle.is_some(),
                        "switch must route every destination in a static simulation"
                    );
                    self.channels[i as usize].buffer.pop_front();
                    self.packets_dropped += 1;
                    if let Some(ts) = &mut self.telemetry {
                        ts.record_drop(i, self.now);
                    }
                    if let Some(rec) = &self.recorder {
                        let p = self.packets[pkt_id as usize];
                        rec.record(ObsEvent::PacketDrop {
                            t: self.now,
                            ch: i,
                            src: p.src_host,
                            dst: p.dst,
                            msg: p.msg,
                            attempt: p.attempt,
                        });
                    }
                    self.release_packet(pkt_id);
                    self.try_grant(i);
                }
            }
        }
    }

    /// Drops a packet at channel `ch`'s far end: frees the input-buffer slot
    /// its transfer reserved (switch targets) and retries grants waiting on
    /// that credit.
    fn drop_packet(&mut self, pkt_id: u32, ch: u32) {
        self.packets_dropped += 1;
        if let Some(ts) = &mut self.telemetry {
            ts.record_drop(ch, self.now);
        }
        if let Some(rec) = &self.recorder {
            let p = self.packets[pkt_id as usize];
            rec.record(ObsEvent::PacketDrop {
                t: self.now,
                ch,
                src: p.src_host,
                dst: p.dst,
                msg: p.msg,
                attempt: p.attempt,
            });
        }
        self.release_packet(pkt_id);
        let target = self.topo.channel_target(ftree_topology::ChannelId(ch));
        if !self.topo.node(target).is_host() {
            let st = &mut self.channels[ch as usize];
            st.reserved = st.reserved.saturating_sub(1);
            self.try_grant(ch);
        }
    }

    /// Message-completion accounting for lifecycle runs: per-attempt packet
    /// counting (robust to drops, reroute reordering and late duplicates).
    fn lifecycle_deliver(&mut self, pkt: Packet) {
        let (src, msg) = (pkt.src_host as usize, pkt.msg as usize);
        let bytes = self.hosts[src].schedule[msg].1;
        let total_pkts = self.cfg.packets_for(bytes);
        let st = &mut self.msg_state[src][msg];
        if st.delivered || pkt.attempt != st.attempt {
            // A late original racing its own retransmission.
            self.duplicate_payload += pkt.size;
            return;
        }
        st.rx_pkts += 1;
        if st.rx_pkts < total_pkts {
            return;
        }
        // Goodput is credited once, at completion, so partial attempts that
        // were cut short by drops never inflate it.
        st.delivered = true;
        self.total_payload += bytes;
        self.delivered += 1;
        self.last_delivery = self.now;
        if let Some(rec) = &self.recorder {
            rec.record(ObsEvent::Delivery {
                t: self.now,
                src: pkt.src_host,
                dst: pkt.dst,
                msg: pkt.msg,
                bytes,
            });
        }
        self.end_msg_span(pkt.src_host, pkt.msg, "delivered");
        let start = self.msg_start[src][msg];
        let lat = self.now - start;
        self.latency_sum += lat as u128;
        self.latency_max = self.latency_max.max(lat);
        if self.mode == Progression::Synchronized {
            self.stage_remaining -= 1;
            if self.stage_remaining == 0 {
                self.advance_stage();
            }
        }
    }

    fn handle_arrival(&mut self, pkt_id: u32, ch: u32) {
        // A dead cable loses everything that was crossing it.
        if self.lifecycle.is_some() && !self.phys.is_live(ftree_topology::ChannelId(ch).link()) {
            self.drop_packet(pkt_id, ch);
            return;
        }
        // A degraded cable loses packets probabilistically. The roll is a
        // stateless hash of (jitter seed, roll ordinal), so a run is exactly
        // reproducible under a fixed seed.
        if !self.link_drop_ppm.is_empty() {
            let ppm = self.link_drop_ppm[ftree_topology::ChannelId(ch).link() as usize];
            if ppm > 0 {
                let roll = drop_roll(self.cfg.jitter_seed, self.drop_rolls);
                self.drop_rolls += 1;
                if roll < ppm as u64 {
                    self.packets_dropped_degraded += 1;
                    self.drop_packet(pkt_id, ch);
                    return;
                }
            }
        }
        let target = self.topo.channel_target(ftree_topology::ChannelId(ch));
        if self.topo.node(target).is_host() {
            let pkt = self.packets[pkt_id as usize];
            debug_assert_eq!(NodeId(pkt.dst), target, "packet misrouted");
            if self.lifecycle.is_some() {
                self.lifecycle_deliver(pkt);
            } else {
                self.total_payload += pkt.size;
                if pkt.is_last {
                    self.delivered += 1;
                    self.last_delivery = self.now;
                    if let Some(rec) = &self.recorder {
                        let bytes = self.hosts[pkt.src_host as usize].schedule[pkt.msg as usize].1;
                        rec.record(ObsEvent::Delivery {
                            t: self.now,
                            src: pkt.src_host,
                            dst: pkt.dst,
                            msg: pkt.msg,
                            bytes,
                        });
                    }
                    self.end_msg_span(pkt.src_host, pkt.msg, "delivered");
                    let start = self.msg_start[pkt.src_host as usize][pkt.msg as usize];
                    let lat = self.now - start;
                    self.latency_sum += lat as u128;
                    self.latency_max = self.latency_max.max(lat);
                    if self.mode == Progression::Synchronized {
                        self.stage_remaining -= 1;
                        if self.stage_remaining == 0 {
                            self.advance_stage();
                        }
                    }
                }
            }
            self.release_packet(pkt_id);
        } else {
            match self.cfg.switch_model {
                SwitchModel::InputFifo => {
                    let st = &mut self.channels[ch as usize];
                    st.reserved = st.reserved.saturating_sub(1);
                    st.buffer.push_back(pkt_id);
                    let depth = st.buffer.len();
                    if let Some(ts) = &mut self.telemetry {
                        ts.record_queue_depth(ch, self.now, depth as u32);
                    }
                    if depth == 1 {
                        self.request_for_head(ch);
                    }
                }
                SwitchModel::VirtualOutputQueues => {
                    // The arrival reservation stays until DrainDone; the
                    // packet immediately contends for its own egress.
                    match self.egress_for(target, pkt_id) {
                        Some(e) => {
                            self.channels[e as usize]
                                .waiting
                                .push_back(Requester::Packet {
                                    pkt: pkt_id,
                                    input: ch,
                                });
                            self.try_grant(e);
                        }
                        None => {
                            assert!(
                                self.lifecycle.is_some(),
                                "switch must route every destination in a static simulation"
                            );
                            self.drop_packet(pkt_id, ch);
                        }
                    }
                }
            }
        }
    }

    /// Kicks every host, applying per-host jitter when configured.
    fn kick_all_hosts(&mut self) {
        let stage = if self.mode == Progression::Synchronized {
            self.current_stage
        } else {
            0
        };
        for h in 0..self.hosts.len() as u32 {
            let delay = crate::config::jitter_ps(self.cfg.jitter_seed, h, stage, self.cfg.jitter);
            if delay == 0 {
                self.host_request(h);
            } else {
                self.schedule_event(self.now + delay, EventKind::HostKick { host: h });
            }
        }
    }

    /// Sync-mode barrier: release the next non-empty stage.
    fn advance_stage(&mut self) {
        loop {
            self.current_stage += 1;
            if self.current_stage >= self.num_stages {
                return;
            }
            let count = self.stage_message_counts[self.current_stage as usize];
            if count > 0 {
                self.stage_remaining = count;
                self.kick_all_hosts();
                return;
            }
        }
    }

    /// Applies every due degradation event to the per-link slowdown/loss
    /// state. Degradations are data-plane only: the SM is never notified.
    fn apply_degrade_events(&mut self) {
        loop {
            let Some(lc) = self.lifecycle.as_ref() else {
                return;
            };
            let Some(&ev) = lc.degradations.get(self.degrade_cursor) else {
                return;
            };
            if ev.time > self.now {
                return;
            }
            self.degrade_cursor += 1;
            self.link_latency_mult[ev.link as usize] = ev.latency_mult.max(1);
            self.link_drop_ppm[ev.link as usize] = ev.drop_ppm.min(1_000_000);
            if let Some(rec) = &self.recorder {
                rec.record(ObsEvent::LinkDegrade {
                    t: self.now,
                    link: ev.link,
                    latency_mult: ev.latency_mult.max(1),
                    drop_ppm: ev.drop_ppm.min(1_000_000),
                });
            }
        }
    }

    /// Applies every due schedule event to the physical liveness view.
    fn apply_fabric_events(&mut self) {
        self.apply_degrade_events();
        loop {
            let Some(lc) = self.lifecycle.as_ref() else {
                return;
            };
            let Some(&ev) = lc.schedule.events().get(self.phys_cursor) else {
                return;
            };
            if ev.time > self.now {
                return;
            }
            self.phys_cursor += 1;
            let effective = match ev.kind {
                LinkEventKind::Fail => self.phys.fail(ev.link),
                LinkEventKind::Recover => self.phys.recover(ev.link),
            }
            .unwrap_or(false);
            if effective {
                if let Some(rec) = &self.recorder {
                    rec.record(match ev.kind {
                        LinkEventKind::Fail => ObsEvent::LinkFail {
                            t: self.now,
                            link: ev.link,
                        },
                        LinkEventKind::Recover => ObsEvent::LinkRecover {
                            t: self.now,
                            link: ev.link,
                        },
                    });
                }
            }
        }
    }

    /// Subnet-manager sweep: repair the routing table, then re-kick every
    /// idle host (routes that were missing may exist again).
    fn handle_sm_sweep(&mut self) {
        if let Some(sm) = self.sm.as_mut() {
            if let Some(rec) = &self.recorder {
                let sweep = sm.reports().len();
                rec.record(ObsEvent::SweepBegin { t: self.now, sweep });
            }
            let report = sm.sweep(self.topo, self.now);
            if let Some(rec) = &self.recorder {
                rec.record(ObsEvent::SweepEnd {
                    t: self.now,
                    report: serde_json::to_value(&report).expect("SweepReport serializes"),
                });
            }
        }
        for h in 0..self.hosts.len() as u32 {
            self.host_request(h);
        }
    }

    /// Retransmission timer fired: if the guarded attempt is still the
    /// current one and undelivered, queue a resend (or give up).
    fn handle_retransmit_check(&mut self, host: u32, msg: u32, attempt: u32) {
        let Some(lc) = self.lifecycle.as_ref() else {
            return;
        };
        let max_retries = lc.max_retries;
        // Partition-aware early exit: once the schedule is fully applied and
        // the SM's reachability proves the destination unreachable, further
        // retries cannot succeed — write the message off now instead of
        // burning the rest of the retry budget against a partition.
        let partitioned = self.sm.as_ref().is_some_and(|sm| {
            sm.is_settled() && {
                let dst = self.hosts[host as usize].schedule[msg as usize].0;
                !sm.reachability()
                    .ok(self.topo.host(host as usize), dst as usize)
            }
        });
        let st = &mut self.msg_state[host as usize][msg as usize];
        if st.delivered || st.attempt != attempt {
            return; // delivered in time, or a newer attempt owns the timer
        }
        if partitioned || st.attempt >= max_retries {
            // Abandon: mark closed so stale arrivals count as duplicates,
            // and release the stage barrier in sync mode.
            st.delivered = true;
            self.messages_lost += 1;
            if partitioned {
                self.messages_lost_unreachable += 1;
            }
            if let Some(rec) = &self.recorder {
                rec.record(ObsEvent::MessageLost {
                    t: self.now,
                    host,
                    msg,
                });
            }
            self.end_msg_span(host, msg, "lost");
            if self.mode == Progression::Synchronized {
                self.stage_remaining -= 1;
                if self.stage_remaining == 0 {
                    self.advance_stage();
                }
            }
            return;
        }
        st.attempt += 1;
        st.rx_pkts = 0;
        let attempt = st.attempt;
        self.retransmits += 1;
        if let Some(rec) = &self.recorder {
            rec.record(ObsEvent::Retransmit {
                t: self.now,
                host,
                msg,
                attempt,
            });
        }
        self.hosts[host as usize].retx.push_back(msg);
        self.host_request(host);
    }

    /// Runs to completion and returns the metrics.
    pub fn run(mut self) -> SimResult {
        let _phase = ftree_obs::ObsPhase::new(
            self.recorder.clone().or_else(ftree_obs::global),
            "sim::packet_run",
        );
        // Script the fabric lifecycle: physical link changes at each event
        // time, an SM sweep one `sweep_delay` later. Scheduled before any
        // traffic so same-instant fabric events order ahead of arrivals.
        if self.lifecycle.is_some() {
            let (times, degrade_times, sweep_delay) = {
                let lc = self.lifecycle.as_ref().expect("checked above");
                let mut ts: Vec<Time> = lc.schedule.events().iter().map(|e| e.time).collect();
                ts.dedup();
                let mut ds: Vec<Time> = lc.degradations.iter().map(|d| d.time).collect();
                ds.dedup();
                (ts, ds, lc.sweep_delay)
            };
            for t in times {
                self.schedule_event(t, EventKind::FabricEvent);
                self.schedule_event(t + sweep_delay, EventKind::SmSweep);
            }
            // Degradations change the data plane only — no SM sweep.
            for t in degrade_times {
                self.schedule_event(t, EventKind::FabricEvent);
            }
        }

        // Prime the first non-empty stage (sync mode) / all hosts.
        if self.mode == Progression::Synchronized {
            match self.stage_message_counts.iter().position(|&c| c > 0) {
                Some(s) => {
                    self.current_stage = s as u32;
                    self.stage_remaining = self.stage_message_counts[s];
                }
                None => return self.finish(),
            }
        }
        self.kick_all_hosts();

        while let Some(ev) = self.events.pop() {
            debug_assert!(ev.time >= self.now, "time must be monotonic");
            self.now = ev.time;
            self.events_processed += 1;
            match ev.kind {
                EventKind::Arrival { pkt, ch } => self.handle_arrival(pkt, ch),
                EventKind::ChannelFree { ch } => {
                    self.channels[ch as usize].busy = false;
                    self.try_grant(ch);
                }
                EventKind::DrainDone { ch } => {
                    let st = &mut self.channels[ch as usize];
                    st.reserved = st.reserved.saturating_sub(1);
                    // A slot freed at `ch`'s buffer may unblock grants of
                    // channel `ch` itself (its grants need this credit).
                    self.try_grant(ch);
                }
                EventKind::HostKick { host } => self.host_request(host),
                EventKind::FabricEvent => self.apply_fabric_events(),
                EventKind::SmSweep => self.handle_sm_sweep(),
                EventKind::RetransmitCheck { host, msg, attempt } => {
                    self.handle_retransmit_check(host, msg, attempt)
                }
            }
        }
        self.finish()
    }

    fn finish(self) -> SimResult {
        let max_host_bytes = self
            .hosts
            .iter()
            .map(|h| h.schedule.iter().map(|&(_, b, _)| b).sum::<u64>())
            .max()
            .unwrap_or(0);
        let n_active = self
            .hosts
            .iter()
            .filter(|h| !h.schedule.is_empty())
            .count()
            .max(1);
        let makespan = self.last_delivery;
        let normalized_bw = if makespan == 0 {
            0.0
        } else {
            // bytes/ps -> MB/s: * 1e6
            let agg_mbps = self.total_payload as f64 / makespan as f64 * 1_000_000.0;
            agg_mbps / (n_active as f64 * self.cfg.host_bw.mbps as f64)
        };
        if let Some(rec) = &self.recorder {
            rec.counter("sim.messages_delivered").add(self.delivered);
            rec.counter("sim.packets_dropped").add(self.packets_dropped);
            rec.counter("sim.retransmits").add(self.retransmits);
            rec.counter("sim.messages_lost").add(self.messages_lost);
            rec.counter("sim.messages_lost_unreachable")
                .add(self.messages_lost_unreachable);
            rec.counter("sim.packets_dropped_degraded")
                .add(self.packets_dropped_degraded);
            rec.counter("sim.events").add(self.events_processed);
            rec.counter("sim.payload_bytes").add(self.total_payload);
            rec.gauge("sim.makespan_ps").set(makespan as i64);
            let busy = rec.histogram("sim.channel_busy_ps");
            for &b in &self.channel_busy {
                if b > 0 {
                    busy.record(b);
                }
            }
        }
        SimResult {
            makespan,
            total_payload: self.total_payload,
            messages_delivered: self.delivered,
            normalized_bw,
            mean_latency: if self.delivered == 0 {
                0.0
            } else {
                self.latency_sum as f64 / self.delivered as f64
            },
            max_latency: self.latency_max,
            max_host_bytes,
            host_bw_mbps: self.cfg.host_bw.mbps,
            events: self.events_processed,
            channel_busy: self.channel_busy,
            packets_dropped: self.packets_dropped,
            packets_dropped_degraded: self.packets_dropped_degraded,
            retransmits: self.retransmits,
            messages_lost: self.messages_lost,
            messages_lost_unreachable: self.messages_lost_unreachable,
            duplicate_payload: self.duplicate_payload,
            sweep_reports: self.sm.map(|sm| sm.reports().to_vec()).unwrap_or_default(),
            telemetry: self.telemetry,
        }
    }
}
