//! Pins the rebuilt production fluid solver ([`FluidSim`]) against the
//! preserved reference implementation ([`OracleFluid`]) across catalog
//! topologies × all four routing engines × sync/async progression, plus
//! the two behaviors the production solver adds on inputs the oracle
//! cannot handle (zero-rate stalls, unroutable flows).
//!
//! Equivalence mode (DESIGN 4.15): the production solver preserves the
//! oracle's freeze order and f64 operation order exactly, so every field
//! is required to be **bit-identical** — integer fields with `==`, f64
//! fields via `to_bits`.

use ftree_collectives::Cps;
use ftree_core::{NodeOrder, RoutingAlgo};
use ftree_sim::{run_fluid, FluidResult, OracleFluid, Progression, SimConfig, TrafficPlan};
use ftree_topology::rlft::catalog;
use ftree_topology::{PgftSpec, Topology};

const ENGINES: [RoutingAlgo; 4] = [
    RoutingAlgo::DModK,
    RoutingAlgo::Dmodc,
    RoutingAlgo::Random(7),
    RoutingAlgo::MinHopGreedy,
];

fn assert_equiv(a: &FluidResult, b: &FluidResult, what: &str) {
    assert_eq!(
        a.messages_completed, b.messages_completed,
        "{what}: completed"
    );
    assert_eq!(a.total_payload, b.total_payload, "{what}: payload");
    assert_eq!(a.solves, b.solves, "{what}: solves");
    assert_eq!(a.makespan, b.makespan, "{what}: makespan");
    assert_eq!(
        a.normalized_bw.to_bits(),
        b.normalized_bw.to_bits(),
        "{what}: normalized_bw {} vs {}",
        a.normalized_bw,
        b.normalized_bw
    );
    assert_eq!(
        a.efficiency.to_bits(),
        b.efficiency.to_bits(),
        "{what}: efficiency {} vs {}",
        a.efficiency,
        b.efficiency
    );
    assert_eq!(b.flows_unroutable, 0, "{what}: healthy fabric");
    assert!(!b.stalled, "{what}: no stall expected");
}

fn check_topo(name: &str, spec: PgftSpec, bytes: u64, max_stages: usize) {
    let topo = Topology::build(spec);
    let order = NodeOrder::topology(&topo);
    for algo in ENGINES {
        let rt = algo.route(&topo);
        for mode in [Progression::Synchronized, Progression::Asynchronous] {
            let plan = TrafficPlan::from_cps(&order, &Cps::Shift, bytes, mode, max_stages);
            let a = OracleFluid::run(&topo, &rt, SimConfig::default(), &plan);
            let b = run_fluid(&topo, &rt, SimConfig::default(), &plan);
            assert_equiv(&a, &b, &format!("{name}/{algo:?}/{mode:?}/shift"));
        }
    }
}

#[test]
fn fig4_all_engines_both_modes() {
    check_topo("fig4_pgft_16", catalog::fig4_pgft_16(), 1 << 18, 6);
}

#[test]
fn nodes_128_all_engines_both_modes() {
    check_topo("nodes_128", catalog::nodes_128(), 1 << 16, 4);
}

#[test]
fn nodes_324_dmodk_both_modes() {
    let topo = Topology::build(catalog::nodes_324());
    let order = NodeOrder::random(&topo, 42);
    let rt = RoutingAlgo::DModK.route(&topo);
    for mode in [Progression::Synchronized, Progression::Asynchronous] {
        let plan = TrafficPlan::from_cps(&order, &Cps::Shift, 1 << 16, mode, 3);
        let a = OracleFluid::run(&topo, &rt, SimConfig::default(), &plan);
        let b = run_fluid(&topo, &rt, SimConfig::default(), &plan);
        assert_equiv(&a, &b, &format!("nodes_324/DModK/{mode:?}"));
    }
}

#[test]
fn mixed_sizes_and_partial_stages_match() {
    // Mixed per-flow sizes exercise the batched same-instant retirement
    // path (several equal-size flows complete together) and unequal
    // completion orders; partial stages (hosts without a message) exercise
    // stage accounting.
    let topo = Topology::build(catalog::fig4_pgft_16());
    let n = topo.num_hosts() as u32;
    for algo in ENGINES {
        let rt = algo.route(&topo);
        for mode in [Progression::Synchronized, Progression::Asynchronous] {
            let stages: Vec<Vec<(u32, u32, u64)>> = (0..3u32)
                .map(|s| {
                    (0..n)
                        .filter(|i| (i + s) % 3 != 0)
                        .map(|i| {
                            let bytes = 1u64 << (14 + ((i + s) % 4));
                            (i, (i + s + 1) % n, bytes)
                        })
                        .collect()
                })
                .collect();
            let plan = TrafficPlan::sized(stages, mode);
            let a = OracleFluid::run(&topo, &rt, SimConfig::default(), &plan);
            let b = run_fluid(&topo, &rt, SimConfig::default(), &plan);
            assert_equiv(&a, &b, &format!("mixed/{algo:?}/{mode:?}"));
        }
    }
}

#[test]
fn same_instant_batch_retirement_matches() {
    // Every flow is identical and contention-free: all complete at the
    // same instant and must retire in one solve, same as the oracle.
    let topo = Topology::build(catalog::nodes_128());
    let n = topo.num_hosts() as u32;
    let rt = RoutingAlgo::DModK.route(&topo);
    let stages: Vec<Vec<(u32, u32)>> = (0..3)
        .map(|s| (0..n).map(|i| (i, (i + s + 1) % n)).collect())
        .collect();
    for mode in [Progression::Synchronized, Progression::Asynchronous] {
        let plan = TrafficPlan::uniform(stages.clone(), 1 << 20, mode);
        let a = OracleFluid::run(&topo, &rt, SimConfig::default(), &plan);
        let b = run_fluid(&topo, &rt, SimConfig::default(), &plan);
        assert_equiv(&a, &b, &format!("batch/{mode:?}"));
    }
}

#[test]
fn partially_degraded_table_skips_only_dead_pairs() {
    // Clear one leaf switch's entry toward one destination: flows through
    // it are skipped and counted, everything else completes.
    let topo = Topology::build(catalog::fig4_pgft_16());
    let n = topo.num_hosts() as u32;
    let mut rt = RoutingAlgo::DModK.route(&topo);
    // Host 0's leaf switch loses its route toward host 9.
    let leaf = topo.node(topo.host(0)).up[0].peer;
    rt.clear(leaf, 9);
    for mode in [Progression::Synchronized, Progression::Asynchronous] {
        let stage: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 9) % n)).collect();
        let plan = TrafficPlan::uniform(vec![stage], 1 << 16, mode);
        let r = run_fluid(&topo, &rt, SimConfig::default(), &plan);
        assert!(r.flows_unroutable >= 1, "at least 0->9 must be skipped");
        assert_eq!(
            r.messages_completed + r.flows_unroutable,
            n as u64,
            "every flow either completes or is skip-counted"
        );
        assert!(!r.stalled);
        assert!(r.makespan > 0);
    }
}

#[test]
fn sync_run_with_fully_unroutable_middle_stage_advances() {
    // Stage 1 routes only dead pairs; the solver must skip past it to
    // stage 2 instead of deadlocking at the barrier.
    let topo = Topology::build(catalog::fig4_pgft_16());
    let mut rt = RoutingAlgo::DModK.route(&topo);
    for h in [0u32, 1] {
        let leaf = topo.node(topo.host(h as usize)).up[0].peer;
        for dst in 0..topo.num_hosts() {
            rt.clear(leaf, dst);
        }
    }
    let stages = vec![
        vec![(4u32, 8u32), (5, 9)],
        vec![(0, 4), (1, 5)], // hosts 0/1 have no routes at all
        vec![(8, 12), (9, 13)],
    ];
    let plan = TrafficPlan::uniform(stages, 1 << 16, Progression::Synchronized);
    let r = run_fluid(&topo, &rt, SimConfig::default(), &plan);
    assert_eq!(r.messages_completed, 4);
    assert_eq!(r.flows_unroutable, 2);
}
