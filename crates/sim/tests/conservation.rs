//! Simulator conservation and consistency properties.

use proptest::prelude::*;

use ftree_core::{DModK, NodeOrder, Router};
use ftree_sim::{run_fluid, PacketSim, Progression, SimConfig, TrafficPlan};
use ftree_topology::rlft::catalog;
use ftree_topology::Topology;

/// Random stage lists over 16 hosts.
fn random_plan(mode: Progression) -> impl Strategy<Value = TrafficPlan> {
    (
        prop::collection::vec(prop::collection::vec((0u32..16, 0u32..16), 0..16), 1..4),
        1u64..100_000,
    )
        .prop_map(move |(raw_stages, bytes)| {
            // Deduplicate sources within a stage (CPS stages are partial
            // permutations; the simulator requires one send per host per
            // stage).
            let stages = raw_stages
                .into_iter()
                .map(|stage| {
                    let mut seen = std::collections::HashSet::new();
                    stage.into_iter().filter(|&(s, _)| seen.insert(s)).collect()
                })
                .collect();
            TrafficPlan::uniform(stages, bytes, mode)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every planned message is delivered exactly once, with every payload
    /// byte accounted for — packet simulator.
    #[test]
    fn packet_sim_conserves_messages(plan in random_plan(Progression::Asynchronous)) {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let rt = DModK.route_healthy(&topo);
        let r = PacketSim::new(&topo, &rt, SimConfig::default(), &plan).run();
        prop_assert_eq!(r.messages_delivered as usize, plan.num_messages());
        prop_assert_eq!(r.total_payload, plan.total_bytes());
    }

    /// Same for synchronized mode (barriers must not deadlock or drop).
    #[test]
    fn packet_sim_sync_conserves(plan in random_plan(Progression::Synchronized)) {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let rt = DModK.route_healthy(&topo);
        let r = PacketSim::new(&topo, &rt, SimConfig::default(), &plan).run();
        prop_assert_eq!(r.messages_delivered as usize, plan.num_messages());
    }

    /// Fluid simulator conserves messages and bytes.
    #[test]
    fn fluid_conserves(plan in random_plan(Progression::Synchronized)) {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let rt = DModK.route_healthy(&topo);
        let r = run_fluid(&topo, &rt, SimConfig::default(), &plan);
        prop_assert_eq!(r.messages_completed as usize, plan.num_messages());
        prop_assert_eq!(r.total_payload, plan.total_bytes());
    }

    /// Bit-identical replay: the packet simulator is deterministic.
    #[test]
    fn packet_sim_deterministic(plan in random_plan(Progression::Asynchronous)) {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let rt = DModK.route_healthy(&topo);
        let a = PacketSim::new(&topo, &rt, SimConfig::default(), &plan).run();
        let b = PacketSim::new(&topo, &rt, SimConfig::default(), &plan).run();
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.max_latency, b.max_latency);
    }

    /// Fluid and packet simulators agree on contention-free single-stage
    /// permutation makespans to first order (packet adds per-hop latency
    /// and MTU quantization only).
    #[test]
    fn fluid_matches_packet_on_free_permutations(shift in 1u32..16) {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let rt = DModK.route_healthy(&topo);
        let n = 16u32;
        let stage: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + shift) % n)).collect();
        let plan = TrafficPlan::uniform(vec![stage], 1 << 20, Progression::Synchronized);
        let p = PacketSim::new(&topo, &rt, SimConfig::default(), &plan).run();
        let f = run_fluid(&topo, &rt, SimConfig::default(), &plan);
        let ratio = p.makespan as f64 / f.makespan as f64;
        prop_assert!((0.95..1.15).contains(&ratio),
            "shift {shift}: packet {} vs fluid {}", p.makespan, f.makespan);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// No deadlock, ever: random small PGFTs x random plans complete with
    /// every message delivered (the credit/grant protocol has no cycles
    /// because routes are up*/down*).
    #[test]
    fn random_fabrics_never_deadlock(
        m1 in 2u32..5, m2 in 2u32..5, w2 in 1u32..4, p2 in 1u32..3,
        raw in prop::collection::vec(prop::collection::vec((0u32..100, 0u32..100), 1..10), 1..3),
        bytes in 1u64..50_000,
    ) {
        let spec = ftree_topology::PgftSpec::from_slices(&[m1, m2], &[1, w2], &[1, p2]).unwrap();
        let topo = Topology::build(spec);
        let n = topo.num_hosts() as u32;
        let rt = DModK.route_healthy(&topo);
        let stages: Vec<Vec<(u32, u32)>> = raw
            .into_iter()
            .map(|stage| {
                let mut seen = std::collections::HashSet::new();
                stage
                    .into_iter()
                    .map(|(s, d)| (s % n, d % n))
                    .filter(|&(s, _)| seen.insert(s))
                    .collect()
            })
            .collect();
        let plan = TrafficPlan::uniform(stages, bytes, Progression::Asynchronous);
        let r = PacketSim::new(&topo, &rt, SimConfig::default(), &plan).run();
        prop_assert_eq!(r.messages_delivered as usize, plan.num_messages());
    }
}

#[test]
fn zero_byte_messages_still_complete() {
    // Barrier tokens carry no payload; both simulators must deliver them
    // (the packet model sends a 1-byte header).
    let topo = Topology::build(catalog::fig4_pgft_16());
    let rt = DModK.route_healthy(&topo);
    let plan = TrafficPlan::sized(
        vec![vec![(0, 5, 0), (1, 6, 0)], vec![(5, 0, 0)]],
        Progression::Synchronized,
    );
    let p = PacketSim::new(&topo, &rt, SimConfig::default(), &plan).run();
    assert_eq!(p.messages_delivered, 3);
    let f = run_fluid(&topo, &rt, SimConfig::default(), &plan);
    assert_eq!(f.messages_completed, 3);
}

#[test]
fn mixed_sizes_respected_by_both_sims() {
    // One giant flow and one tiny flow: the giant one dominates the
    // makespan; totals match the plan exactly.
    let topo = Topology::build(catalog::fig4_pgft_16());
    let rt = DModK.route_healthy(&topo);
    let plan = TrafficPlan::sized(
        vec![vec![(0, 5, 1 << 20), (1, 6, 128)]],
        Progression::Synchronized,
    );
    let p = PacketSim::new(&topo, &rt, SimConfig::default(), &plan).run();
    assert_eq!(p.total_payload, (1 << 20) + 128);
    let f = run_fluid(&topo, &rt, SimConfig::default(), &plan);
    assert_eq!(f.total_payload, (1 << 20) + 128);
    // Makespan ~ giant flow at PCIe rate.
    let expect = SimConfig::default().host_bw.transfer_time(1 << 20);
    assert!((f.makespan as f64 / expect as f64 - 1.0).abs() < 0.01);
    assert!(p.makespan >= expect);
}

#[test]
fn sync_never_faster_than_async() {
    let topo = Topology::build(catalog::nodes_128());
    let rt = DModK.route_healthy(&topo);
    let order = NodeOrder::random(&topo, 5);
    let n = topo.num_hosts() as u32;
    let stages: Vec<Vec<(u32, u32)>> = (0..4)
        .map(|s| {
            order.port_flows(&ftree_collectives::PermutationSequence::stage(
                &ftree_collectives::Cps::Shift,
                n,
                s,
            ))
        })
        .collect();
    let mk = |mode| TrafficPlan::uniform(stages.clone(), 32 << 10, mode);
    let asyn = PacketSim::new(
        &topo,
        &rt,
        SimConfig::default(),
        &mk(Progression::Asynchronous),
    )
    .run();
    let sync = PacketSim::new(
        &topo,
        &rt,
        SimConfig::default(),
        &mk(Progression::Synchronized),
    )
    .run();
    assert!(
        sync.makespan >= asyn.makespan,
        "barriers cannot speed things up: sync {} async {}",
        sync.makespan,
        asyn.makespan
    );
}
