//! Chaos-scenario simulation tests: degraded links slow traffic without
//! touching the control plane, probabilistic loss is healed by
//! retransmission, a flap storm settles with fully accounted (bounded)
//! loss, and a permanent partition is abandoned early instead of burning
//! the whole retry budget.

use ftree_core::{DModK, Router};
use ftree_sim::{
    FabricLifecycle, PacketSim, Progression, SimConfig, SimResult, TrafficPlan, MICROSECOND,
};
use ftree_topology::rlft::catalog;
use ftree_topology::{
    ChaosEvent, ChaosGen, ChaosSchedule, DegradeEvent, FaultSchedule, LinkEvent, LinkEventKind,
    Topology,
};

/// One full-permutation shift stage in port space: `i -> (i + s) % n`.
fn shift_stage(n: u32, s: u32) -> Vec<(u32, u32)> {
    (0..n).map(|i| (i, (i + s) % n)).collect()
}

/// A leaf-to-spine cable on the D-Mod-K path from host `src` to `dst`.
fn uplink_on_path(topo: &Topology, src: usize, dst: usize) -> u32 {
    let rt = DModK.route_healthy(topo);
    rt.trace(topo, src, dst).unwrap().channels[1].link()
}

/// A degraded cable stretches the makespan — deterministically, with no
/// packet loss and no control-plane reaction (degradations are data-plane
/// only; the subnet manager never reroutes around a slow link).
#[test]
fn degraded_link_slows_the_flow_without_sweeps() {
    let topo = Topology::build(catalog::fig4_pgft_16());
    let plan = TrafficPlan::uniform(vec![vec![(0, 9)]], 65_536, Progression::Asynchronous);
    let link = uplink_on_path(&topo, 0, 9);

    let run = |degradations: Vec<DegradeEvent>| -> SimResult {
        let lc = FabricLifecycle::new(FaultSchedule::empty()).with_degradations(degradations);
        PacketSim::with_lifecycle(&topo, SimConfig::default(), &plan, lc)
            .unwrap()
            .run()
    };

    let healthy = run(Vec::new());
    let degrade = vec![DegradeEvent {
        time: 0,
        link,
        latency_mult: 4,
        drop_ppm: 0,
    }];
    let slow = run(degrade.clone());
    assert!(
        slow.makespan > healthy.makespan,
        "a 4x-slower cable on the only path must stretch the makespan \
         ({} ps vs {} ps)",
        slow.makespan,
        healthy.makespan
    );
    assert_eq!(slow.messages_delivered, 1);
    assert_eq!(slow.packets_dropped, 0, "latency-only degradation");
    assert_eq!(slow.messages_lost, 0);
    assert!(slow.sweep_reports.is_empty(), "data plane only: no sweeps");

    let again = run(degrade);
    assert_eq!(
        slow.makespan, again.makespan,
        "degraded run is deterministic"
    );
    assert_eq!(slow.events, again.events);
}

/// A timed degrade → restore window, expressed as a typed chaos scenario:
/// the window slows the run, the restore returns the cable to nominal, and
/// the whole thing is bit-reproducible.
#[test]
fn degrade_window_from_chaos_schedule_restores_cleanly() {
    let topo = Topology::build(catalog::fig4_pgft_16());
    let n = topo.num_hosts() as u32;
    let plan = TrafficPlan::uniform(
        vec![shift_stage(n, 1), shift_stage(n, 5)],
        32_768,
        Progression::Asynchronous,
    );
    let link = uplink_on_path(&topo, 0, 9);
    let chaos = ChaosSchedule::new(vec![ChaosEvent::LinkDegrade {
        start: 0,
        link,
        latency_mult: 8,
        drop_ppm: 0,
        duration: 20 * MICROSECOND,
    }]);
    let run = || -> SimResult {
        let lc = FabricLifecycle::from_chaos(&topo, &chaos).unwrap();
        PacketSim::with_lifecycle(&topo, SimConfig::default(), &plan, lc)
            .unwrap()
            .run()
    };
    let a = run();
    assert_eq!(a.messages_delivered as u32, 2 * n);
    assert_eq!(a.messages_lost, 0);
    let b = run();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.events, b.events);

    let healthy = {
        let lc = FabricLifecycle::new(FaultSchedule::empty());
        PacketSim::with_lifecycle(&topo, SimConfig::default(), &plan, lc)
            .unwrap()
            .run()
    };
    assert!(a.makespan > healthy.makespan, "the window must cost time");
}

/// Probabilistic loss on a live cable: the drop lottery eats packets
/// (`packets_dropped_degraded`), retransmission heals every one, and the
/// loss accounting stays exact.
#[test]
fn drop_ppm_losses_are_healed_by_retransmission() {
    let topo = Topology::build(catalog::fig4_pgft_16());
    // Eight messages over the same degraded cable. A message is resent
    // *whole* on loss, so the per-packet rate must be low enough that a
    // 32-packet message can complete within the retry budget — 2% gives a
    // handful of drops across the run while every message eventually lands.
    // The lottery is a deterministic hash, so these "statistics" are
    // reproducible facts.
    let plan = TrafficPlan::uniform(vec![vec![(0, 9)]; 8], 65_536, Progression::Asynchronous);
    let link = uplink_on_path(&topo, 0, 9);
    let degradations = vec![DegradeEvent {
        time: 0,
        link,
        latency_mult: 1,
        drop_ppm: 20_000,
    }];
    let mut lc = FabricLifecycle::new(FaultSchedule::empty()).with_degradations(degradations);
    lc.retransmit_timeout = 20 * MICROSECOND;
    let res = PacketSim::with_lifecycle(&topo, SimConfig::default(), &plan, lc)
        .unwrap()
        .run();
    assert!(res.packets_dropped_degraded > 0, "2% loss must eat packets");
    assert_eq!(
        res.packets_dropped, res.packets_dropped_degraded,
        "no dead cables: every drop is a lottery drop"
    );
    assert!(res.retransmits > 0);
    assert_eq!(res.messages_delivered, 8, "retransmission heals every loss");
    assert_eq!(res.messages_lost, 0);
    assert_eq!(res.total_payload, 8 * 65_536);
}

/// The acceptance timeline: a seeded flap storm over the 16-host PGFT.
/// The run settles (all scheduled events applied, fabric fully healed) and
/// every message is accounted for — delivered or counted lost, with the
/// loss bounded well below the offered load.
#[test]
fn flap_storm_timeline_settles_with_bounded_loss() {
    let topo = Topology::build(catalog::fig4_pgft_16());
    let n = topo.num_hosts() as u32;
    let plan = TrafficPlan::uniform(
        vec![shift_stage(n, 1), shift_stage(n, 5), shift_stage(n, 9)],
        32_768,
        Progression::Asynchronous,
    );
    let chaos = ChaosGen::new(77).flap_storm(
        &topo,
        3,                // flapping cables
        50 * MICROSECOND, // storm window
        4,                // bursts per cable
        2 * MICROSECOND,  // min dwell
        12 * MICROSECOND, // burst period
    );
    let run = || -> SimResult {
        let mut lc = FabricLifecycle::from_chaos(&topo, &chaos).unwrap();
        lc.sweep_delay = 2 * MICROSECOND;
        lc.retransmit_timeout = 15 * MICROSECOND;
        PacketSim::with_lifecycle(&topo, SimConfig::default(), &plan, lc)
            .unwrap()
            .run()
    };
    let res = run();
    let offered = 3 * n as u64;
    assert_eq!(
        res.messages_delivered + res.messages_lost,
        offered,
        "every message is accounted for"
    );
    assert!(
        res.messages_lost <= offered / 4,
        "loss must stay bounded: {} of {} lost",
        res.messages_lost,
        offered
    );
    // Settled: the last sweep reports a healed fabric (every flap recovers).
    let last = res.sweep_reports.last().expect("storm forces sweeps");
    assert_eq!(last.failed_links, 0, "all flapped cables recovered");
    assert_eq!(last.unreachable_pairs, 0);

    let again = run();
    assert_eq!(res.makespan, again.makespan, "storm run is deterministic");
    assert_eq!(res.messages_lost, again.messages_lost);
    assert_eq!(res.packets_dropped, again.packets_dropped);
}

/// A destination that is permanently partitioned (its host cable dies and
/// never recovers) is abandoned *early*: once the subnet manager settles
/// and reachability proves the pair dead, the sender stops burning its
/// retry budget and the loss is attributed to `messages_lost_unreachable`.
#[test]
fn partitioned_destination_is_abandoned_early() {
    let topo = Topology::build(catalog::fig4_pgft_16());
    // Host 9's own cable dies just after the run starts, forever.
    let host_link = topo.node(topo.host(9)).up[0].link;
    let sched = FaultSchedule::new(vec![LinkEvent {
        time: MICROSECOND,
        link: host_link,
        kind: LinkEventKind::Fail,
    }]);
    let plan = TrafficPlan::uniform(vec![vec![(0, 9)]], 65_536, Progression::Asynchronous);
    let mut lc = FabricLifecycle::new(sched);
    lc.sweep_delay = 2 * MICROSECOND;
    lc.retransmit_timeout = 10 * MICROSECOND;
    lc.max_retries = 12;
    let max_retries = lc.max_retries as u64;
    let res = PacketSim::with_lifecycle(&topo, SimConfig::default(), &plan, lc)
        .unwrap()
        .run();
    assert_eq!(res.messages_delivered, 0);
    assert_eq!(res.messages_lost, 1);
    assert_eq!(
        res.messages_lost_unreachable, 1,
        "the loss is attributed to the partition"
    );
    assert!(
        res.retransmits < max_retries,
        "partition-aware abandon must not burn the whole retry budget \
         ({} retransmits)",
        res.retransmits
    );
}
