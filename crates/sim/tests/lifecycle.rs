//! End-to-end dynamic-fabric timelines: link fails mid-run, the subnet
//! manager repairs the LFTs incrementally, hosts retransmit what the
//! blackhole window ate — and every message is still delivered.

use ftree_core::{DModK, Router};
use ftree_sim::{
    FabricLifecycle, PacketSim, Progression, SimConfig, SimResult, TrafficPlan, MICROSECOND,
};
use ftree_topology::rlft::catalog;
use ftree_topology::{FaultSchedule, LinkEvent, LinkEventKind, Topology};

/// One full-permutation shift stage in port space: `i -> (i + s) % n`.
fn shift_stage(n: u32, s: u32) -> Vec<(u32, u32)> {
    (0..n).map(|i| (i, (i + s) % n)).collect()
}

/// A leaf-to-spine cable on the D-Mod-K path from host `src` to `dst`
/// (channels\[0\] is the host cable; channels\[1\] leaves the leaf switch).
fn uplink_on_path(topo: &Topology, src: usize, dst: usize) -> u32 {
    let rt = DModK.route_healthy(topo);
    rt.trace(topo, src, dst).unwrap().channels[1].link()
}

fn fail_recover_schedule(link: u32, fail_at: u64, recover_at: u64) -> FaultSchedule {
    FaultSchedule::new(vec![
        LinkEvent {
            time: fail_at,
            link,
            kind: LinkEventKind::Fail,
        },
        LinkEvent {
            time: recover_at,
            link,
            kind: LinkEventKind::Recover,
        },
    ])
}

fn run_324_timeline() -> SimResult {
    let topo = Topology::build(catalog::nodes_324());
    let n = topo.num_hosts() as u32;
    let plan = TrafficPlan::uniform(
        vec![shift_stage(n, 18), shift_stage(n, 36)],
        65_536,
        Progression::Asynchronous,
    );
    // Fail the up-cable carrying host 0's stage-0 flow while that flow is
    // mid-message; bring it back much later.
    let link = uplink_on_path(&topo, 0, 18);
    let mut lc = FabricLifecycle::new(fail_recover_schedule(
        link,
        5 * MICROSECOND,
        60 * MICROSECOND,
    ));
    lc.sweep_delay = 2 * MICROSECOND;
    lc.retransmit_timeout = 40 * MICROSECOND;
    PacketSim::with_lifecycle(&topo, SimConfig::default(), &plan, lc)
        .unwrap()
        .run()
}

/// The acceptance timeline: fail → sweep → recover → sweep on the 324-node
/// RLFT, with two full shift permutations in flight. Packets die in the
/// blackhole window, yet zero messages are lost — every drop is healed by a
/// reroute plus retransmission.
#[test]
fn timeline_324_delivers_everything_through_fail_and_recover() {
    let res = run_324_timeline();
    assert_eq!(res.messages_delivered, 2 * 324, "all messages delivered");
    assert_eq!(res.messages_lost, 0, "no message abandoned");
    assert!(res.packets_dropped > 0, "the blackhole window must bite");
    assert!(res.retransmits > 0, "dropped packets force retransmissions");
    assert_eq!(res.total_payload, 2 * 324 * 65_536, "exact goodput");

    // Two sweeps: one absorbing the failure, one absorbing the recovery.
    assert_eq!(res.sweep_reports.len(), 2);
    let fail_sweep = &res.sweep_reports[0];
    assert_eq!(fail_sweep.events_applied, 1);
    assert_eq!(fail_sweep.links_changed, 1);
    assert_eq!(fail_sweep.failed_links, 1);
    assert_eq!(fail_sweep.unreachable_pairs, 0, "RLFT reroutes around it");
    assert!(
        fail_sweep.entries_changed > 0,
        "the repair rerouted entries"
    );
    let heal_sweep = &res.sweep_reports[1];
    assert_eq!(heal_sweep.failed_links, 0, "fabric fully healed");
    assert!(heal_sweep.entries_changed > 0, "recovery restores d-mod-k");
}

/// Bit-reproducibility: the dynamic timeline is as deterministic as the
/// static simulator.
#[test]
fn timeline_324_is_deterministic() {
    let a = run_324_timeline();
    let b = run_324_timeline();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.total_payload, b.total_payload);
    assert_eq!(a.packets_dropped, b.packets_dropped);
    assert_eq!(a.retransmits, b.retransmits);
    assert_eq!(a.events, b.events);
}

/// An empty schedule must reproduce the static simulator's results exactly
/// (same routes, same timings); only the event count differs, because
/// retransmission timers still fire (as no-ops).
#[test]
fn empty_schedule_matches_static_run() {
    let topo = Topology::build(catalog::fig4_pgft_16());
    let n = topo.num_hosts() as u32;
    let plan = TrafficPlan::uniform(
        vec![shift_stage(n, 1), shift_stage(n, 5)],
        32_768,
        Progression::Asynchronous,
    );
    let rt = DModK.route_healthy(&topo);
    let stat = PacketSim::new(&topo, &rt, SimConfig::default(), &plan).run();
    let dynamic = PacketSim::with_lifecycle(
        &topo,
        SimConfig::default(),
        &plan,
        FabricLifecycle::new(FaultSchedule::empty()),
    )
    .unwrap()
    .run();

    assert_eq!(dynamic.makespan, stat.makespan);
    assert_eq!(dynamic.total_payload, stat.total_payload);
    assert_eq!(dynamic.messages_delivered, stat.messages_delivered);
    assert_eq!(dynamic.max_latency, stat.max_latency);
    assert_eq!(dynamic.packets_dropped, 0);
    assert_eq!(dynamic.retransmits, 0);
    assert_eq!(dynamic.messages_lost, 0);
    assert!(dynamic.sweep_reports.is_empty());
}

/// A single flow whose only sent message crosses the failed cable: the
/// message *must* lose packets, time out, retransmit over the repaired
/// route, and complete.
#[test]
fn single_flow_guaranteed_drop_and_retransmit() {
    let topo = Topology::build(catalog::nodes_324());
    let plan = TrafficPlan::uniform(vec![vec![(0, 18)]], 65_536, Progression::Asynchronous);
    let link = uplink_on_path(&topo, 0, 18);
    let mut lc = FabricLifecycle::new(fail_recover_schedule(
        link,
        2 * MICROSECOND,
        100 * MICROSECOND,
    ));
    lc.sweep_delay = MICROSECOND;
    lc.retransmit_timeout = 30 * MICROSECOND;
    let res = PacketSim::with_lifecycle(&topo, SimConfig::default(), &plan, lc)
        .unwrap()
        .run();
    assert!(res.packets_dropped > 0, "mid-message failure must drop");
    assert!(res.retransmits >= 1);
    assert_eq!(res.messages_delivered, 1);
    assert_eq!(res.messages_lost, 0);
    assert_eq!(res.total_payload, 65_536);
}

/// Synchronized progression survives a mid-stage failure: the stage barrier
/// waits for the retransmitted messages, then later stages run clean.
#[test]
fn synchronized_stages_survive_failure() {
    let topo = Topology::build(catalog::nodes_128());
    let n = topo.num_hosts() as u32;
    // First destination whose route from host 0 actually climbs the tree
    // (intra-leaf pairs never touch a spine cable).
    let rt = DModK.route_healthy(&topo);
    let cross = (1..n)
        .find(|&d| rt.trace(&topo, 0, d as usize).unwrap().channels.len() > 2)
        .expect("128-node tree has more than one leaf");
    let plan = TrafficPlan::uniform(
        vec![shift_stage(n, cross), shift_stage(n, 1), shift_stage(n, 17)],
        16_384,
        Progression::Synchronized,
    );
    // Stage 0's host-0 flow crosses this cable while it dies.
    let link = uplink_on_path(&topo, 0, cross as usize);
    let mut lc = FabricLifecycle::new(fail_recover_schedule(link, MICROSECOND, 200 * MICROSECOND));
    lc.sweep_delay = 2 * MICROSECOND;
    lc.retransmit_timeout = 25 * MICROSECOND;
    let res = PacketSim::with_lifecycle(&topo, SimConfig::default(), &plan, lc)
        .unwrap()
        .run();
    assert!(res.packets_dropped > 0, "mid-stage failure must drop");
    assert_eq!(res.messages_delivered, 3 * 128);
    assert_eq!(res.messages_lost, 0);
    assert_eq!(res.total_payload, 3 * 128 * 16_384);
}

/// The lifecycle's engine choice reaches the embedded subnet manager: a
/// Dmodc-driven run heals a mid-run failure just like the default engine,
/// and a structure-oblivious engine still delivers everything (only
/// slower, via retransmits).
#[test]
fn lifecycle_engine_choice_survives_failure() {
    use ftree_core::RoutingAlgo;

    let topo = Topology::build(catalog::nodes_128());
    let n = topo.num_hosts() as u32;
    let plan = TrafficPlan::uniform(
        vec![shift_stage(n, 8), shift_stage(n, 1)],
        16_384,
        Progression::Asynchronous,
    );
    let link = uplink_on_path(&topo, 0, 8);
    for algo in [RoutingAlgo::Dmodc, RoutingAlgo::MinHopGreedy] {
        let mut lc =
            FabricLifecycle::new(fail_recover_schedule(link, MICROSECOND, 150 * MICROSECOND))
                .with_algo(algo);
        lc.sweep_delay = 2 * MICROSECOND;
        lc.retransmit_timeout = 25 * MICROSECOND;
        let res = PacketSim::with_lifecycle(&topo, SimConfig::default(), &plan, lc)
            .unwrap()
            .run();
        assert_eq!(res.messages_delivered, 2 * 128, "{algo:?}");
        assert_eq!(res.messages_lost, 0, "{algo:?}");
    }
}
