//! Fluid-vs-packet agreement: the DESIGN 4.x claim that the fluid model
//! reproduces the packet simulator's steady-state bandwidth ratios —
//! `normalized_bw = 1.0` for contention-free permutations and `1/k` when
//! `k` flows share one up-link — tested rather than asserted.

use proptest::prelude::*;

use ftree_core::{DModK, Router};
use ftree_sim::{run_fluid, PacketSim, Progression, SimConfig, TrafficPlan};
use ftree_topology::rlft::catalog;
use ftree_topology::Topology;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any cyclic shift of a full RLFT under D-Mod-K is contention-free:
    /// the fluid model must give line rate (= 1.0), and the packet model —
    /// which additionally pays buffer/serialization effects — must agree
    /// within its steady-state tolerance.
    #[test]
    fn contention_free_shift_agrees(offset in 1u32..128) {
        let topo = Topology::build(catalog::nodes_128());
        let rt = DModK.route_healthy(&topo);
        let n = topo.num_hosts() as u32;
        let stage: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + offset) % n)).collect();
        let plan = TrafficPlan::uniform(vec![stage], 1 << 18, Progression::Synchronized);
        let fluid = run_fluid(&topo, &rt, SimConfig::default(), &plan);
        let packet = PacketSim::new(&topo, &rt, SimConfig::default(), &plan).run();
        prop_assert!(fluid.normalized_bw > 0.99, "fluid {}", fluid.normalized_bw);
        prop_assert!(packet.normalized_bw > 0.90, "packet {}", packet.normalized_bw);
        prop_assert!(
            (fluid.normalized_bw - packet.normalized_bw).abs() < 0.1,
            "fluid {} vs packet {}",
            fluid.normalized_bw,
            packet.normalized_bw
        );
    }
}

/// `k` flows forced through one leaf up-link each get `link_bw / k`; both
/// models must show the same per-flow rate, i.e. the same normalized BW
/// `min(link/k, host) / host`, within packet-model tolerance.
#[test]
fn shared_uplink_ratio_agrees_for_k_2_and_3() {
    let topo = Topology::build(catalog::fig4_pgft_16());
    let rt = DModK.route_healthy(&topo);
    let cfg = SimConfig::default();
    let host = cfg.host_bw.mbps as f64;
    let link = cfg.link_bw.mbps as f64;
    // dsts ≡ 0 (mod 4) all leave leaf 0 through the same up-port under
    // D-Mod-K: k flows share one 4000 MB/s channel.
    for k in [2usize, 3] {
        let stage: Vec<(u32, u32)> = (0..k as u32).map(|i| (i, 4 * (i + 1))).collect();
        let plan = TrafficPlan::uniform(vec![stage], 1 << 20, Progression::Synchronized);
        let fluid = run_fluid(&topo, &rt, cfg, &plan);
        let packet = PacketSim::new(&topo, &rt, cfg, &plan).run();
        let expected = (link / k as f64).min(host) / host;
        assert!(
            (fluid.normalized_bw - expected).abs() < 0.01,
            "k={k}: fluid {} vs expected {expected}",
            fluid.normalized_bw
        );
        assert!(
            (packet.normalized_bw - expected).abs() < 0.1 * expected,
            "k={k}: packet {} vs expected {expected}",
            packet.normalized_bw
        );
        assert!(
            (fluid.normalized_bw - packet.normalized_bw).abs() < 0.1 * expected,
            "k={k}: fluid {} vs packet {}",
            fluid.normalized_bw,
            packet.normalized_bw
        );
    }
}
