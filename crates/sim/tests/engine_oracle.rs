//! Cross-engine equivalence: the rebuilt calendar-queue [`PacketSim`]
//! (serial and sharded) must be **bit-identical** to the preserved
//! [`OracleSim`] reference engine — every `SimResult` field including the
//! f64 bandwidth figures (compared via `to_bits`), the per-channel busy
//! vector, flight-recorder NDJSON bytes, and telemetry bucket contents —
//! across catalog topologies, all routing engines, switch models, jitter,
//! both progression modes, and fault/chaos timelines.

use std::sync::Arc;

use ftree_core::{builtin_engines, DModK, Router};
use ftree_obs::{Recorder, TimeSeriesConfig};
use ftree_sim::{
    FabricLifecycle, OracleSim, PacketSim, Progression, SimConfig, SimResult, SwitchModel,
    TrafficPlan, MICROSECOND,
};
use ftree_topology::rlft::catalog;
use ftree_topology::{DegradeEvent, FaultSchedule, LinkEvent, LinkEventKind, PgftSpec, Topology};

/// One full-permutation shift stage in port space: `i -> (i + s) % n`.
fn shift_stage(n: u32, s: u32) -> Vec<(u32, u32)> {
    (0..n).map(|i| (i, (i + s) % n)).collect()
}

/// A congested pseudo-random pattern so arbitration order matters.
fn scramble_stages(n: u32, stages: u32) -> Vec<Vec<(u32, u32)>> {
    (0..stages)
        .map(|s| (0..n).map(|i| (i, (i * 7 + s + 1) % n)).collect())
        .collect()
}

/// Full bit-level equality between two results: the Debug rendering pins
/// every integer field and the f64s print shortest-round-trip, and the
/// explicit `to_bits` checks close the (theoretical) gap where two
/// different bit patterns render alike. Telemetry reservoirs are compared
/// through their serde form.
fn assert_identical(a: &SimResult, b: &SimResult, ctx: &str) {
    assert_eq!(
        a.normalized_bw.to_bits(),
        b.normalized_bw.to_bits(),
        "normalized_bw diverged: {ctx}"
    );
    assert_eq!(
        a.channel_busy, b.channel_busy,
        "channel_busy diverged: {ctx}"
    );
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "results diverged: {ctx}"
    );
    let ts = |r: &SimResult| {
        r.telemetry
            .as_ref()
            .map(|t| serde_json::to_string(t).unwrap())
    };
    assert_eq!(ts(a), ts(b), "telemetry buckets diverged: {ctx}");
}

/// Oracle vs serial vs sharded(2..=4) on a static fabric.
fn check_static(
    topo: &Topology,
    router: &dyn Router,
    cfg: SimConfig,
    plan: &TrafficPlan,
    ctx: &str,
) {
    let rt = router.route_healthy(topo);
    let oracle = OracleSim::new(topo, &rt, cfg, plan).run();
    let serial = PacketSim::new(topo, &rt, cfg, plan).run();
    assert_identical(&oracle, &serial, &format!("{ctx} [serial]"));
    for k in [2usize, 4] {
        let sharded = PacketSim::new(topo, &rt, cfg, plan).with_shards(k).run();
        assert_identical(&oracle, &sharded, &format!("{ctx} [shards={k}]"));
    }
}

#[test]
fn all_routing_engines_match_oracle_on_fig4() {
    let topo = Topology::build(catalog::fig4_pgft_16());
    let n = topo.num_hosts() as u32;
    let plan = TrafficPlan::uniform(scramble_stages(n, 6), 24_576, Progression::Asynchronous);
    for engine in builtin_engines(42) {
        check_static(
            &topo,
            engine.as_ref(),
            SimConfig::default(),
            &plan,
            &format!("fig4_pgft_16/{}", engine.name()),
        );
    }
}

#[test]
fn all_routing_engines_match_oracle_on_nodes_128() {
    let topo = Topology::build(catalog::nodes_128());
    let n = topo.num_hosts() as u32;
    let plan = TrafficPlan::uniform(scramble_stages(n, 3), 16_384, Progression::Asynchronous);
    for engine in builtin_engines(7) {
        check_static(
            &topo,
            engine.as_ref(),
            SimConfig::default(),
            &plan,
            &format!("nodes_128/{}", engine.name()),
        );
    }
}

#[test]
fn larger_catalog_topologies_match_oracle() {
    // One engine at the bigger radixes keeps debug-mode runtime sane while
    // still covering multi-spine arbitration at scale.
    for (name, spec) in [
        ("nodes_324", catalog::nodes_324()),
        ("fig4_xgft_16", catalog::fig4_xgft_16()),
        ("fig1_16", catalog::fig1_16()),
    ] as [(&str, PgftSpec); 3]
    {
        let topo = Topology::build(spec);
        let n = topo.num_hosts() as u32;
        let plan = TrafficPlan::uniform(
            vec![shift_stage(n, 1), shift_stage(n, n / 2)],
            16_384,
            Progression::Asynchronous,
        );
        check_static(&topo, &DModK, SimConfig::default(), &plan, name);
    }
}

#[test]
fn voq_and_jitter_match_oracle() {
    let topo = Topology::build(catalog::nodes_128());
    let n = topo.num_hosts() as u32;
    let plan = TrafficPlan::uniform(scramble_stages(n, 3), 32_768, Progression::Asynchronous);
    let voq = SimConfig {
        switch_model: SwitchModel::VirtualOutputQueues,
        ..SimConfig::default()
    };
    check_static(&topo, &DModK, voq, &plan, "nodes_128/voq");
    let jittery = SimConfig {
        jitter: 20 * MICROSECOND,
        jitter_seed: 99,
        ..SimConfig::default()
    };
    check_static(&topo, &DModK, jittery, &plan, "nodes_128/jitter");
    let both = SimConfig {
        switch_model: SwitchModel::VirtualOutputQueues,
        jitter: 20 * MICROSECOND,
        jitter_seed: 99,
        ..SimConfig::default()
    };
    check_static(&topo, &DModK, both, &plan, "nodes_128/voq+jitter");
}

#[test]
fn synchronized_mode_matches_oracle() {
    // Sharded mode silently falls back to serial for synchronized plans —
    // the fallback must still be bit-identical to the oracle.
    let topo = Topology::build(catalog::fig4_pgft_16());
    let n = topo.num_hosts() as u32;
    let plan = TrafficPlan::uniform(scramble_stages(n, 5), 16_384, Progression::Synchronized);
    check_static(&topo, &DModK, SimConfig::default(), &plan, "fig4/sync");
}

#[test]
fn mixed_size_plans_match_oracle() {
    let topo = Topology::build(catalog::fig4_pgft_16());
    let stages: Vec<Vec<(u32, u32, u64)>> = (0..4)
        .map(|s| {
            (0..16u32)
                .map(|i| (i, (i + s + 1) % 16, 1024 * (1 + (i as u64 + s as u64) % 7)))
                .collect()
        })
        .collect();
    let plan = TrafficPlan::sized(stages, Progression::Asynchronous);
    check_static(&topo, &DModK, SimConfig::default(), &plan, "fig4/sized");
}

/// The leaf-to-spine cable on the D-Mod-K path from `src` to `dst`.
fn uplink_on_path(topo: &Topology, src: usize, dst: usize) -> u32 {
    let rt = DModK.route_healthy(topo);
    rt.trace(topo, src, dst).unwrap().channels[1].link()
}

#[test]
fn lifecycle_fail_recover_matches_oracle() {
    let topo = Topology::build(catalog::fig4_pgft_16());
    let n = topo.num_hosts() as u32;
    let plan = TrafficPlan::uniform(
        vec![shift_stage(n, 1), shift_stage(n, 5)],
        32_768,
        Progression::Asynchronous,
    );
    let link = uplink_on_path(&topo, 0, 1);
    let make_lc = || {
        let mut lc = FabricLifecycle::new(FaultSchedule::new(vec![
            LinkEvent {
                time: 2 * MICROSECOND,
                link,
                kind: LinkEventKind::Fail,
            },
            LinkEvent {
                time: 40 * MICROSECOND,
                link,
                kind: LinkEventKind::Recover,
            },
        ]));
        lc.sweep_delay = MICROSECOND;
        lc.retransmit_timeout = 20 * MICROSECOND;
        lc
    };
    let oracle = OracleSim::with_lifecycle(&topo, SimConfig::default(), &plan, make_lc())
        .unwrap()
        .run();
    let packet = PacketSim::with_lifecycle(&topo, SimConfig::default(), &plan, make_lc())
        .unwrap()
        .run();
    assert_identical(&oracle, &packet, "fig4/lifecycle");
    // Lifecycle runs are serial-only; with_shards must fall back, not fork.
    let fallback = PacketSim::with_lifecycle(&topo, SimConfig::default(), &plan, make_lc())
        .unwrap()
        .with_shards(4)
        .run();
    assert_identical(&oracle, &fallback, "fig4/lifecycle [shards fallback]");
    assert!(
        oracle.retransmits > 0,
        "scenario must actually drop packets"
    );
}

#[test]
fn chaos_degradations_match_oracle() {
    let topo = Topology::build(catalog::fig4_pgft_16());
    let n = topo.num_hosts() as u32;
    let plan = TrafficPlan::uniform(
        vec![shift_stage(n, 1), shift_stage(n, 9)],
        32_768,
        Progression::Asynchronous,
    );
    let link = uplink_on_path(&topo, 0, 1);
    let make_lc = || {
        let mut lc = FabricLifecycle::new(FaultSchedule::empty()).with_degradations(vec![
            DegradeEvent {
                time: 0,
                link,
                latency_mult: 3,
                drop_ppm: 200_000,
            },
            DegradeEvent {
                time: 30 * MICROSECOND,
                link,
                latency_mult: 1,
                drop_ppm: 0,
            },
        ]);
        lc.retransmit_timeout = 15 * MICROSECOND;
        lc
    };
    let oracle = OracleSim::with_lifecycle(&topo, SimConfig::default(), &plan, make_lc())
        .unwrap()
        .run();
    let packet = PacketSim::with_lifecycle(&topo, SimConfig::default(), &plan, make_lc())
        .unwrap()
        .run();
    assert_identical(&oracle, &packet, "fig4/chaos-degrade");
}

#[test]
fn recorder_ndjson_bytes_match_oracle() {
    let topo = Topology::build(catalog::fig4_pgft_16());
    let n = topo.num_hosts() as u32;
    let plan = TrafficPlan::uniform(scramble_stages(n, 3), 16_384, Progression::Asynchronous);
    let rt = DModK.route_healthy(&topo);
    let run = |packet: bool| -> (SimResult, String) {
        let rec = Arc::new(Recorder::new());
        rec.set_route_events(true);
        let r = if packet {
            PacketSim::new(&topo, &rt, SimConfig::default(), &plan)
                .with_recorder(Arc::clone(&rec))
                .run()
        } else {
            OracleSim::new(&topo, &rt, SimConfig::default(), &plan)
                .with_recorder(Arc::clone(&rec))
                .run()
        };
        (r, rec.events_ndjson())
    };
    let (oracle, oracle_tape) = run(false);
    let (packet, packet_tape) = run(true);
    assert_identical(&oracle, &packet, "fig4/recorder");
    assert_eq!(oracle_tape, packet_tape, "NDJSON tapes must be byte-equal");
    assert!(
        oracle_tape.contains("route_decision"),
        "route events must flow even though the packet engine keeps its \
         route cache enabled"
    );
}

#[test]
fn telemetry_buckets_match_oracle() {
    let topo = Topology::build(catalog::nodes_128());
    let n = topo.num_hosts() as u32;
    let plan = TrafficPlan::uniform(scramble_stages(n, 2), 32_768, Progression::Asynchronous);
    let rt = DModK.route_healthy(&topo);
    let cfg = TimeSeriesConfig {
        bucket_ps: MICROSECOND,
        max_buckets: 128,
    };
    let oracle = OracleSim::new(&topo, &rt, SimConfig::default(), &plan)
        .with_telemetry(cfg)
        .run();
    let packet = PacketSim::new(&topo, &rt, SimConfig::default(), &plan)
        .with_telemetry(cfg)
        .run();
    assert!(oracle.telemetry.is_some() && packet.telemetry.is_some());
    assert_identical(&oracle, &packet, "nodes_128/telemetry");
}

#[test]
fn route_cache_off_matches_oracle_route_cache_off() {
    let topo = Topology::build(catalog::fig4_pgft_16());
    let n = topo.num_hosts() as u32;
    let plan = TrafficPlan::uniform(scramble_stages(n, 4), 16_384, Progression::Synchronized);
    let rt = DModK.route_healthy(&topo);
    let oracle = OracleSim::new(&topo, &rt, SimConfig::default(), &plan)
        .without_route_cache()
        .run();
    let packet = PacketSim::new(&topo, &rt, SimConfig::default(), &plan)
        .without_route_cache()
        .run();
    assert_identical(&oracle, &packet, "fig4/no-cache");
}
