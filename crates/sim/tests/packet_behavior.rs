//! Behavioral pins for the production packet engine — the original
//! `packet.rs` in-file suite, kept verbatim against the rebuilt engine
//! (cross-engine bit-identity lives in `engine_oracle.rs`).

use ftree_sim::{PacketSim, Progression, SimConfig, SimResult, TrafficPlan, MICROSECOND};

use ftree_core::{DModK, Router};
use ftree_topology::rlft::catalog;
use ftree_topology::Topology;

fn sim_once(
    topo: &Topology,
    stages: Vec<Vec<(u32, u32)>>,
    bytes: u64,
    mode: Progression,
) -> SimResult {
    let rt = DModK.route_healthy(topo);
    let plan = TrafficPlan::uniform(stages, bytes, mode);
    PacketSim::new(topo, &rt, SimConfig::default(), &plan).run()
}

#[test]
fn route_cache_is_bit_identical_to_table_lookups() {
    let topo = Topology::build(catalog::nodes_128());
    let rt = DModK.route_healthy(&topo);
    let n = topo.num_hosts() as u32;
    // Congested random-ish pattern so arbitration order matters.
    let stages: Vec<Vec<(u32, u32)>> = (0..4)
        .map(|s| (0..n).map(|i| (i, (i * 7 + s + 1) % n)).collect())
        .collect();
    let plan = TrafficPlan::uniform(stages, 16_384, Progression::Synchronized);
    let cached = PacketSim::new(&topo, &rt, SimConfig::default(), &plan).run();
    let slow = PacketSim::new(&topo, &rt, SimConfig::default(), &plan)
        .without_route_cache()
        .run();
    // Every field, including the full per-channel busy vector.
    assert_eq!(format!("{cached:?}"), format!("{slow:?}"));
    assert_eq!(cached.channel_busy, slow.channel_busy);
}

#[test]
fn sharded_mode_is_bit_identical_to_serial() {
    let topo = Topology::build(catalog::nodes_128());
    let rt = DModK.route_healthy(&topo);
    let n = topo.num_hosts() as u32;
    let stages: Vec<Vec<(u32, u32)>> = (0..4)
        .map(|s| (0..n).map(|i| (i, (i * 7 + s + 1) % n)).collect())
        .collect();
    let plan = TrafficPlan::uniform(stages, 16_384, Progression::Asynchronous);
    let serial = PacketSim::new(&topo, &rt, SimConfig::default(), &plan).run();
    for k in [2, 3, 4] {
        let sharded = PacketSim::new(&topo, &rt, SimConfig::default(), &plan)
            .with_shards(k)
            .run();
        assert_eq!(
            format!("{serial:?}"),
            format!("{sharded:?}"),
            "shards = {k}"
        );
    }
}

#[test]
fn single_message_delivers_all_bytes() {
    let topo = Topology::build(catalog::fig4_pgft_16());
    let r = sim_once(&topo, vec![vec![(0, 9)]], 10_000, Progression::Asynchronous);
    assert_eq!(r.messages_delivered, 1);
    assert_eq!(r.total_payload, 10_000);
    assert!(r.makespan > 0);
}

#[test]
fn unloaded_latency_matches_cut_through_estimate() {
    let topo = Topology::build(catalog::fig4_pgft_16());
    let cfg = SimConfig::default();
    let bytes = 2048u64; // single packet
    let r = sim_once(&topo, vec![vec![(0, 9)]], bytes, Progression::Asynchronous);
    // 4-hop path: host->leaf->spine->leaf->host.
    let per_hop = cfg.switch_latency + cfg.wire_latency;
    let expected =
        cfg.host_bw.transfer_time(bytes) + 3 * cfg.link_bw.transfer_time(bytes) + 4 * per_hop;
    assert_eq!(r.max_latency, expected);
}

#[test]
fn self_free_permutation_runs_at_full_bandwidth() {
    // Shift stage on the contention-free configuration: every host
    // streams at its PCIe rate, so normalized BW approaches 1.
    let topo = Topology::build(catalog::nodes_128());
    let n = topo.num_hosts() as u32;
    let stages: Vec<Vec<(u32, u32)>> = (0..8)
        .map(|s| (0..n).map(|i| (i, (i + s + 1) % n)).collect())
        .collect();
    let r = sim_once(&topo, stages, 65_536, Progression::Asynchronous);
    assert_eq!(r.messages_delivered, 8 * 128);
    assert!(
        r.normalized_bw > 0.9,
        "contention-free shift should be near line rate: {}",
        r.normalized_bw
    );
}

#[test]
fn hot_spot_degrades_bandwidth_to_half_link() {
    // Two hosts of one leaf send to destinations sharing one up-port:
    // the flows split one 4000 MB/s link (2000 MB/s each) instead of
    // streaming at the 3250 MB/s PCIe bound — a 3250/2000 = 1.625x
    // slowdown.
    let topo = Topology::build(catalog::fig4_pgft_16());
    let free = sim_once(
        &topo,
        vec![vec![(0, 4), (1, 5)]],
        262_144,
        Progression::Asynchronous,
    );
    let hot = sim_once(
        &topo,
        vec![vec![(0, 4), (1, 8)]], // both dsts ≡ 0 mod 4
        262_144,
        Progression::Asynchronous,
    );
    let ratio = hot.makespan as f64 / free.makespan as f64;
    assert!(
        (1.5..1.75).contains(&ratio),
        "expected ~1.625x slowdown, got {ratio} (hot {} free {})",
        hot.makespan,
        free.makespan
    );
}

#[test]
fn synchronized_mode_barriers_between_stages() {
    let topo = Topology::build(catalog::fig4_pgft_16());
    let stages: Vec<Vec<(u32, u32)>> = vec![vec![(0, 4)], vec![(4, 0)], vec![(0, 4)]];
    let sync = sim_once(&topo, stages.clone(), 8192, Progression::Synchronized);
    let asyn = sim_once(&topo, stages, 8192, Progression::Asynchronous);
    assert_eq!(sync.messages_delivered, 3);
    assert_eq!(asyn.messages_delivered, 3);
    // Host 0's second message waits for stage 2 in sync mode.
    assert!(sync.makespan >= asyn.makespan);
}

#[test]
fn empty_plan_is_a_noop() {
    let topo = Topology::build(catalog::fig4_pgft_16());
    let r = sim_once(&topo, vec![], 1024, Progression::Synchronized);
    assert_eq!(r.messages_delivered, 0);
    assert_eq!(r.makespan, 0);
    let r2 = sim_once(&topo, vec![vec![]], 1024, Progression::Synchronized);
    assert_eq!(r2.messages_delivered, 0);
}

#[test]
fn utilization_tracks_busy_channels() {
    let topo = Topology::build(catalog::fig4_pgft_16());
    let r = sim_once(
        &topo,
        vec![vec![(0, 9)]],
        262_144,
        Progression::Asynchronous,
    );
    // Host 0's up channel streams almost the entire run (PCIe-bound).
    let host_up = topo
        .channel(
            topo.node(topo.host(0)).up[0].link,
            ftree_topology::Direction::Up,
        )
        .index();
    assert!(r.utilization(host_up) > 0.95, "{}", r.utilization(host_up));
    // Links on the path are busy 3250/4000 of the time at most.
    let peak_non_host = (0..r.channel_busy.len())
        .filter(|&c| c != host_up)
        .map(|c| r.utilization(c))
        .fold(0.0f64, f64::max);
    assert!((0.5..=0.85).contains(&peak_non_host), "{peak_non_host}");
    // Channels off the path are idle.
    assert!(r.channel_busy.iter().filter(|&&b| b > 0).count() <= 4);
}

#[test]
fn jitter_delays_starts_but_conserves_traffic() {
    let topo = Topology::build(catalog::fig4_pgft_16());
    let rt = DModK.route_healthy(&topo);
    let stages: Vec<Vec<(u32, u32)>> = vec![(0..16u32).map(|i| (i, (i + 5) % 16)).collect()];
    let plan = TrafficPlan::uniform(stages, 16_384, Progression::Synchronized);
    let calm = PacketSim::new(&topo, &rt, SimConfig::default(), &plan).run();
    let jittery_cfg = SimConfig {
        jitter: 50 * MICROSECOND,
        jitter_seed: 7,
        ..SimConfig::default()
    };
    let jittery = PacketSim::new(&topo, &rt, jittery_cfg, &plan).run();
    assert_eq!(jittery.messages_delivered, calm.messages_delivered);
    assert_eq!(jittery.total_payload, calm.total_payload);
    assert!(
        jittery.makespan > calm.makespan,
        "50us skew must stretch a ~5us stage: {} vs {}",
        jittery.makespan,
        calm.makespan
    );
    // Jitter is deterministic too.
    let again = PacketSim::new(&topo, &rt, jittery_cfg, &plan).run();
    assert_eq!(again.makespan, jittery.makespan);
}

#[test]
fn jitter_hash_is_bounded_and_spread() {
    use ftree_sim::jitter_ps;
    let max = 1_000_000;
    let samples: Vec<u64> = (0..64).map(|h| jitter_ps(1, h, 0, max)).collect();
    assert!(samples.iter().all(|&j| j <= max));
    let distinct: std::collections::HashSet<u64> = samples.iter().copied().collect();
    assert!(
        distinct.len() > 48,
        "hash should spread: {} distinct",
        distinct.len()
    );
    assert_eq!(jitter_ps(1, 3, 0, 0), 0, "jitter disabled when max = 0");
}

#[test]
fn voq_conserves_and_removes_hol_blocking() {
    use ftree_sim::SwitchModel;
    // Workload with a deliberate HOL victim: hosts 0,1 both hammer
    // dst-port residue 0 (hot), host 2 sends to an idle residue. With
    // input FIFOs, host 2's later packets queue behind hot packets at
    // shared buffers; with VOQs they never do.
    let topo = Topology::build(catalog::nodes_128());
    let rt = DModK.route_healthy(&topo);
    let stages: Vec<Vec<(u32, u32)>> = (0..6)
        .map(|_| vec![(0u32, 16u32), (1, 24), (2, 17)])
        .collect();
    let plan = TrafficPlan::uniform(stages, 262_144, Progression::Asynchronous);
    let fifo = PacketSim::new(&topo, &rt, SimConfig::default(), &plan).run();
    let voq_cfg = SimConfig {
        switch_model: SwitchModel::VirtualOutputQueues,
        ..SimConfig::default()
    };
    let voq = PacketSim::new(&topo, &rt, voq_cfg, &plan).run();
    assert_eq!(voq.messages_delivered, fifo.messages_delivered);
    assert_eq!(voq.total_payload, fifo.total_payload);
    assert!(
        voq.makespan <= fifo.makespan,
        "VOQ cannot be slower: voq {} fifo {}",
        voq.makespan,
        fifo.makespan
    );
}

#[test]
fn voq_matches_fifo_on_contention_free_traffic() {
    use ftree_sim::SwitchModel;
    // Without contention there is nothing for VOQs to fix.
    let topo = Topology::build(catalog::fig4_pgft_16());
    let rt = DModK.route_healthy(&topo);
    let stages: Vec<Vec<(u32, u32)>> = vec![(0..16u32).map(|i| (i, (i + 5) % 16)).collect()];
    let plan = TrafficPlan::uniform(stages, 65_536, Progression::Synchronized);
    let fifo = PacketSim::new(&topo, &rt, SimConfig::default(), &plan).run();
    let voq_cfg = SimConfig {
        switch_model: SwitchModel::VirtualOutputQueues,
        ..SimConfig::default()
    };
    let voq = PacketSim::new(&topo, &rt, voq_cfg, &plan).run();
    assert_eq!(voq.makespan, fifo.makespan);
}

#[test]
fn deterministic_replay() {
    let topo = Topology::build(catalog::nodes_128());
    let n = topo.num_hosts() as u32;
    let stages: Vec<Vec<(u32, u32)>> = (0..4)
        .map(|s| (0..n).map(|i| (i, (i * 7 + s + 1) % n)).collect())
        .collect();
    let a = sim_once(&topo, stages.clone(), 16_384, Progression::Asynchronous);
    let b = sim_once(&topo, stages, 16_384, Progression::Asynchronous);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.events, b.events);
    assert_eq!(a.total_payload, b.total_payload);
}
