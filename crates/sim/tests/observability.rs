//! Observability contract tests: the flight recorder's NDJSON export is
//! byte-stable across runs (and against a checked-in golden file), the
//! Chrome trace round-trips through serde_json, and — the core overhead
//! contract — attaching a recorder never perturbs simulation results.

use std::sync::Arc;

use ftree_core::{DModK, Router};
use ftree_obs::Recorder;
use ftree_sim::{
    export_chrome_trace, FabricLifecycle, PacketSim, Progression, SimConfig, SimResult,
    TrafficPlan, MICROSECOND,
};
use ftree_topology::rlft::catalog;
use ftree_topology::{FaultSchedule, LinkEvent, LinkEventKind, Topology};

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/lifecycle_16.ndjson"
);

/// One full-permutation shift stage in port space: `i -> (i + s) % n`.
fn shift_stage(n: u32, s: u32) -> Vec<(u32, u32)> {
    (0..n).map(|i| (i, (i + s) % n)).collect()
}

fn scenario_topo() -> Topology {
    Topology::build(catalog::fig4_pgft_16())
}

fn scenario_plan(n: u32) -> TrafficPlan {
    TrafficPlan::uniform(
        vec![shift_stage(n, 1), shift_stage(n, 5), shift_stage(n, 9)],
        16_384,
        Progression::Asynchronous,
    )
}

/// The leaf-to-spine cable on host 0's route to host 9 (crosses a spine).
fn victim_link(topo: &Topology) -> u32 {
    let rt = DModK.route_healthy(topo);
    rt.trace(topo, 0, 9).unwrap().channels[1].link()
}

fn scenario_lifecycle(topo: &Topology) -> FabricLifecycle {
    let link = victim_link(topo);
    let mut lc = FabricLifecycle::new(FaultSchedule::new(vec![
        LinkEvent {
            time: 10 * MICROSECOND,
            link,
            kind: LinkEventKind::Fail,
        },
        LinkEvent {
            time: 60 * MICROSECOND,
            link,
            kind: LinkEventKind::Recover,
        },
    ]));
    lc.sweep_delay = 2 * MICROSECOND;
    lc.retransmit_timeout = 30 * MICROSECOND;
    lc
}

/// Runs the fixed 16-host fail/recover scenario, optionally recorded.
fn run_scenario(topo: &Topology, rec: Option<&Arc<Recorder>>) -> SimResult {
    let plan = scenario_plan(topo.num_hosts() as u32);
    let mut sim =
        PacketSim::with_lifecycle(topo, SimConfig::default(), &plan, scenario_lifecycle(topo))
            .unwrap();
    if let Some(rec) = rec {
        sim = sim.with_recorder(rec.clone());
    }
    sim.run()
}

/// The flight-recorder NDJSON is a pure function of the (deterministic)
/// simulation: two runs produce identical bytes, and those bytes match the
/// checked-in golden file. If the golden file is absent it is blessed from
/// the current run (first execution on a fresh checkout).
#[test]
fn ndjson_export_is_byte_stable() {
    let topo = scenario_topo();

    let rec_a = Arc::new(Recorder::new());
    let res = run_scenario(&topo, Some(&rec_a));
    assert!(res.packets_dropped > 0, "the blackhole window must bite");
    assert_eq!(res.messages_lost, 0);
    let ndjson_a = rec_a.events_ndjson();

    let rec_b = Arc::new(Recorder::new());
    run_scenario(&topo, Some(&rec_b));
    let ndjson_b = rec_b.events_ndjson();

    assert!(!ndjson_a.is_empty(), "scenario must produce events");
    assert_eq!(ndjson_a, ndjson_b, "NDJSON export must be deterministic");

    // Every line parses back to a tagged event object.
    for line in ndjson_a.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON line");
        assert!(v.get("ev").is_some(), "line missing event tag: {line}");
    }

    match std::fs::read_to_string(GOLDEN) {
        Ok(golden) => assert_eq!(
            ndjson_a, golden,
            "NDJSON diverged from the golden file; if the change is \
             intentional, delete {GOLDEN} and re-run to re-bless"
        ),
        Err(_) => {
            std::fs::create_dir_all(std::path::Path::new(GOLDEN).parent().unwrap()).unwrap();
            std::fs::write(GOLDEN, &ndjson_a).unwrap();
        }
    }
}

/// The Chrome trace document survives a serialize → parse round trip and
/// contains the expected track structure.
#[test]
fn chrome_trace_round_trips_through_serde_json() {
    let topo = scenario_topo();
    let rec = Arc::new(Recorder::new());
    run_scenario(&topo, Some(&rec));

    let trace = export_chrome_trace(&topo, &rec);
    let text = serde_json::to_string_pretty(&trace).unwrap();
    let reparsed: serde_json::Value = serde_json::from_str(&text).unwrap();
    assert_eq!(trace, reparsed, "trace must round-trip losslessly");

    let events = trace["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());
    for ev in events {
        assert!(ev.get("ph").is_some(), "trace event missing phase: {ev}");
        assert!(ev.get("pid").is_some(), "trace event missing pid: {ev}");
    }
    // The fail/recover scenario must surface control-plane instants and at
    // least one named fabric channel track.
    assert!(
        events.iter().any(|e| e["ph"] == "i"),
        "expected instant events for link fail/recover"
    );
    assert!(
        events
            .iter()
            .any(|e| e["ph"] == "M" && e["name"] == "thread_name"),
        "expected thread_name metadata for channel tracks"
    );
}

/// The overhead contract: a recorder observes, never steers. Lifecycle and
/// static runs must be bit-identical with and without one attached.
#[test]
fn recorder_does_not_perturb_results() {
    let topo = scenario_topo();

    let bare = run_scenario(&topo, None);
    let rec = Arc::new(Recorder::new());
    let recorded = run_scenario(&topo, Some(&rec));
    assert_same_result(&bare, &recorded);

    // Static (no lifecycle) runs as well.
    let rt = DModK.route_healthy(&topo);
    let plan = scenario_plan(topo.num_hosts() as u32);
    let bare = PacketSim::new(&topo, &rt, SimConfig::default(), &plan).run();
    let rec = Arc::new(Recorder::new());
    let recorded = PacketSim::new(&topo, &rt, SimConfig::default(), &plan)
        .with_recorder(rec.clone())
        .run();
    assert_same_result(&bare, &recorded);
    assert!(rec.events().len() as u64 >= recorded.messages_delivered);
}

fn assert_same_result(a: &SimResult, b: &SimResult) {
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.total_payload, b.total_payload);
    assert_eq!(a.messages_delivered, b.messages_delivered);
    assert_eq!(a.normalized_bw.to_bits(), b.normalized_bw.to_bits());
    assert_eq!(a.mean_latency.to_bits(), b.mean_latency.to_bits());
    assert_eq!(a.max_latency, b.max_latency);
    assert_eq!(a.max_host_bytes, b.max_host_bytes);
    assert_eq!(a.host_bw_mbps, b.host_bw_mbps);
    assert_eq!(a.events, b.events);
    assert_eq!(a.channel_busy, b.channel_busy);
    assert_eq!(a.packets_dropped, b.packets_dropped);
    assert_eq!(a.retransmits, b.retransmits);
    assert_eq!(a.messages_lost, b.messages_lost);
    assert_eq!(a.duplicate_payload, b.duplicate_payload);
    assert_eq!(
        serde_json::to_value(&a.sweep_reports).unwrap(),
        serde_json::to_value(&b.sweep_reports).unwrap()
    );
}

/// `efficiency()` is computed in f64. The old integer form truncated
/// `max_host_bytes * 1e6 / host_bw_mbps` to zero whenever the numerator was
/// below the (huge) host bandwidth — every sub-4MB probe reported 0.0.
#[test]
fn efficiency_survives_tiny_messages() {
    let r = SimResult {
        makespan: 1,
        total_payload: 3,
        messages_delivered: 1,
        normalized_bw: 0.0,
        mean_latency: 0.0,
        max_latency: 1,
        max_host_bytes: 3,
        host_bw_mbps: 4_000_000,
        events: 0,
        channel_busy: Vec::new(),
        packets_dropped: 0,
        packets_dropped_degraded: 0,
        retransmits: 0,
        messages_lost: 0,
        messages_lost_unreachable: 0,
        duplicate_payload: 0,
        sweep_reports: Vec::new(),
        telemetry: None,
    };
    // ideal = 3 * 1e6 / 4e6 = 0.75 ps; integer division gave 0.
    assert!((r.efficiency() - 0.75).abs() < 1e-12);

    // End to end: a single 64-byte message must report nonzero efficiency.
    let topo = scenario_topo();
    let rt = DModK.route_healthy(&topo);
    let plan = TrafficPlan::uniform(vec![vec![(0, 9)]], 64, Progression::Asynchronous);
    let res = PacketSim::new(&topo, &rt, SimConfig::default(), &plan).run();
    assert_eq!(res.messages_delivered, 1);
    assert!(
        res.efficiency() > 0.0,
        "64-byte message must not truncate to zero efficiency"
    );
    assert!(res.efficiency() <= 1.0 + 1e-9);
}
