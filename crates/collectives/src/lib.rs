//! # ftree-collectives — MPI collective permutation sequences
//!
//! Implements the Sec. III decomposition of MPI collective algorithms into
//! **Collective Permutation Sequences** (CPS): the per-stage pattern of
//! communicating rank pairs, independent of message content.
//!
//! * [`Cps`] — the eight closed-form Table 2 kinds (Ring, Shift,
//!   Dissemination, Tournament, Binomial, Recursive-Doubling,
//!   Recursive-Halving, Neighbor-Exchange), generated lazily per stage,
//! * [`TopoAwareRd`] — the Sec. VI topology-aware bidirectional sequence
//!   that keeps recursive doubling contention-free on fat-trees,
//! * [`classify()`](classify::classify)/[`identify`] — the unidirectional/bidirectional taxonomy
//!   and trace-to-CPS matching,
//! * [`table1()`](table1::table1) — the MVAPICH/OpenMPI algorithm survey as data.
//!
//! ```
//! use ftree_collectives::{Cps, PermutationSequence};
//!
//! // The Shift CPS is the superset of all unidirectional sequences.
//! let stage = Cps::Shift.stage(16, 3); // displacement 4
//! assert_eq!(stage.constant_displacement(16), Some(4));
//! ```

#![warn(missing_docs)]

pub mod classify;
pub mod cps;
pub mod seq;
pub mod subset;
pub mod table1;
pub mod topo_aware;

pub use classify::{classify, identify, SequenceClass};
pub use cps::Cps;
pub use seq::{ceil_log2, floor_log2, PermutationSequence, Stage};
pub use subset::PortSpace;
pub use table1::{table1, AlgorithmEntry, Collective, MessageClass, MpiLibrary};
pub use topo_aware::{topo_aware_subset, ShapeError, TopoAwareRd, TopoStageId, TopoStageRole};
