//! The Table 1 survey: which CPS each MVAPICH / OpenMPI collective
//! algorithm employs.
//!
//! The paper surveys the collective implementations of MVAPICH and OpenMPI
//! and finds that 18 algorithms employ only 8 distinct permutation
//! sequences. This module encodes that mapping as data (reconstructed from
//! the two MPI implementations the paper surveys; the printed table is only
//! partly legible in our source). `ftree-mpi` executes each algorithm and
//! verifies — via [`crate::classify::identify`] — that its traced
//! communication really is the declared CPS.

use serde::{Deserialize, Serialize};

use crate::cps::Cps;

/// MPI implementation surveyed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MpiLibrary {
    /// MVAPICH only.
    Mvapich,
    /// OpenMPI only.
    OpenMpi,
    /// Algorithm present in both code bases.
    Both,
}

/// Message-size regime the algorithm is selected for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MessageClass {
    /// Selected for short messages.
    Small,
    /// Selected for long messages.
    Large,
    /// Used regardless of size.
    Any,
}

/// MPI collective operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // the variants are the standard MPI operation names
pub enum Collective {
    Allgather,
    Allreduce,
    Alltoall,
    Barrier,
    Broadcast,
    Gather,
    Reduce,
    ReduceScatter,
    Scatter,
}

impl Collective {
    /// Display name matching the paper's Table 1 column headers.
    pub fn label(self) -> &'static str {
        match self {
            Collective::Allgather => "AllGather",
            Collective::Allreduce => "AllReduce",
            Collective::Alltoall => "AllToAll",
            Collective::Barrier => "Barrier",
            Collective::Broadcast => "Broadcast",
            Collective::Gather => "Gather",
            Collective::Reduce => "Reduce",
            Collective::ReduceScatter => "ReduceScatter",
            Collective::Scatter => "Scatter",
        }
    }
}

/// One algorithm row of the survey.
#[derive(Debug, Clone, Serialize)]
pub struct AlgorithmEntry {
    /// The MPI operation implemented.
    pub collective: Collective,
    /// Algorithm name as used by the MPI code bases.
    pub algorithm: &'static str,
    /// Which implementation(s) ship it.
    pub library: MpiLibrary,
    /// Message-size regime it is selected for.
    pub message_class: MessageClass,
    /// CPS employed, in execution order (composite algorithms such as
    /// Rabenseifner use two).
    pub cps: &'static [Cps],
    /// Some algorithms are only selected for power-of-two job sizes.
    pub pow2_only: bool,
}

/// The 18-algorithm survey.
pub fn table1() -> Vec<AlgorithmEntry> {
    use Collective::*;
    use Cps::*;
    use MessageClass::*;
    use MpiLibrary::*;
    vec![
        AlgorithmEntry {
            collective: Allgather,
            algorithm: "recursive doubling",
            library: Both,
            message_class: Small,
            cps: &[RecursiveDoubling],
            pow2_only: true,
        },
        AlgorithmEntry {
            collective: Allgather,
            algorithm: "bruck",
            library: OpenMpi,
            message_class: Small,
            cps: &[Dissemination],
            pow2_only: false,
        },
        AlgorithmEntry {
            collective: Allgather,
            algorithm: "ring",
            library: Both,
            message_class: Large,
            cps: &[Ring],
            pow2_only: false,
        },
        AlgorithmEntry {
            collective: Allgather,
            algorithm: "neighbor exchange",
            library: OpenMpi,
            message_class: Large,
            cps: &[NeighborExchange],
            pow2_only: false,
        },
        AlgorithmEntry {
            collective: Allreduce,
            algorithm: "recursive doubling",
            library: Both,
            message_class: Small,
            cps: &[RecursiveDoubling],
            pow2_only: false,
        },
        AlgorithmEntry {
            collective: Allreduce,
            algorithm: "rabenseifner",
            library: Both,
            message_class: Large,
            cps: &[RecursiveHalving, RecursiveDoubling],
            pow2_only: false,
        },
        AlgorithmEntry {
            collective: Allreduce,
            algorithm: "ring (reduce-scatter + allgather)",
            library: OpenMpi,
            message_class: Large,
            cps: &[Ring],
            pow2_only: false,
        },
        AlgorithmEntry {
            collective: Alltoall,
            algorithm: "pairwise exchange",
            library: Mvapich,
            message_class: Large,
            cps: &[Shift],
            pow2_only: false,
        },
        AlgorithmEntry {
            collective: Alltoall,
            algorithm: "bruck",
            library: Both,
            message_class: Small,
            cps: &[Dissemination],
            pow2_only: false,
        },
        AlgorithmEntry {
            collective: Barrier,
            algorithm: "dissemination",
            library: OpenMpi,
            message_class: Any,
            cps: &[Dissemination],
            pow2_only: false,
        },
        AlgorithmEntry {
            collective: Barrier,
            algorithm: "recursive doubling",
            library: Mvapich,
            message_class: Any,
            cps: &[RecursiveDoubling],
            pow2_only: true,
        },
        AlgorithmEntry {
            collective: Broadcast,
            algorithm: "binomial tree",
            library: Both,
            message_class: Small,
            cps: &[Binomial],
            pow2_only: false,
        },
        AlgorithmEntry {
            collective: Broadcast,
            algorithm: "scatter + ring allgather",
            library: OpenMpi,
            message_class: Large,
            cps: &[Binomial, Ring],
            pow2_only: false,
        },
        AlgorithmEntry {
            collective: Gather,
            algorithm: "binomial tree",
            library: Both,
            message_class: Any,
            cps: &[Tournament],
            pow2_only: false,
        },
        AlgorithmEntry {
            collective: Reduce,
            algorithm: "binomial tree",
            library: Both,
            message_class: Small,
            cps: &[Tournament],
            pow2_only: false,
        },
        AlgorithmEntry {
            collective: ReduceScatter,
            algorithm: "recursive halving",
            library: Both,
            message_class: Small,
            cps: &[RecursiveHalving],
            pow2_only: true,
        },
        AlgorithmEntry {
            collective: ReduceScatter,
            algorithm: "pairwise exchange",
            library: Mvapich,
            message_class: Large,
            cps: &[Shift],
            pow2_only: false,
        },
        AlgorithmEntry {
            collective: Scatter,
            algorithm: "binomial tree",
            library: Both,
            message_class: Any,
            cps: &[Binomial],
            pow2_only: false,
        },
    ]
}

/// The distinct CPS used across the survey (the paper's headline: just 8).
pub fn distinct_cps() -> Vec<Cps> {
    let mut seen = Vec::new();
    for entry in table1() {
        for &cps in entry.cps {
            if !seen.contains(&cps) {
                seen.push(cps);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eighteen_algorithms() {
        assert_eq!(table1().len(), 18);
    }

    #[test]
    fn exactly_eight_distinct_cps() {
        let cps = distinct_cps();
        assert_eq!(cps.len(), 8, "{cps:?}");
        for kind in Cps::ALL {
            assert!(cps.contains(&kind), "{} unused", kind.label());
        }
    }

    #[test]
    fn every_collective_covered() {
        use Collective::*;
        let t = table1();
        for c in [
            Allgather,
            Allreduce,
            Alltoall,
            Barrier,
            Broadcast,
            Gather,
            Reduce,
            ReduceScatter,
            Scatter,
        ] {
            assert!(t.iter().any(|e| e.collective == c), "{}", c.label());
        }
    }

    #[test]
    fn shift_only_used_by_pairwise_algorithms() {
        for e in table1() {
            if e.cps.contains(&Cps::Shift) {
                assert!(e.algorithm.contains("pairwise"));
            }
        }
    }
}
