//! Position-preserving sequences for partially-populated jobs.
//!
//! Table 3 evaluates jobs that use only a subset of a tree's end-ports
//! ("Cont. −X": randomly selected nodes are *excluded from the
//! communication*). Naively renumbering the surviving ranks and running the
//! ordinary Shift CPS breaks Theorem 1 — a rank-space displacement no
//! longer corresponds to a constant port-space displacement, and measured
//! HSD rises above 1. The paper's remedy is the same as for the
//! bidirectional case (Sec. VI): make the sequence *topology aware* — keep
//! the permutation defined over **port positions**, with excluded ports
//! simply silent. Every stage is then a subset of a complete-tree CPS
//! stage, so the D-Mod-K guarantees carry over verbatim.
//!
//! [`PortSpace`] wraps any CPS: stages are generated over the full port
//! count and filtered/re-indexed to the populated subset.

use serde::{Deserialize, Serialize};

use crate::seq::{PermutationSequence, Stage};

/// A CPS over `total` port positions restricted to a populated subset.
///
/// Ranks `0..positions.len()` map to the sorted populated ports; a stage
/// pair survives iff both its endpoints are populated.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PortSpace<C> {
    inner: C,
    total: u32,
    positions: Vec<u32>,
    /// port -> rank (`u32::MAX` = unpopulated).
    rank_of: Vec<u32>,
    name: String,
}

impl<C: PermutationSequence> PortSpace<C> {
    /// Wraps `inner` (defined over `total` ports) onto the populated
    /// `positions` (deduplicated and sorted internally).
    pub fn new(inner: C, total: u32, mut positions: Vec<u32>) -> Self {
        positions.sort_unstable();
        positions.dedup();
        assert!(
            positions.last().is_none_or(|&p| p < total),
            "populated port beyond total"
        );
        let mut rank_of = vec![u32::MAX; total as usize];
        for (rank, &port) in positions.iter().enumerate() {
            rank_of[port as usize] = rank as u32;
        }
        let name = format!("{}[{}/{}]", inner.name(), positions.len(), total);
        Self {
            inner,
            total,
            positions,
            rank_of,
            name,
        }
    }

    /// The populated ports, in rank order.
    pub fn positions(&self) -> &[u32] {
        &self.positions
    }

    /// Number of populated ranks.
    pub fn num_ranks(&self) -> u32 {
        self.positions.len() as u32
    }
}

impl<C: PermutationSequence> PermutationSequence for PortSpace<C> {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_stages(&self, n: u32) -> usize {
        assert_eq!(n, self.num_ranks(), "sequence is bound to its port subset");
        self.inner.num_stages(self.total)
    }

    fn stage(&self, n: u32, s: usize) -> Stage {
        assert_eq!(n, self.num_ranks(), "sequence is bound to its port subset");
        let full = self.inner.stage(self.total, s);
        Stage::new(
            full.pairs
                .iter()
                .filter_map(|&(src_port, dst_port)| {
                    let src = self.rank_of[src_port as usize];
                    let dst = self.rank_of[dst_port as usize];
                    (src != u32::MAX && dst != u32::MAX).then_some((src, dst))
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cps::Cps;

    #[test]
    fn full_population_is_identity_wrapper() {
        let seq = PortSpace::new(Cps::Shift, 12, (0..12).collect());
        assert_eq!(seq.num_stages(12), Cps::Shift.num_stages(12));
        for s in 0..seq.num_stages(12) {
            assert_eq!(seq.stage(12, s), Cps::Shift.stage(12, s));
        }
    }

    #[test]
    fn excluded_ports_fall_silent() {
        // Ports 0..8 minus {2, 5}.
        let seq = PortSpace::new(Cps::Ring, 8, vec![0, 1, 3, 4, 6, 7]);
        let st = seq.stage(6, 0);
        // Port-space ring pairs that survive: 0->1, 3->4, 6->7, 7->0.
        // Rank mapping: port 0->rank 0, 1->1, 3->2, 4->3, 6->4, 7->5.
        assert_eq!(st.pairs, vec![(0, 1), (2, 3), (4, 5), (5, 0)]);
    }

    #[test]
    fn stage_pairs_stay_in_rank_range() {
        let positions: Vec<u32> = (0..24).filter(|p| p % 5 != 0).collect();
        let n = positions.len() as u32;
        let seq = PortSpace::new(Cps::Shift, 24, positions);
        for s in 0..seq.num_stages(n) {
            let st = seq.stage(n, s);
            assert!(st.pairs.iter().all(|&(a, b)| a < n && b < n));
            assert!(st.is_partial_permutation());
        }
    }

    #[test]
    fn subset_stages_preserve_port_displacement() {
        let positions = vec![1u32, 2, 4, 7, 8, 11];
        let seq = PortSpace::new(Cps::Shift, 12, positions.clone());
        for s in 0..seq.num_stages(6) {
            for (a, b) in seq.stage(6, s).pairs {
                let d = (positions[b as usize] + 12 - positions[a as usize]) % 12;
                assert_eq!(
                    d as usize,
                    s + 1,
                    "port displacement must equal stage shift"
                );
            }
        }
    }

    #[test]
    fn duplicates_are_removed() {
        let seq = PortSpace::new(Cps::Ring, 6, vec![3, 1, 3, 5, 1]);
        assert_eq!(seq.positions(), &[1, 3, 5]);
        assert_eq!(seq.num_ranks(), 3);
    }

    #[test]
    #[should_panic(expected = "beyond total")]
    fn out_of_range_port_rejected() {
        let _ = PortSpace::new(Cps::Ring, 4, vec![0, 4]);
    }
}
