//! Sequence classification and identification.
//!
//! Paper Sec. III draws two conclusions that this module makes executable:
//! every CPS stage has **constant displacement**, and every CPS falls into
//! exactly one of two classes — *unidirectional* (displacement always
//! positive) or *bidirectional* (every pair accompanied by its reverse).
//! [`identify`] additionally matches an observed stage trace (e.g. produced
//! by the `ftree-mpi` tracer) back to one of the Table 2 kinds, which is how
//! the Table 1 survey is validated in code.

use serde::{Deserialize, Serialize};

use crate::cps::Cps;
use crate::seq::{PermutationSequence, Stage};

/// The paper's two-class CPS taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SequenceClass {
    /// All stages are constant-displacement permutations.
    Unidirectional,
    /// Stages are symmetric XOR-style exchanges (possibly with asymmetric
    /// pre/post proxy stages for non-power-of-two job sizes).
    Bidirectional,
}

/// Classifies a sequence over `n` ranks.
pub fn classify(seq: &dyn PermutationSequence, n: u32) -> SequenceClass {
    if seq.is_unidirectional(n) {
        SequenceClass::Unidirectional
    } else {
        SequenceClass::Bidirectional
    }
}

/// Normalizes a stage for comparison (sorts pairs).
fn normalized(stage: &Stage) -> Vec<(u32, u32)> {
    let mut pairs = stage.pairs.clone();
    pairs.sort_unstable();
    pairs
}

/// Compares two stage lists modulo pair order, skipping empty stages.
fn sequences_equal(a: &[Stage], b: &[Stage]) -> bool {
    let an: Vec<_> = a.iter().filter(|s| !s.is_empty()).map(normalized).collect();
    let bn: Vec<_> = b.iter().filter(|s| !s.is_empty()).map(normalized).collect();
    an == bn
}

/// Identifies which Table 2 CPS produced `trace` (for a job of `n` ranks),
/// if any.
///
/// A repeated Ring stage (the form in which ring algorithms appear in
/// traces: `N-1` identical one-hop permutations) is identified as
/// [`Cps::Ring`].
pub fn identify(trace: &[Stage], n: u32) -> Option<Cps> {
    // Repeated-ring special case first: all stages identical to Ring's.
    if !trace.is_empty() {
        let ring = Cps::Ring.stage(n, 0);
        let rn = normalized(&ring);
        if trace.iter().all(|st| normalized(st) == rn) {
            return Some(Cps::Ring);
        }
    }
    for cps in Cps::ALL {
        if matches!(cps, Cps::NeighborExchange) && !n.is_multiple_of(2) {
            continue;
        }
        if sequences_equal(trace, &cps.stages(n)) {
            return Some(cps);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_all_kinds() {
        for cps in Cps::ALL {
            let expected = if cps.is_bidirectional() {
                SequenceClass::Bidirectional
            } else {
                SequenceClass::Unidirectional
            };
            assert_eq!(classify(&cps, 12), expected, "{}", cps.label());
        }
    }

    #[test]
    fn identify_every_kind_roundtrip() {
        for cps in Cps::ALL {
            for n in [8u32, 12, 24] {
                let trace = cps.stages(n);
                let found = identify(&trace, n);
                // Ring's single stage equals Shift's first stage, so Ring may
                // be identified for either; all other kinds must roundtrip.
                match cps {
                    Cps::Ring => assert_eq!(found, Some(Cps::Ring)),
                    _ => assert_eq!(found, Some(cps), "{} n={n}", cps.label()),
                }
            }
        }
    }

    #[test]
    fn identify_repeated_ring() {
        let n = 10u32;
        let trace: Vec<Stage> = (0..n - 1).map(|_| Cps::Ring.stage(n, 0)).collect();
        assert_eq!(identify(&trace, n), Some(Cps::Ring));
    }

    #[test]
    fn identify_rejects_unknown() {
        // A permutation that is not constant-displacement and not XOR.
        let weird = vec![Stage::new(vec![
            (0, 3),
            (1, 0),
            (2, 1),
            (3, 2),
            (4, 5),
            (5, 4),
        ])];
        assert_eq!(identify(&weird, 6), None);
    }

    #[test]
    fn identify_ignores_empty_stages() {
        let n = 16u32;
        let mut trace = Cps::Binomial.stages(n);
        trace.push(Stage::new(vec![]));
        assert_eq!(identify(&trace, n), Some(Cps::Binomial));
    }
}
