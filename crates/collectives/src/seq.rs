//! Stage/permutation-sequence abstractions.
//!
//! Paper Sec. III decomposes every MPI collective algorithm into a
//! **Collective Permutation Sequence** (CPS) — the per-stage pattern of
//! source→destination rank pairs — and the *content* exchanged. This module
//! defines the stage representation and the [`PermutationSequence`] trait
//! that all CPS implementations (closed-form Table 2 kinds and the
//! topology-aware Sec. VI sequence) satisfy.

use serde::{Deserialize, Serialize};

/// One communication stage: the set of directed `(src_rank, dst_rank)`
/// messages that are in flight simultaneously.
///
/// Bidirectional CPS stages list both directions explicitly, so a stage is
/// always a plain set of directed flows — which is exactly what contention
/// analysis and simulation consume.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stage {
    /// Directed rank pairs; no rank may appear twice as a source.
    pub pairs: Vec<(u32, u32)>,
}

impl Stage {
    /// Creates a stage, debug-asserting that sources are unique.
    pub fn new(pairs: Vec<(u32, u32)>) -> Self {
        #[cfg(debug_assertions)]
        {
            let mut srcs: Vec<u32> = pairs.iter().map(|&(s, _)| s).collect();
            srcs.sort_unstable();
            srcs.dedup();
            assert_eq!(srcs.len(), pairs.len(), "duplicate source rank in stage");
        }
        Self { pairs }
    }

    /// Number of flows in the stage.
    #[inline]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when the stage carries no traffic.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Constant displacement `(dst - src) mod n` shared by all pairs, if any
    /// (the paper's first key observation about unidirectional CPS).
    pub fn constant_displacement(&self, n: u32) -> Option<u32> {
        let mut it = self.pairs.iter();
        let &(s0, d0) = it.next()?;
        let disp = (d0 + n - s0) % n;
        for &(s, d) in it {
            if (d + n - s) % n != disp {
                return None;
            }
        }
        Some(disp)
    }

    /// True when every `(i, j)` pair has its reverse `(j, i)` in the stage —
    /// the paper's definition of a bidirectional stage.
    pub fn is_symmetric(&self) -> bool {
        if self.pairs.is_empty() {
            return true;
        }
        let mut set: Vec<(u32, u32)> = self.pairs.clone();
        set.sort_unstable();
        self.pairs
            .iter()
            .all(|&(s, d)| set.binary_search(&(d, s)).is_ok())
    }

    /// True when each rank appears at most once as a source and at most once
    /// as a destination (the stage is a partial permutation).
    pub fn is_partial_permutation(&self) -> bool {
        let mut srcs: Vec<u32> = self.pairs.iter().map(|&(s, _)| s).collect();
        let mut dsts: Vec<u32> = self.pairs.iter().map(|&(_, d)| d).collect();
        srcs.sort_unstable();
        dsts.sort_unstable();
        srcs.windows(2).all(|w| w[0] != w[1]) && dsts.windows(2).all(|w| w[0] != w[1])
    }

    /// True when the stage is a *full* permutation of `0..n` (every rank
    /// sends exactly once and receives exactly once).
    pub fn is_full_permutation(&self, n: u32) -> bool {
        self.pairs.len() == n as usize && self.is_partial_permutation()
    }
}

/// A CPS: an ordered sequence of communication stages over `n` ranks.
///
/// Implementations generate stages lazily by index, so the `N-1`-stage Shift
/// sequence over thousands of ranks can be sampled without materializing
/// millions of pairs.
pub trait PermutationSequence {
    /// Human-readable sequence name.
    fn name(&self) -> &str;

    /// Number of stages for a job of `n` ranks.
    fn num_stages(&self, n: u32) -> usize;

    /// Generates stage `s` (`0 <= s < num_stages(n)`).
    fn stage(&self, n: u32, s: usize) -> Stage;

    /// Materializes the full sequence.
    fn stages(&self, n: u32) -> Vec<Stage> {
        (0..self.num_stages(n)).map(|s| self.stage(n, s)).collect()
    }

    /// True when every stage moves all pairs by one common cyclic
    /// displacement — the paper's *unidirectional* class. Bidirectional
    /// (XOR-exchange) stages pair `+d` and `-d` displacements and therefore
    /// fail this check. (Note the Shift stage at displacement `N/2` is
    /// symmetric yet still constant-displacement; the paper counts it as
    /// unidirectional, which this criterion captures.)
    fn is_unidirectional(&self, n: u32) -> bool {
        (0..self.num_stages(n)).all(|s| {
            let st = self.stage(n, s);
            st.is_empty() || st.constant_displacement(n).is_some()
        })
    }
}

/// `ceil(log2(n))` for `n >= 1`; 0 for `n = 1`.
#[inline]
pub fn ceil_log2(n: u32) -> u32 {
    debug_assert!(n >= 1);
    if n <= 1 {
        0
    } else {
        32 - (n - 1).leading_zeros()
    }
}

/// `floor(log2(n))` for `n >= 1`.
#[inline]
pub fn floor_log2(n: u32) -> u32 {
    debug_assert!(n >= 1);
    31 - n.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_helpers() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
        assert_eq!(ceil_log2(1944), 11);
        assert_eq!(floor_log2(1), 0);
        assert_eq!(floor_log2(1944), 10);
        assert_eq!(floor_log2(2048), 11);
    }

    #[test]
    fn constant_displacement_detected() {
        let st = Stage::new(vec![(0, 3), (1, 4), (2, 5), (5, 2)]);
        assert_eq!(st.constant_displacement(6), Some(3));
        let st2 = Stage::new(vec![(0, 3), (1, 5)]);
        assert_eq!(st2.constant_displacement(6), None);
    }

    #[test]
    fn symmetry_detected() {
        let sym = Stage::new(vec![(0, 1), (1, 0), (2, 3), (3, 2)]);
        assert!(sym.is_symmetric());
        let asym = Stage::new(vec![(0, 1), (1, 2)]);
        assert!(!asym.is_symmetric());
        assert!(Stage::new(vec![]).is_symmetric());
    }

    #[test]
    fn permutation_checks() {
        let full = Stage::new(vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(full.is_full_permutation(4));
        assert!(full.is_partial_permutation());
        let partial = Stage::new(vec![(0, 1), (2, 3)]);
        assert!(!partial.is_full_permutation(4));
        assert!(partial.is_partial_permutation());
        let clash = Stage::new(vec![(0, 1), (2, 1)]);
        assert!(!clash.is_partial_permutation());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "duplicate source")]
    fn duplicate_sources_rejected_in_debug() {
        let _ = Stage::new(vec![(0, 1), (0, 2)]);
    }
}
