//! Topology-aware bidirectional permutation sequence (paper Sec. VI).
//!
//! Plain recursive doubling XOR-exchanges arbitrary rank pairs, which on a
//! fat-tree makes flows with displacement `+2^s` and `-2^s` cross subtree
//! boundaries in ways D-Mod-K cannot keep contention-free. The paper's fix
//! (Theorem 3) restricts each stage so that *all up-going traffic through
//! any switch is one constant-displacement shift*: communication is grouped
//! by tree level — ranks exchange within their leaf switch first, then
//! between leaf switches under a common level-2 parent, and so on. Within
//! the level-`l` group of stages, partners are mirrors at distance
//! `2^s * M_{l-1}` (whole-subtree strides), with pre/post proxy stages
//! handling levels whose arity `m_l` is not a power of two.
//!
//! Using the paper's constants per level `l` (1-based):
//! `L_l = floor(log2(m_l))`, `M_l = prod_{j<=l} m_j`, `E_l = M_{l-1} * 2^{L_l}`.
//!
//! A rank `i` belongs to position `g = (i mod M_l) / M_{l-1}` within its
//! level-`l` group. Stages:
//!
//! * pre  (`E_l != M_l` only): `i+E_l -> i` folds remainder positions onto
//!   proxies (`g >= 2^{L_l}` sends to `g - 2^{L_l}`),
//! * bulk `s = 0..L_l`: `i <-> i + ((g XOR 2^s) - g) * M_{l-1}` for
//!   `g < 2^{L_l}`,
//! * post: the reverse of pre.

use serde::{Deserialize, Serialize};

use crate::seq::{floor_log2, PermutationSequence, Stage};

/// Stage role within a level group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopoStageRole {
    /// Remainder ranks fold onto proxies.
    Pre,
    /// XOR exchange at subtree stride `2^s`.
    Exchange {
        /// Stage exponent within the level group.
        s: u32,
    },
    /// Proxies return results to remainder ranks.
    Post,
}

/// Descriptor locating a stage in the level-grouped schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopoStageId {
    /// Tree level (1-based, matching the paper).
    pub level: usize,
    /// Role within the level group.
    pub role: TopoStageRole,
}

/// The Sec. VI topology-aware recursive-doubling sequence for a fat-tree
/// whose level-`l` switches have `m[l-1]` children (the PGFT `m` vector).
///
/// Ranks are assumed to be assigned in topology order (rank `r` on end-port
/// `r`), which is exactly the node ordering the paper prescribes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopoAwareRd {
    m: Vec<u32>,
}

impl TopoAwareRd {
    /// Builds the sequence for a tree with children-multiplicity vector `m`
    /// (e.g. `[18, 18, 6]` for the 1944-node RLFT).
    pub fn new(m: Vec<u32>) -> Self {
        assert!(!m.is_empty(), "tree must have at least one level");
        assert!(m.iter().all(|&x| x >= 1), "level arities must be positive");
        Self { m }
    }

    /// Total ranks `N = prod m`.
    pub fn num_ranks(&self) -> u32 {
        self.m.iter().product()
    }

    /// `M_l` for 1-based `l` (`M_0 = 1`).
    fn m_prefix(&self, l: usize) -> u32 {
        self.m[..l].iter().product()
    }

    /// Per-level stage roles in schedule order.
    fn level_roles(&self, level: usize) -> Vec<TopoStageRole> {
        let m_l = self.m[level - 1];
        let bits = floor_log2(m_l);
        let pow = 1u32 << bits;
        let mut roles = Vec::new();
        if m_l != pow {
            roles.push(TopoStageRole::Pre);
        }
        for s in 0..bits {
            roles.push(TopoStageRole::Exchange { s });
        }
        if m_l != pow {
            roles.push(TopoStageRole::Post);
        }
        roles
    }

    /// The full schedule, level 1 upward.
    pub fn schedule(&self) -> Vec<TopoStageId> {
        (1..=self.m.len())
            .flat_map(|level| {
                self.level_roles(level)
                    .into_iter()
                    .map(move |role| TopoStageId { level, role })
            })
            .collect()
    }

    /// Generates the stage for a schedule entry.
    pub fn stage_for(&self, id: TopoStageId) -> Stage {
        let n = self.num_ranks();
        let m_l = self.m[id.level - 1];
        let m_lo = self.m_prefix(id.level - 1); // M_{l-1}
        let m_hi = m_lo * m_l; // M_l
        let bits = floor_log2(m_l);
        let pow = 1u32 << bits;
        let position = |i: u32| (i % m_hi) / m_lo;

        let pairs: Vec<(u32, u32)> = match id.role {
            TopoStageRole::Pre => (0..n)
                .filter(|&i| position(i) >= pow)
                .map(|i| (i, i - pow * m_lo))
                .collect(),
            TopoStageRole::Post => (0..n)
                .filter(|&i| position(i) >= pow)
                .map(|i| (i - pow * m_lo, i))
                .collect(),
            TopoStageRole::Exchange { s } => (0..n)
                .filter(|&i| position(i) < pow)
                .map(|i| {
                    let g = position(i);
                    let partner_g = g ^ (1 << s);
                    let j = i + partner_g * m_lo - g * m_lo;
                    (i, j)
                })
                .collect(),
        };
        Stage::new(pairs)
    }
}

/// Builds the Sec. VI sequence for a **partially populated** job with a
/// *uniform occupied shape*.
///
/// The paper notes that for partial trees the stage structure follows "the
/// number of leaf switches they occupy" rather than the rank count. That
/// generalizes cleanly when the occupancy is uniform: every occupied leaf
/// holds the same number of job ports, every occupied level-2 subtree the
/// same number of occupied leaves, and so on (a "regular job shape" —
/// whole-node allocations produce these). The occupied units then form a
/// virtual fat-tree whose level arities are the occupancy counts, and the
/// ordinary [`TopoAwareRd`] over that virtual tree — with ranks assigned in
/// topology order over the populated ports — is exactly the partial-tree
/// sequence: contention-freedom carries over because each leaf's
/// destinations remain distinct modulo the up-port count and occupied
/// sub-unit indices remain distinct within each unit.
///
/// `m` is the *physical* tree's arity vector, `ports` the populated ports
/// (any order; deduplicated). Errors when the shape is not uniform.
pub fn topo_aware_subset(m: &[u32], ports: &[u32]) -> Result<TopoAwareRd, ShapeError> {
    let mut sorted: Vec<u32> = ports.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.is_empty() {
        return Err(ShapeError::Empty);
    }
    let total: u64 = m.iter().map(|&x| x as u64).product();
    if u64::from(*sorted.last().unwrap()) >= total {
        return Err(ShapeError::OutOfRange);
    }

    let mut shape = Vec::with_capacity(m.len());
    let mut unit_size = 1u64; // M_{l-1}
    for (level, &m_l) in m.iter().enumerate() {
        let next_size = unit_size * u64::from(m_l); // M_l
                                                    // Count occupied sub-units per occupied level-(l+1) unit.
        let mut counts: Vec<usize> = Vec::new();
        let mut current_unit = u64::MAX;
        let mut seen_subunits: Vec<u64> = Vec::new();
        for &p in &sorted {
            let unit = u64::from(p) / next_size;
            let subunit = u64::from(p) / unit_size;
            if unit != current_unit {
                if current_unit != u64::MAX {
                    counts.push(seen_subunits.len());
                }
                current_unit = unit;
                seen_subunits.clear();
            }
            if seen_subunits.last() != Some(&subunit) {
                seen_subunits.push(subunit);
            }
        }
        counts.push(seen_subunits.len());
        let first = counts[0];
        if counts.iter().any(|&c| c != first) {
            return Err(ShapeError::NonUniform {
                level: level + 1,
                counts,
            });
        }
        shape.push(first as u32);
        unit_size = next_size;
    }
    Ok(TopoAwareRd::new(shape))
}

/// Why a port set does not form a uniform job shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// No ports given.
    Empty,
    /// A port index exceeds the machine.
    OutOfRange,
    /// Occupied sub-unit counts differ between units at this (1-based)
    /// tree level.
    NonUniform {
        /// Tree level where uniformity breaks (1-based).
        level: usize,
        /// Observed per-unit occupied sub-unit counts.
        counts: Vec<usize>,
    },
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Empty => write!(f, "port set is empty"),
            Self::OutOfRange => write!(f, "port index beyond the machine"),
            Self::NonUniform { level, counts } => write!(
                f,
                "occupancy is not uniform at level {level}: sub-unit counts {counts:?}"
            ),
        }
    }
}

impl std::error::Error for ShapeError {}

impl PermutationSequence for TopoAwareRd {
    fn name(&self) -> &str {
        "Topology-Aware Recursive-Doubling"
    }

    fn num_stages(&self, n: u32) -> usize {
        assert_eq!(n, self.num_ranks(), "sequence is bound to its tree size");
        self.schedule().len()
    }

    fn stage(&self, n: u32, s: usize) -> Stage {
        assert_eq!(n, self.num_ranks(), "sequence is bound to its tree size");
        self.stage_for(self.schedule()[s])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulate set-union data propagation: after the whole sequence every
    /// rank must hold every rank's datum (allgather completeness).
    fn propagates_all_data(seq: &TopoAwareRd) -> bool {
        let n = seq.num_ranks() as usize;
        // knows[i] = bitset of ranks whose datum i holds.
        let mut knows: Vec<Vec<u64>> = (0..n)
            .map(|i| {
                let mut v = vec![0u64; n.div_ceil(64)];
                v[i / 64] |= 1 << (i % 64);
                v
            })
            .collect();
        for id in seq.schedule() {
            let st = seq.stage_for(id);
            let snapshot = knows.clone();
            for (s, d) in st.pairs {
                let src = &snapshot[s as usize];
                let dst = &mut knows[d as usize];
                for (a, b) in dst.iter_mut().zip(src) {
                    *a |= b;
                }
            }
        }
        knows
            .iter()
            .all(|k| k.iter().map(|w| w.count_ones() as usize).sum::<usize>() == n)
    }

    #[test]
    fn power_of_two_levels_need_no_proxies() {
        let seq = TopoAwareRd::new(vec![4, 8]);
        let sched = seq.schedule();
        assert_eq!(sched.len(), 2 + 3);
        assert!(sched
            .iter()
            .all(|id| matches!(id.role, TopoStageRole::Exchange { .. })));
    }

    #[test]
    fn non_power_of_two_levels_add_pre_post() {
        let seq = TopoAwareRd::new(vec![18, 6]);
        // level 1: pre + 4 + post; level 2: pre + 2 + post
        assert_eq!(seq.schedule().len(), 6 + 4);
        let roles: Vec<_> = seq.schedule().iter().map(|id| id.role).collect();
        assert_eq!(roles[0], TopoStageRole::Pre);
        assert_eq!(roles[5], TopoStageRole::Post);
    }

    #[test]
    fn level1_stages_stay_within_leaves() {
        let seq = TopoAwareRd::new(vec![4, 4]);
        for id in seq.schedule().iter().filter(|id| id.level == 1) {
            for (a, b) in seq.stage_for(*id).pairs {
                assert_eq!(a / 4, b / 4, "level-1 exchange must stay inside a leaf");
            }
        }
    }

    #[test]
    fn level2_stages_preserve_leaf_offset() {
        let seq = TopoAwareRd::new(vec![4, 4]);
        for id in seq.schedule().iter().filter(|id| id.level == 2) {
            for (a, b) in seq.stage_for(*id).pairs {
                assert_eq!(a % 4, b % 4, "level-2 partners are leaf mirrors");
                assert_ne!(a / 4, b / 4);
            }
        }
    }

    #[test]
    fn exchange_stages_are_symmetric() {
        let seq = TopoAwareRd::new(vec![6, 5, 3]);
        for id in seq.schedule() {
            let st = seq.stage_for(id);
            if let TopoStageRole::Exchange { .. } = id.role {
                assert!(st.is_symmetric(), "{id:?}");
            }
            assert!(st.is_partial_permutation(), "{id:?}");
        }
    }

    #[test]
    fn every_stage_up_traffic_is_constant_displacement() {
        // Theorem 3 precondition: among flows that leave a given subtree,
        // displacement is constant. Stronger easily-checked form: within one
        // direction class (+ or -) displacement is globally constant.
        let seq = TopoAwareRd::new(vec![6, 4, 5]);
        let n = seq.num_ranks();
        for id in seq.schedule() {
            let st = seq.stage_for(id);
            let mut disps: Vec<u32> = st.pairs.iter().map(|&(s, d)| (d + n - s) % n).collect();
            disps.sort_unstable();
            disps.dedup();
            assert!(
                disps.len() <= 2,
                "{id:?}: more than two displacement values: {disps:?}"
            );
        }
    }

    #[test]
    fn allgather_completeness_various_shapes() {
        for m in [vec![4, 4], vec![18, 6], vec![5, 3, 2], vec![6, 6], vec![7]] {
            let seq = TopoAwareRd::new(m.clone());
            assert!(propagates_all_data(&seq), "shape {m:?}");
        }
    }

    #[test]
    fn stage_count_matches_paper_bound() {
        // Paper Sec. VI: at most 2 extra stages per level when K is not a
        // power of two.
        let seq = TopoAwareRd::new(vec![18, 18, 6]);
        let base: usize = [18u32, 18, 6].iter().map(|&m| floor_log2(m) as usize).sum();
        assert!(seq.schedule().len() <= base + 2 * 3);
        assert_eq!(seq.schedule().len(), (4 + 2) + (4 + 2) + (2 + 2));
    }

    #[test]
    fn trait_binding_enforced() {
        let seq = TopoAwareRd::new(vec![4, 4]);
        assert_eq!(seq.num_stages(16), seq.schedule().len());
    }

    #[test]
    #[should_panic(expected = "bound to its tree size")]
    fn wrong_n_panics() {
        let seq = TopoAwareRd::new(vec![4, 4]);
        let _ = seq.num_stages(17);
    }

    #[test]
    fn subset_uniform_shape_accepted() {
        // Machine m = [4, 4]; occupy leaves 0 and 2, two ports each
        // (different offsets per leaf — offsets need not match).
        let ports = vec![0, 2, 9, 11];
        let seq = topo_aware_subset(&[4, 4], &ports).unwrap();
        assert_eq!(seq.num_ranks(), 4);
        // Virtual shape: 2 ports per leaf, 2 occupied leaves.
        assert!(propagates_all_data(&seq));
    }

    #[test]
    fn subset_full_population_recovers_plain_sequence() {
        let ports: Vec<u32> = (0..16).collect();
        let seq = topo_aware_subset(&[4, 4], &ports).unwrap();
        assert_eq!(seq, TopoAwareRd::new(vec![4, 4]));
    }

    #[test]
    fn subset_non_uniform_rejected() {
        // Leaf 0 has 3 ports, leaf 1 has 1.
        let err = topo_aware_subset(&[4, 4], &[0, 1, 2, 4]).unwrap_err();
        assert!(matches!(err, ShapeError::NonUniform { level: 1, .. }));
        // Uniform per leaf but subtree occupancy differs (3-level machine).
        let err = topo_aware_subset(&[2, 2, 2], &[0, 1, 2, 3, 4, 5]).unwrap_err();
        assert!(matches!(err, ShapeError::NonUniform { level: 2, .. }));
    }

    #[test]
    fn subset_edge_cases() {
        assert!(matches!(
            topo_aware_subset(&[4, 4], &[]),
            Err(ShapeError::Empty)
        ));
        assert!(matches!(
            topo_aware_subset(&[4, 4], &[16]),
            Err(ShapeError::OutOfRange)
        ));
        // Duplicates collapse.
        let seq = topo_aware_subset(&[4, 4], &[3, 3, 7, 7]).unwrap();
        assert_eq!(seq.num_ranks(), 2);
    }
}
