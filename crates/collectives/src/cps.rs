//! The eight closed-form Collective Permutation Sequences of paper Table 2.
//!
//! | CPS | definition |
//! |---|---|
//! | Dissemination | `n_i -> n_{(i+2^s) mod N}`, all `i`, `0 <= s < ceil(log2 N)` |
//! | Tournament | `n_{i+2^s} -> n_i`, `i ≡ 0 (mod 2^{s+1})`, `i + 2^s < N` |
//! | Shift | `n_i -> n_{(i+s) mod N}`, all `i`, `1 <= s <= N-1` |
//! | Ring | `n_i -> n_{(i+1) mod N}`, all `i` (single stage) |
//! | Binomial | `n_i -> n_{i+2^s}`, `i < 2^s`, `i + 2^s < N` |
//! | Recursive-Doubling | `n_i <-> n_{i XOR 2^s}` ascending `s`, with pre/post proxy stages for non-power-of-2 `N` |
//! | Recursive-Halving | the same stages with `s` descending |
//! | Neighbor-Exchange | `n_{2k} <-> n_{2k+1}` / `n_{2k+1} <-> n_{2k+2 mod N}` alternating |
//!
//! Shift is a superset of all unidirectional CPS (paper Sec. III, third
//! observation), which is why Theorem 1 about Shift covers them all.

use serde::{Deserialize, Serialize};

use crate::seq::{ceil_log2, floor_log2, PermutationSequence, Stage};

/// The closed-form CPS kinds of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cps {
    /// Every rank sends one hop to its successor; a single repeated stage.
    Ring,
    /// All cyclic displacements `1..N-1`, one stage each — the all-to-all
    /// pattern and the superset of every unidirectional CPS.
    Shift,
    /// Power-of-two displacements with wraparound (Bruck-style algorithms).
    Dissemination,
    /// Loser-sends-to-winner elimination tree.
    Tournament,
    /// Classic binomial broadcast/gather tree.
    Binomial,
    /// XOR exchange, ascending distance (allgather/allreduce direction).
    RecursiveDoubling,
    /// XOR exchange, descending distance (reduce-scatter direction).
    RecursiveHalving,
    /// Even/odd neighbor pairing, alternating parity (OpenMPI allgather).
    NeighborExchange,
}

impl Cps {
    /// All eight kinds, in Table 2 ordering.
    pub const ALL: [Cps; 8] = [
        Cps::Dissemination,
        Cps::Tournament,
        Cps::Shift,
        Cps::Ring,
        Cps::Binomial,
        Cps::RecursiveDoubling,
        Cps::RecursiveHalving,
        Cps::NeighborExchange,
    ];

    /// The paper's two-class taxonomy: bidirectional CPS include the reverse
    /// of every pair in the same stage; the rest are unidirectional.
    pub fn is_bidirectional(self) -> bool {
        matches!(
            self,
            Cps::RecursiveDoubling | Cps::RecursiveHalving | Cps::NeighborExchange
        )
    }

    /// Static display name.
    pub fn label(self) -> &'static str {
        match self {
            Cps::Ring => "Ring",
            Cps::Shift => "Shift",
            Cps::Dissemination => "Dissemination",
            Cps::Tournament => "Tournament",
            Cps::Binomial => "Binomial",
            Cps::RecursiveDoubling => "Recursive-Doubling",
            Cps::RecursiveHalving => "Recursive-Halving",
            Cps::NeighborExchange => "Neighbor-Exchange",
        }
    }
}

/// Number of XOR stages of the recursive doubling/halving core.
#[inline]
fn rd_core_bits(n: u32) -> u32 {
    if n <= 1 {
        0
    } else {
        floor_log2(n)
    }
}

/// True when recursive doubling/halving needs pre/post proxy stages.
#[inline]
fn rd_has_proxy(n: u32) -> bool {
    n > 1 && !n.is_power_of_two()
}

/// XOR exchange stage over the power-of-two core `0..2^bits`.
fn xor_stage(bits: u32, s: u32) -> Stage {
    let core = 1u32 << bits;
    let d = 1u32 << s;
    let pairs = (0..core).map(|i| (i, i ^ d)).collect();
    Stage::new(pairs)
}

/// Pre proxy stage: ranks above the power-of-two core fold their data onto
/// proxies `i - 2^L` (paper Sec. VI, eq. for the "pre" permutation).
fn rd_pre_stage(n: u32) -> Stage {
    let core = 1u32 << rd_core_bits(n);
    Stage::new((core..n).map(|j| (j, j - core)).collect())
}

/// Post proxy stage: proxies return results to the folded ranks.
fn rd_post_stage(n: u32) -> Stage {
    let core = 1u32 << rd_core_bits(n);
    Stage::new((core..n).map(|j| (j - core, j)).collect())
}

impl PermutationSequence for Cps {
    fn name(&self) -> &str {
        self.label()
    }

    fn num_stages(&self, n: u32) -> usize {
        if n <= 1 {
            return 0;
        }
        match self {
            Cps::Ring => 1,
            Cps::Shift => (n - 1) as usize,
            Cps::Dissemination => ceil_log2(n) as usize,
            Cps::Tournament | Cps::Binomial => ceil_log2(n) as usize,
            Cps::RecursiveDoubling | Cps::RecursiveHalving => {
                rd_core_bits(n) as usize + if rd_has_proxy(n) { 2 } else { 0 }
            }
            Cps::NeighborExchange => {
                // N/2 stages cycle the full exchange for even N (OpenMPI
                // neighbor-exchange allgather completes in N/2 rounds).
                (n as usize) / 2
            }
        }
    }

    fn stage(&self, n: u32, s: usize) -> Stage {
        debug_assert!(s < self.num_stages(n), "stage index out of range");
        let s32 = s as u32;
        match self {
            Cps::Ring => Stage::new((0..n).map(|i| (i, (i + 1) % n)).collect()),
            Cps::Shift => {
                let d = s32 + 1;
                Stage::new((0..n).map(|i| (i, (i + d) % n)).collect())
            }
            Cps::Dissemination => {
                let d = 1u32 << s32;
                Stage::new((0..n).map(|i| (i, (i + d) % n)).collect())
            }
            Cps::Tournament => {
                let d = 1u32 << s32;
                let step = d * 2;
                Stage::new(
                    (0..n)
                        .step_by(step as usize)
                        .filter(|&i| i + d < n)
                        .map(|i| (i + d, i))
                        .collect(),
                )
            }
            Cps::Binomial => {
                let d = 1u32 << s32;
                Stage::new(
                    (0..d.min(n))
                        .filter(|&i| i + d < n)
                        .map(|i| (i, i + d))
                        .collect(),
                )
            }
            Cps::RecursiveDoubling => {
                let bits = rd_core_bits(n);
                if rd_has_proxy(n) {
                    if s == 0 {
                        rd_pre_stage(n)
                    } else if s32 == bits + 1 {
                        rd_post_stage(n)
                    } else {
                        xor_stage(bits, s32 - 1)
                    }
                } else {
                    xor_stage(bits, s32)
                }
            }
            Cps::RecursiveHalving => {
                let bits = rd_core_bits(n);
                if rd_has_proxy(n) {
                    if s == 0 {
                        rd_pre_stage(n)
                    } else if s32 == bits + 1 {
                        rd_post_stage(n)
                    } else {
                        xor_stage(bits, bits - (s32 - 1) - 1)
                    }
                } else {
                    xor_stage(bits, bits - s32 - 1)
                }
            }
            Cps::NeighborExchange => {
                debug_assert!(n.is_multiple_of(2), "neighbor exchange requires even N");
                if s.is_multiple_of(2) {
                    Stage::new(
                        (0..n / 2)
                            .flat_map(|k| [(2 * k, 2 * k + 1), (2 * k + 1, 2 * k)])
                            .collect(),
                    )
                } else {
                    Stage::new(
                        (0..n / 2)
                            .flat_map(|k| {
                                let a = 2 * k + 1;
                                let b = (2 * k + 2) % n;
                                [(a, b), (b, a)]
                            })
                            .collect(),
                    )
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_binomial_example_1024() {
        // Sec. III: "On the first stage, s=0, only node-0 is sending data to
        // node-1. On the second stage node-0 sends to node-2 and node-1 to
        // node-3. On the third stage node-0->4, 1->5, 2->6, 3->7."
        let st0 = Cps::Binomial.stage(1024, 0);
        assert_eq!(st0.pairs, vec![(0, 1)]);
        let st1 = Cps::Binomial.stage(1024, 1);
        assert_eq!(st1.pairs, vec![(0, 2), (1, 3)]);
        let st2 = Cps::Binomial.stage(1024, 2);
        assert_eq!(st2.pairs, vec![(0, 4), (1, 5), (2, 6), (3, 7)]);
        assert_eq!(Cps::Binomial.num_stages(1024), 10);
    }

    #[test]
    fn binomial_covers_all_ranks() {
        // After all stages every rank 1..N-1 has received exactly once
        // (broadcast tree property), including non-powers of two.
        for n in [2u32, 3, 7, 12, 100, 129] {
            let mut received = vec![false; n as usize];
            received[0] = true;
            for st in Cps::Binomial.stages(n) {
                for (s, d) in st.pairs {
                    assert!(
                        received[s as usize],
                        "n={n}: rank {s} sends before receiving"
                    );
                    assert!(!received[d as usize], "n={n}: rank {d} receives twice");
                    received[d as usize] = true;
                }
            }
            assert!(received.iter().all(|&r| r), "n={n}: not all ranks reached");
        }
    }

    #[test]
    fn shift_stage_count_and_contents() {
        assert_eq!(Cps::Shift.num_stages(1944), 1943);
        let st = Cps::Shift.stage(16, 3); // displacement 4
        assert_eq!(st.constant_displacement(16), Some(4));
        assert!(st.is_full_permutation(16));
    }

    #[test]
    fn ring_is_shift_stage_zero() {
        assert_eq!(Cps::Ring.stage(12, 0), Cps::Shift.stage(12, 0));
    }

    #[test]
    fn dissemination_full_permutations() {
        for n in [5u32, 8, 13] {
            assert_eq!(Cps::Dissemination.num_stages(n), ceil_log2(n) as usize);
            for st in Cps::Dissemination.stages(n) {
                assert!(st.is_full_permutation(n));
                assert!(st.constant_displacement(n).is_some());
            }
        }
    }

    #[test]
    fn tournament_reduces_to_root() {
        // Every rank except 0 sends exactly once over the whole sequence.
        for n in [2u32, 6, 16, 19] {
            let mut sent = vec![0u32; n as usize];
            for st in Cps::Tournament.stages(n) {
                assert!(st.constant_displacement(n).is_some() || st.is_empty());
                for (s, d) in st.pairs {
                    sent[s as usize] += 1;
                    assert!(d < s, "tournament sends toward lower index");
                }
            }
            assert_eq!(sent[0], 0);
            assert!(sent[1..].iter().all(|&c| c == 1), "n={n}: {sent:?}");
        }
    }

    #[test]
    fn recursive_doubling_power_of_two() {
        let n = 16u32;
        assert_eq!(Cps::RecursiveDoubling.num_stages(n), 4);
        for (s, st) in Cps::RecursiveDoubling.stages(n).into_iter().enumerate() {
            assert!(st.is_symmetric());
            assert!(st.is_full_permutation(n));
            for (a, b) in st.pairs {
                assert_eq!(a ^ b, 1 << s);
            }
        }
    }

    #[test]
    fn recursive_doubling_non_power_of_two_has_proxies() {
        let n = 12u32; // core 8, remainder 4
        let stages = Cps::RecursiveDoubling.stages(n);
        assert_eq!(stages.len(), 3 + 2);
        // pre: 8->0, 9->1, 10->2, 11->3
        assert_eq!(stages[0].pairs, vec![(8, 0), (9, 1), (10, 2), (11, 3)]);
        // post is the reverse
        assert_eq!(stages[4].pairs, vec![(0, 8), (1, 9), (2, 10), (3, 11)]);
        // core stages only touch 0..8
        for st in &stages[1..4] {
            assert!(st.pairs.iter().all(|&(a, b)| a < 8 && b < 8));
            assert!(st.is_symmetric());
        }
    }

    #[test]
    fn halving_is_doubling_reversed() {
        let n = 32u32;
        let up = Cps::RecursiveDoubling.stages(n);
        let mut down = Cps::RecursiveHalving.stages(n);
        down.reverse();
        assert_eq!(up, down);
    }

    #[test]
    fn halving_non_power_of_two_keeps_proxy_order() {
        let n = 12u32;
        let stages = Cps::RecursiveHalving.stages(n);
        // pre first, post last, core distances descending 4,2,1.
        assert_eq!(stages[0].pairs[0], (8, 0));
        assert_eq!(stages[4].pairs[0], (0, 8));
        let dists: Vec<u32> = stages[1..4]
            .iter()
            .map(|st| st.pairs[0].0 ^ st.pairs[0].1)
            .collect();
        assert_eq!(dists, vec![4, 2, 1]);
    }

    #[test]
    fn neighbor_exchange_alternates() {
        let n = 8u32;
        let st0 = Cps::NeighborExchange.stage(n, 0);
        assert!(st0.pairs.contains(&(0, 1)) && st0.pairs.contains(&(1, 0)));
        let st1 = Cps::NeighborExchange.stage(n, 1);
        assert!(st1.pairs.contains(&(1, 2)) && st1.pairs.contains(&(7, 0)));
        for s in 0..Cps::NeighborExchange.num_stages(n) {
            let st = Cps::NeighborExchange.stage(n, s);
            assert!(st.is_symmetric());
            assert!(st.is_full_permutation(n));
        }
    }

    #[test]
    fn directionality_classes() {
        for cps in Cps::ALL {
            assert_eq!(
                !cps.is_unidirectional(12),
                cps.is_bidirectional(),
                "{}",
                cps.label()
            );
        }
    }

    #[test]
    fn trivial_sizes() {
        for cps in Cps::ALL {
            assert_eq!(cps.num_stages(1), 0, "{}", cps.label());
            if !matches!(cps, Cps::NeighborExchange) {
                // every kind handles N=2 or N=3
                for st in cps.stages(2) {
                    assert!(st.pairs.iter().all(|&(a, b)| a < 2 && b < 2));
                }
            }
        }
    }

    #[test]
    fn shift_is_superset_of_binomial_stages() {
        // Paper Sec. III: the pairs of every Binomial stage are contained in
        // one Shift stage (same constant displacement).
        let n = 20u32;
        for st in Cps::Binomial.stages(n) {
            if st.is_empty() {
                continue;
            }
            let d = st
                .constant_displacement(n)
                .expect("binomial is constant-displacement");
            let shift = Cps::Shift.stage(n, (d - 1) as usize);
            for pair in &st.pairs {
                assert!(shift.pairs.contains(pair));
            }
        }
    }
}
