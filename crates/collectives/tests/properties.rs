//! Property-based tests of the CPS algebra (paper Sec. III observations).

use proptest::prelude::*;

use ftree_collectives::{
    classify, Cps, PermutationSequence, PortSpace, SequenceClass, TopoAwareRd,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Observation 1: every stage of a unidirectional CPS has constant
    /// displacement and is a partial permutation.
    #[test]
    fn unidirectional_stages_constant_displacement(n in 2u32..200, pick in 0usize..5) {
        let cps = [Cps::Ring, Cps::Shift, Cps::Dissemination, Cps::Tournament, Cps::Binomial][pick];
        for s in 0..cps.num_stages(n) {
            let st = cps.stage(n, s);
            prop_assert!(st.is_partial_permutation(), "{} n={n} s={s}", cps.label());
            if !st.is_empty() {
                prop_assert!(st.constant_displacement(n).is_some(), "{} n={n} s={s}", cps.label());
            }
        }
    }

    /// Observation 2: the XOR-exchange core stages are symmetric.
    #[test]
    fn bidirectional_core_stages_symmetric(n in 2u32..200) {
        let stages = Cps::RecursiveDoubling.stages(n);
        let has_proxy = !n.is_power_of_two();
        let core = if has_proxy { &stages[1..stages.len() - 1] } else { &stages[..] };
        for st in core {
            prop_assert!(st.is_symmetric());
        }
    }

    /// Observation 3: every stage of every unidirectional CPS is contained
    /// in the Shift stage with the same displacement.
    #[test]
    fn shift_is_a_superset(n in 3u32..150, pick in 0usize..4) {
        let cps = [Cps::Ring, Cps::Dissemination, Cps::Tournament, Cps::Binomial][pick];
        for s in 0..cps.num_stages(n) {
            let st = cps.stage(n, s);
            let Some(d) = st.constant_displacement(n) else { continue };
            if d == 0 { continue }
            let shift = Cps::Shift.stage(n, (d - 1) as usize);
            for pair in &st.pairs {
                prop_assert!(shift.pairs.contains(pair), "{} n={n} s={s}", cps.label());
            }
        }
    }

    /// Direction-class taxonomy is stable across job sizes.
    #[test]
    fn classification_stable(n in 3u32..128) {
        for cps in Cps::ALL {
            if cps == Cps::NeighborExchange && n % 2 != 0 { continue }
            let expected = if cps.is_bidirectional() {
                SequenceClass::Bidirectional
            } else {
                SequenceClass::Unidirectional
            };
            // n = 2^k edge: the top shift/dissemination stage (d = n/2) is
            // symmetric but still constant-displacement, so classification
            // by displacement stays correct.
            prop_assert_eq!(classify(&cps, n), expected, "{} n={}", cps.label(), n);
        }
    }

    /// Dissemination and Shift stages are full permutations.
    #[test]
    fn full_permutation_sequences(n in 2u32..150) {
        for s in 0..Cps::Dissemination.num_stages(n) {
            prop_assert!(Cps::Dissemination.stage(n, s).is_full_permutation(n));
        }
        prop_assert!(Cps::Ring.stage(n, 0).is_full_permutation(n));
    }

    /// Binomial reaches every rank exactly once (broadcast-tree property).
    #[test]
    fn binomial_coverage(n in 2u32..300) {
        let mut reached = vec![false; n as usize];
        reached[0] = true;
        for st in Cps::Binomial.stages(n) {
            for (s, d) in st.pairs {
                prop_assert!(reached[s as usize]);
                prop_assert!(!reached[d as usize]);
                reached[d as usize] = true;
            }
        }
        prop_assert!(reached.iter().all(|&r| r));
    }

    /// Topology-aware RD: set-union propagation reaches everyone, for
    /// arbitrary small level-arity vectors.
    #[test]
    fn topo_aware_allgather_complete(m in prop::collection::vec(2u32..6, 1..=3)) {
        let seq = TopoAwareRd::new(m.clone());
        let n = seq.num_ranks() as usize;
        prop_assume!(n <= 150);
        let mut knows: Vec<std::collections::HashSet<u32>> = (0..n)
            .map(|i| std::iter::once(i as u32).collect())
            .collect();
        for id in seq.schedule() {
            let st = seq.stage_for(id);
            let snap = knows.clone();
            for (s, d) in st.pairs {
                let add: Vec<u32> = snap[s as usize].iter().copied().collect();
                knows[d as usize].extend(add);
            }
        }
        prop_assert!(knows.iter().all(|k| k.len() == n), "shape {m:?}");
    }

    /// PortSpace preserves port-space displacement for Shift on arbitrary
    /// subsets.
    #[test]
    fn port_space_preserves_displacement(total in 4u32..64,
                                         mask in prop::collection::vec(prop::bool::ANY, 8)) {
        let positions: Vec<u32> = (0..total)
            .filter(|&p| mask[(p as usize) % mask.len()])
            .collect();
        prop_assume!(positions.len() >= 2);
        let seq = PortSpace::new(Cps::Shift, total, positions.clone());
        let n = seq.num_ranks();
        for s in 0..seq.num_stages(n) {
            for (a, b) in seq.stage(n, s).pairs {
                let d = (positions[b as usize] + total - positions[a as usize]) % total;
                prop_assert_eq!(d as usize, s + 1);
            }
        }
    }
}
