//! Property-based correctness of every collective algorithm over random
//! rank counts and block sizes.

use proptest::prelude::*;

use ftree_collectives::{identify, Cps, TopoAwareRd};
use ftree_mpi::allgather::*;
use ftree_mpi::alltoall::*;
use ftree_mpi::data::*;
use ftree_mpi::reductions::*;
use ftree_mpi::rooted::*;
use ftree_mpi::world::World;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ring_allgather_correct(n in 2usize..40, b in 1usize..6) {
        let mut w = allgather_world(n, b);
        ring_allgather(&mut w, b);
        verify_allgather(&w, b);
    }

    #[test]
    fn dissemination_allgather_correct(n in 2usize..40, b in 1usize..6) {
        let mut w = allgather_world(n, b);
        dissemination_allgather(&mut w, b);
        verify_allgather(&w, b);
    }

    #[test]
    fn rd_allgather_correct_pow2(k in 1u32..6, b in 1usize..6) {
        let n = 1usize << k;
        let mut w = allgather_world(n, b);
        recursive_doubling_allgather(&mut w, b);
        verify_allgather(&w, b);
    }

    #[test]
    fn neighbor_exchange_correct_even(half in 1usize..20, b in 1usize..5) {
        let n = 2 * half;
        let mut w = allgather_world(n, b);
        neighbor_exchange_allgather(&mut w, b);
        verify_allgather(&w, b);
    }

    #[test]
    fn rd_allreduce_correct_any_n(n in 2usize..48, b in 1usize..6) {
        let mut w = reduce_world(n, b);
        recursive_doubling_allreduce(&mut w);
        verify_allreduce(&w, b, 0..n);
    }

    #[test]
    fn halving_reduce_scatter_correct_pow2(k in 1u32..6, b in 1usize..5) {
        let n = 1usize << k;
        let mut w = blockwise_reduce_world(n, b);
        recursive_halving_reduce_scatter(&mut w, b);
        verify_reduce_scatter(&w, b);
    }

    #[test]
    fn alltoall_correct(n in 2usize..24, b in 1usize..5) {
        let mut w = alltoall_world(n, b);
        pairwise_alltoall(&mut w, b);
        verify_alltoall(&w, b);
    }

    #[test]
    fn rooted_collectives_correct(n in 2usize..32, b in 1usize..5) {
        let mut w = rooted_world(n, b);
        binomial_scatter(&mut w, b);
        verify_scatter(&w, b);

        let mut w = allgather_world(n, b);
        binomial_gather(&mut w, b);
        verify_gather(&w, b, 0);

        let mut w = reduce_world(n, b);
        binomial_reduce(&mut w);
        verify_allreduce(&w, b, std::iter::once(0));

        let mut w = World::new(n, |r| if r == 0 { seed_block(0, b) } else { vec![0; b] });
        binomial_bcast(&mut w);
        for r in 0..n {
            prop_assert_eq!(w.buf(r), &seed_block(0, b)[..]);
        }
    }

    /// The traced CPS survives arbitrary job sizes (n >= 4 avoids the
    /// degenerate two-rank case where all CPS coincide).
    #[test]
    fn traces_identify_correctly(n in 4usize..32) {
        let b = 2;
        let mut w = allgather_world(n, b);
        ring_allgather(&mut w, b);
        prop_assert_eq!(identify(w.trace(), n as u32), Some(Cps::Ring));

        let mut w = alltoall_world(n, b);
        pairwise_alltoall(&mut w, b);
        prop_assert_eq!(identify(w.trace(), n as u32), Some(Cps::Shift));

        let mut w = reduce_world(n, b);
        recursive_doubling_allreduce(&mut w);
        prop_assert_eq!(identify(w.trace(), n as u32), Some(Cps::RecursiveDoubling));
    }

    /// Irregular allgatherv/gatherv are correct for arbitrary counts.
    #[test]
    fn irregular_collectives_correct(counts in prop::collection::vec(0usize..9, 2..16)) {
        use ftree_mpi::irregular::*;
        let mut w = allgatherv_world(&counts);
        ring_allgatherv(&mut w, &counts);
        verify_allgatherv(&w, &counts);

        let mut w = allgatherv_world(&counts);
        binomial_gatherv(&mut w, &counts);
        let offsets = displs(&counts);
        for (j, &c) in counts.iter().enumerate() {
            let got = &w.buf(0)[offsets[j]..offsets[j] + c];
            let expected: Vec<i64> = (0..c).map(|k| (j * 1_000 + k) as i64).collect();
            prop_assert_eq!(got, &expected[..]);
        }
    }

    /// Topology-aware allgather is correct for arbitrary tree shapes.
    #[test]
    fn topo_aware_allgather_correct(m in prop::collection::vec(2u32..5, 1..=3), b in 1usize..4) {
        let seq = TopoAwareRd::new(m);
        let n = seq.num_ranks() as usize;
        prop_assume!(n <= 64);
        let mut w = allgather_world(n, b);
        topo_aware_allgather(&mut w, b, &seq);
        verify_allgather(&w, b);
    }
}
