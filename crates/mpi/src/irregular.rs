//! Irregular (v-variant) collectives: variable per-rank contribution sizes.
//!
//! MPI's `Allgatherv`/`Gatherv` move different byte counts per rank, which
//! makes their network behaviour stage-dependent in *size* as well as
//! pattern — exactly what the sized traffic plans exist for. The CPS is
//! unchanged (Ring / Tournament); only the content half of the
//! decomposition varies.

use ftree_collectives::{Cps, PermutationSequence};

use crate::world::{Message, World};

/// Element offset of rank `r`'s block given per-rank `counts`.
pub fn displs(counts: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(counts.len());
    let mut acc = 0;
    for &c in counts {
        out.push(acc);
        acc += c;
    }
    out
}

/// World for v-variant collectives: every rank's buffer spans the full
/// concatenation (`sum(counts)` elements); rank `r` starts with its own
/// irregular block populated.
pub fn allgatherv_world(counts: &[usize]) -> World {
    let offsets = displs(counts);
    let total: usize = counts.iter().sum();
    let counts = counts.to_vec();
    World::new(counts.len(), move |r| {
        let mut buf = vec![0i64; total];
        for (k, slot) in buf[offsets[r]..offsets[r] + counts[r]]
            .iter_mut()
            .enumerate()
        {
            *slot = (r * 1_000 + k) as i64;
        }
        buf
    })
}

/// Ring allgatherv (the Ring CPS with per-round irregular payloads): round
/// `t` forwards the block originally contributed by rank `(i - t) mod n`.
pub fn ring_allgatherv(world: &mut World, counts: &[usize]) {
    let n = world.num_ranks();
    assert_eq!(counts.len(), n);
    let offsets = displs(counts);
    for t in 0..n.saturating_sub(1) {
        let stage = Cps::Ring.stage(n as u32, 0);
        let msgs = stage
            .pairs
            .iter()
            .map(|&(src, dst)| {
                let block = (src as usize + n - t) % n;
                Message::store(
                    src,
                    dst,
                    offsets[block],
                    world.buf(src as usize)[offsets[block]..offsets[block] + counts[block]]
                        .to_vec(),
                )
            })
            .collect();
        world.exchange(msgs);
    }
}

/// Postcondition: every rank holds every rank's irregular block.
pub fn verify_allgatherv(world: &World, counts: &[usize]) {
    let offsets = displs(counts);
    let n = world.num_ranks();
    for r in 0..n {
        for j in 0..n {
            let got = &world.buf(r)[offsets[j]..offsets[j] + counts[j]];
            let expected: Vec<i64> = (0..counts[j]).map(|k| (j * 1_000 + k) as i64).collect();
            assert_eq!(got, &expected[..], "rank {r} missing block {j}");
        }
    }
}

/// Tournament gatherv to rank 0 with irregular blocks: each stage forwards
/// the sender's accumulated contiguous span.
pub fn binomial_gatherv(world: &mut World, counts: &[usize]) {
    let n = world.num_ranks();
    assert_eq!(counts.len(), n);
    let offsets = displs(counts);
    let total: usize = counts.iter().sum();
    for s in 0..Cps::Tournament.num_stages(n as u32) {
        let stage = Cps::Tournament.stage(n as u32, s);
        let held = 1usize << s;
        let msgs = stage
            .pairs
            .iter()
            .map(|&(src, dst)| {
                let lo = offsets[src as usize];
                let hi_rank = (src as usize + held).min(n);
                let hi = if hi_rank == n {
                    total
                } else {
                    offsets[hi_rank]
                };
                Message::store(src, dst, lo, world.buf(src as usize)[lo..hi].to_vec())
            })
            .collect();
        world.exchange(msgs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftree_collectives::identify;

    #[test]
    fn allgatherv_irregular_blocks() {
        for counts in [vec![1usize, 5, 2, 9], vec![3; 8], vec![0, 4, 1, 1, 7]] {
            let mut w = allgatherv_world(&counts);
            ring_allgatherv(&mut w, &counts);
            verify_allgatherv(&w, &counts);
            assert_eq!(
                identify(w.trace(), counts.len() as u32),
                Some(Cps::Ring),
                "{counts:?}"
            );
        }
    }

    #[test]
    fn allgatherv_traffic_sizes_rotate() {
        let counts = vec![2usize, 5, 1, 3];
        let mut w = allgatherv_world(&counts);
        ring_allgatherv(&mut w, &counts);
        let traffic = w.traffic_stages(8);
        // Round 0: rank i ships its own block: sizes follow counts.
        for &(src, _, bytes) in &traffic[0] {
            assert_eq!(bytes, counts[src as usize] as u64 * 8);
        }
        // Round 1: rank i ships the block of rank i-1.
        for &(src, _, bytes) in &traffic[1] {
            let prev = (src as usize + counts.len() - 1) % counts.len();
            assert_eq!(bytes, counts[prev] as u64 * 8);
        }
    }

    #[test]
    fn gatherv_to_root() {
        for counts in [vec![4usize, 1, 3, 2, 6], vec![2; 7]] {
            let mut w = allgatherv_world(&counts);
            binomial_gatherv(&mut w, &counts);
            let offsets = displs(&counts);
            for (j, &c) in counts.iter().enumerate() {
                let got = &w.buf(0)[offsets[j]..offsets[j] + c];
                let expected: Vec<i64> = (0..c).map(|k| (j * 1_000 + k) as i64).collect();
                assert_eq!(got, &expected[..], "root missing block {j}");
            }
            assert_eq!(
                identify(w.trace(), counts.len() as u32),
                Some(Cps::Tournament)
            );
        }
    }

    #[test]
    fn empty_blocks_are_fine() {
        let counts = vec![0usize, 0, 3, 0];
        let mut w = allgatherv_world(&counts);
        ring_allgatherv(&mut w, &counts);
        verify_allgatherv(&w, &counts);
    }
}
