//! A staged message-passing substrate with communication tracing.
//!
//! The paper decomposes every collective into a permutation sequence (who
//! talks to whom per stage) plus message content. [`World`] makes that
//! decomposition executable: collective algorithms read per-rank buffers,
//! build the stage's [`Message`]s, and [`World::exchange`] applies them all
//! simultaneously (reads see pre-stage state) while recording the
//! `(src, dst)` pairs as a [`Stage`]. The recorded trace is then matched
//! against the declared CPS with [`ftree_collectives::identify`] — turning
//! the paper's Table 1 survey into a checked property.

use ftree_collectives::Stage;

/// One contiguous span of data written into the destination buffer.
#[derive(Debug, Clone)]
pub struct Part {
    /// Element offset in the destination rank's buffer.
    pub offset: usize,
    /// Payload elements.
    pub data: Vec<i64>,
}

/// How a message's parts combine into the destination buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Overwrite the destination range.
    Store,
    /// Element-wise add into the destination range (reductions).
    Accumulate,
}

/// A point-to-point message within one collective stage.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dst: u32,
    /// How the parts combine at the destination.
    pub action: Action,
    /// Payload spans.
    pub parts: Vec<Part>,
}

impl Message {
    /// Convenience constructor for a single-span message.
    pub fn store(src: u32, dst: u32, offset: usize, data: Vec<i64>) -> Self {
        Self {
            src,
            dst,
            action: Action::Store,
            parts: vec![Part { offset, data }],
        }
    }

    /// Convenience constructor for a single-span accumulating message.
    pub fn accumulate(src: u32, dst: u32, offset: usize, data: Vec<i64>) -> Self {
        Self {
            src,
            dst,
            action: Action::Accumulate,
            parts: vec![Part { offset, data }],
        }
    }

    /// A zero-payload message (barriers).
    pub fn token(src: u32, dst: u32) -> Self {
        Self {
            src,
            dst,
            action: Action::Store,
            parts: Vec::new(),
        }
    }
}

/// The per-rank state of an executing collective plus its traced stages.
#[derive(Debug)]
pub struct World {
    n: usize,
    bufs: Vec<Vec<i64>>,
    trace: Vec<Stage>,
    /// Per stage: `(src, dst, payload_elements)` — the *sizes* half of the
    /// CPS + content decomposition, used to build network traffic plans
    /// from executed collectives.
    traffic: Vec<Vec<(u32, u32, u64)>>,
}

impl World {
    /// Creates `n` ranks, each with the buffer `init(rank)`.
    pub fn new(n: usize, init: impl Fn(usize) -> Vec<i64>) -> Self {
        Self {
            n,
            bufs: (0..n).map(init).collect(),
            trace: Vec::new(),
            traffic: Vec::new(),
        }
    }

    /// Number of ranks.
    #[inline]
    pub fn num_ranks(&self) -> usize {
        self.n
    }

    /// Read access to a rank's buffer.
    #[inline]
    pub fn buf(&self, rank: usize) -> &[i64] {
        &self.bufs[rank]
    }

    /// All buffers (for verification).
    #[inline]
    pub fn bufs(&self) -> &[Vec<i64>] {
        &self.bufs
    }

    /// Executes one stage: applies every message (payloads were computed by
    /// the caller from pre-stage state) and records the stage's pairs.
    ///
    /// Panics if a rank sends twice in one stage — a CPS stage is a partial
    /// permutation by definition.
    pub fn exchange(&mut self, msgs: Vec<Message>) {
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(msgs.len());
        let mut sized: Vec<(u32, u32, u64)> = Vec::with_capacity(msgs.len());
        for m in &msgs {
            debug_assert!((m.src as usize) < self.n && (m.dst as usize) < self.n);
            pairs.push((m.src, m.dst));
            let elems: u64 = m.parts.iter().map(|p| p.data.len() as u64).sum();
            sized.push((m.src, m.dst, elems));
        }
        self.traffic.push(sized);
        let stage = Stage::new(pairs); // asserts unique sources in debug
        for m in msgs {
            let buf = &mut self.bufs[m.dst as usize];
            for part in m.parts {
                let end = part.offset + part.data.len();
                assert!(end <= buf.len(), "message overruns destination buffer");
                match m.action {
                    Action::Store => buf[part.offset..end].copy_from_slice(&part.data),
                    Action::Accumulate => {
                        for (slot, v) in buf[part.offset..end].iter_mut().zip(&part.data) {
                            *slot += v;
                        }
                    }
                }
            }
        }
        self.trace.push(stage);
    }

    /// The traced stages so far.
    #[inline]
    pub fn trace(&self) -> &[Stage] {
        &self.trace
    }

    /// The executed communication as `(src_rank, dst_rank, bytes)` stages,
    /// scaling each message's element count by `bytes_per_element`. Feed
    /// into `ftree_sim::TrafficPlan::sized` (after mapping ranks to ports
    /// through a node order) to simulate the collective's real network
    /// behaviour, message sizes included.
    pub fn traffic_stages(&self, bytes_per_element: u64) -> Vec<Vec<(u32, u32, u64)>> {
        self.traffic
            .iter()
            .map(|stage| {
                stage
                    .iter()
                    .map(|&(s, d, elems)| (s, d, elems * bytes_per_element))
                    .collect()
            })
            .collect()
    }

    /// Consumes the world, returning buffers and trace.
    pub fn into_parts(self) -> (Vec<Vec<i64>>, Vec<Stage>) {
        (self.bufs, self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_overwrites() {
        let mut w = World::new(2, |r| vec![r as i64; 4]);
        w.exchange(vec![Message::store(0, 1, 1, vec![7, 8])]);
        assert_eq!(w.buf(1), &[1, 7, 8, 1]);
        assert_eq!(w.trace().len(), 1);
        assert_eq!(w.trace()[0].pairs, vec![(0, 1)]);
    }

    #[test]
    fn accumulate_adds() {
        let mut w = World::new(2, |_| vec![10; 3]);
        w.exchange(vec![Message::accumulate(1, 0, 0, vec![1, 2, 3])]);
        assert_eq!(w.buf(0), &[11, 12, 13]);
    }

    #[test]
    fn simultaneous_semantics_by_construction() {
        // Payloads are computed before exchange, so a swap works without
        // explicit double buffering.
        let mut w = World::new(2, |r| vec![r as i64]);
        let a = w.buf(0).to_vec();
        let b = w.buf(1).to_vec();
        w.exchange(vec![Message::store(0, 1, 0, a), Message::store(1, 0, 0, b)]);
        assert_eq!(w.buf(0), &[1]);
        assert_eq!(w.buf(1), &[0]);
    }

    #[test]
    fn traffic_stages_record_sizes() {
        let mut w = World::new(3, |_| vec![0i64; 4]);
        w.exchange(vec![
            Message::store(0, 1, 0, vec![1, 2, 3]),
            Message::accumulate(2, 0, 1, vec![9]),
        ]);
        w.exchange(vec![Message::token(1, 2)]);
        let t = w.traffic_stages(8);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0], vec![(0, 1, 24), (2, 0, 8)]);
        assert_eq!(t[1], vec![(1, 2, 0)]);
    }

    #[test]
    fn token_messages_carry_no_data() {
        let mut w = World::new(3, |_| vec![5]);
        w.exchange(vec![Message::token(0, 1), Message::token(1, 2)]);
        assert!(w.bufs().iter().all(|b| b == &[5]));
        assert_eq!(w.trace()[0].pairs.len(), 2);
    }

    #[test]
    #[should_panic(expected = "overruns")]
    fn overrun_detected() {
        let mut w = World::new(2, |_| vec![0; 2]);
        w.exchange(vec![Message::store(0, 1, 1, vec![1, 2])]);
    }
}
