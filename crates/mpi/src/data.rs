//! Buffer layouts, seed data and result verification for the collectives.
//!
//! Every collective works on block-structured buffers: rank `r`'s
//! contribution is the block `seed_block(r, b)` of `b` elements. The
//! verifiers below state each collective's postcondition; algorithm tests
//! check both the postcondition and the traced CPS.

use crate::world::World;

/// Rank `r`'s characteristic data block of `b` elements.
pub fn seed_block(rank: usize, b: usize) -> Vec<i64> {
    (0..b).map(|k| (rank * 1_000 + k) as i64).collect()
}

/// The block rank `i` addresses to rank `j` in an all-to-all (depends on
/// both endpoints).
pub fn seed_block_pair(src: usize, dst: usize, b: usize) -> Vec<i64> {
    (0..b)
        .map(|k| (src * 1_000_000 + dst * 1_000 + k) as i64)
        .collect()
}

/// World for allgather-family collectives: `n*b` elements per rank, own
/// block populated, the rest zero.
pub fn allgather_world(n: usize, b: usize) -> World {
    World::new(n, |r| {
        let mut buf = vec![0i64; n * b];
        buf[r * b..(r + 1) * b].copy_from_slice(&seed_block(r, b));
        buf
    })
}

/// World for reduction-family collectives: a `b`-element vector per rank.
pub fn reduce_world(n: usize, b: usize) -> World {
    World::new(n, |r| seed_block(r, b))
}

/// World for reduce-scatter / Rabenseifner: `n*b` elements per rank, every
/// block populated with the rank's own contribution for that slot.
pub fn blockwise_reduce_world(n: usize, b: usize) -> World {
    World::new(n, |r| {
        (0..n)
            .flat_map(|slot| {
                seed_block(r, b)
                    .into_iter()
                    .map(move |v| v + (slot as i64) * 7)
            })
            .collect()
    })
}

/// World for all-to-all: rank `i` holds the outgoing block for each `j` at
/// offset `j*b`, plus a receive region of another `n*b` elements (incoming
/// block from `j` lands at offset `(n+j)*b`; a separate region keeps the
/// in-flight exchange from clobbering not-yet-sent outgoing blocks).
pub fn alltoall_world(n: usize, b: usize) -> World {
    World::new(n, |i| {
        (0..n)
            .flat_map(|j| seed_block_pair(i, j, b))
            .chain(std::iter::repeat_n(0, n * b))
            .collect()
    })
}

/// World for scatter/bcast-family: root 0 holds `n*b` elements (all
/// blocks), everyone else zeros.
pub fn rooted_world(n: usize, b: usize) -> World {
    World::new(n, |r| {
        if r == 0 {
            (0..n).flat_map(|j| seed_block(j, b)).collect()
        } else {
            vec![0i64; n * b]
        }
    })
}

/// Postcondition: every rank holds every rank's block.
pub fn verify_allgather(world: &World, b: usize) {
    let n = world.num_ranks();
    let expected: Vec<i64> = (0..n).flat_map(|j| seed_block(j, b)).collect();
    for r in 0..n {
        assert_eq!(world.buf(r), &expected[..], "allgather wrong at rank {r}");
    }
}

/// Postcondition: `ranks` (default all) hold the element-wise sum of all
/// seed vectors.
pub fn verify_allreduce(world: &World, b: usize, ranks: impl Iterator<Item = usize>) {
    let n = world.num_ranks();
    let expected: Vec<i64> = (0..b)
        .map(|k| (0..n).map(|r| seed_block(r, b)[k]).sum())
        .collect();
    for r in ranks {
        assert_eq!(world.buf(r), &expected[..], "allreduce wrong at rank {r}");
    }
}

/// Postcondition for reduce-scatter on [`blockwise_reduce_world`]: rank `i`
/// holds the summed slot-`i` block at offset `i*b`.
pub fn verify_reduce_scatter(world: &World, b: usize) {
    let n = world.num_ranks();
    for i in 0..n {
        let expected: Vec<i64> = (0..b)
            .map(|k| {
                (0..n)
                    .map(|r| seed_block(r, b)[k] + (i as i64) * 7)
                    .sum::<i64>()
            })
            .collect();
        assert_eq!(
            &world.buf(i)[i * b..(i + 1) * b],
            &expected[..],
            "reduce-scatter wrong at rank {i}"
        );
    }
}

/// Postcondition: rank `i` holds the block rank `j` addressed to it, in its
/// receive region at offset `(n+j)*b`, for every `j != i`.
pub fn verify_alltoall(world: &World, b: usize) {
    let n = world.num_ranks();
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue; // local block is not exchanged
            }
            assert_eq!(
                &world.buf(i)[(n + j) * b..(n + j + 1) * b],
                &seed_block_pair(j, i, b)[..],
                "alltoall wrong at rank {i} slot {j}"
            );
        }
    }
}

/// Postcondition: every rank holds its own block at offset `rank*b`.
pub fn verify_scatter(world: &World, b: usize) {
    for r in 0..world.num_ranks() {
        assert_eq!(
            &world.buf(r)[r * b..(r + 1) * b],
            &seed_block(r, b)[..],
            "scatter wrong at rank {r}"
        );
    }
}

/// Postcondition: the root holds every block.
pub fn verify_gather(world: &World, b: usize, root: usize) {
    let n = world.num_ranks();
    let expected: Vec<i64> = (0..n).flat_map(|j| seed_block(j, b)).collect();
    assert_eq!(world.buf(root), &expected[..], "gather wrong at root");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_blocks_are_distinct() {
        assert_ne!(seed_block(1, 4), seed_block(2, 4));
        assert_ne!(seed_block_pair(1, 2, 4), seed_block_pair(2, 1, 4));
    }

    #[test]
    fn allgather_world_has_own_block_only() {
        let w = allgather_world(4, 2);
        assert_eq!(&w.buf(2)[4..6], &seed_block(2, 2)[..]);
        assert_eq!(&w.buf(2)[0..4], &[0, 0, 0, 0]);
    }

    #[test]
    fn rooted_world_concentrates_data() {
        let w = rooted_world(3, 2);
        assert_eq!(w.buf(0).len(), 6);
        assert!(w.buf(1).iter().all(|&x| x == 0));
    }
}
