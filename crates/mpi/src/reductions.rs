//! Reduction collectives: recursive-doubling allreduce, recursive-halving
//! reduce-scatter, and the composite Rabenseifner allreduce.

use ftree_collectives::{floor_log2, Cps, PermutationSequence};

use crate::world::{Message, World};

/// Recursive-doubling allreduce (Table 1: AllReduce / recursive doubling,
/// both MPIs, small messages). Handles any rank count via the pre/post
/// proxy stages baked into the CPS: remainder ranks fold their vectors onto
/// proxies, the power-of-two core runs the XOR exchange, and the post stage
/// copies results back out. Buffer layout: `b`-element vectors.
pub fn recursive_doubling_allreduce(world: &mut World) {
    let n = world.num_ranks() as u32;
    let stages = Cps::RecursiveDoubling.num_stages(n);
    let has_proxy = n > 1 && !n.is_power_of_two();
    for s in 0..stages {
        let stage = Cps::RecursiveDoubling.stage(n, s);
        let is_post = has_proxy && s == stages - 1;
        let msgs = stage
            .pairs
            .iter()
            .map(|&(src, dst)| {
                let data = world.buf(src as usize).to_vec();
                if is_post {
                    // Proxies hand the finished result back: overwrite.
                    Message::store(src, dst, 0, data)
                } else {
                    // Pre stage and XOR stages combine partial sums.
                    Message::accumulate(src, dst, 0, data)
                }
            })
            .collect();
        world.exchange(msgs);
    }
}

/// One recursive-halving stage at pair distance `d` (in blocks): each rank
/// accumulates into its partner the half-range (size `d`) that the partner
/// is responsible for.
fn halving_stage_msgs(world: &World, pairs: &[(u32, u32)], d: usize, b: usize) -> Vec<Message> {
    pairs
        .iter()
        .map(|&(src, dst)| {
            // Destination's aligned d-block range.
            let base = (dst as usize) & !(d - 1);
            Message::accumulate(
                src,
                dst,
                base * b,
                world.buf(src as usize)[base * b..(base + d) * b].to_vec(),
            )
        })
        .collect()
}

/// Recursive-halving reduce-scatter (Table 1: ReduceScatter / recursive
/// halving, both MPIs, power-of-two ranks). Buffer layout: `n*b`; rank `i`
/// ends with the fully-reduced block `i`.
pub fn recursive_halving_reduce_scatter(world: &mut World, b: usize) {
    let n = world.num_ranks();
    assert!(n.is_power_of_two(), "recursive halving needs 2^k ranks");
    for s in 0..Cps::RecursiveHalving.num_stages(n as u32) {
        let stage = Cps::RecursiveHalving.stage(n as u32, s);
        // Halving descends: distance n/2, n/4, ..., 1 (in blocks).
        let d = 1usize << (floor_log2(n as u32) as usize - 1 - s);
        let msgs = halving_stage_msgs(world, &stage.pairs, d, b);
        world.exchange(msgs);
    }
}

/// Rabenseifner allreduce (Table 1: AllReduce / rabenseifner, both MPIs,
/// large messages): recursive-halving reduce-scatter followed by
/// recursive-doubling allgather of the reduced blocks. Power-of-two ranks.
/// Buffer layout: `n*b`; every rank ends with every fully-reduced block.
pub fn rabenseifner_allreduce(world: &mut World, b: usize) {
    let n = world.num_ranks();
    recursive_halving_reduce_scatter(world, b);
    // Allgather phase: doubling distances, aligned span exchange.
    for s in 0..Cps::RecursiveDoubling.num_stages(n as u32) {
        let stage = Cps::RecursiveDoubling.stage(n as u32, s);
        let span = 1usize << s;
        let msgs = stage
            .pairs
            .iter()
            .map(|&(src, dst)| {
                let base = (src as usize) & !(span - 1);
                Message::store(
                    src,
                    dst,
                    base * b,
                    world.buf(src as usize)[base * b..(base + span) * b].to_vec(),
                )
            })
            .collect();
        world.exchange(msgs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{
        blockwise_reduce_world, reduce_world, seed_block, verify_allreduce, verify_reduce_scatter,
    };
    use ftree_collectives::identify;

    #[test]
    fn rd_allreduce_power_of_two() {
        for n in [4usize, 8, 16] {
            let mut w = reduce_world(n, 3);
            recursive_doubling_allreduce(&mut w);
            verify_allreduce(&w, 3, 0..n);
            assert_eq!(
                identify(w.trace(), n as u32),
                Some(Cps::RecursiveDoubling),
                "n={n}"
            );
        }
    }

    #[test]
    fn rd_allreduce_non_power_of_two_uses_proxies() {
        for n in [3usize, 6, 12, 21] {
            let mut w = reduce_world(n, 2);
            recursive_doubling_allreduce(&mut w);
            verify_allreduce(&w, 2, 0..n);
            assert_eq!(
                identify(w.trace(), n as u32),
                Some(Cps::RecursiveDoubling),
                "n={n}"
            );
        }
    }

    #[test]
    fn halving_reduce_scatter_works() {
        for n in [4usize, 8, 16] {
            let mut w = blockwise_reduce_world(n, 2);
            recursive_halving_reduce_scatter(&mut w, 2);
            verify_reduce_scatter(&w, 2);
            assert_eq!(
                identify(w.trace(), n as u32),
                Some(Cps::RecursiveHalving),
                "n={n}"
            );
        }
    }

    #[test]
    fn rabenseifner_full_allreduce() {
        for n in [4usize, 8, 16] {
            let b = 2;
            let mut w = blockwise_reduce_world(n, b);
            rabenseifner_allreduce(&mut w, b);
            // Every rank must hold every summed block.
            for i in 0..n {
                for slot in 0..n {
                    let expected: Vec<i64> = (0..b)
                        .map(|k| {
                            (0..n)
                                .map(|r| seed_block(r, b)[k] + (slot as i64) * 7)
                                .sum::<i64>()
                        })
                        .collect();
                    assert_eq!(
                        &w.buf(i)[slot * b..(slot + 1) * b],
                        &expected[..],
                        "n={n} rank {i} slot {slot}"
                    );
                }
            }
            // Composite trace: halving phase then doubling phase.
            let l = Cps::RecursiveHalving.num_stages(n as u32);
            assert_eq!(
                identify(&w.trace()[..l], n as u32),
                Some(Cps::RecursiveHalving)
            );
            assert_eq!(
                identify(&w.trace()[l..], n as u32),
                Some(Cps::RecursiveDoubling)
            );
        }
    }
}
