//! Rooted collectives: broadcast, scatter (Binomial CPS) and gather,
//! reduce (Tournament CPS).
//!
//! The binomial tree ascends distance `2^s`; scatter distributes congruence
//! classes (`k ≡ dst (mod 2^{s+1})`) so that every rank ends with exactly
//! its own block, gather ascends the Tournament stages accumulating
//! contiguous block ranges toward rank 0.

use ftree_collectives::{Cps, PermutationSequence};

use crate::world::{Message, Part, World};

/// Binomial-tree broadcast from rank 0 (Table 1: Broadcast / binomial,
/// MVAPICH & OpenMPI small messages). Buffer layout: `b` elements per rank.
pub fn binomial_bcast(world: &mut World) {
    let n = world.num_ranks() as u32;
    for s in 0..Cps::Binomial.num_stages(n) {
        let stage = Cps::Binomial.stage(n, s);
        let msgs = stage
            .pairs
            .iter()
            .map(|&(src, dst)| Message::store(src, dst, 0, world.buf(src as usize).to_vec()))
            .collect();
        world.exchange(msgs);
    }
}

/// Binomial-tree scatter from rank 0 (Table 1: Scatter / binomial).
/// Buffer layout: `n*b` elements; rank `r` must end with block `r`.
///
/// Invariant: before stage `s`, rank `i < 2^s` holds all blocks
/// `k ≡ i (mod 2^s)`; it forwards the half `k ≡ i + 2^s (mod 2^{s+1})`.
pub fn binomial_scatter(world: &mut World, b: usize) {
    let n = world.num_ranks() as u32;
    for s in 0..Cps::Binomial.num_stages(n) {
        let stage = Cps::Binomial.stage(n, s);
        let modulus = 1usize << (s + 1);
        let msgs = stage
            .pairs
            .iter()
            .map(|&(src, dst)| {
                let parts: Vec<Part> = (0..n as usize)
                    .filter(|&k| k % modulus == dst as usize % modulus)
                    .map(|k| Part {
                        offset: k * b,
                        data: world.buf(src as usize)[k * b..(k + 1) * b].to_vec(),
                    })
                    .collect();
                Message {
                    src,
                    dst,
                    action: crate::world::Action::Store,
                    parts,
                }
            })
            .collect();
        world.exchange(msgs);
    }
}

/// Binomial-tree gather to rank 0 (Table 1: Gather / binomial — the
/// Tournament CPS). Buffer layout: `n*b`; rank 0 ends with every block.
///
/// Invariant: before the stage at distance `2^s`, rank `j ≡ 0 (mod 2^s)`
/// holds the contiguous blocks `[j, j + 2^s) ∩ [0, n)`.
pub fn binomial_gather(world: &mut World, b: usize) {
    let n = world.num_ranks() as u32;
    for s in 0..Cps::Tournament.num_stages(n) {
        let stage = Cps::Tournament.stage(n, s);
        let held = 1usize << s;
        let msgs = stage
            .pairs
            .iter()
            .map(|&(src, dst)| {
                let lo = src as usize;
                let hi = (lo + held).min(n as usize);
                Message::store(src, dst, lo * b, world.buf(lo)[lo * b..hi * b].to_vec())
            })
            .collect();
        world.exchange(msgs);
    }
}

/// Binomial-tree reduce to rank 0 (Table 1: Reduce / binomial — Tournament
/// CPS). Buffer layout: `b`-element vectors; rank 0 ends with the sum.
pub fn binomial_reduce(world: &mut World) {
    let n = world.num_ranks() as u32;
    for s in 0..Cps::Tournament.num_stages(n) {
        let stage = Cps::Tournament.stage(n, s);
        let msgs = stage
            .pairs
            .iter()
            .map(|&(src, dst)| Message::accumulate(src, dst, 0, world.buf(src as usize).to_vec()))
            .collect();
        world.exchange(msgs);
    }
}

/// Scatter + ring-allgather broadcast (Table 1: Broadcast / scatter + ring
/// allgather, OpenMPI large messages): the root's `n*b` buffer is scattered
/// binomially (each rank ends with block `rank`), then a ring allgather
/// reassembles the full buffer everywhere. Composite trace: Binomial stages
/// followed by Ring stages.
pub fn scatter_ring_bcast(world: &mut World, b: usize) {
    binomial_scatter(world, b);
    crate::allgather::ring_allgather(world, b);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::*;
    use ftree_collectives::identify;

    #[test]
    fn bcast_delivers_and_traces_binomial() {
        for n in [2usize, 7, 16, 19] {
            let mut w = World::new(n, |r| if r == 0 { seed_block(0, 4) } else { vec![0; 4] });
            binomial_bcast(&mut w);
            for r in 0..n {
                assert_eq!(w.buf(r), &seed_block(0, 4)[..], "n={n} rank {r}");
            }
            assert_eq!(identify(w.trace(), n as u32), Some(Cps::Binomial), "n={n}");
        }
    }

    #[test]
    fn scatter_delivers_and_traces_binomial() {
        for n in [2usize, 8, 13] {
            let mut w = rooted_world(n, 3);
            binomial_scatter(&mut w, 3);
            verify_scatter(&w, 3);
            assert_eq!(identify(w.trace(), n as u32), Some(Cps::Binomial), "n={n}");
        }
    }

    #[test]
    fn gather_delivers_and_traces_tournament() {
        for n in [2usize, 8, 11] {
            let mut w = allgather_world(n, 2);
            binomial_gather(&mut w, 2);
            verify_gather(&w, 2, 0);
            assert_eq!(
                identify(w.trace(), n as u32),
                Some(Cps::Tournament),
                "n={n}"
            );
        }
    }

    #[test]
    fn scatter_ring_bcast_broadcasts_everything() {
        for n in [4usize, 9, 16] {
            let mut w = rooted_world(n, 2);
            scatter_ring_bcast(&mut w, 2);
            // Every rank ends with the root's full buffer.
            let expected: Vec<i64> = (0..n).flat_map(|j| seed_block(j, 2)).collect();
            for r in 0..n {
                assert_eq!(w.buf(r), &expected[..], "n={n} rank {r}");
            }
            // Composite trace: Binomial phase then Ring phase.
            let l = Cps::Binomial.num_stages(n as u32);
            assert_eq!(identify(&w.trace()[..l], n as u32), Some(Cps::Binomial));
            assert_eq!(identify(&w.trace()[l..], n as u32), Some(Cps::Ring));
        }
    }

    #[test]
    fn reduce_sums_and_traces_tournament() {
        for n in [2usize, 6, 16, 21] {
            let mut w = reduce_world(n, 5);
            binomial_reduce(&mut w);
            verify_allreduce(&w, 5, std::iter::once(0));
            assert_eq!(
                identify(w.trace(), n as u32),
                Some(Cps::Tournament),
                "n={n}"
            );
        }
    }
}
