//! All-to-all and barrier: the pairwise-exchange (Shift CPS) and
//! dissemination algorithms.

use ftree_collectives::{Cps, PermutationSequence};

use crate::world::{Message, World};

/// Pairwise-exchange all-to-all (Table 1: AllToAll / pairwise, MVAPICH
/// large messages) — the full Shift CPS: in stage `s` every rank sends its
/// block for rank `(i+s) mod n` directly there. This is the pattern whose
/// contention-freedom Theorem 1 guarantees.
///
/// Buffer layout: `n*b`; outgoing block for `j` at offset `j*b`, incoming
/// block from `j` overwrites the same slot.
pub fn pairwise_alltoall(world: &mut World, b: usize) {
    let n = world.num_ranks();
    for s in 0..Cps::Shift.num_stages(n as u32) {
        let stage = Cps::Shift.stage(n as u32, s);
        let msgs = stage
            .pairs
            .iter()
            .map(|&(src, dst)| {
                // Send src's outgoing block for dst; receiver files it in
                // receive-region slot src.
                Message::store(
                    src,
                    dst,
                    (n + src as usize) * b,
                    world.buf(src as usize)[dst as usize * b..(dst as usize + 1) * b].to_vec(),
                )
            })
            .collect();
        world.exchange(msgs);
    }
}

/// Dissemination barrier (Table 1: Barrier / dissemination). Modeled with
/// hear-from counters: rank `i`'s buffer counts, per peer, how often news
/// from that peer has reached `i` (directly or transitively). After the
/// `ceil(log2 n)` dissemination stages every counter is positive — everyone
/// has heard from everyone, which is the barrier's guarantee.
pub fn dissemination_barrier(world: &mut World) {
    let n = world.num_ranks() as u32;
    for s in 0..Cps::Dissemination.num_stages(n) {
        let stage = Cps::Dissemination.stage(n, s);
        let msgs = stage
            .pairs
            .iter()
            .map(|&(src, dst)| Message::accumulate(src, dst, 0, world.buf(src as usize).to_vec()))
            .collect();
        world.exchange(msgs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{alltoall_world, verify_alltoall};
    use crate::world::World;
    use ftree_collectives::identify;

    #[test]
    fn pairwise_alltoall_works_and_traces_shift() {
        for n in [4usize, 5, 9, 16] {
            let mut w = alltoall_world(n, 2);
            pairwise_alltoall(&mut w, 2);
            verify_alltoall(&w, 2);
            assert_eq!(identify(w.trace(), n as u32), Some(Cps::Shift), "n={n}");
        }
    }

    #[test]
    fn barrier_hears_from_everyone() {
        for n in [4usize, 7, 16, 30] {
            let mut w = World::new(n, |r| {
                (0..n).map(|k| if k == r { 1i64 } else { 0 }).collect()
            });
            dissemination_barrier(&mut w);
            for r in 0..n {
                assert!(
                    w.buf(r).iter().all(|&c| c > 0),
                    "n={n}: rank {r} missed someone: {:?}",
                    w.buf(r)
                );
            }
            assert_eq!(
                identify(w.trace(), n as u32),
                Some(Cps::Dissemination),
                "n={n}"
            );
        }
    }
}
