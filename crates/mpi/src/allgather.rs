//! Allgather algorithms: ring, dissemination (Bruck), recursive doubling,
//! neighbor exchange, and the paper's topology-aware sequence.
//!
//! Buffer layout for all of them: `n*b` elements per rank, block `j` at
//! offset `j*b` (see [`crate::data::allgather_world`]).

use ftree_collectives::{Cps, PermutationSequence, TopoAwareRd};

use crate::world::{Action, Message, Part, World};

/// Ring allgather (Table 1: AllGather / ring, both MPIs, large messages).
/// `N-1` repetitions of the Ring CPS; in round `t` each rank forwards the
/// block it received in round `t-1`.
pub fn ring_allgather(world: &mut World, b: usize) {
    let n = world.num_ranks();
    for t in 0..n.saturating_sub(1) {
        let stage = Cps::Ring.stage(n as u32, 0);
        let msgs = stage
            .pairs
            .iter()
            .map(|&(src, dst)| {
                let block = (src as usize + n - t) % n;
                Message::store(
                    src,
                    dst,
                    block * b,
                    world.buf(src as usize)[block * b..(block + 1) * b].to_vec(),
                )
            })
            .collect();
        world.exchange(msgs);
    }
}

/// Dissemination (Bruck-style) allgather (Table 1: AllGather / bruck,
/// OpenMPI small messages). Stage `s` ships the `min(2^s, n - 2^s)` most
/// recently acquired blocks a distance `2^s` forward.
pub fn dissemination_allgather(world: &mut World, b: usize) {
    let n = world.num_ranks();
    for s in 0..Cps::Dissemination.num_stages(n as u32) {
        let stage = Cps::Dissemination.stage(n as u32, s);
        let window = (1usize << s).min(n - (1usize << s));
        let msgs = stage
            .pairs
            .iter()
            .map(|&(src, dst)| {
                let parts = (0..window)
                    .map(|t| {
                        let block = (src as usize + n - t) % n;
                        Part {
                            offset: block * b,
                            data: world.buf(src as usize)[block * b..(block + 1) * b].to_vec(),
                        }
                    })
                    .collect();
                Message {
                    src,
                    dst,
                    action: Action::Store,
                    parts,
                }
            })
            .collect();
        world.exchange(msgs);
    }
}

/// Recursive-doubling allgather (Table 1: AllGather / recursive doubling,
/// both MPIs, small messages, power-of-two ranks only — exactly the `2`
/// annotation in the paper's table).
pub fn recursive_doubling_allgather(world: &mut World, b: usize) {
    let n = world.num_ranks();
    assert!(
        n.is_power_of_two(),
        "recursive doubling allgather needs 2^k ranks"
    );
    for s in 0..Cps::RecursiveDoubling.num_stages(n as u32) {
        let stage = Cps::RecursiveDoubling.stage(n as u32, s);
        let span = 1usize << s;
        let msgs = stage
            .pairs
            .iter()
            .map(|&(src, dst)| {
                let base = (src as usize) & !(span - 1);
                Message::store(
                    src,
                    dst,
                    base * b,
                    world.buf(src as usize)[base * b..(base + span) * b].to_vec(),
                )
            })
            .collect();
        world.exchange(msgs);
    }
}

/// Sends every block the source currently knows (tracked by `known`).
fn send_known(world: &World, known: &[Vec<bool>], src: u32, dst: u32, b: usize) -> Message {
    let parts = known[src as usize]
        .iter()
        .enumerate()
        .filter(|&(_, &k)| k)
        .map(|(block, _)| Part {
            offset: block * b,
            data: world.buf(src as usize)[block * b..(block + 1) * b].to_vec(),
        })
        .collect();
    Message {
        src,
        dst,
        action: Action::Store,
        parts,
    }
}

fn merge_known(known: &mut [Vec<bool>], pairs: &[(u32, u32)]) {
    let snapshot: Vec<Vec<bool>> = known.to_vec();
    for &(src, dst) in pairs {
        for (slot, &k) in known[dst as usize].iter_mut().zip(&snapshot[src as usize]) {
            *slot |= k;
        }
    }
}

/// Neighbor-exchange allgather (Table 1: AllGather / neighbor exchange,
/// OpenMPI large messages, even rank counts).
pub fn neighbor_exchange_allgather(world: &mut World, b: usize) {
    let n = world.num_ranks();
    assert!(
        n.is_multiple_of(2),
        "neighbor exchange needs an even rank count"
    );
    let mut known: Vec<Vec<bool>> = (0..n).map(|r| (0..n).map(|k| k == r).collect()).collect();
    for s in 0..Cps::NeighborExchange.num_stages(n as u32) {
        let stage = Cps::NeighborExchange.stage(n as u32, s);
        let msgs = stage
            .pairs
            .iter()
            .map(|&(src, dst)| send_known(world, &known, src, dst, b))
            .collect();
        merge_known(&mut known, &stage.pairs);
        world.exchange(msgs);
    }
}

/// Allgather over the paper's Sec. VI topology-aware recursive-doubling
/// sequence — the contention-free replacement for XOR exchange on a
/// fat-tree with level arities `m`.
pub fn topo_aware_allgather(world: &mut World, b: usize, seq: &TopoAwareRd) {
    let n = world.num_ranks();
    assert_eq!(n as u32, seq.num_ranks());
    let mut known: Vec<Vec<bool>> = (0..n).map(|r| (0..n).map(|k| k == r).collect()).collect();
    for id in seq.schedule() {
        let stage = seq.stage_for(id);
        let msgs = stage
            .pairs
            .iter()
            .map(|&(src, dst)| send_known(world, &known, src, dst, b))
            .collect();
        merge_known(&mut known, &stage.pairs);
        world.exchange(msgs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{allgather_world, verify_allgather};
    use ftree_collectives::identify;

    #[test]
    fn ring_allgather_works_and_traces_ring() {
        for n in [2usize, 5, 12] {
            let mut w = allgather_world(n, 3);
            ring_allgather(&mut w, 3);
            verify_allgather(&w, 3);
            assert_eq!(identify(w.trace(), n as u32), Some(Cps::Ring), "n={n}");
        }
    }

    #[test]
    fn dissemination_allgather_works_and_traces() {
        for n in [4usize, 6, 8, 13] {
            let mut w = allgather_world(n, 2);
            dissemination_allgather(&mut w, 2);
            verify_allgather(&w, 2);
            assert_eq!(
                identify(w.trace(), n as u32),
                Some(Cps::Dissemination),
                "n={n}"
            );
        }
    }

    #[test]
    fn recursive_doubling_allgather_works_pow2() {
        for n in [4usize, 8, 32] {
            let mut w = allgather_world(n, 2);
            recursive_doubling_allgather(&mut w, 2);
            verify_allgather(&w, 2);
            assert_eq!(
                identify(w.trace(), n as u32),
                Some(Cps::RecursiveDoubling),
                "n={n}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "needs 2^k ranks")]
    fn recursive_doubling_rejects_non_pow2() {
        let mut w = allgather_world(6, 1);
        recursive_doubling_allgather(&mut w, 1);
    }

    #[test]
    fn neighbor_exchange_works_and_traces() {
        for n in [4usize, 8, 10, 14] {
            let mut w = allgather_world(n, 2);
            neighbor_exchange_allgather(&mut w, 2);
            verify_allgather(&w, 2);
            assert_eq!(
                identify(w.trace(), n as u32),
                Some(Cps::NeighborExchange),
                "n={n}"
            );
        }
    }

    #[test]
    fn topo_aware_allgather_completes() {
        for m in [vec![4u32, 4], vec![6, 3], vec![3, 2, 2]] {
            let seq = TopoAwareRd::new(m.clone());
            let n = seq.num_ranks() as usize;
            let mut w = allgather_world(n, 2);
            topo_aware_allgather(&mut w, 2, &seq);
            verify_allgather(&w, 2);
            // The trace equals the generated schedule stage for stage.
            assert_eq!(w.trace().len(), seq.schedule().len(), "shape {m:?}");
        }
    }
}
