//! # ftree-mpi — executable MPI collective algorithms
//!
//! Implements the collective algorithms surveyed by the paper's Table 1 as
//! *running code* over a staged message-passing substrate:
//!
//! * [`world`] — per-rank buffers, simultaneous staged exchange, and a
//!   communication tracer,
//! * [`rooted`] — binomial broadcast/scatter (Binomial CPS) and
//!   gather/reduce (Tournament CPS),
//! * [`allgather`] — ring, Bruck/dissemination, recursive-doubling,
//!   neighbor-exchange and the paper's Sec. VI topology-aware allgather,
//! * [`reductions`] — recursive-doubling allreduce (with non-power-of-two
//!   proxy stages), recursive-halving reduce-scatter, Rabenseifner,
//! * [`alltoall`] — pairwise exchange (Shift CPS) and the dissemination
//!   barrier,
//! * [`survey`] — runs every algorithm, extracts its trace and verifies the
//!   identified CPS against the declared Table 1 mapping.
//!
//! Every algorithm both computes correct results (verified against closed
//! forms in [`data`]) and produces the exact permutation sequence the paper
//! attributes to it — the executable form of the CPS + content
//! decomposition.

#![warn(missing_docs)]

pub mod allgather;
pub mod alltoall;
pub mod data;
pub mod irregular;
pub mod reductions;
pub mod rooted;
pub mod survey;
pub mod world;

pub use survey::{run_survey, verify_survey, SurveyRun};
pub use world::{Action, Message, Part, World};
