//! Executable validation of the Table 1 survey.
//!
//! For every algorithm row of [`ftree_collectives::table1()`](ftree_collectives::table1::table1) that we
//! implement, [`run_survey`] executes the algorithm on a live [`World`],
//! extracts its communication trace, and identifies the CPS — confirming
//! in code the paper's claim that the 18 MVAPICH/OpenMPI algorithms employ
//! only the 8 Table 2 permutation sequences.

use ftree_collectives::{identify, Collective, Cps};

use crate::allgather::{
    dissemination_allgather, neighbor_exchange_allgather, recursive_doubling_allgather,
    ring_allgather,
};
use crate::alltoall::{dissemination_barrier, pairwise_alltoall};
use crate::data::{
    allgather_world, alltoall_world, blockwise_reduce_world, reduce_world, rooted_world,
};
use crate::reductions::{
    rabenseifner_allreduce, recursive_doubling_allreduce, recursive_halving_reduce_scatter,
};
use crate::rooted::{
    binomial_bcast, binomial_gather, binomial_reduce, binomial_scatter, scatter_ring_bcast,
};
use crate::world::World;

/// Outcome of executing one surveyed algorithm.
#[derive(Debug, Clone)]
pub struct SurveyRun {
    /// The MPI operation executed.
    pub collective: Collective,
    /// Algorithm name (matches the Table 1 row).
    pub algorithm: &'static str,
    /// CPS phases identified from the execution trace (composite
    /// algorithms like Rabenseifner report one entry per phase).
    pub identified: Vec<Option<Cps>>,
    /// Ranks used.
    pub n: usize,
}

/// Executes every implemented survey algorithm at rank count `n`
/// (power-of-two variants run at the next power of two below or equal to
/// `n`; neighbor exchange at the nearest even count).
pub fn run_survey(n: usize) -> Vec<SurveyRun> {
    assert!(n >= 4);
    let b = 2usize;
    let pow2 = 1usize << (usize::BITS - 1 - n.leading_zeros());
    let even = n & !1usize;
    let mut runs = Vec::new();

    let mut record =
        |collective: Collective, algorithm: &'static str, n: usize, phases: Vec<Option<Cps>>| {
            runs.push(SurveyRun {
                collective,
                algorithm,
                identified: phases,
                n,
            });
        };

    // AllGather family.
    {
        let mut w = allgather_world(pow2, b);
        recursive_doubling_allgather(&mut w, b);
        record(
            Collective::Allgather,
            "recursive doubling",
            pow2,
            vec![identify(w.trace(), pow2 as u32)],
        );
    }
    {
        let mut w = allgather_world(n, b);
        dissemination_allgather(&mut w, b);
        record(
            Collective::Allgather,
            "bruck",
            n,
            vec![identify(w.trace(), n as u32)],
        );
    }
    {
        let mut w = allgather_world(n, b);
        ring_allgather(&mut w, b);
        record(
            Collective::Allgather,
            "ring",
            n,
            vec![identify(w.trace(), n as u32)],
        );
    }
    {
        let mut w = allgather_world(even, b);
        neighbor_exchange_allgather(&mut w, b);
        record(
            Collective::Allgather,
            "neighbor exchange",
            even,
            vec![identify(w.trace(), even as u32)],
        );
    }

    // AllReduce family.
    {
        let mut w = reduce_world(n, b);
        recursive_doubling_allreduce(&mut w);
        record(
            Collective::Allreduce,
            "recursive doubling",
            n,
            vec![identify(w.trace(), n as u32)],
        );
    }
    {
        let mut w = blockwise_reduce_world(pow2, b);
        rabenseifner_allreduce(&mut w, b);
        let l = pow2.trailing_zeros() as usize;
        record(
            Collective::Allreduce,
            "rabenseifner",
            pow2,
            vec![
                identify(&w.trace()[..l], pow2 as u32),
                identify(&w.trace()[l..], pow2 as u32),
            ],
        );
    }

    // AllToAll / Barrier.
    {
        let mut w = alltoall_world(n, b);
        pairwise_alltoall(&mut w, b);
        record(
            Collective::Alltoall,
            "pairwise exchange",
            n,
            vec![identify(w.trace(), n as u32)],
        );
    }
    {
        let mut w = World::new(n, |r| (0..n).map(|k| i64::from(k == r)).collect());
        dissemination_barrier(&mut w);
        record(
            Collective::Barrier,
            "dissemination",
            n,
            vec![identify(w.trace(), n as u32)],
        );
    }

    // Rooted collectives.
    {
        let mut w = World::new(n, |r| if r == 0 { vec![42; b] } else { vec![0; b] });
        binomial_bcast(&mut w);
        record(
            Collective::Broadcast,
            "binomial tree",
            n,
            vec![identify(w.trace(), n as u32)],
        );
    }
    {
        let mut w = rooted_world(n, b);
        scatter_ring_bcast(&mut w, b);
        let l = ftree_collectives::ceil_log2(n as u32) as usize;
        record(
            Collective::Broadcast,
            "scatter + ring allgather",
            n,
            vec![
                identify(&w.trace()[..l], n as u32),
                identify(&w.trace()[l..], n as u32),
            ],
        );
    }
    {
        let mut w = rooted_world(n, b);
        binomial_scatter(&mut w, b);
        record(
            Collective::Scatter,
            "binomial tree",
            n,
            vec![identify(w.trace(), n as u32)],
        );
    }
    {
        let mut w = allgather_world(n, b);
        binomial_gather(&mut w, b);
        record(
            Collective::Gather,
            "binomial tree",
            n,
            vec![identify(w.trace(), n as u32)],
        );
    }
    {
        let mut w = reduce_world(n, b);
        binomial_reduce(&mut w);
        record(
            Collective::Reduce,
            "binomial tree",
            n,
            vec![identify(w.trace(), n as u32)],
        );
    }

    // ReduceScatter.
    {
        let mut w = blockwise_reduce_world(pow2, b);
        recursive_halving_reduce_scatter(&mut w, b);
        record(
            Collective::ReduceScatter,
            "recursive halving",
            pow2,
            vec![identify(w.trace(), pow2 as u32)],
        );
    }

    runs
}

/// Checks every executed run against the declared CPS of the Table 1 row
/// with the same (collective, algorithm) key. Returns the number of rows
/// verified.
pub fn verify_survey(runs: &[SurveyRun]) -> usize {
    let table = ftree_collectives::table1();
    let mut verified = 0;
    for run in runs {
        let entry = table
            .iter()
            .find(|e| e.collective == run.collective && e.algorithm == run.algorithm)
            .unwrap_or_else(|| {
                panic!(
                    "no Table 1 row for {:?} / {}",
                    run.collective, run.algorithm
                )
            });
        assert_eq!(
            run.identified.len(),
            entry.cps.len(),
            "{:?}/{}: phase count",
            run.collective,
            run.algorithm
        );
        for (found, &declared) in run.identified.iter().zip(entry.cps) {
            assert_eq!(
                *found,
                Some(declared),
                "{:?}/{}: traced CPS mismatch",
                run.collective,
                run.algorithm
            );
        }
        verified += 1;
    }
    verified
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survey_validates_against_table1() {
        for n in [8usize, 12, 20] {
            let runs = run_survey(n);
            assert_eq!(runs.len(), 14);
            assert_eq!(verify_survey(&runs), 14, "n={n}");
        }
    }
}
