//! Chrome trace-event JSON export.
//!
//! Renders a recorded [`ObsEvent`] stream in the [Trace Event Format]
//! understood by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev):
//!
//! * **pid 1 "fabric"** — one track (tid = channel index) per directed
//!   channel that ever transmitted: packet serializations as complete
//!   (`"X"`) spans, drops as instant markers on the channel they died at,
//! * **pid 2 "control plane"** — the subnet-manager track (sweeps rendered
//!   as spans covering the event-to-sweep repair lag, with the full
//!   `SweepReport` in `args`) and the fault track (link fail/recover
//!   instants),
//! * **pid 3 "hosts"** — per-host transport instants: message deliveries,
//!   retransmissions, abandoned messages.
//!
//! Timestamps convert from the simulator's picoseconds to the format's
//! microseconds, so a 50 µs blackhole window reads as 50 µs on screen.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::collections::BTreeSet;

use serde_json::{json, Value};

use crate::events::ObsEvent;

const FABRIC_PID: u64 = 1;
const CONTROL_PID: u64 = 2;
const HOST_PID: u64 = 3;

/// Subnet-manager track within the control-plane process.
const SM_TID: u64 = 0;
/// Fault (link event) track within the control-plane process.
const FAULT_TID: u64 = 1;

/// Picoseconds → trace microseconds.
fn us(ps: u64) -> f64 {
    ps as f64 / 1e6
}

/// Builds a Chrome trace-event JSON document from recorded events.
///
/// `channel_label` and `link_label` provide human-readable names (e.g. from
/// `ftree_topology::Topology::channel_label`); pass something like
/// `|ch| format!("ch{ch}")` when no topology is at hand.
pub fn chrome_trace<F, G>(events: &[ObsEvent], channel_label: F, link_label: G) -> Value
where
    F: Fn(u32) -> String,
    G: Fn(u32) -> String,
{
    let mut out: Vec<Value> = Vec::new();
    let mut channels_seen: BTreeSet<u32> = BTreeSet::new();
    let mut hosts_seen: BTreeSet<u32> = BTreeSet::new();
    let mut control_seen = false;

    for ev in events {
        match ev {
            ObsEvent::ChannelBusy { t, ch, dur, bytes } => {
                channels_seen.insert(*ch);
                out.push(json!({
                    "name": format!("{bytes} B"),
                    "cat": "channel",
                    "ph": "X",
                    "ts": us(*t),
                    "dur": us(*dur),
                    "pid": FABRIC_PID,
                    "tid": ch,
                    "args": {"bytes": bytes},
                }));
            }
            ObsEvent::PacketDrop {
                t,
                ch,
                src,
                dst,
                msg,
                attempt,
            } => {
                channels_seen.insert(*ch);
                out.push(json!({
                    "name": "drop",
                    "cat": "loss",
                    "ph": "i",
                    "s": "t",
                    "ts": us(*t),
                    "pid": FABRIC_PID,
                    "tid": ch,
                    "args": {"src": src, "dst": dst, "msg": msg, "attempt": attempt},
                }));
            }
            ObsEvent::Delivery {
                t,
                src,
                dst,
                msg,
                bytes,
            } => {
                hosts_seen.insert(*src);
                out.push(json!({
                    "name": format!("deliver msg {msg}"),
                    "cat": "transport",
                    "ph": "i",
                    "s": "t",
                    "ts": us(*t),
                    "pid": HOST_PID,
                    "tid": src,
                    "args": {"dst": dst, "bytes": bytes},
                }));
            }
            ObsEvent::Retransmit {
                t,
                host,
                msg,
                attempt,
            } => {
                hosts_seen.insert(*host);
                out.push(json!({
                    "name": format!("retransmit msg {msg}"),
                    "cat": "transport",
                    "ph": "i",
                    "s": "t",
                    "ts": us(*t),
                    "pid": HOST_PID,
                    "tid": host,
                    "args": {"attempt": attempt},
                }));
            }
            ObsEvent::MessageLost { t, host, msg } => {
                hosts_seen.insert(*host);
                out.push(json!({
                    "name": format!("LOST msg {msg}"),
                    "cat": "transport",
                    "ph": "i",
                    "s": "t",
                    "ts": us(*t),
                    "pid": HOST_PID,
                    "tid": host,
                }));
            }
            ObsEvent::LinkFail { t, link } => {
                control_seen = true;
                out.push(json!({
                    "name": format!("FAIL {}", link_label(*link)),
                    "cat": "fault",
                    "ph": "i",
                    "s": "g",
                    "ts": us(*t),
                    "pid": CONTROL_PID,
                    "tid": FAULT_TID,
                    "args": {"link": link},
                }));
            }
            ObsEvent::LinkRecover { t, link } => {
                control_seen = true;
                out.push(json!({
                    "name": format!("RECOVER {}", link_label(*link)),
                    "cat": "fault",
                    "ph": "i",
                    "s": "g",
                    "ts": us(*t),
                    "pid": CONTROL_PID,
                    "tid": FAULT_TID,
                    "args": {"link": link},
                }));
            }
            ObsEvent::LinkDegrade {
                t,
                link,
                latency_mult,
                drop_ppm,
            } => {
                control_seen = true;
                let label = if *latency_mult <= 1 && *drop_ppm == 0 {
                    format!("RESTORE {}", link_label(*link))
                } else {
                    format!("DEGRADE {} x{latency_mult}", link_label(*link))
                };
                out.push(json!({
                    "name": label,
                    "cat": "fault",
                    "ph": "i",
                    "s": "g",
                    "ts": us(*t),
                    "pid": CONTROL_PID,
                    "tid": FAULT_TID,
                    "args": {"link": link, "latency_mult": latency_mult, "drop_ppm": drop_ppm},
                }));
            }
            ObsEvent::SweepBegin { .. } => {
                // Rendered from the matching SweepEnd (which carries the
                // report, including the repair lag).
            }
            ObsEvent::SweepEnd { t, report } => {
                control_seen = true;
                let sweep = report.get("sweep").and_then(Value::as_u64).unwrap_or(0);
                // The sweep repairs everything that happened since the
                // oldest unapplied event: draw that whole repair window.
                let age = report
                    .get("oldest_event_age")
                    .and_then(Value::as_u64)
                    .unwrap_or(0);
                out.push(json!({
                    "name": format!("sweep {sweep}"),
                    "cat": "sm",
                    "ph": "X",
                    "ts": us(t.saturating_sub(age)),
                    "dur": us(age.max(1)),
                    "pid": CONTROL_PID,
                    "tid": SM_TID,
                    "args": {"report": report},
                }));
            }
            ObsEvent::RouteDecision { t, node, dst, port } => {
                control_seen = true;
                out.push(json!({
                    "name": format!("route n{node} -> h{dst} via {port}"),
                    "cat": "routing",
                    "ph": "i",
                    "s": "t",
                    "ts": us(*t),
                    "pid": CONTROL_PID,
                    "tid": SM_TID,
                }));
            }
            ObsEvent::Custom { t, name, data } => {
                control_seen = true;
                out.push(json!({
                    "name": name,
                    "cat": "custom",
                    "ph": "i",
                    "s": "g",
                    "ts": us(*t),
                    "pid": CONTROL_PID,
                    "tid": FAULT_TID,
                    "args": {"data": data},
                }));
            }
        }
    }

    // Metadata: process and thread names for every track actually used.
    let mut meta: Vec<Value> = Vec::new();
    let process_name = |pid: u64, name: &str| json!({"name": "process_name", "ph": "M", "pid": pid, "args": {"name": name}});
    let thread_name = |pid: u64, tid: u64, name: String| json!({"name": "thread_name", "ph": "M", "pid": pid, "tid": tid, "args": {"name": name}});
    if !channels_seen.is_empty() {
        meta.push(process_name(FABRIC_PID, "fabric channels"));
        for &ch in &channels_seen {
            meta.push(thread_name(FABRIC_PID, ch as u64, channel_label(ch)));
        }
    }
    if control_seen {
        meta.push(process_name(CONTROL_PID, "control plane"));
        meta.push(thread_name(
            CONTROL_PID,
            SM_TID,
            "subnet manager".to_string(),
        ));
        meta.push(thread_name(CONTROL_PID, FAULT_TID, "faults".to_string()));
    }
    if !hosts_seen.is_empty() {
        meta.push(process_name(HOST_PID, "hosts"));
        for &h in &hosts_seen {
            meta.push(thread_name(HOST_PID, h as u64, format!("host {h}")));
        }
    }
    meta.extend(out);

    json!({
        "traceEvents": meta,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "ftree-obs"},
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn label(prefix: &'static str) -> impl Fn(u32) -> String {
        move |i| format!("{prefix}{i}")
    }

    #[test]
    fn trace_has_spans_instants_and_metadata() {
        let events = vec![
            ObsEvent::ChannelBusy {
                t: 1_000_000,
                ch: 4,
                dur: 500_000,
                bytes: 2048,
            },
            ObsEvent::PacketDrop {
                t: 2_000_000,
                ch: 4,
                src: 0,
                dst: 9,
                msg: 0,
                attempt: 0,
            },
            ObsEvent::LinkFail {
                t: 2_000_000,
                link: 2,
            },
            ObsEvent::SweepEnd {
                t: 7_000_000,
                report: serde_json::json!({"sweep": 0, "oldest_event_age": 5_000_000u64}),
            },
            ObsEvent::Delivery {
                t: 8_000_000,
                src: 0,
                dst: 9,
                msg: 1,
                bytes: 4096,
            },
        ];
        let trace = chrome_trace(&events, label("ch"), label("link"));
        let evs = trace["traceEvents"].as_array().unwrap();
        // 5 renderable events + metadata (2 process names for fabric/control
        // + 1 host process + channel/sm/fault/host thread names).
        assert!(evs.len() > 5);
        let span = evs
            .iter()
            .find(|e| e["ph"] == "X" && e["cat"] == "channel")
            .expect("channel span present");
        assert_eq!(span["ts"].as_f64().unwrap(), 1.0);
        assert_eq!(span["dur"].as_f64().unwrap(), 0.5);
        let sweep = evs
            .iter()
            .find(|e| e["cat"] == "sm")
            .expect("sweep span present");
        // Repair window: [7us - 5us, 7us].
        assert_eq!(sweep["ts"].as_f64().unwrap(), 2.0);
        assert_eq!(sweep["dur"].as_f64().unwrap(), 5.0);
        assert!(evs
            .iter()
            .any(|e| e["ph"] == "M" && e["args"]["name"] == "ch4"));
        assert!(evs.iter().any(|e| e["ph"] == "i" && e["cat"] == "fault"));
    }

    #[test]
    fn sweep_begin_is_folded_into_end() {
        let events = vec![
            ObsEvent::SweepBegin { t: 5, sweep: 0 },
            ObsEvent::SweepEnd {
                t: 5,
                report: serde_json::json!({"sweep": 0}),
            },
        ];
        let trace = chrome_trace(&events, label("ch"), label("l"));
        let evs = trace["traceEvents"].as_array().unwrap();
        assert_eq!(evs.iter().filter(|e| e["cat"] == "sm").count(), 1);
    }

    #[test]
    fn empty_events_give_empty_trace() {
        let trace = chrome_trace(&[], label("c"), label("l"));
        assert_eq!(trace["traceEvents"].as_array().unwrap().len(), 0);
        assert_eq!(trace["displayTimeUnit"], "ms");
    }
}
