//! Chrome trace-event JSON export.
//!
//! Renders a recorded [`ObsEvent`] stream in the [Trace Event Format]
//! understood by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev):
//!
//! * **pid 1 "fabric"** — one track (tid = channel index) per directed
//!   channel that ever transmitted: packet serializations as complete
//!   (`"X"`) spans, drops as instant markers on the channel they died at,
//! * **pid 2 "control plane"** — the subnet-manager track (sweeps rendered
//!   as spans covering the event-to-sweep repair lag, with the full
//!   `SweepReport` in `args`) and the fault track (link fail/recover
//!   instants),
//! * **pid 3 "hosts"** — per-host transport instants: message deliveries,
//!   retransmissions, abandoned messages,
//! * **pid 4 "spans (sim)"** — sim-time spans (message lifecycles), paired
//!   from `SpanBegin`/`SpanEnd` into nested complete events; tracks keyed
//!   by the span's `src` attribute when present,
//! * **pid 5 "spans (wall)"** — wall-clock control-plane spans (SM sweep →
//!   repair, planner phases), one track per recording thread.
//!
//! Timestamps convert from the simulator's picoseconds to the format's
//! microseconds, so a 50 µs blackhole window reads as 50 µs on screen.
//! Wall-clock span timestamps are nanoseconds since the recorder was
//! created and convert to microseconds the same way.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::collections::{BTreeMap, BTreeSet};

use serde_json::{json, Map, Value};

use crate::events::{ObsEvent, SpanClock};

const FABRIC_PID: u64 = 1;
const CONTROL_PID: u64 = 2;
const HOST_PID: u64 = 3;
const SPAN_SIM_PID: u64 = 4;
const SPAN_WALL_PID: u64 = 5;

/// Subnet-manager track within the control-plane process.
const SM_TID: u64 = 0;
/// Fault (link event) track within the control-plane process.
const FAULT_TID: u64 = 1;

/// Picoseconds → trace microseconds.
fn us(ps: u64) -> f64 {
    ps as f64 / 1e6
}

/// Wall nanoseconds → trace microseconds.
fn wall_us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

/// A `SpanBegin` awaiting its matching `SpanEnd`.
struct OpenSpan {
    t: u64,
    parent: u64,
    name: String,
    clock: SpanClock,
    attrs: BTreeMap<String, Value>,
}

/// Renders one paired (or force-closed) span as a complete event and
/// remembers its track for metadata.
fn emit_span(
    id: u64,
    begin: OpenSpan,
    end_t: u64,
    end_attrs: BTreeMap<String, Value>,
    sim_tracks: &mut BTreeSet<u64>,
    wall_tracks: &mut BTreeSet<u64>,
) -> Value {
    let tid_key = match begin.clock {
        SpanClock::Sim => "src",
        SpanClock::Wall => "tid",
    };
    let tid = begin
        .attrs
        .get(tid_key)
        .and_then(Value::as_u64)
        .unwrap_or(0);
    let (pid, ts, dur) = match begin.clock {
        SpanClock::Sim => {
            sim_tracks.insert(tid);
            (SPAN_SIM_PID, us(begin.t), us(end_t.saturating_sub(begin.t)))
        }
        SpanClock::Wall => {
            wall_tracks.insert(tid);
            (
                SPAN_WALL_PID,
                wall_us(begin.t),
                wall_us(end_t.saturating_sub(begin.t)),
            )
        }
    };
    let mut args = Map::new();
    args.insert("span".to_string(), Value::from(id));
    if begin.parent != 0 {
        args.insert("parent".to_string(), Value::from(begin.parent));
    }
    for (k, v) in begin.attrs.into_iter().chain(end_attrs) {
        args.insert(k, v);
    }
    json!({
        "name": begin.name,
        "cat": "span",
        "ph": "X",
        "ts": ts,
        "dur": dur,
        "pid": pid,
        "tid": tid,
        "args": args,
    })
}

/// Builds a Chrome trace-event JSON document from recorded events.
///
/// `channel_label` and `link_label` provide human-readable names (e.g. from
/// `ftree_topology::Topology::channel_label`); pass something like
/// `|ch| format!("ch{ch}")` when no topology is at hand.
pub fn chrome_trace<F, G>(events: &[ObsEvent], channel_label: F, link_label: G) -> Value
where
    F: Fn(u32) -> String,
    G: Fn(u32) -> String,
{
    let mut out: Vec<Value> = Vec::new();
    let mut channels_seen: BTreeSet<u32> = BTreeSet::new();
    let mut hosts_seen: BTreeSet<u32> = BTreeSet::new();
    let mut control_seen = false;
    let mut open_spans: BTreeMap<u64, OpenSpan> = BTreeMap::new();
    let mut sim_tracks: BTreeSet<u64> = BTreeSet::new();
    let mut wall_tracks: BTreeSet<u64> = BTreeSet::new();
    // Latest timestamp seen per clock domain: unmatched SpanBegins (e.g. a
    // truncated ring) are force-closed at the end of the recorded window.
    let mut max_sim_t = 0u64;
    let mut max_wall_t = 0u64;

    for ev in events {
        // Track the furthest timestamp per clock domain so unmatched span
        // begins can be force-closed at the window's end. All non-span
        // events carry sim time.
        match ev {
            ObsEvent::SpanBegin {
                t,
                clock: SpanClock::Wall,
                ..
            } => max_wall_t = max_wall_t.max(*t),
            ObsEvent::SpanEnd { t, span, .. } => match open_spans.get(span).map(|o| o.clock) {
                Some(SpanClock::Wall) => max_wall_t = max_wall_t.max(*t),
                _ => max_sim_t = max_sim_t.max(*t),
            },
            other => max_sim_t = max_sim_t.max(other.time()),
        }
        match ev {
            ObsEvent::ChannelBusy { t, ch, dur, bytes } => {
                channels_seen.insert(*ch);
                out.push(json!({
                    "name": format!("{bytes} B"),
                    "cat": "channel",
                    "ph": "X",
                    "ts": us(*t),
                    "dur": us(*dur),
                    "pid": FABRIC_PID,
                    "tid": ch,
                    "args": {"bytes": bytes},
                }));
            }
            ObsEvent::PacketDrop {
                t,
                ch,
                src,
                dst,
                msg,
                attempt,
            } => {
                channels_seen.insert(*ch);
                out.push(json!({
                    "name": "drop",
                    "cat": "loss",
                    "ph": "i",
                    "s": "t",
                    "ts": us(*t),
                    "pid": FABRIC_PID,
                    "tid": ch,
                    "args": {"src": src, "dst": dst, "msg": msg, "attempt": attempt},
                }));
            }
            ObsEvent::Delivery {
                t,
                src,
                dst,
                msg,
                bytes,
            } => {
                hosts_seen.insert(*src);
                out.push(json!({
                    "name": format!("deliver msg {msg}"),
                    "cat": "transport",
                    "ph": "i",
                    "s": "t",
                    "ts": us(*t),
                    "pid": HOST_PID,
                    "tid": src,
                    "args": {"dst": dst, "bytes": bytes},
                }));
            }
            ObsEvent::Retransmit {
                t,
                host,
                msg,
                attempt,
            } => {
                hosts_seen.insert(*host);
                out.push(json!({
                    "name": format!("retransmit msg {msg}"),
                    "cat": "transport",
                    "ph": "i",
                    "s": "t",
                    "ts": us(*t),
                    "pid": HOST_PID,
                    "tid": host,
                    "args": {"attempt": attempt},
                }));
            }
            ObsEvent::MessageLost { t, host, msg } => {
                hosts_seen.insert(*host);
                out.push(json!({
                    "name": format!("LOST msg {msg}"),
                    "cat": "transport",
                    "ph": "i",
                    "s": "t",
                    "ts": us(*t),
                    "pid": HOST_PID,
                    "tid": host,
                }));
            }
            ObsEvent::LinkFail { t, link } => {
                control_seen = true;
                out.push(json!({
                    "name": format!("FAIL {}", link_label(*link)),
                    "cat": "fault",
                    "ph": "i",
                    "s": "g",
                    "ts": us(*t),
                    "pid": CONTROL_PID,
                    "tid": FAULT_TID,
                    "args": {"link": link},
                }));
            }
            ObsEvent::LinkRecover { t, link } => {
                control_seen = true;
                out.push(json!({
                    "name": format!("RECOVER {}", link_label(*link)),
                    "cat": "fault",
                    "ph": "i",
                    "s": "g",
                    "ts": us(*t),
                    "pid": CONTROL_PID,
                    "tid": FAULT_TID,
                    "args": {"link": link},
                }));
            }
            ObsEvent::LinkDegrade {
                t,
                link,
                latency_mult,
                drop_ppm,
            } => {
                control_seen = true;
                let label = if *latency_mult <= 1 && *drop_ppm == 0 {
                    format!("RESTORE {}", link_label(*link))
                } else {
                    format!("DEGRADE {} x{latency_mult}", link_label(*link))
                };
                out.push(json!({
                    "name": label,
                    "cat": "fault",
                    "ph": "i",
                    "s": "g",
                    "ts": us(*t),
                    "pid": CONTROL_PID,
                    "tid": FAULT_TID,
                    "args": {"link": link, "latency_mult": latency_mult, "drop_ppm": drop_ppm},
                }));
            }
            ObsEvent::SweepBegin { .. } => {
                // Rendered from the matching SweepEnd (which carries the
                // report, including the repair lag).
            }
            ObsEvent::SweepEnd { t, report } => {
                control_seen = true;
                let sweep = report.get("sweep").and_then(Value::as_u64).unwrap_or(0);
                // The sweep repairs everything that happened since the
                // oldest unapplied event: draw that whole repair window.
                let age = report
                    .get("oldest_event_age")
                    .and_then(Value::as_u64)
                    .unwrap_or(0);
                out.push(json!({
                    "name": format!("sweep {sweep}"),
                    "cat": "sm",
                    "ph": "X",
                    "ts": us(t.saturating_sub(age)),
                    "dur": us(age.max(1)),
                    "pid": CONTROL_PID,
                    "tid": SM_TID,
                    "args": {"report": report},
                }));
            }
            ObsEvent::RouteDecision { t, node, dst, port } => {
                control_seen = true;
                out.push(json!({
                    "name": format!("route n{node} -> h{dst} via {port}"),
                    "cat": "routing",
                    "ph": "i",
                    "s": "t",
                    "ts": us(*t),
                    "pid": CONTROL_PID,
                    "tid": SM_TID,
                }));
            }
            ObsEvent::SpanBegin {
                t,
                span,
                parent,
                name,
                clock,
                attrs,
            } => {
                open_spans.insert(
                    *span,
                    OpenSpan {
                        t: *t,
                        parent: *parent,
                        name: name.clone(),
                        clock: *clock,
                        attrs: attrs.clone(),
                    },
                );
            }
            ObsEvent::SpanEnd { t, span, attrs } => {
                // An end whose begin was evicted from the ring is dropped:
                // without the begin there is no name, clock or start time.
                if let Some(begin) = open_spans.remove(span) {
                    out.push(emit_span(
                        *span,
                        begin,
                        *t,
                        attrs.clone(),
                        &mut sim_tracks,
                        &mut wall_tracks,
                    ));
                }
            }
            ObsEvent::Custom { t, name, data } => {
                control_seen = true;
                out.push(json!({
                    "name": name,
                    "cat": "custom",
                    "ph": "i",
                    "s": "g",
                    "ts": us(*t),
                    "pid": CONTROL_PID,
                    "tid": FAULT_TID,
                    "args": {"data": data},
                }));
            }
        }
    }

    // Spans still open when the stream ends (in-flight messages, a
    // truncated recording) are closed at the window's end so they stay
    // visible instead of vanishing.
    for (id, begin) in std::mem::take(&mut open_spans) {
        let end_t = match begin.clock {
            SpanClock::Sim => max_sim_t.max(begin.t),
            SpanClock::Wall => max_wall_t.max(begin.t),
        };
        let mut end_attrs = BTreeMap::new();
        end_attrs.insert("incomplete".to_string(), Value::from(true));
        out.push(emit_span(
            id,
            begin,
            end_t,
            end_attrs,
            &mut sim_tracks,
            &mut wall_tracks,
        ));
    }

    // Metadata: process and thread names for every track actually used.
    let mut meta: Vec<Value> = Vec::new();
    let process_name = |pid: u64, name: &str| json!({"name": "process_name", "ph": "M", "pid": pid, "args": {"name": name}});
    let thread_name = |pid: u64, tid: u64, name: String| json!({"name": "thread_name", "ph": "M", "pid": pid, "tid": tid, "args": {"name": name}});
    if !channels_seen.is_empty() {
        meta.push(process_name(FABRIC_PID, "fabric channels"));
        for &ch in &channels_seen {
            meta.push(thread_name(FABRIC_PID, ch as u64, channel_label(ch)));
        }
    }
    if control_seen {
        meta.push(process_name(CONTROL_PID, "control plane"));
        meta.push(thread_name(
            CONTROL_PID,
            SM_TID,
            "subnet manager".to_string(),
        ));
        meta.push(thread_name(CONTROL_PID, FAULT_TID, "faults".to_string()));
    }
    if !hosts_seen.is_empty() {
        meta.push(process_name(HOST_PID, "hosts"));
        for &h in &hosts_seen {
            meta.push(thread_name(HOST_PID, h as u64, format!("host {h}")));
        }
    }
    if !sim_tracks.is_empty() {
        meta.push(process_name(SPAN_SIM_PID, "spans (sim)"));
        for &tid in &sim_tracks {
            meta.push(thread_name(SPAN_SIM_PID, tid, format!("host {tid}")));
        }
    }
    if !wall_tracks.is_empty() {
        meta.push(process_name(SPAN_WALL_PID, "spans (wall)"));
        for &tid in &wall_tracks {
            meta.push(thread_name(SPAN_WALL_PID, tid, format!("thread {tid}")));
        }
    }
    meta.extend(out);

    json!({
        "traceEvents": meta,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "ftree-obs"},
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn label(prefix: &'static str) -> impl Fn(u32) -> String {
        move |i| format!("{prefix}{i}")
    }

    #[test]
    fn trace_has_spans_instants_and_metadata() {
        let events = vec![
            ObsEvent::ChannelBusy {
                t: 1_000_000,
                ch: 4,
                dur: 500_000,
                bytes: 2048,
            },
            ObsEvent::PacketDrop {
                t: 2_000_000,
                ch: 4,
                src: 0,
                dst: 9,
                msg: 0,
                attempt: 0,
            },
            ObsEvent::LinkFail {
                t: 2_000_000,
                link: 2,
            },
            ObsEvent::SweepEnd {
                t: 7_000_000,
                report: serde_json::json!({"sweep": 0, "oldest_event_age": 5_000_000u64}),
            },
            ObsEvent::Delivery {
                t: 8_000_000,
                src: 0,
                dst: 9,
                msg: 1,
                bytes: 4096,
            },
        ];
        let trace = chrome_trace(&events, label("ch"), label("link"));
        let evs = trace["traceEvents"].as_array().unwrap();
        // 5 renderable events + metadata (2 process names for fabric/control
        // + 1 host process + channel/sm/fault/host thread names).
        assert!(evs.len() > 5);
        let span = evs
            .iter()
            .find(|e| e["ph"] == "X" && e["cat"] == "channel")
            .expect("channel span present");
        assert_eq!(span["ts"].as_f64().unwrap(), 1.0);
        assert_eq!(span["dur"].as_f64().unwrap(), 0.5);
        let sweep = evs
            .iter()
            .find(|e| e["cat"] == "sm")
            .expect("sweep span present");
        // Repair window: [7us - 5us, 7us].
        assert_eq!(sweep["ts"].as_f64().unwrap(), 2.0);
        assert_eq!(sweep["dur"].as_f64().unwrap(), 5.0);
        assert!(evs
            .iter()
            .any(|e| e["ph"] == "M" && e["args"]["name"] == "ch4"));
        assert!(evs.iter().any(|e| e["ph"] == "i" && e["cat"] == "fault"));
    }

    #[test]
    fn sweep_begin_is_folded_into_end() {
        let events = vec![
            ObsEvent::SweepBegin { t: 5, sweep: 0 },
            ObsEvent::SweepEnd {
                t: 5,
                report: serde_json::json!({"sweep": 0}),
            },
        ];
        let trace = chrome_trace(&events, label("ch"), label("l"));
        let evs = trace["traceEvents"].as_array().unwrap();
        assert_eq!(evs.iter().filter(|e| e["cat"] == "sm").count(), 1);
    }

    #[test]
    fn span_pairs_become_nested_duration_events() {
        let mut begin_attrs = BTreeMap::new();
        begin_attrs.insert("src".to_string(), Value::from(3u64));
        let mut end_attrs = BTreeMap::new();
        end_attrs.insert("outcome".to_string(), Value::from("delivered"));
        let events = vec![
            ObsEvent::SpanBegin {
                t: 1_000_000,
                span: 1,
                parent: 0,
                name: "message".into(),
                clock: SpanClock::Sim,
                attrs: begin_attrs,
            },
            ObsEvent::SpanBegin {
                t: 500, // wall ns
                span: 2,
                parent: 1,
                name: "sm::sweep".into(),
                clock: SpanClock::Wall,
                attrs: BTreeMap::new(),
            },
            ObsEvent::SpanEnd {
                t: 2_500, // wall ns
                span: 2,
                attrs: BTreeMap::new(),
            },
            ObsEvent::SpanEnd {
                t: 3_000_000,
                span: 1,
                attrs: end_attrs,
            },
        ];
        let trace = chrome_trace(&events, label("ch"), label("l"));
        let evs = trace["traceEvents"].as_array().unwrap();
        let msg = evs
            .iter()
            .find(|e| e["name"] == "message")
            .expect("sim span rendered");
        assert_eq!(msg["ph"], "X");
        assert_eq!(msg["pid"].as_u64().unwrap(), SPAN_SIM_PID);
        assert_eq!(msg["tid"].as_u64().unwrap(), 3); // from the src attr
        assert_eq!(msg["ts"].as_f64().unwrap(), 1.0); // 1e6 ps = 1 µs
        assert_eq!(msg["dur"].as_f64().unwrap(), 2.0);
        assert_eq!(msg["args"]["outcome"], "delivered");
        let sweep = evs
            .iter()
            .find(|e| e["name"] == "sm::sweep")
            .expect("wall span rendered");
        assert_eq!(sweep["pid"].as_u64().unwrap(), SPAN_WALL_PID);
        assert_eq!(sweep["ts"].as_f64().unwrap(), 0.5); // 500 ns = 0.5 µs
        assert_eq!(sweep["dur"].as_f64().unwrap(), 2.0);
        assert_eq!(sweep["args"]["parent"].as_u64().unwrap(), 1);
        // Track metadata for both span processes.
        assert!(evs
            .iter()
            .any(|e| e["ph"] == "M" && e["args"]["name"] == "spans (sim)"));
        assert!(evs
            .iter()
            .any(|e| e["ph"] == "M" && e["args"]["name"] == "spans (wall)"));
    }

    #[test]
    fn unmatched_span_begin_is_closed_at_window_end() {
        let events = vec![
            ObsEvent::SpanBegin {
                t: 100,
                span: 9,
                parent: 0,
                name: "in_flight".into(),
                clock: SpanClock::Sim,
                attrs: BTreeMap::new(),
            },
            ObsEvent::Delivery {
                t: 5_000,
                src: 0,
                dst: 1,
                msg: 0,
                bytes: 64,
            },
        ];
        let trace = chrome_trace(&events, label("ch"), label("l"));
        let evs = trace["traceEvents"].as_array().unwrap();
        let span = evs.iter().find(|e| e["name"] == "in_flight").unwrap();
        assert_eq!(span["args"]["incomplete"], true);
        // Closed at the last sim timestamp seen (5000 ps).
        let end = span["ts"].as_f64().unwrap() + span["dur"].as_f64().unwrap();
        assert!((end - 0.005).abs() < 1e-12, "end = {end}");
        // An end without a begin is dropped, not rendered.
        let orphan = vec![ObsEvent::SpanEnd {
            t: 1,
            span: 77,
            attrs: BTreeMap::new(),
        }];
        let trace = chrome_trace(&orphan, label("ch"), label("l"));
        assert_eq!(trace["traceEvents"].as_array().unwrap().len(), 0);
    }

    #[test]
    fn empty_events_give_empty_trace() {
        let trace = chrome_trace(&[], label("c"), label("l"));
        assert_eq!(trace["traceEvents"].as_array().unwrap().len(), 0);
        assert_eq!(trace["displayTimeUnit"], "ms");
    }
}
