//! Structured observability events and the bounded flight recorder.
//!
//! Every event carries its **simulation** timestamp `t` (picoseconds), so a
//! recorded stream is exactly as reproducible as the run that produced it.
//! Wall-clock measurements (phase timers) deliberately live outside this
//! ring — see `crate::phase`.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// Clock domain of a span's timestamps.
///
/// Simulation-time spans are deterministic and safe for byte-stable golden
/// streams; wall-clock spans (control-plane work like sweeps and repairs)
/// carry nanoseconds since the owning recorder was created.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum SpanClock {
    /// Simulation time, picoseconds.
    Sim,
    /// Wall time, nanoseconds since the recorder's creation.
    Wall,
}

/// One structured observability event.
///
/// Serialized NDJSON lines are tagged with `"ev"`, e.g.
/// `{"ev":"packet_drop","t":1234,"ch":7,...}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "ev", rename_all = "snake_case")]
pub enum ObsEvent {
    /// A directed channel serialized one packet: busy `[t, t + dur)`.
    ChannelBusy {
        /// Start of the serialization, ps.
        t: u64,
        /// Directed channel index.
        ch: u32,
        /// Serialization time, ps.
        dur: u64,
        /// Packet payload bytes.
        bytes: u64,
    },
    /// A packet was lost (dead cable or cleared LFT entry).
    PacketDrop {
        /// Simulation time, ps.
        t: u64,
        /// Directed channel at whose far end (or head) the packet died.
        ch: u32,
        /// Source host of the packet's message.
        src: u32,
        /// Destination host.
        dst: u32,
        /// Per-source message index.
        msg: u32,
        /// Send attempt the packet belonged to (0 = first).
        attempt: u32,
    },
    /// A message was delivered completely.
    Delivery {
        /// Simulation time, ps.
        t: u64,
        /// Source host.
        src: u32,
        /// Destination host.
        dst: u32,
        /// Per-source message index.
        msg: u32,
        /// Message payload bytes.
        bytes: u64,
    },
    /// A host started retransmitting a timed-out message.
    Retransmit {
        /// Simulation time, ps.
        t: u64,
        /// The retransmitting host.
        host: u32,
        /// Per-source message index.
        msg: u32,
        /// The new attempt number (1 = first retransmission).
        attempt: u32,
    },
    /// A message was abandoned after exhausting its retransmission budget.
    MessageLost {
        /// Simulation time, ps.
        t: u64,
        /// The sending host.
        host: u32,
        /// Per-source message index.
        msg: u32,
    },
    /// A physical cable died.
    LinkFail {
        /// Simulation time, ps.
        t: u64,
        /// Physical link index.
        link: u32,
    },
    /// A physical cable came back.
    LinkRecover {
        /// Simulation time, ps.
        t: u64,
        /// Physical link index.
        link: u32,
    },
    /// A cable's degradation state changed (still alive, but slower and/or
    /// lossy; `latency_mult == 1 && drop_ppm == 0` means restored).
    LinkDegrade {
        /// Simulation time, ps.
        t: u64,
        /// Physical link index.
        link: u32,
        /// Serialization-time multiplier from this instant on.
        latency_mult: u32,
        /// Drop probability in parts per million from this instant on.
        drop_ppm: u32,
    },
    /// A subnet-manager sweep is starting.
    SweepBegin {
        /// Simulation time, ps.
        t: u64,
        /// Sweep ordinal (0 for the first sweep).
        sweep: usize,
    },
    /// A subnet-manager sweep finished; `report` is the serialized
    /// `ftree_core::SweepReport`.
    SweepEnd {
        /// Simulation time, ps.
        t: u64,
        /// The sweep's health report as JSON.
        report: serde_json::Value,
    },
    /// A forwarding decision was consulted (only recorded when
    /// [`crate::Recorder::set_route_events`] enabled it — this is the
    /// highest-volume event kind).
    RouteDecision {
        /// Simulation time, ps.
        t: u64,
        /// Node making the decision.
        node: u32,
        /// Destination host.
        dst: u32,
        /// Chosen egress port, e.g. `"Up(3)"`.
        port: String,
    },
    /// A traced span opened (see [`crate::span`]). Paired with the
    /// [`ObsEvent::SpanEnd`] carrying the same `span` id; `parent` links
    /// nested spans (0 = root).
    SpanBegin {
        /// Start timestamp in the span's clock domain (ps for
        /// [`SpanClock::Sim`], ns for [`SpanClock::Wall`]).
        t: u64,
        /// Unique span id within the recorder (ids start at 1).
        span: u64,
        /// Enclosing span's id, 0 when the span is a root.
        #[serde(default)]
        parent: u64,
        /// Span name, e.g. `"sm::sweep"` or `"message"`.
        name: String,
        /// Which clock `t` (and the matching end's `t`) was read from.
        clock: SpanClock,
        /// Structured key-value attributes known at open time.
        #[serde(default)]
        attrs: BTreeMap<String, serde_json::Value>,
    },
    /// A traced span closed.
    SpanEnd {
        /// End timestamp in the clock domain declared by the matching
        /// [`ObsEvent::SpanBegin`].
        t: u64,
        /// The span id being closed.
        span: u64,
        /// Attributes only known at close time (merged with the open
        /// attributes by exporters; close wins on key collision).
        #[serde(default)]
        attrs: BTreeMap<String, serde_json::Value>,
    },
    /// Free-form event for callers outside the fixed taxonomy.
    Custom {
        /// Simulation time, ps (0 when not applicable).
        t: u64,
        /// Event name.
        name: String,
        /// Arbitrary payload.
        data: serde_json::Value,
    },
}

impl ObsEvent {
    /// The event's simulation timestamp.
    pub fn time(&self) -> u64 {
        match self {
            ObsEvent::ChannelBusy { t, .. }
            | ObsEvent::PacketDrop { t, .. }
            | ObsEvent::Delivery { t, .. }
            | ObsEvent::Retransmit { t, .. }
            | ObsEvent::MessageLost { t, .. }
            | ObsEvent::LinkFail { t, .. }
            | ObsEvent::LinkRecover { t, .. }
            | ObsEvent::LinkDegrade { t, .. }
            | ObsEvent::SweepBegin { t, .. }
            | ObsEvent::SweepEnd { t, .. }
            | ObsEvent::RouteDecision { t, .. }
            | ObsEvent::SpanBegin { t, .. }
            | ObsEvent::SpanEnd { t, .. }
            | ObsEvent::Custom { t, .. } => *t,
        }
    }
}

struct Ring {
    events: VecDeque<ObsEvent>,
    dropped: u64,
}

/// Bounded ring buffer of [`ObsEvent`]s: when full, the **oldest** events
/// are discarded (and counted), so the most recent history always survives.
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<Ring>,
}

impl FlightRecorder {
    /// Recorder holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            ring: Mutex::new(Ring {
                events: VecDeque::new(),
                dropped: 0,
            }),
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends an event, evicting the oldest when full.
    pub fn record(&self, ev: ObsEvent) {
        let mut ring = self.ring.lock().unwrap();
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(ev);
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().events.len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().unwrap().dropped
    }

    /// Copies out the retained events, oldest first.
    pub fn events(&self) -> Vec<ObsEvent> {
        self.ring.lock().unwrap().events.iter().cloned().collect()
    }

    /// Discards all retained events (the drop counter is kept).
    pub fn clear(&self) {
        self.ring.lock().unwrap().events.clear();
    }

    /// Renders the retained events as NDJSON: one JSON object per line,
    /// oldest first, trailing newline after every line.
    pub fn to_ndjson(&self) -> String {
        let ring = self.ring.lock().unwrap();
        let mut out = String::new();
        for ev in &ring.events {
            out.push_str(&serde_json::to_string(ev).expect("ObsEvent serializes"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.record(ObsEvent::LinkFail { t: i, link: 0 });
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 2);
        let times: Vec<u64> = fr.events().iter().map(|e| e.time()).collect();
        assert_eq!(times, vec![2, 3, 4]);
    }

    #[test]
    fn ndjson_round_trips() {
        let fr = FlightRecorder::new(16);
        fr.record(ObsEvent::ChannelBusy {
            t: 1,
            ch: 2,
            dur: 3,
            bytes: 4,
        });
        fr.record(ObsEvent::SweepEnd {
            t: 9,
            report: serde_json::json!({"sweep": 0, "links_changed": 1}),
        });
        let ndjson = fr.to_ndjson();
        let lines: Vec<&str> = ndjson.lines().collect();
        assert_eq!(lines.len(), 2);
        let back: ObsEvent = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(back, fr.events()[0]);
        let back2: ObsEvent = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(back2, fr.events()[1]);
    }

    #[test]
    fn tag_is_snake_case() {
        let ev = ObsEvent::PacketDrop {
            t: 0,
            ch: 1,
            src: 2,
            dst: 3,
            msg: 4,
            attempt: 0,
        };
        let s = serde_json::to_string(&ev).unwrap();
        assert!(s.contains("\"ev\":\"packet_drop\""), "{s}");
    }

    #[test]
    fn clear_keeps_drop_count() {
        let fr = FlightRecorder::new(1);
        fr.record(ObsEvent::LinkFail { t: 0, link: 0 });
        fr.record(ObsEvent::LinkFail { t: 1, link: 0 });
        assert_eq!(fr.dropped(), 1);
        fr.clear();
        assert!(fr.is_empty());
        assert_eq!(fr.dropped(), 1);
    }
}
