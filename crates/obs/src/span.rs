//! Deterministic span tracing: `SpanId`s, parent links and RAII guards.
//!
//! Spans come in two clock domains (see [`SpanClock`]):
//!
//! * **Sim-time spans** are opened and closed explicitly with
//!   [`Recorder::span_begin_at`] / [`Recorder::span_end_at`], because
//!   simulated lifetimes (message lifecycles, stage windows) overlap freely
//!   and do not nest lexically. Their timestamps are simulation picoseconds,
//!   so a recorded stream stays byte-reproducible.
//! * **Wall-clock spans** are RAII [`SpanGuard`]s from
//!   [`Recorder::wall_span`] (or [`wall_span_global`]): the guard opens the
//!   span on construction and closes it on drop, and a thread-local stack
//!   supplies the parent link, so control-plane call trees (sweep → repair)
//!   nest without any plumbing. Each completed guard also folds into the
//!   recorder's per-phase wall-time aggregate, so `phase_report()` keeps
//!   working unchanged.
//!
//! Both kinds emit [`ObsEvent::SpanBegin`] / [`ObsEvent::SpanEnd`] pairs
//! into the flight recorder; [`crate::chrome_trace`] stitches them back
//! into nested duration events.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use serde_json::Value;

use crate::events::{ObsEvent, SpanClock};
use crate::recorder::Recorder;

/// Identifier of one span. Ids are unique per [`Recorder`] and start at 1;
/// [`SpanId::NONE`] (0) means "no span" and is used for root parents.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The absent span (parent of root spans).
    pub const NONE: SpanId = SpanId(0);

    /// True for [`SpanId::NONE`].
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// Structured span attributes: deterministic key order (BTreeMap) so the
/// serialized stream is stable.
pub type SpanAttrs = BTreeMap<String, Value>;

thread_local! {
    /// Stack of currently open wall-clock span ids on this thread; the top
    /// is the implicit parent for the next wall span.
    static WALL_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// Small per-thread ordinal used as the trace track id for wall spans.
    static WALL_TID: u64 = NEXT_WALL_TID.fetch_add(1, Ordering::Relaxed);
}

static NEXT_WALL_TID: AtomicU64 = AtomicU64::new(0);

fn wall_tid() -> u64 {
    WALL_TID.with(|t| *t)
}

fn wall_parent() -> u64 {
    WALL_STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

/// RAII wall-clock span: opens on construction, closes on drop. Obtained
/// from [`Recorder::wall_span`] or [`wall_span_global`]; a guard built
/// against no recorder is a free no-op.
#[must_use = "a SpanGuard traces until it is dropped; bind it to a variable"]
pub struct SpanGuard {
    rec: Option<Arc<Recorder>>,
    id: u64,
    name: &'static str,
    start: Option<Instant>,
    attrs: SpanAttrs,
}

impl SpanGuard {
    pub(crate) fn begin(rec: Option<Arc<Recorder>>, name: &'static str) -> Self {
        let Some(rec) = rec else {
            return Self::noop();
        };
        let id = rec.alloc_span_id();
        let parent = wall_parent();
        WALL_STACK.with(|s| s.borrow_mut().push(id));
        let mut attrs = SpanAttrs::new();
        attrs.insert("tid".to_string(), Value::from(wall_tid()));
        rec.record(ObsEvent::SpanBegin {
            t: rec.wall_now_ns(),
            span: id,
            parent,
            name: name.to_string(),
            clock: SpanClock::Wall,
            attrs,
        });
        Self {
            rec: Some(rec),
            id,
            name,
            start: Some(Instant::now()),
            attrs: SpanAttrs::new(),
        }
    }

    /// A guard that records nothing (used when no recorder is installed).
    pub fn noop() -> Self {
        Self {
            rec: None,
            id: 0,
            name: "",
            start: None,
            attrs: SpanAttrs::new(),
        }
    }

    /// This span's id (NONE for a no-op guard) — usable as an explicit
    /// parent for sim-time spans.
    pub fn id(&self) -> SpanId {
        SpanId(self.id)
    }

    /// Attaches a key-value attribute, emitted with the span's close event
    /// (values discovered during the traced work, e.g. repair entry counts).
    pub fn attr(&mut self, key: &str, value: impl Into<Value>) -> &mut Self {
        if self.rec.is_some() {
            self.attrs.insert(key.to_string(), value.into());
        }
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(rec) = self.rec.take() else { return };
        WALL_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Guards drop in LIFO order per thread, so the top is this span.
            if s.last() == Some(&self.id) {
                s.pop();
            } else {
                // Out-of-order drop (moved guard): remove wherever it is.
                s.retain(|&x| x != self.id);
            }
        });
        rec.record(ObsEvent::SpanEnd {
            t: rec.wall_now_ns(),
            span: self.id,
            attrs: std::mem::take(&mut self.attrs),
        });
        if let Some(start) = self.start {
            rec.record_phase(self.name, start.elapsed());
        }
    }
}

/// Wall-clock span against the process-global recorder (no-op when none is
/// installed) — the zero-plumbing entry point used inside `ftree-core`.
pub fn wall_span_global(name: &'static str) -> SpanGuard {
    SpanGuard::begin(crate::global(), name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_spans_nest_via_thread_stack() {
        let rec = Arc::new(Recorder::new());
        {
            let outer = rec.wall_span("outer");
            let outer_id = outer.id();
            {
                let mut inner = rec.wall_span("inner");
                inner.attr("k", 7);
                assert_ne!(inner.id(), outer_id);
            }
            let _ = outer_id;
        }
        let evs = rec.events();
        assert_eq!(evs.len(), 4);
        let (outer_id, inner_parent) = match (&evs[0], &evs[1]) {
            (
                ObsEvent::SpanBegin { span, parent, .. },
                ObsEvent::SpanBegin {
                    parent: inner_parent,
                    ..
                },
            ) => {
                assert_eq!(*parent, 0);
                (*span, *inner_parent)
            }
            other => panic!("unexpected head events: {other:?}"),
        };
        assert_eq!(inner_parent, outer_id, "inner span links to outer");
        match &evs[2] {
            ObsEvent::SpanEnd { attrs, .. } => {
                assert_eq!(attrs["k"], Value::from(7));
            }
            other => panic!("expected inner end, got {other:?}"),
        }
        // Completed guards also feed the phase aggregate.
        let phases = rec.phase_report();
        assert!(phases.iter().any(|p| p.name == "outer" && p.calls == 1));
        assert!(phases.iter().any(|p| p.name == "inner" && p.calls == 1));
    }

    #[test]
    fn sim_spans_are_explicit_and_deterministic() {
        let rec = Recorder::new();
        let mut attrs = SpanAttrs::new();
        attrs.insert("src".into(), Value::from(3));
        let id = rec.span_begin_at(100, "message", SpanId::NONE, attrs);
        let child = rec.span_begin_at(150, "attempt", id, SpanAttrs::new());
        rec.span_end_at(180, child);
        rec.span_end_at(200, id);
        let nd = rec.events_ndjson();
        let lines: Vec<&str> = nd.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(
            lines[0].contains("\"clock\":\"sim\""),
            "sim clock tag: {}",
            lines[0]
        );
        assert!(lines[1].contains(&format!("\"parent\":{}", id.0)));
    }

    #[test]
    fn noop_guard_records_nothing() {
        let rec = Arc::new(Recorder::new());
        {
            let mut g = SpanGuard::noop();
            g.attr("ignored", 1);
            assert!(g.id().is_none());
        }
        assert!(rec.events().is_empty());
        // Global not installed: the global helper is also a no-op.
        crate::uninstall();
        let g = wall_span_global("nothing");
        assert!(g.id().is_none());
    }

    #[test]
    fn span_attr_escaping_survives_ndjson() {
        let rec = Recorder::new();
        let mut attrs = SpanAttrs::new();
        attrs.insert(
            "note".into(),
            Value::from("quote \" backslash \\ newline \n tab \t"),
        );
        attrs.insert("weird\"key".into(), Value::from(1));
        let id = rec.span_begin_at(0, "esc \"name\"\n", SpanId::NONE, attrs);
        rec.span_end_at(1, id);
        let nd = rec.events_ndjson();
        // Every event stays on exactly one line despite embedded newlines.
        assert_eq!(nd.lines().count(), 2);
        let back: ObsEvent = serde_json::from_str(nd.lines().next().unwrap()).unwrap();
        match back {
            ObsEvent::SpanBegin { name, attrs, .. } => {
                assert_eq!(name, "esc \"name\"\n");
                assert_eq!(
                    attrs["note"],
                    Value::from("quote \" backslash \\ newline \n tab \t")
                );
                assert_eq!(attrs["weird\"key"], Value::from(1));
            }
            other => panic!("expected SpanBegin, got {other:?}"),
        }
    }
}
