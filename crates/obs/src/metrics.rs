//! Named counters, gauges and histograms with atomic updates.
//!
//! The [`Registry`] hands out `Arc`s to metric cells: looking a name up
//! takes a short read lock (a write lock only the first time a name is
//! seen); every update after that is a relaxed atomic operation on the
//! cell itself, so hot paths can cache the `Arc` and never touch the map
//! again.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use serde::{Deserialize, Serialize};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `v` (may be negative).
    #[inline]
    pub fn add(&self, v: i64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two buckets: bucket `i` counts values whose bit
/// length is `i` (bucket 0 holds exactly the value 0, bucket 64 holds
/// values `>= 2^63`).
const BUCKETS: usize = 65;

/// A lock-free histogram over `u64` values with power-of-two buckets plus
/// exact count/sum/min/max.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        let idx = (u64::BITS - v.leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy of the current state (buckets are read
    /// without a global lock, so a snapshot racing a `record` may be off by
    /// one in-flight observation — fine for reporting).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                // Upper bound of bucket i: largest value with bit length i.
                let upper = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                buckets.push((upper, c));
            }
        }
        let mut snap = HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            p50: 0,
            p95: 0,
            p99: 0,
            buckets,
        };
        snap.p50 = snap.quantile(0.50);
        snap.p95 = snap.quantile(0.95);
        snap.p99 = snap.quantile(0.99);
        snap
    }
}

/// Serializable copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// Median estimate (see [`HistogramSnapshot::quantile`]).
    #[serde(default)]
    pub p50: u64,
    /// 95th-percentile estimate.
    #[serde(default)]
    pub p95: u64,
    /// 99th-percentile estimate.
    #[serde(default)]
    pub p99: u64,
    /// Non-empty power-of-two buckets as `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile estimate for `q in [0, 1]`: the inclusive upper bound of
    /// the bucket holding the `ceil(q·count)`-th smallest observation,
    /// clamped into the exact `[min, max]` range. An upper-bound estimate
    /// (never below the true quantile within the tracked resolution);
    /// deterministic and integer so snapshots stay `Eq`-comparable.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(upper, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// A name-indexed collection of metric cells.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

fn get_or_insert<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(cell) = map.read().unwrap().get(name) {
        return cell.clone();
    }
    map.write()
        .unwrap()
        .entry(name.to_string())
        .or_default()
        .clone()
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name)
    }

    /// Serializable copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Serializable copy of a whole [`Registry`], sorted by name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        reg.counter("a").inc();
        reg.counter("a").add(4);
        reg.gauge("g").set(-7);
        assert_eq!(reg.counter("a").get(), 5);
        assert_eq!(reg.gauge("g").get(), -7);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["a"], 5);
        assert_eq!(snap.gauges["g"], -7);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let h = Histogram::default();
        for v in [0u64, 1, 1, 3, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1005);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        // 0 -> bucket 0 (upper 0); 1,1 -> bucket 1 (upper 1); 3 -> bucket 2
        // (upper 3); 1000 -> bucket 10 (upper 1023).
        assert_eq!(s.buckets, vec![(0, 1), (1, 2), (3, 1), (1023, 1)]);
        assert!((s.mean() - 201.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_snapshot() {
        let h = Histogram::default();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert!(s.buckets.is_empty());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn quantiles_walk_buckets_and_clamp_to_range() {
        let h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // Median rank 50 → bucket upper 63; p95 rank 95 and p99 rank 99 →
        // bucket upper 127, clamped to the exact max 100.
        assert_eq!(s.p50, 63);
        assert_eq!(s.p95, 100);
        assert_eq!(s.p99, 100);
        assert_eq!(s.quantile(0.0), 1); // clamped up to min
        assert_eq!(s.quantile(1.0), 100);
    }

    #[test]
    fn quantiles_of_constant_distribution_are_exact() {
        let h = Histogram::default();
        for _ in 0..10 {
            h.record(42);
        }
        let s = h.snapshot();
        assert_eq!((s.p50, s.p95, s.p99), (42, 42, 42));
        let empty = Histogram::default().snapshot();
        assert_eq!((empty.p50, empty.p95, empty.p99), (0, 0, 0));
    }

    #[test]
    fn registry_cells_are_shared() {
        let reg = Registry::new();
        let a = reg.counter("shared");
        let b = reg.counter("shared");
        a.inc();
        b.inc();
        assert_eq!(reg.counter("shared").get(), 2);
    }

    #[test]
    fn snapshot_serializes() {
        let reg = Registry::new();
        reg.counter("c").inc();
        reg.histogram("h").record(42);
        let json = serde_json::to_string(&reg.snapshot()).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, reg.snapshot());
    }
}
