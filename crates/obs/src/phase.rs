//! RAII wall-clock phase timers.
//!
//! An [`ObsPhase`] measures the wall time between its construction and its
//! drop and folds it into the owning [`crate::Recorder`]'s per-phase
//! aggregate. Phase durations are *wall clock* — the one non-deterministic
//! quantity in the crate — which is why they are aggregated separately and
//! never enter the flight-recorder event ring (whose NDJSON export must be
//! byte-stable for reproducible runs).

use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::recorder::Recorder;

/// RAII span: times from construction to drop, reporting into a
/// [`Recorder`]. Constructing one against `None` costs a branch and skips
/// even the clock read.
#[must_use = "an ObsPhase measures until it is dropped; bind it to a variable"]
pub struct ObsPhase {
    rec: Option<Arc<Recorder>>,
    name: &'static str,
    start: Option<Instant>,
}

impl ObsPhase {
    /// Starts a phase reporting into `rec` (no-op when `None`).
    pub fn new(rec: Option<Arc<Recorder>>, name: &'static str) -> Self {
        let start = rec.as_ref().map(|_| Instant::now());
        Self { rec, name, start }
    }

    /// Starts a phase reporting into the process-global recorder (no-op
    /// when none is installed — see [`crate::install`]).
    pub fn global(name: &'static str) -> Self {
        Self::new(crate::global(), name)
    }
}

impl Drop for ObsPhase {
    fn drop(&mut self) {
        if let (Some(rec), Some(start)) = (&self.rec, self.start) {
            rec.record_phase(self.name, start.elapsed());
        }
    }
}

/// Aggregated wall time of one named phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSummary {
    /// Phase name.
    pub name: String,
    /// Number of completed spans.
    pub calls: u64,
    /// Total wall time across all spans, milliseconds.
    pub total_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_records_into_recorder() {
        let rec = Arc::new(Recorder::new());
        {
            let _p = ObsPhase::new(Some(rec.clone()), "unit::phase");
        }
        {
            let _p = ObsPhase::new(Some(rec.clone()), "unit::phase");
        }
        let report = rec.phase_report();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].name, "unit::phase");
        assert_eq!(report[0].calls, 2);
        assert!(report[0].total_ms >= 0.0);
    }

    #[test]
    fn none_recorder_is_a_noop() {
        let p = ObsPhase::new(None, "nothing");
        assert!(p.start.is_none());
        drop(p);
    }
}
