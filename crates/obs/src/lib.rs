//! # ftree-obs — unified instrumentation layer
//!
//! Observability substrate for the whole workspace: the paper's argument is
//! about *seeing* where flows land (per-link Hot-Spot Degree, per-stage
//! contention, per-sweep repair cost), so every subsystem that routes or
//! simulates traffic can record what it did through this crate.
//!
//! Three complementary mechanisms, all optional and all zero-overhead when
//! no recorder is installed:
//!
//! * [`Registry`] — named [`Counter`]s, [`Gauge`]s and [`Histogram`]s with
//!   lock-free updates (registration takes a short lock once per name; every
//!   subsequent update is a relaxed atomic). Snapshots serialize to JSON.
//! * [`FlightRecorder`] — a bounded ring buffer of structured [`ObsEvent`]s
//!   (channel busy spans, packet drops, deliveries, retransmissions,
//!   link fail/recover, subnet-manager sweeps). When full, the oldest
//!   events are discarded — like an aircraft flight recorder, the most
//!   recent history survives. Exports as NDJSON (one JSON object per line).
//! * [`chrome_trace`] — renders recorded events as Chrome trace-event JSON
//!   loadable in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev):
//!   one track per directed channel plus control-plane (subnet manager,
//!   faults), per-host transport and nested span tracks.
//!
//! Two higher-level layers build on the ring:
//!
//! * [`span`] — `SpanId`-linked begin/end pairs with parent links and
//!   structured attributes: explicit sim-time spans for overlapping
//!   simulated lifetimes (message lifecycles) and RAII wall-clock
//!   [`SpanGuard`]s for control-plane call trees (sweep → repair), stitched
//!   into nested duration events by the trace exporter.
//! * [`timeseries`] — [`ChannelTimeSeries`], a bounded per-channel
//!   time-bucketed reservoir of utilization / queue-depth / drop signals
//!   that coarsens its bucket width instead of growing without bound.
//!
//! [`Recorder`] bundles all three plus [`ObsPhase`] RAII wall-clock phase
//! timers. Producers take an `Option<Arc<Recorder>>` (explicit plumbing,
//! used by the simulator) or consult the process-global recorder installed
//! with [`install`] (used by phase timers inside `ftree-core`, so free
//! functions like `route_dmodk` need no signature change).
//!
//! ## Overhead contract
//!
//! With no recorder attached and none installed globally, the only cost at
//! an instrumentation point is a `None` check (plus one `RwLock` read for
//! global lookups, which sit outside packet-level hot loops). Event
//! timestamps are simulation time, so recorded streams are bit-reproducible;
//! wall-clock enters only through phase timers, which are kept out of the
//! event ring for exactly that reason.
//!
//! ```
//! use std::sync::Arc;
//! use ftree_obs::{ObsEvent, Recorder};
//!
//! let rec = Arc::new(Recorder::new());
//! rec.counter("demo.widgets").add(3);
//! rec.record(ObsEvent::ChannelBusy { t: 10, ch: 0, dur: 512, bytes: 2048 });
//! assert_eq!(rec.events().len(), 1);
//! let ndjson = rec.events_ndjson();
//! assert!(ndjson.starts_with("{\"ev\":\"channel_busy\""));
//! ```

#![warn(missing_docs)]

pub mod events;
pub mod metrics;
pub mod phase;
pub mod recorder;
pub mod span;
pub mod timeseries;
pub mod trace;

pub use events::{FlightRecorder, ObsEvent, SpanClock};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use phase::{ObsPhase, PhaseSummary};
pub use recorder::{global, install, uninstall, with_scoped, Recorder};
pub use span::{wall_span_global, SpanAttrs, SpanGuard, SpanId};
pub use timeseries::{ChannelLane, ChannelTimeSeries, TimeSeriesConfig};
pub use trace::chrome_trace;
