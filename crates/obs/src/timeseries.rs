//! Per-channel time-bucketed telemetry with a bounded-memory reservoir.
//!
//! [`ChannelTimeSeries`] accumulates, per directed channel and per
//! fixed-width time bucket, three signals from the packet simulator:
//!
//! * **busy picoseconds** — how long the channel was serializing packets
//!   inside the bucket (a busy span crossing a bucket edge is split by
//!   exact overlap, so utilization never exceeds 1.0),
//! * **drops** — packets lost at that channel in the bucket,
//! * **queue peak** — the deepest input queue observed in the bucket.
//!
//! Memory is bounded: when an event lands beyond `max_buckets`, the bucket
//! width doubles and every lane is folded in place (busy/drops add,
//! queue peaks max), so an arbitrarily long run always fits in
//! `active_channels × max_buckets` cells. Bucket indexing is
//! `t / bucket_ps`, so an event exactly on a bucket edge `k·w` belongs to
//! bucket `k`.
//!
//! Everything is deterministic (no clocks, no hashing — lanes live in a
//! channel-sorted vector), so a telemetry-enabled run serializes
//! identically across repeats.

use serde::{Deserialize, Serialize};

/// Configuration for a [`ChannelTimeSeries`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeSeriesConfig {
    /// Initial bucket width, picoseconds. Must be nonzero.
    pub bucket_ps: u64,
    /// Maximum buckets retained per channel; reaching the horizon doubles
    /// `bucket_ps` instead of growing. Must be at least 2.
    pub max_buckets: usize,
}

impl Default for TimeSeriesConfig {
    fn default() -> Self {
        Self {
            // 1 µs buckets: fine enough to see per-stage structure on the
            // paper's microsecond-scale collectives.
            bucket_ps: 1_000_000,
            max_buckets: 512,
        }
    }
}

/// One channel's bucketed signals. Lanes are resized lazily, so a channel
/// that went quiet early stays short.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChannelLane {
    /// Busy picoseconds per bucket.
    pub busy_ps: Vec<u64>,
    /// Packet drops per bucket.
    pub drops: Vec<u32>,
    /// Deepest input queue seen per bucket.
    pub queue_peak: Vec<u32>,
}

impl ChannelLane {
    fn fold_halve(&mut self) {
        fold_add(&mut self.busy_ps);
        fold_add(&mut self.drops);
        fold_max(&mut self.queue_peak);
    }
}

fn fold_add<T: Copy + std::ops::Add<Output = T> + Default>(v: &mut Vec<T>) {
    let n = v.len().div_ceil(2);
    for i in 0..n {
        let a = v[2 * i];
        let b = v.get(2 * i + 1).copied().unwrap_or_default();
        v[i] = a + b;
    }
    v.truncate(n);
}

fn fold_max<T: Copy + Ord + Default>(v: &mut Vec<T>) {
    let n = v.len().div_ceil(2);
    for i in 0..n {
        let a = v[2 * i];
        let b = v.get(2 * i + 1).copied().unwrap_or_default();
        v[i] = a.max(b);
    }
    v.truncate(n);
}

/// Bounded per-channel time-series reservoir (see module docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelTimeSeries {
    bucket_ps: u64,
    max_buckets: usize,
    /// Highest bucket index touched + 1 (shared across lanes).
    used: usize,
    /// Number of bucket-width doublings performed.
    coarsenings: u32,
    /// Active channels, sorted ascending by channel id.
    lanes: Vec<(u32, ChannelLane)>,
}

impl ChannelTimeSeries {
    /// Empty series with the given bucketing.
    pub fn new(cfg: TimeSeriesConfig) -> Self {
        Self {
            bucket_ps: cfg.bucket_ps.max(1),
            max_buckets: cfg.max_buckets.max(2),
            used: 0,
            coarsenings: 0,
            lanes: Vec::new(),
        }
    }

    /// The lane for `ch`, created in sorted position on first use.
    fn lane_mut(&mut self, ch: u32) -> &mut ChannelLane {
        let idx = match self.lanes.binary_search_by_key(&ch, |&(c, _)| c) {
            Ok(i) => i,
            Err(i) => {
                self.lanes.insert(i, (ch, ChannelLane::default()));
                i
            }
        };
        &mut self.lanes[idx].1
    }

    /// Current bucket width, picoseconds (grows when the reservoir
    /// coarsens).
    pub fn bucket_ps(&self) -> u64 {
        self.bucket_ps
    }

    /// Number of buckets actually touched so far.
    pub fn num_buckets(&self) -> usize {
        self.used
    }

    /// How many times the bucket width has doubled to stay within the
    /// memory bound.
    pub fn coarsenings(&self) -> u32 {
        self.coarsenings
    }

    /// Channels that recorded at least one event, ascending.
    pub fn channels(&self) -> impl Iterator<Item = (u32, &ChannelLane)> {
        self.lanes.iter().map(|(ch, lane)| (*ch, lane))
    }

    /// The lane for `ch`, if it ever recorded anything.
    pub fn lane(&self, ch: u32) -> Option<&ChannelLane> {
        self.lanes
            .binary_search_by_key(&ch, |&(c, _)| c)
            .ok()
            .map(|i| &self.lanes[i].1)
    }

    /// Number of active channels.
    pub fn num_channels(&self) -> usize {
        self.lanes.len()
    }

    /// Doubles the bucket width until bucket index `needed` fits.
    fn coarsen_to_fit(&mut self, t_end: u64) {
        while t_end.div_ceil(self.bucket_ps) as usize > self.max_buckets {
            self.bucket_ps *= 2;
            self.coarsenings += 1;
            for (_, lane) in self.lanes.iter_mut() {
                lane.fold_halve();
            }
            self.used = self.used.div_ceil(2);
        }
    }

    fn touch(&mut self, bucket: usize) {
        if bucket + 1 > self.used {
            self.used = bucket + 1;
        }
    }

    /// Records a busy span `[t, t + dur)` on channel `ch`, splitting it by
    /// exact overlap across any bucket edges it crosses.
    pub fn record_busy(&mut self, ch: u32, t: u64, dur: u64) {
        if dur == 0 {
            return;
        }
        let end = t + dur;
        self.coarsen_to_fit(end);
        let w = self.bucket_ps;
        let first = (t / w) as usize;
        let last = ((end - 1) / w) as usize;
        self.touch(last);
        let lane = self.lane_mut(ch);
        if lane.busy_ps.len() < last + 1 {
            lane.busy_ps.resize(last + 1, 0);
        }
        for b in first..=last {
            let lo = t.max(b as u64 * w);
            let hi = end.min((b as u64 + 1) * w);
            lane.busy_ps[b] += hi - lo;
        }
    }

    /// Records a packet drop at channel `ch` at time `t`.
    pub fn record_drop(&mut self, ch: u32, t: u64) {
        self.coarsen_to_fit(t + 1);
        let b = (t / self.bucket_ps) as usize;
        self.touch(b);
        let lane = self.lane_mut(ch);
        if lane.drops.len() < b + 1 {
            lane.drops.resize(b + 1, 0);
        }
        lane.drops[b] += 1;
    }

    /// Records an input-queue depth observation for channel `ch` at `t`.
    pub fn record_queue_depth(&mut self, ch: u32, t: u64, depth: u32) {
        self.coarsen_to_fit(t + 1);
        let b = (t / self.bucket_ps) as usize;
        self.touch(b);
        let lane = self.lane_mut(ch);
        if lane.queue_peak.len() < b + 1 {
            lane.queue_peak.resize(b + 1, 0);
        }
        lane.queue_peak[b] = lane.queue_peak[b].max(depth);
    }

    /// Channel utilization per bucket in `[0, 1]` (busy ps / bucket width).
    pub fn utilization(&self, ch: u32) -> Vec<f64> {
        let Some(lane) = self.lane(ch) else {
            return Vec::new();
        };
        lane.busy_ps
            .iter()
            .map(|&b| (b as f64 / self.bucket_ps as f64).min(1.0))
            .collect()
    }

    /// Total drops across all channels and buckets.
    pub fn total_drops(&self) -> u64 {
        self.lanes
            .iter()
            .flat_map(|(_, l)| l.drops.iter())
            .map(|&d| d as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(bucket_ps: u64, max_buckets: usize) -> TimeSeriesConfig {
        TimeSeriesConfig {
            bucket_ps,
            max_buckets,
        }
    }

    #[test]
    fn busy_splits_exactly_across_bucket_edges() {
        let mut ts = ChannelTimeSeries::new(cfg(100, 64));
        // [50, 250): 50 ps in bucket 0, 100 in bucket 1, 50 in bucket 2.
        ts.record_busy(7, 50, 200);
        let lane = ts.lane(7).unwrap();
        assert_eq!(lane.busy_ps, vec![50, 100, 50]);
        assert_eq!(ts.num_buckets(), 3);
        let u = ts.utilization(7);
        assert_eq!(u, vec![0.5, 1.0, 0.5]);
    }

    #[test]
    fn event_exactly_on_bucket_edge_belongs_to_that_bucket() {
        let mut ts = ChannelTimeSeries::new(cfg(100, 64));
        // A drop at t = 2·w lands in bucket 2, not bucket 1.
        ts.record_drop(0, 200);
        let lane = ts.lane(0).unwrap();
        assert_eq!(lane.drops, vec![0, 0, 1]);
        // A busy span starting exactly on the edge stays entirely in its
        // bucket when it fits.
        ts.record_busy(0, 200, 100);
        assert_eq!(ts.lane(0).unwrap().busy_ps, vec![0, 0, 100]);
        // A span ending exactly on an edge does not bleed into the next
        // bucket: [100, 200) touches only bucket 1.
        ts.record_busy(0, 100, 100);
        assert_eq!(ts.lane(0).unwrap().busy_ps, vec![0, 100, 100]);
        assert_eq!(ts.num_buckets(), 3);
    }

    #[test]
    fn run_shorter_than_one_bucket_uses_bucket_zero_only() {
        let mut ts = ChannelTimeSeries::new(cfg(1_000_000, 512));
        ts.record_busy(1, 10, 500);
        ts.record_drop(1, 900);
        ts.record_queue_depth(1, 999, 4);
        assert_eq!(ts.num_buckets(), 1);
        let lane = ts.lane(1).unwrap();
        assert_eq!(lane.busy_ps, vec![500]);
        assert_eq!(lane.drops, vec![1]);
        assert_eq!(lane.queue_peak, vec![4]);
    }

    #[test]
    fn reservoir_coarsens_instead_of_growing() {
        let mut ts = ChannelTimeSeries::new(cfg(10, 4));
        for b in 0..4u64 {
            ts.record_busy(0, b * 10, 10); // fills buckets 0..4 completely
        }
        ts.record_queue_depth(0, 5, 3);
        ts.record_queue_depth(0, 15, 1);
        assert_eq!(ts.bucket_ps(), 10);
        // t = 70 needs bucket 7 → one doubling to w=20 (buckets 0..4).
        ts.record_busy(0, 70, 10);
        assert_eq!(ts.bucket_ps(), 20);
        assert_eq!(ts.coarsenings(), 1);
        let lane = ts.lane(0).unwrap();
        // Folded: [10+10, 10+10, 0, 10(at bucket 3 = t 70)]
        assert_eq!(lane.busy_ps, vec![20, 20, 0, 10]);
        // Queue peaks fold by max: [3, 1] → [3].
        assert_eq!(lane.queue_peak, vec![3]);
        assert!(ts.num_buckets() <= 4);
    }

    #[test]
    fn memory_stays_bounded_under_long_runs() {
        let mut ts = ChannelTimeSeries::new(cfg(1, 8));
        for i in 0..10_000u64 {
            ts.record_busy(i as u32 % 3, i * 7, 5);
        }
        assert!(ts.num_buckets() <= 8);
        for (_, lane) in ts.channels() {
            assert!(lane.busy_ps.len() <= 8);
        }
    }

    #[test]
    fn serde_round_trip() {
        let mut ts = ChannelTimeSeries::new(cfg(100, 16));
        ts.record_busy(2, 0, 150);
        ts.record_drop(5, 120);
        ts.record_queue_depth(2, 10, 9);
        let json = serde_json::to_string(&ts).unwrap();
        let back: ChannelTimeSeries = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ts);
    }
}
