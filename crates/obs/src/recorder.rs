//! The [`Recorder`]: one handle bundling metrics, the flight recorder and
//! phase aggregation, plus the optional process-global instance.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use crate::events::{FlightRecorder, ObsEvent, SpanClock};
use crate::metrics::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
use crate::phase::{ObsPhase, PhaseSummary};
use crate::span::{SpanAttrs, SpanGuard, SpanId};

/// Default flight-recorder capacity (events).
pub const DEFAULT_EVENT_CAPACITY: usize = 1 << 18;

#[derive(Default)]
struct PhaseStat {
    calls: u64,
    total: Duration,
}

/// Central observability handle: a metrics [`Registry`], a bounded
/// [`FlightRecorder`] and per-phase wall-time aggregates. Cheap to share
/// (`Arc`), safe to use from multiple threads.
pub struct Recorder {
    metrics: Registry,
    flight: FlightRecorder,
    phases: Mutex<BTreeMap<&'static str, PhaseStat>>,
    route_events: AtomicBool,
    /// Next span id to hand out (span ids start at 1; 0 = "no span").
    next_span: AtomicU64,
    /// Wall-clock anchor: wall-span timestamps are ns since this instant.
    anchor: Instant,
    /// Provenance label naming what this recorder observed (a campaign
    /// cell, a bench run). Empty for anonymous recorders.
    label: String,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// Recorder with the default event capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// Recorder retaining at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            metrics: Registry::new(),
            flight: FlightRecorder::new(capacity),
            phases: Mutex::new(BTreeMap::new()),
            route_events: AtomicBool::new(false),
            next_span: AtomicU64::new(1),
            anchor: Instant::now(),
            label: String::new(),
        }
    }

    /// Tags this recorder with a provenance label (builder-style). Campaign
    /// cells use it so metrics captured in parallel runs stay attributable
    /// to the exact cell that produced them.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// The provenance label, when one was set.
    pub fn label(&self) -> Option<&str> {
        (!self.label.is_empty()).then_some(self.label.as_str())
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Counter shortcut (see [`Registry::counter`]).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.metrics.counter(name)
    }

    /// Gauge shortcut.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.metrics.gauge(name)
    }

    /// Histogram shortcut.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.metrics.histogram(name)
    }

    /// Serializable snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Appends an event to the flight recorder.
    pub fn record(&self, ev: ObsEvent) {
        self.flight.record(ev);
    }

    /// The underlying flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<ObsEvent> {
        self.flight.events()
    }

    /// Retained events as NDJSON (one object per line).
    pub fn events_ndjson(&self) -> String {
        self.flight.to_ndjson()
    }

    /// Opt into per-hop [`ObsEvent::RouteDecision`] events (very high
    /// volume; off by default).
    pub fn set_route_events(&self, on: bool) {
        self.route_events.store(on, Ordering::Relaxed);
    }

    /// True when route-decision events should be emitted.
    pub fn route_events_enabled(&self) -> bool {
        self.route_events.load(Ordering::Relaxed)
    }

    /// Starts an RAII phase span reporting into this recorder.
    pub fn phase(self: &Arc<Self>, name: &'static str) -> ObsPhase {
        ObsPhase::new(Some(self.clone()), name)
    }

    /// Allocates a fresh span id (unique within this recorder, starting
    /// at 1).
    pub(crate) fn alloc_span_id(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    /// Nanoseconds of wall time since this recorder was created — the
    /// timestamp domain of [`crate::SpanClock::Wall`] spans.
    pub fn wall_now_ns(&self) -> u64 {
        self.anchor.elapsed().as_nanos() as u64
    }

    /// Opens a **sim-time** span at simulation time `t` (picoseconds).
    /// Pass [`SpanId::NONE`] for a root span, or a parent id for explicit
    /// nesting. The returned id must be closed with [`Recorder::span_end_at`].
    pub fn span_begin_at(&self, t: u64, name: &str, parent: SpanId, attrs: SpanAttrs) -> SpanId {
        let id = self.alloc_span_id();
        self.record(ObsEvent::SpanBegin {
            t,
            span: id,
            parent: parent.0,
            name: name.to_string(),
            clock: SpanClock::Sim,
            attrs,
        });
        SpanId(id)
    }

    /// Closes a sim-time span at simulation time `t`.
    pub fn span_end_at(&self, t: u64, span: SpanId) {
        self.span_end_at_with(t, span, SpanAttrs::new());
    }

    /// Closes a sim-time span, attaching attributes discovered during its
    /// lifetime (e.g. delivery outcome, attempt count).
    pub fn span_end_at_with(&self, t: u64, span: SpanId, attrs: SpanAttrs) {
        self.record(ObsEvent::SpanEnd {
            t,
            span: span.0,
            attrs,
        });
    }

    /// Opens an RAII **wall-clock** span: closes on drop, parents onto the
    /// innermost open wall span of the current thread, and folds its
    /// duration into the per-phase aggregate under `name`.
    pub fn wall_span(self: &Arc<Self>, name: &'static str) -> SpanGuard {
        SpanGuard::begin(Some(self.clone()), name)
    }

    /// Folds one completed span into the per-phase aggregate.
    pub(crate) fn record_phase(&self, name: &'static str, dur: Duration) {
        let mut phases = self.phases.lock().unwrap();
        let stat = phases.entry(name).or_default();
        stat.calls += 1;
        stat.total += dur;
    }

    /// Aggregated wall time per phase, sorted by name.
    pub fn phase_report(&self) -> Vec<PhaseSummary> {
        self.phases
            .lock()
            .unwrap()
            .iter()
            .map(|(name, stat)| PhaseSummary {
                name: (*name).to_string(),
                calls: stat.calls,
                total_ms: stat.total.as_secs_f64() * 1e3,
            })
            .collect()
    }
}

static GLOBAL: RwLock<Option<Arc<Recorder>>> = RwLock::new(None);

std::thread_local! {
    /// Stack of recorders scoped to the current thread (innermost last).
    /// [`global`] consults this before the process-global install, so work
    /// running inside [`with_scoped`] — e.g. one campaign cell among many
    /// executing in parallel — reports into its own recorder instead of a
    /// shared one.
    static SCOPED: std::cell::RefCell<Vec<Arc<Recorder>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Installs `rec` as the process-global recorder consulted by
/// [`ObsPhase::global`] and the library-internal counters (subnet-manager
/// sweeps, routing-table builds). Replaces any previous global.
pub fn install(rec: Arc<Recorder>) {
    *GLOBAL.write().unwrap() = Some(rec);
}

/// Removes the process-global recorder.
pub fn uninstall() {
    *GLOBAL.write().unwrap() = None;
}

/// Runs `f` with `rec` as the *thread-scoped* recorder: within the closure
/// (on this thread) [`global`] resolves to `rec`, shadowing both the
/// process-global install and any outer scope. Scopes nest; the override is
/// popped even when `f` panics. This is the per-cell provenance mechanism
/// of the campaign runner: cells execute concurrently in one process, yet
/// each cell's phase timers and counters land in that cell's own labeled
/// recorder.
pub fn with_scoped<R>(rec: Arc<Recorder>, f: impl FnOnce() -> R) -> R {
    struct Pop;
    impl Drop for Pop {
        fn drop(&mut self) {
            SCOPED.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
    SCOPED.with(|s| s.borrow_mut().push(rec));
    let _pop = Pop;
    f()
}

/// The recorder active on this thread: the innermost [`with_scoped`]
/// override when one is in effect, the process-global install otherwise.
pub fn global() -> Option<Arc<Recorder>> {
    if let Some(rec) = SCOPED.with(|s| s.borrow().last().cloned()) {
        return Some(rec);
    }
    GLOBAL.read().unwrap().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_bundles_everything() {
        let rec = Arc::new(Recorder::with_capacity(4));
        rec.counter("c").inc();
        rec.record(ObsEvent::LinkFail { t: 0, link: 1 });
        {
            let _p = rec.phase("test::bundle");
        }
        assert_eq!(rec.events().len(), 1);
        assert_eq!(rec.snapshot().counters["c"], 1);
        assert_eq!(rec.phase_report()[0].calls, 1);
        assert!(!rec.route_events_enabled());
        rec.set_route_events(true);
        assert!(rec.route_events_enabled());
    }

    #[test]
    fn scoped_recorder_shadows_global_and_nests() {
        let outer = Arc::new(Recorder::new().with_label("outer"));
        let inner = Arc::new(Recorder::new().with_label("inner"));
        assert_eq!(inner.label(), Some("inner"));
        assert_eq!(Arc::new(Recorder::new()).label(), None);
        with_scoped(outer.clone(), || {
            global().unwrap().counter("scoped.hits").inc();
            with_scoped(inner.clone(), || {
                global().unwrap().counter("scoped.hits").inc();
            });
            global().unwrap().counter("scoped.hits").inc();
        });
        assert_eq!(outer.snapshot().counters["scoped.hits"], 2);
        assert_eq!(inner.snapshot().counters["scoped.hits"], 1);
        // Worker threads spawned inside a scope do not inherit it.
        with_scoped(outer, || {
            std::thread::scope(|s| {
                s.spawn(|| {
                    assert!(global().is_none() || global().unwrap().label() != Some("outer"))
                });
            });
        });
    }

    #[test]
    fn global_install_and_uninstall() {
        // Note: the global is process-wide; this test is self-contained
        // because it only checks its own install/uninstall transitions.
        let rec = Arc::new(Recorder::new());
        install(rec.clone());
        assert!(global().is_some());
        {
            let _p = ObsPhase::global("test::global_phase");
        }
        assert!(rec
            .phase_report()
            .iter()
            .any(|p| p.name == "test::global_phase"));
        uninstall();
    }
}
