//! Adversarial and end-to-end tests for the routing invariant checker.
//!
//! Negative direction: hand-built broken tables — a forwarding loop
//! (up-after-down) and a stale-port blackhole — must be flagged. The
//! checker is only trustworthy if it rejects known-bad tables.
//!
//! Positive direction: every built-in routing engine, swept through seeded
//! chaos scenarios (random cable faults, correlated switch outages, a flap
//! storm) on catalog topologies, must keep all three invariants after every
//! sweep — the repair path, not just the from-scratch path, is what gets
//! proved.

use ftree_analysis::{check_invariants, sweep_check, InvariantViolation};
use ftree_core::{builtin_engines, DModK, Router, SubnetManager};
use ftree_topology::rlft::catalog;
use ftree_topology::{ChaosGen, ChaosSchedule, LinkFailures, PortRef, Topology};

#[test]
fn adversarial_loop_table_fails_the_checker() {
    // Healthy D-Mod-K, then rewrite the destination leaf's entry for host 0
    // to point back *up*: every down-phase walk toward host 0 now turns
    // around — the up*/down* break that makes fat-tree routing loop/deadlock.
    let topo = Topology::build(catalog::fig4_pgft_16());
    let mut table = DModK.route_healthy(&topo);
    let dst = 0usize;
    let leaf = topo.node(topo.host(dst)).up[0].peer;
    table.set(leaf, dst, PortRef::Up(0));
    let failures = LinkFailures::none(&topo);
    let report = check_invariants(&topo, &table, &failures);
    assert!(!report.ok(), "loop table must fail: {}", report.summary());
    assert!(!report.loop_free, "the violation is a loop hazard");
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, InvariantViolation::NotUpDown { dst: 0, .. })),
        "violations must name the up-after-down pairs: {:?}",
        report.violations
    );
    assert!(report.violations_total > 0);
}

#[test]
fn adversarial_stale_port_blackhole_fails_the_checker() {
    // Two stale-table shapes: (a) an entry still pointing across a cable
    // that has since died, (b) an entry cleared even though the pair is
    // physically reachable. Both are blackholes — packets vanish silently.
    let topo = Topology::build(catalog::fig4_pgft_16());
    let healthy = DModK.route_healthy(&topo);

    // (a) stale port across a dead cable
    let mut failures = LinkFailures::none(&topo);
    let leaf0 = topo.node_at(1, 0).unwrap();
    failures.fail(topo.node(leaf0).up[1].link).unwrap();
    let report = check_invariants(&topo, &healthy, &failures);
    assert!(!report.ok(), "stale table must fail: {}", report.summary());
    assert!(!report.blackhole_free);
    assert!(report.loop_free, "staleness is not a loop");
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, InvariantViolation::DeadLink { .. })));

    // (b) missing entry for a reachable pair
    let mut holed = healthy.clone();
    holed.clear(leaf0, topo.num_hosts() - 1);
    let report = check_invariants(&topo, &holed, &LinkFailures::none(&topo));
    assert!(!report.ok());
    assert!(!report.blackhole_free);
    assert!(!report.reachability_complete);
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v, InvariantViolation::MissingRoute { .. })));
}

/// Sweeps `topo` through `chaos` with every built-in engine, proving the
/// invariants after every sweep (via the panicking sweep check) and once
/// more at the settled end state.
fn prove_engines_through(topo: &Topology, chaos: &ChaosSchedule, label: &str) {
    let lowered = chaos.lower(topo).expect("scenario fits the topology");
    for engine in builtin_engines(7) {
        let name = engine.name();
        let mut sm = SubnetManager::with_engine(topo, lowered.faults.clone(), engine)
            .expect("schedule fits the topology");
        sm.set_sweep_check(sweep_check());
        sm.sweep_all(topo); // panics inside the check on any violation
        assert!(sm.is_settled());
        let report = check_invariants(topo, sm.table(), sm.failures());
        assert!(
            report.ok(),
            "{label}/{name} settled state violates invariants: {}",
            report.summary()
        );
    }
}

#[test]
fn all_engines_hold_invariants_under_random_link_faults() {
    let topo = Topology::build(catalog::fig4_pgft_16());
    let chaos = ChaosGen::new(42).random_links(&topo, 4, 1_000_000, 500_000);
    prove_engines_through(&topo, &chaos, "random_links");
}

#[test]
fn all_engines_hold_invariants_under_switch_outages() {
    let topo = Topology::build(catalog::fig4_pgft_16());
    let chaos = ChaosGen::new(9).switch_outages(&topo, 2, 1_000_000, 700_000);
    prove_engines_through(&topo, &chaos, "switch_outages");
}

#[test]
fn all_engines_hold_invariants_under_a_flap_storm() {
    let topo = Topology::build(catalog::fig4_pgft_16());
    let chaos = ChaosGen::new(1234).flap_storm(&topo, 3, 500_000, 3, 10_000, 200_000);
    prove_engines_through(&topo, &chaos, "flap_storm");
}

#[test]
fn all_engines_hold_invariants_on_a_larger_tree() {
    // The 128-host catalog tree, one preset per shape to bound runtime.
    let topo = Topology::build(catalog::nodes_128());
    let chaos = ChaosGen::new(5).random_links(&topo, 5, 1_000_000, 0);
    prove_engines_through(&topo, &chaos, "nodes_128/random_links");
}
