//! # ftree-analysis — analytic hot-spot-degree model
//!
//! The `ibdm`-equivalent used by the paper's evaluation: given a topology,
//! a routing and a traffic pattern, compute per-link flow counts (**Hot-Spot
//! Degree**), per-stage maxima, sequence averages and multi-seed
//! random-order sweeps. A configuration is *congestion-free* exactly when
//! every stage's maximum HSD is 1 — the property Theorems 1–3 guarantee for
//! D-Mod-K routing with topology-ordered ranks.
//!
//! ```
//! use ftree_analysis::{sequence_hsd, SequenceOptions};
//! use ftree_collectives::Cps;
//! use ftree_core::Job;
//! use ftree_topology::{rlft::catalog, Topology};
//!
//! let topo = Topology::build(catalog::fig4_pgft_16());
//! let job = Job::contention_free(&topo);
//! let r = sequence_hsd(&topo, &job.routing, &job.order, &Cps::Shift,
//!                      SequenceOptions::default()).unwrap();
//! assert!(r.congestion_free);
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod attribution;
pub mod degraded;
pub mod hsd;
pub mod invariants;
pub mod quality;
pub mod reference;
pub mod report;
pub mod sequence;
pub mod svg;

pub use arena::{
    PathArena, RouteCache, SharedRouteCache, StageScratch, DEFAULT_ARENA_BUDGET_BYTES,
};
pub use attribution::{
    attribute_sequence, attribute_stage, render_attribution_markdown, ChannelContention, FlowRef,
    StageAttribution,
};
pub use degraded::{
    degraded_sequence_hsd, degraded_stage_hsd, DegradedSequenceHsd, DegradedStageHsd,
};
pub use hsd::{stage_hsd, HsdObserver, LinkLoads, StageHsd};
pub use invariants::{check_invariants, sweep_check, InvariantReport, InvariantViolation};
pub use quality::{routing_quality, RoutingQuality};
pub use report::{predicted_stage_time_ps, DetailedReport, WorstLink};
pub use sequence::{
    parallel_map, parallel_map_init, random_order_sweep, sampled_stages, sequence_hsd,
    sequence_hsd_cached, set_parallelism, SequenceHsd, SequenceOptions, SweepResult,
};
pub use svg::{render_heatmap_svg, render_svg, HeatmapOptions, SvgOptions};
