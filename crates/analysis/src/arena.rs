//! All-pairs route cache (path arena) and reusable stage scratch.
//!
//! Routes are a pure function of `(topology, routing table)` — they do not
//! change between stages of a collective or between seeds of a sweep. The
//! trace-per-flow engine nevertheless re-walked the LFTs and allocated two
//! `Vec`s for every flow of every stage. [`PathArena`] traces every
//! `(src, dst)` pair exactly once, in parallel, into one flat CSR buffer
//! (a `Vec<u32>` of channel ids plus an offsets table) that is then shared
//! immutably by every stage, seed and thread.
//!
//! Arena memory is `num_hosts² × mean_hops × 4` bytes, which for very large
//! fabrics can exceed what a caller wants to pin. [`RouteCache`] therefore
//! gates construction on a sampled size estimate: below the budget it holds
//! a [`PathArena`]; above it, it transparently falls back to on-demand
//! allocation-free tracing ([`RoutingTable::walk`]) with identical results.
//!
//! [`StageScratch`] is the per-worker accumulation buffer: a full-size
//! per-channel count vector plus the list of channels actually touched, so
//! resetting between stages clears only the touched entries instead of
//! zeroing `num_channels` slots.

use std::sync::Arc;

use ftree_topology::{RouteError, RoutingTable, Topology};

use crate::hsd::{summarize_sparse, StageHsd};
use crate::sequence::parallel_map;

/// Default [`RouteCache`] arena budget: 256 MiB.
pub const DEFAULT_ARENA_BUDGET_BYTES: usize = 256 << 20;

/// How many host pairs [`PathArena::estimate_bytes`] samples.
const ESTIMATE_SAMPLE_PAIRS: usize = 256;

/// CSR store of every `(src, dst)` routed path of one `(topology, routing)`
/// pair: `channels[offsets[p] .. offsets[p + 1]]` is the channel-id path of
/// pair `p = src * num_hosts + dst`.
#[derive(Debug, Clone)]
pub struct PathArena {
    num_hosts: usize,
    /// `num_hosts² + 1` entries into `channels`.
    offsets: Vec<u32>,
    /// Concatenated channel ids of all paths.
    channels: Vec<u32>,
    /// Bitset over pairs that had no route when the arena was built
    /// (degraded fabrics). Structural errors fail the build instead.
    unroutable: Vec<u64>,
    /// False on healthy fabrics, letting the per-flow hot path skip the
    /// bitset probe (one random memory access per flow) entirely.
    any_unroutable: bool,
}

#[inline]
fn bit_get(words: &[u64], idx: usize) -> bool {
    words[idx / 64] & (1 << (idx % 64)) != 0
}

#[inline]
fn bit_set(words: &mut [u64], idx: usize) {
    words[idx / 64] |= 1 << (idx % 64);
}

impl PathArena {
    /// Traces all `num_hosts²` pairs in parallel (one worker per chunk of
    /// source hosts) and validates each path once.
    ///
    /// `NoRoute` pairs are tolerated and marked unroutable — a degraded
    /// fabric is a legal input. Structural routing bugs (`Loop`,
    /// `NotUpDown`) abort the build, exactly as they abort the
    /// trace-per-flow engine.
    pub fn build(topo: &Topology, rt: &RoutingTable) -> Result<Self, RouteError> {
        let n = topo.num_hosts();
        let srcs: Vec<usize> = (0..n).collect();
        // Per-source row: (concatenated channels, per-dst end offset within
        // the row, unroutable dsts).
        type Row = (Vec<u32>, Vec<u32>, Vec<bool>);
        let rows: Vec<Result<Row, RouteError>> = parallel_map(&srcs, |&src| {
            let mut row = Vec::new();
            let mut ends = Vec::with_capacity(n);
            let mut dead = vec![false; n];
            for (dst, dead_slot) in dead.iter_mut().enumerate() {
                let start = row.len();
                match rt.walk(topo, src, dst, |ch| row.push(ch.0)) {
                    Ok(()) => {}
                    Err(RouteError::NoRoute { .. }) => {
                        row.truncate(start);
                        *dead_slot = true;
                    }
                    Err(e) => return Err(e),
                }
                ends.push(row.len() as u32);
            }
            Ok((row, ends, dead))
        });
        let mut offsets = Vec::with_capacity(n * n + 1);
        offsets.push(0u32);
        let mut channels = Vec::new();
        let mut unroutable = vec![0u64; (n * n).div_ceil(64).max(1)];
        for (src, row) in rows.into_iter().enumerate() {
            let (row, ends, dead) = row?;
            let base = channels.len() as u32;
            channels.extend_from_slice(&row);
            offsets.extend(ends.iter().map(|&e| base + e));
            for (dst, &d) in dead.iter().enumerate() {
                if d {
                    bit_set(&mut unroutable, src * n + dst);
                }
            }
        }
        let any_unroutable = unroutable.iter().any(|&w| w != 0);
        Ok(Self {
            num_hosts: n,
            offsets,
            channels,
            unroutable,
            any_unroutable,
        })
    }

    /// The cached channel-id path for `(src, dst)`, or `None` when the pair
    /// was unroutable at build time. The self-pair is the empty slice.
    #[inline]
    pub fn channels(&self, src: usize, dst: usize) -> Option<&[u32]> {
        let p = src * self.num_hosts + dst;
        if self.any_unroutable && bit_get(&self.unroutable, p) {
            return None;
        }
        let lo = self.offsets[p] as usize;
        let hi = self.offsets[p + 1] as usize;
        Some(&self.channels[lo..hi])
    }

    /// True when `(src, dst)` had no route at build time.
    #[inline]
    pub fn is_unroutable(&self, src: usize, dst: usize) -> bool {
        self.any_unroutable && bit_get(&self.unroutable, src * self.num_hosts + dst)
    }

    /// Number of host pairs covered (`num_hosts²`).
    pub fn num_pairs(&self) -> usize {
        self.num_hosts * self.num_hosts
    }

    /// Total hops stored across all pairs.
    pub fn total_hops(&self) -> usize {
        self.channels.len()
    }

    /// Heap bytes pinned by the arena.
    pub fn size_bytes(&self) -> usize {
        self.channels.len() * 4 + self.offsets.len() * 4 + self.unroutable.len() * 8
    }

    /// Estimates the bytes [`PathArena::build`] would pin, by walking a
    /// small evenly-strided sample of pairs and extrapolating the mean hop
    /// count to all `num_hosts²` pairs (plus offsets table and unroutable
    /// bitset). Never fails: pairs that error count zero hops — the error
    /// resurfaces at build or trace time.
    pub fn estimate_bytes(topo: &Topology, rt: &RoutingTable) -> usize {
        let n = topo.num_hosts();
        let total = n * n;
        if total == 0 {
            return 0;
        }
        let stride = (total / ESTIMATE_SAMPLE_PAIRS).max(1);
        let mut sampled = 0usize;
        let mut hops = 0usize;
        let mut i = 0;
        while i < total {
            let (src, dst) = (i / n, i % n);
            let _ = rt.walk(topo, src, dst, |_| hops += 1);
            sampled += 1;
            i += stride;
        }
        let mean = hops as f64 / sampled.max(1) as f64;
        let channel_bytes = (mean * total as f64 * 4.0) as usize;
        channel_bytes + (total + 1) * 4 + total.div_ceil(64) * 8
    }
}

/// The fluid simulator sources its flow paths from the same arena the HSD
/// sweeps share, so campaign fluid cells pay zero per-flow table walks.
/// Unroutable pairs return `None` and the solver falls back to the walk,
/// which re-surfaces the `NoRoute` and is skip-counted there.
impl ftree_sim::PathSource for PathArena {
    #[inline]
    fn channels(&self, src: usize, dst: usize) -> Option<&[u32]> {
        PathArena::channels(self, src, dst)
    }
}

/// A routed-path source for HSD accumulation: an immutable
/// `(topology, routing)` pair plus — when it fits the memory budget — a
/// [`PathArena`] of every pre-traced path.
///
/// When the estimated arena size exceeds the budget the cache holds no
/// arena and [`RouteCache::accumulate`] walks the LFTs on demand
/// (allocation-free, via a scratch-owned path buffer). Results are
/// bit-identical either way; only the speed differs.
pub struct RouteCache<'a> {
    topo: &'a Topology,
    rt: &'a RoutingTable,
    /// `Arc` so an arena built once (e.g. by a [`SharedRouteCache`]) can be
    /// viewed by many caches without copying the CSR buffers.
    arena: Option<Arc<PathArena>>,
}

impl<'a> RouteCache<'a> {
    /// Builds a cache with the default 256 MiB arena budget.
    pub fn new(topo: &'a Topology, rt: &'a RoutingTable) -> Result<Self, RouteError> {
        Self::with_budget(topo, rt, DEFAULT_ARENA_BUDGET_BYTES)
    }

    /// Builds a cache whose arena may pin at most `budget_bytes`; above the
    /// estimate the cache falls back to on-demand tracing.
    pub fn with_budget(
        topo: &'a Topology,
        rt: &'a RoutingTable,
        budget_bytes: usize,
    ) -> Result<Self, RouteError> {
        let arena = if PathArena::estimate_bytes(topo, rt) <= budget_bytes {
            Some(Arc::new(PathArena::build(topo, rt)?))
        } else {
            None
        };
        Ok(Self { topo, rt, arena })
    }

    /// A cache viewing an arena built elsewhere (or `None` for the
    /// walk-on-demand fallback). The caller vouches that `arena` was built
    /// from exactly this `(topo, rt)` pair — [`SharedRouteCache`] is the
    /// safe owner-tracked way to get one.
    pub fn from_shared(
        topo: &'a Topology,
        rt: &'a RoutingTable,
        arena: Option<Arc<PathArena>>,
    ) -> Self {
        Self { topo, rt, arena }
    }

    /// The topology this cache routes over.
    #[inline]
    pub fn topology(&self) -> &Topology {
        self.topo
    }

    /// The routing table this cache was built from.
    #[inline]
    pub fn routing(&self) -> &RoutingTable {
        self.rt
    }

    /// True when an arena was built (estimate fit the budget).
    #[inline]
    pub fn is_cached(&self) -> bool {
        self.arena.is_some()
    }

    /// The arena, when one was built.
    pub fn arena(&self) -> Option<&PathArena> {
        self.arena.as_deref()
    }

    /// Accumulates one flow into `scratch`. On `Err` nothing was added.
    #[inline]
    fn add_flow(
        &self,
        src: usize,
        dst: usize,
        scratch: &mut StageScratch,
    ) -> Result<(), RouteError> {
        match &self.arena {
            Some(arena) => match arena.channels(src, dst) {
                Some(path) => {
                    for &ch in path {
                        scratch.bump(ch);
                    }
                    Ok(())
                }
                // Regenerate the exact `NoRoute` the trace engine reports.
                None => Err(self
                    .rt
                    .walk(self.topo, src, dst, |_| {})
                    .expect_err("arena marked pair unroutable")),
            },
            None => {
                // Buffer the path so a mid-walk error leaves no partial
                // counts behind (`walk` emits channels before failing).
                scratch.path.clear();
                self.rt
                    .walk(self.topo, src, dst, |ch| scratch.path.push(ch.0))?;
                for i in 0..scratch.path.len() {
                    let ch = scratch.path[i];
                    scratch.bump(ch);
                }
                Ok(())
            }
        }
    }

    /// Accumulates a stage's flows into `scratch` (without resetting it).
    /// Bit-identical to the trace-per-flow engine: self-flows are skipped
    /// and the first routing error aborts.
    pub fn accumulate(
        &self,
        flows: &[(u32, u32)],
        scratch: &mut StageScratch,
    ) -> Result<(), RouteError> {
        for &(src, dst) in flows {
            if src == dst {
                continue;
            }
            self.add_flow(src as usize, dst as usize, scratch)?;
        }
        Ok(())
    }

    /// Like [`RouteCache::accumulate`] but tolerates a degraded fabric:
    /// `NoRoute` flows are skipped and returned; structural errors abort.
    pub fn accumulate_partial(
        &self,
        flows: &[(u32, u32)],
        scratch: &mut StageScratch,
    ) -> Result<Vec<(u32, u32)>, RouteError> {
        let mut unroutable = Vec::new();
        for &(src, dst) in flows {
            if src == dst {
                continue;
            }
            match self.add_flow(src as usize, dst as usize, scratch) {
                Ok(()) => {}
                Err(RouteError::NoRoute { .. }) => unroutable.push((src, dst)),
                Err(e) => return Err(e),
            }
        }
        Ok(unroutable)
    }

    /// Resets `scratch`, accumulates `flows` and summarizes — the cached
    /// equivalent of [`crate::stage_hsd`].
    pub fn stage_hsd(
        &self,
        flows: &[(u32, u32)],
        scratch: &mut StageScratch,
    ) -> Result<StageHsd, RouteError> {
        scratch.reset();
        self.accumulate(flows, scratch)?;
        Ok(scratch.summarize())
    }
}

/// Owned, `Send + Sync` counterpart of [`RouteCache`]: the topology,
/// routing table and (optional) path arena behind `Arc`s, so one expensive
/// build can be shared read-only across threads and outlive any single
/// borrow scope. The campaign runner builds one of these per
/// (topology, engine, fault-set) group and every cell in the group borrows
/// a [`RouteCache`] view via [`SharedRouteCache::cache`].
#[derive(Clone)]
pub struct SharedRouteCache {
    topo: Arc<Topology>,
    rt: Arc<RoutingTable>,
    arena: Option<Arc<PathArena>>,
}

impl SharedRouteCache {
    /// Builds a shared cache with the default 256 MiB arena budget.
    pub fn new(topo: Arc<Topology>, rt: Arc<RoutingTable>) -> Result<Self, RouteError> {
        Self::with_budget(topo, rt, DEFAULT_ARENA_BUDGET_BYTES)
    }

    /// Builds a shared cache under an explicit arena budget; above the
    /// estimate cells fall back to on-demand tracing (still shared-safe).
    pub fn with_budget(
        topo: Arc<Topology>,
        rt: Arc<RoutingTable>,
        budget_bytes: usize,
    ) -> Result<Self, RouteError> {
        let arena = if PathArena::estimate_bytes(&topo, &rt) <= budget_bytes {
            Some(Arc::new(PathArena::build(&topo, &rt)?))
        } else {
            None
        };
        Ok(Self { topo, rt, arena })
    }

    /// A borrowed [`RouteCache`] view over the shared buffers. Cheap (two
    /// pointer copies + an `Arc` clone of the arena handle).
    pub fn cache(&self) -> RouteCache<'_> {
        RouteCache::from_shared(&self.topo, &self.rt, self.arena.clone())
    }

    /// The shared topology.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// The shared routing table.
    pub fn routing(&self) -> &Arc<RoutingTable> {
        &self.rt
    }

    /// True when an arena was built (estimate fit the budget).
    pub fn is_cached(&self) -> bool {
        self.arena.is_some()
    }

    /// The shared arena, when one was built.
    pub fn arena(&self) -> Option<&Arc<PathArena>> {
        self.arena.as_ref()
    }
}

/// Reusable per-worker flow-count buffer.
///
/// Holds one count slot per directed channel plus the list of channels
/// touched since the last reset, so [`StageScratch::reset`] clears only
/// touched slots — O(flows × hops) per stage instead of O(num_channels).
#[derive(Debug, Clone)]
pub struct StageScratch {
    counts: Vec<u32>,
    touched: Vec<u32>,
    /// Path buffer for the uncached fallback (see `RouteCache::add_flow`).
    path: Vec<u32>,
}

impl StageScratch {
    /// A zeroed scratch for a fabric with `num_channels` directed channels.
    pub fn new(num_channels: usize) -> Self {
        Self {
            counts: vec![0; num_channels],
            touched: Vec::new(),
            path: Vec::new(),
        }
    }

    /// A zeroed scratch sized for `cache`'s topology.
    pub fn for_cache(cache: &RouteCache<'_>) -> Self {
        Self::new(cache.topology().num_channels())
    }

    /// Clears only the channels touched since the last reset.
    pub fn reset(&mut self) {
        for &ch in &self.touched {
            self.counts[ch as usize] = 0;
        }
        self.touched.clear();
    }

    #[inline]
    fn bump(&mut self, ch: u32) {
        let slot = &mut self.counts[ch as usize];
        if *slot == 0 {
            self.touched.push(ch);
        }
        *slot += 1;
    }

    /// Current per-channel counts (all channels; untouched are zero).
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Summarizes the accumulated counts into stage metrics — identical to
    /// [`crate::LinkLoads::summarize`] over the same counts (untouched
    /// channels contribute zero to every statistic).
    pub fn summarize(&self) -> StageHsd {
        summarize_sparse(
            self.touched
                .iter()
                .map(|&ch| (ch, self.counts[ch as usize])),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftree_core::{DModK, Router};
    use ftree_topology::rlft::catalog;
    use ftree_topology::Topology;

    fn setup() -> (Topology, ftree_topology::RoutingTable) {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let rt = DModK.route_healthy(&topo);
        (topo, rt)
    }

    #[test]
    fn arena_matches_trace_for_all_pairs() {
        let (topo, rt) = setup();
        let arena = PathArena::build(&topo, &rt).unwrap();
        for src in 0..topo.num_hosts() {
            for dst in 0..topo.num_hosts() {
                let expect: Vec<u32> = rt
                    .trace(&topo, src, dst)
                    .unwrap()
                    .channels
                    .iter()
                    .map(|c| c.0)
                    .collect();
                assert_eq!(arena.channels(src, dst).unwrap(), &expect[..]);
            }
        }
        assert_eq!(arena.num_pairs(), topo.num_hosts() * topo.num_hosts());
    }

    #[test]
    fn estimate_brackets_actual_size() {
        let (topo, rt) = setup();
        let est = PathArena::estimate_bytes(&topo, &rt);
        let actual = PathArena::build(&topo, &rt).unwrap().size_bytes();
        // The sample is exact here (16 hosts, 256 pairs, 256 samples).
        assert!(
            est.abs_diff(actual) * 10 <= actual,
            "estimate {est} vs actual {actual}"
        );
    }

    #[test]
    fn budget_gate_falls_back_to_walking() {
        let (topo, rt) = setup();
        let cached = RouteCache::new(&topo, &rt).unwrap();
        assert!(cached.is_cached());
        let lazy = RouteCache::with_budget(&topo, &rt, 0).unwrap();
        assert!(!lazy.is_cached());
        // Identical stage metrics either way.
        let flows = [(0, 4), (1, 8), (2, 3), (0, 15)];
        let mut s1 = StageScratch::for_cache(&cached);
        let mut s2 = StageScratch::for_cache(&lazy);
        assert_eq!(
            cached.stage_hsd(&flows, &mut s1).unwrap(),
            lazy.stage_hsd(&flows, &mut s2).unwrap()
        );
    }

    #[test]
    fn scratch_reset_clears_only_touched() {
        let (topo, rt) = setup();
        let cache = RouteCache::new(&topo, &rt).unwrap();
        let mut scratch = StageScratch::for_cache(&cache);
        cache.stage_hsd(&[(0, 4), (1, 8)], &mut scratch).unwrap();
        assert!(scratch.counts().iter().any(|&c| c > 0));
        scratch.reset();
        assert!(scratch.counts().iter().all(|&c| c == 0));
        assert!(scratch.touched.is_empty());
    }

    #[test]
    fn cached_stage_matches_legacy_engine() {
        let (topo, rt) = setup();
        let cache = RouteCache::new(&topo, &rt).unwrap();
        let mut scratch = StageScratch::for_cache(&cache);
        let flows = [(0, 4), (1, 8), (3, 3), (7, 0), (15, 2)];
        let fast = cache.stage_hsd(&flows, &mut scratch).unwrap();
        let slow = crate::hsd::stage_hsd(&topo, &rt, &flows).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn shared_cache_views_match_direct_build() {
        let (topo, rt) = setup();
        let direct = RouteCache::new(&topo, &rt).unwrap();
        let mut s1 = StageScratch::for_cache(&direct);
        let flows = [(0, 4), (1, 8), (2, 3), (0, 15)];
        let want = direct.stage_hsd(&flows, &mut s1).unwrap();

        let shared = SharedRouteCache::new(Arc::new(topo), Arc::new(rt)).unwrap();
        assert!(shared.is_cached());
        // Two views of the same arena, usable from different threads.
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let shared = &shared;
                let flows = &flows;
                let want = &want;
                scope.spawn(move || {
                    let view = shared.cache();
                    let mut scratch = StageScratch::for_cache(&view);
                    assert_eq!(&view.stage_hsd(flows, &mut scratch).unwrap(), want);
                });
            }
        });
        // Budget gate applies to shared caches too.
        let lazy =
            SharedRouteCache::with_budget(shared.topology().clone(), shared.routing().clone(), 0)
                .unwrap();
        assert!(!lazy.is_cached());
        let view = lazy.cache();
        let mut scratch = StageScratch::for_cache(&view);
        assert_eq!(view.stage_hsd(&flows, &mut scratch).unwrap(), want);
    }

    #[test]
    fn degraded_pairs_marked_unroutable() {
        let (topo, rt) = setup();
        let mut rt = rt;
        // Sever destination 5 everywhere.
        for s in topo.switches() {
            rt.clear(s, 5);
        }
        let arena = PathArena::build(&topo, &rt).unwrap();
        assert!(arena.is_unroutable(0, 5));
        assert!(arena.channels(0, 5).is_none());
        assert!(!arena.is_unroutable(0, 4));
        // accumulate_partial reports them, cached or not.
        let cache = RouteCache::new(&topo, &rt).unwrap();
        let mut scratch = StageScratch::for_cache(&cache);
        let dead = cache
            .accumulate_partial(&[(0, 5), (0, 4)], &mut scratch)
            .unwrap();
        assert_eq!(dead, vec![(0, 5)]);
    }
}
