//! SVG rendering of fat-trees with per-link load coloring — Figure 1 as an
//! artifact.
//!
//! Draws hosts along the bottom, switch levels above, and every cable as a
//! line whose color encodes its worst-direction flow count: grey = idle,
//! black = one flow (congestion-free), red = hot spot. Intended for the
//! paper-scale *examples* (tens of nodes); bigger fabrics render but stop
//! being readable, exactly like real topology diagrams.

use std::fmt::Write as _;

use ftree_obs::ChannelTimeSeries;
use ftree_topology::{ChannelId, Direction, Topology};

use crate::hsd::LinkLoads;

/// Rendering options.
#[derive(Debug, Clone, Copy)]
pub struct SvgOptions {
    /// Horizontal pixel pitch between hosts.
    pub host_pitch: f64,
    /// Vertical pixel pitch between levels.
    pub level_pitch: f64,
    /// Annotate each up-going cable with its flow count.
    pub annotate_loads: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        Self {
            host_pitch: 48.0,
            level_pitch: 110.0,
            annotate_loads: true,
        }
    }
}

/// X-coordinate of a node: hosts by index, switches centered over the span
/// of hosts beneath them (parallel spines of a subtree are fanned out).
fn node_x(topo: &Topology, node: ftree_topology::NodeId, opts: &SvgOptions) -> f64 {
    let n = topo.node(node);
    if n.is_host() {
        return n.index_in_level as f64 * opts.host_pitch;
    }
    let level = n.level as usize;
    // Hosts beneath: those matching the m-digits at positions >= level.
    let below: Vec<usize> = (0..topo.num_hosts())
        .filter(|&h| topo.is_ancestor_of(node, h))
        .collect();
    let center = (below[0] + below[below.len() - 1]) as f64 / 2.0 * opts.host_pitch;
    // Fan out parallel switches of the same subtree by their w-digits.
    let copies: usize = (0..level)
        .map(|j| topo.spec().digit_radix(level, j) as usize)
        .product();
    if copies <= 1 {
        return center;
    }
    let copy_index: usize = {
        let mut idx = 0usize;
        let mut stride = 1usize;
        for j in 0..level {
            idx += n.digits[j] as usize * stride;
            stride *= topo.spec().digit_radix(level, j) as usize;
        }
        idx
    };
    let spread = (below.len() as f64 - 1.0) * opts.host_pitch * 0.8;
    let offset = (copy_index as f64 + 0.5) / copies as f64 - 0.5;
    center + offset * spread
}

fn load_color(load: u32) -> &'static str {
    match load {
        0 => "#c8c8c8",
        1 => "#1a1a1a",
        _ => "#d62718",
    }
}

/// Renders the topology (optionally with loads from one traffic stage) as
/// a standalone SVG document.
pub fn render_svg(topo: &Topology, loads: Option<&LinkLoads>, opts: &SvgOptions) -> String {
    let h = topo.height();
    let width = (topo.num_hosts() as f64 + 1.0) * opts.host_pitch;
    let height = (h as f64 + 1.5) * opts.level_pitch;
    let y_of = |level: usize| height - opts.level_pitch * (level as f64 + 0.75);

    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0}" height="{height:.0}" viewBox="0 0 {width:.0} {height:.0}" font-family="sans-serif" font-size="10">"#
    );
    let _ = writeln!(out, r#"<rect width="100%" height="100%" fill="white"/>"#);

    // Cables first (under the nodes).
    for link in topo.links() {
        let (x1, y1) = (
            node_x(topo, link.child, opts) + opts.host_pitch / 2.0,
            y_of(topo.node(link.child).level as usize),
        );
        let (x2, y2) = (
            node_x(topo, link.parent, opts) + opts.host_pitch / 2.0,
            y_of(link.level as usize),
        );
        let load = loads
            .map(|l| {
                let up = topo.channel(
                    topo.node(link.child).up[link.child_port as usize].link,
                    Direction::Up,
                );
                let down = topo.channel(up.link(), Direction::Down);
                l.count(up.index()).max(l.count(down.index()))
            })
            .unwrap_or(1);
        let _ = writeln!(
            out,
            r#"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="{}" stroke-width="{}"/>"#,
            load_color(load),
            if load > 1 { 2.5 } else { 1.2 }
        );
        if opts.annotate_loads && loads.is_some() && load > 0 && !topo.node(link.child).is_host() {
            let _ = writeln!(
                out,
                r#"<text x="{:.1}" y="{:.1}" fill="{}">{load}</text>"#,
                (x1 + x2) / 2.0 + 3.0,
                (y1 + y2) / 2.0,
                load_color(load)
            );
        }
    }

    // Nodes.
    for (i, node) in topo.nodes().iter().enumerate() {
        let id = ftree_topology::NodeId(i as u32);
        let x = node_x(topo, id, opts) + opts.host_pitch / 2.0;
        let y = y_of(node.level as usize);
        if node.is_host() {
            let _ = writeln!(
                out,
                r##"<circle cx="{x:.1}" cy="{y:.1}" r="7" fill="#4a6fa5"/><text x="{:.1}" y="{:.1}" text-anchor="middle">{}</text>"##,
                x,
                y + 20.0,
                node.index_in_level
            );
        } else {
            let _ = writeln!(
                out,
                r##"<rect x="{:.1}" y="{:.1}" width="26" height="14" fill="#e8b84b" stroke="#1a1a1a"/><text x="{x:.1}" y="{:.1}" text-anchor="middle">{}</text>"##,
                x - 13.0,
                y - 7.0,
                y - 12.0,
                topo.node_name(id)
            );
        }
    }
    out.push_str("</svg>\n");
    out
}

/// Heatmap rendering options.
#[derive(Debug, Clone, Copy)]
pub struct HeatmapOptions {
    /// Pixel width of one time-bucket cell.
    pub cell_w: f64,
    /// Pixel height of one channel row.
    pub cell_h: f64,
    /// Maximum channel rows rendered (busiest first). Channels beyond the
    /// cap are summarized in the header line, never silently dropped.
    pub max_channels: usize,
}

impl Default for HeatmapOptions {
    fn default() -> Self {
        Self {
            cell_w: 6.0,
            cell_h: 12.0,
            max_channels: 64,
        }
    }
}

/// White → blue utilization ramp; any packet drop in the bucket turns the
/// cell red regardless of utilization.
fn heat_color(util: f64, drops: u32) -> String {
    if drops > 0 {
        return "#d62718".to_string();
    }
    let u = util.clamp(0.0, 1.0);
    let r = (255.0 - 221.0 * u) as u32;
    let g = (255.0 - 180.0 * u) as u32;
    let b = (255.0 - 90.0 * u) as u32;
    format!("#{r:02x}{g:02x}{b:02x}")
}

/// Renders a per-channel utilization heatmap from a [`ChannelTimeSeries`]:
/// one row per channel (busiest first), one column per time bucket, cell
/// color encoding utilization (drops in red). `topo` supplies row labels;
/// without one, rows are labeled `ch N`.
pub fn render_heatmap_svg(
    topo: Option<&Topology>,
    ts: &ChannelTimeSeries,
    opts: &HeatmapOptions,
) -> String {
    let buckets = ts.num_buckets();
    // Busiest channels first: total busy picoseconds across the window.
    let mut order: Vec<(u32, u64)> = ts
        .channels()
        .map(|(ch, lane)| (ch, lane.busy_ps.iter().sum::<u64>()))
        .collect();
    order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let total = order.len();
    let shown: Vec<u32> = order
        .iter()
        .take(opts.max_channels)
        .map(|&(ch, _)| ch)
        .collect();

    let label_w = 190.0;
    let header_h = 34.0;
    let width = label_w + buckets as f64 * opts.cell_w + 10.0;
    let height = header_h + shown.len() as f64 * opts.cell_h + 26.0;
    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0}" height="{height:.0}" viewBox="0 0 {width:.0} {height:.0}" font-family="monospace" font-size="9">"#
    );
    let _ = writeln!(out, r#"<rect width="100%" height="100%" fill="white"/>"#);
    let bucket_us = ts.bucket_ps() as f64 / 1e6;
    let _ = writeln!(
        out,
        r#"<text x="4" y="14" font-size="11">channel utilization — {} of {} active channels, {} buckets x {:.3} us{}</text>"#,
        shown.len(),
        total,
        buckets,
        bucket_us,
        if total > shown.len() {
            format!(" ({} quieter channels omitted)", total - shown.len())
        } else {
            String::new()
        }
    );

    for (row, &ch) in shown.iter().enumerate() {
        let y = header_h + row as f64 * opts.cell_h;
        let label = match topo {
            Some(t) => t.channel_label(ChannelId(ch)),
            None => format!("ch {ch}"),
        };
        let _ = writeln!(
            out,
            r#"<text x="4" y="{:.1}" text-anchor="start">{}</text>"#,
            y + opts.cell_h - 3.0,
            label
        );
        let util = ts.utilization(ch);
        let lane = ts.lane(ch).expect("channel listed by ts.channels()");
        for b in 0..buckets {
            let u = util.get(b).copied().unwrap_or(0.0);
            let drops = lane.drops.get(b).copied().unwrap_or(0);
            if u == 0.0 && drops == 0 {
                continue; // keep the document small: idle cells stay white
            }
            let _ = writeln!(
                out,
                r#"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="{}"/>"#,
                label_w + b as f64 * opts.cell_w,
                y,
                opts.cell_w,
                opts.cell_h,
                heat_color(u, drops)
            );
        }
    }
    let _ = writeln!(
        out,
        r#"<text x="{label_w:.0}" y="{:.1}">t = 0</text><text x="{:.1}" y="{:.1}" text-anchor="end">t = {:.1} us</text>"#,
        height - 8.0,
        label_w + buckets as f64 * opts.cell_w,
        height - 8.0,
        buckets as f64 * bucket_us
    );
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftree_core::{DModK, Router};
    use ftree_topology::rlft::catalog;
    use ftree_topology::Topology;

    #[test]
    fn renders_wellformed_svg() {
        let topo = Topology::build(catalog::fig1_16());
        let svg = render_svg(&topo, None, &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One line per cable, one circle per host, one rect per switch.
        assert_eq!(svg.matches("<line").count(), topo.num_links());
        assert_eq!(svg.matches("<circle").count(), topo.num_hosts());
        assert_eq!(
            svg.matches("<rect ").count() - 1, // minus background
            topo.num_nodes() - topo.num_hosts()
        );
    }

    #[test]
    fn hot_links_rendered_red() {
        let topo = Topology::build(catalog::fig1_16());
        let rt = DModK.route_healthy(&topo);
        // Funnel two flows onto one leaf up-link (dsts congruent mod 4).
        let loads = LinkLoads::compute(&topo, &rt, &[(0, 4), (1, 8)]).unwrap();
        let svg = render_svg(&topo, Some(&loads), &SvgOptions::default());
        assert!(svg.contains("#d62718"), "hot link must be colored red");
        assert!(svg.contains("#c8c8c8"), "idle links must be grey");
    }

    #[test]
    fn heatmap_renders_busy_drop_and_idle_cells() {
        use ftree_obs::TimeSeriesConfig;
        let mut ts = ftree_obs::ChannelTimeSeries::new(TimeSeriesConfig {
            bucket_ps: 1_000,
            max_buckets: 64,
        });
        ts.record_busy(3, 0, 1_000); // bucket 0 fully busy
        ts.record_busy(3, 2_500, 250); // bucket 2 quarter busy
        ts.record_drop(7, 500);
        let svg = render_heatmap_svg(None, &ts, &HeatmapOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("ch 3") && svg.contains("ch 7"));
        assert!(svg.contains("#d62718"), "drop cell must be red");
        // Fully-busy cell hits the deep end of the ramp.
        assert!(svg.contains(&heat_color(1.0, 0)), "{svg}");
        // Exactly three non-idle cells are drawn (plus the background rect).
        assert_eq!(svg.matches("<rect").count(), 3 + 1);
    }

    #[test]
    fn heatmap_caps_rows_but_reports_the_cap() {
        use ftree_obs::TimeSeriesConfig;
        let mut ts = ftree_obs::ChannelTimeSeries::new(TimeSeriesConfig::default());
        for ch in 0..10u32 {
            ts.record_busy(ch, 0, 100 * (ch as u64 + 1));
        }
        let svg = render_heatmap_svg(
            None,
            &ts,
            &HeatmapOptions {
                max_channels: 4,
                ..HeatmapOptions::default()
            },
        );
        assert!(svg.contains("4 of 10 active channels"), "{svg}");
        assert!(svg.contains("6 quieter channels omitted"));
        // Busiest channel (9) is shown; quietest (0) is not.
        assert!(svg.contains("ch 9"));
        assert!(!svg.contains(">ch 0<"));
    }

    #[test]
    fn heatmap_labels_rows_from_topology() {
        use ftree_obs::TimeSeriesConfig;
        let topo = Topology::build(catalog::fig1_16());
        let mut ts = ftree_obs::ChannelTimeSeries::new(TimeSeriesConfig::default());
        ts.record_busy(0, 0, 64);
        let svg = render_heatmap_svg(Some(&topo), &ts, &HeatmapOptions::default());
        assert!(
            svg.contains("H0000"),
            "row labeled with channel ends: {svg}"
        );
    }

    #[test]
    fn annotation_can_be_disabled() {
        let topo = Topology::build(catalog::fig1_16());
        let rt = DModK.route_healthy(&topo);
        let loads = LinkLoads::compute(&topo, &rt, &[(0, 4)]).unwrap();
        let plain = render_svg(
            &topo,
            Some(&loads),
            &SvgOptions {
                annotate_loads: false,
                ..SvgOptions::default()
            },
        );
        assert_eq!(
            plain.matches("<text").count(),
            topo.num_nodes(),
            "only node labels, no load annotations"
        );
    }
}
