//! The original trace-per-flow serial HSD engine, preserved verbatim.
//!
//! This is the slow path the arena-backed engine replaced: every flow of
//! every stage re-traces its route through the LFTs ([`RoutingTable::trace`],
//! two `Vec` allocations per flow) into a freshly zeroed per-stage count
//! vector, stages run serially, and sweeps evaluate seeds one at a time.
//!
//! It stays in the tree for two reasons:
//!
//! 1. **Oracle** — `tests/arena_oracle.rs` asserts the fast engine is
//!    bit-identical to this one on every metric, fully and partially
//!    routed.
//! 2. **Baseline** — the `perf` bench bin times both engines on the same
//!    workload to produce the speedup figures in `BENCH_perf.json`.
//!
//! Do not "optimize" this module; its value is being the simple, obviously
//! correct formulation of the paper's Sec. II computation.

use ftree_collectives::PermutationSequence;
use ftree_core::NodeOrder;
use ftree_topology::{RouteError, RoutingTable, Topology};

use crate::hsd::{summarize_sparse, StageHsd};
use crate::sequence::{sampled_stages, SequenceHsd, SequenceOptions, SweepResult};

/// Serial trace-per-flow stage HSD.
pub fn stage_hsd(
    topo: &Topology,
    rt: &RoutingTable,
    flows: &[(u32, u32)],
) -> Result<StageHsd, RouteError> {
    let mut counts = vec![0u32; topo.num_channels()];
    for &(src, dst) in flows {
        if src == dst {
            continue;
        }
        let path = rt.trace(topo, src as usize, dst as usize)?;
        for ch in path.channels {
            counts[ch.index()] += 1;
        }
    }
    Ok(summarize_sparse(
        counts.iter().enumerate().map(|(i, &c)| (i as u32, c)),
    ))
}

/// Serial stage loop over the sampled stages of one sequence.
pub fn sequence_hsd(
    topo: &Topology,
    rt: &RoutingTable,
    order: &NodeOrder,
    seq: &dyn PermutationSequence,
    opts: SequenceOptions,
) -> Result<SequenceHsd, RouteError> {
    let n = order.num_ranks() as u32;
    let total = seq.num_stages(n);
    let mut per_stage_max = Vec::new();
    for s in sampled_stages(total, opts) {
        let stage = seq.stage(n, s);
        let flows = order.port_flows(&stage);
        per_stage_max.push(stage_hsd(topo, rt, &flows)?.max);
    }
    Ok(SequenceHsd::from_stage_maxima(per_stage_max))
}

/// Serial seed loop over a multi-order sweep.
pub fn random_order_sweep(
    topo: &Topology,
    rt: &RoutingTable,
    seq: &dyn PermutationSequence,
    seeds: &[u64],
    opts: SequenceOptions,
) -> Result<SweepResult, RouteError> {
    let mut per_seed = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let order = NodeOrder::random(topo, seed);
        per_seed.push(sequence_hsd(topo, rt, &order, seq, opts)?.avg_max);
    }
    Ok(SweepResult::from_runs(per_seed))
}
