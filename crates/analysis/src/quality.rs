//! Routing-quality report: how well a routing table spreads destinations
//! over the fabric's cables, healthy or degraded.
//!
//! The metric is the **per-channel destination load**: the number of
//! *distinct destinations* whose committed path crosses a directed channel,
//! maximized over all ordered host pairs. On a healthy RLFT the D-Mod-K
//! closed form spreads destinations perfectly (Zahavi's Theorems 1–3 build
//! on exactly this property); after cable failures the surviving cables
//! absorb the displaced destinations, and *how evenly* an engine spreads
//! them is what separates a first-fit repair from a load-aware one such as
//! `Dmodc`.
//!
//! Metrics are computed over **inter-switch channels only**: host cables
//! carry a fixed destination set (every up cable of a single-ported host
//! sees all `N-1` destinations, every down cable exactly one) regardless of
//! the engine, and would mask the differences this report exists to show.
//!
//! ```
//! use ftree_analysis::routing_quality;
//! use ftree_core::{Dmodc, Router};
//! use ftree_topology::{rlft::catalog, Topology};
//!
//! let topo = Topology::build(catalog::nodes_128());
//! let healthy = Dmodc.route_healthy(&topo);
//! let q = routing_quality(&topo, &healthy, Some(&healthy)).unwrap();
//! assert_eq!(q.displaced_pairs, 0);
//! assert_eq!(q.unreachable_pairs, 0);
//! ```

use serde::{Deserialize, Serialize};

use ftree_topology::{RouteError, RoutingTable, Topology};

/// Destination-load report for one routing table on one fabric state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoutingQuality {
    /// Label of the routing that produced the table (`RoutingTable::algorithm`).
    pub algorithm: String,
    /// Per-channel distinct-destination loads, indexed by channel id. Covers
    /// every channel (host cables included) so callers can drill down; the
    /// summary metrics below cover inter-switch channels only.
    #[serde(skip)]
    pub loads: Vec<u32>,
    /// `histogram[l]` = number of inter-switch channels with destination
    /// load exactly `l`.
    pub histogram: Vec<u64>,
    /// Maximum destination load over inter-switch channels.
    pub max_load: u32,
    /// 99th-percentile destination load over inter-switch channels: the
    /// smallest load `v` such that at least 99% of inter-switch channels
    /// carry at most `v` distinct destinations.
    pub p99_load: u32,
    /// Mean destination load over inter-switch channels.
    pub mean_load: f64,
    /// Number of inter-switch channels the summary metrics cover.
    pub switch_channels: usize,
    /// Ordered host pairs whose path differs from the baseline table's path
    /// (0 when no baseline is given). With a healthy D-Mod-K baseline this
    /// counts the pairs a fault-aware engine had to reroute.
    pub displaced_pairs: usize,
    /// Ordered host pairs with no route in the table (severed destinations).
    pub unreachable_pairs: usize,
}

impl RoutingQuality {
    /// One-line human summary, e.g. for bench logs.
    pub fn summary(&self) -> String {
        format!(
            "{}: max {} / p99 {} / mean {:.2} over {} switch channels, {} displaced, {} unreachable",
            self.algorithm,
            self.max_load,
            self.p99_load,
            self.mean_load,
            self.switch_channels,
            self.displaced_pairs,
            self.unreachable_pairs,
        )
    }
}

/// Computes the [`RoutingQuality`] of `rt` on `topo`, walking every ordered
/// host pair and counting each destination once per channel it crosses.
///
/// `baseline` (typically the healthy D-Mod-K table) enables the
/// displaced-pair count: a pair is displaced when both tables route it but
/// over different channel sequences. Pairs the table cannot route are
/// tallied in `unreachable_pairs`; structural errors (`Loop`, `NotUpDown`)
/// fail the whole report.
pub fn routing_quality(
    topo: &Topology,
    rt: &RoutingTable,
    baseline: Option<&RoutingTable>,
) -> Result<RoutingQuality, RouteError> {
    let n = topo.num_hosts();
    let num_channels = topo.num_channels();
    let mut loads = vec![0u32; num_channels];
    // Stamp array: seen[ch] == dst means channel `ch` already counted this
    // destination, so a destination crossed by many sources costs one.
    let mut seen = vec![u32::MAX; num_channels];
    let mut displaced = 0usize;
    let mut unreachable = 0usize;
    // Reusable buffers: a walk that fails mid-path must not leak counts.
    let mut path = Vec::new();
    let mut base_path = Vec::new();
    for dst in 0..n {
        for src in 0..n {
            if src == dst {
                continue;
            }
            path.clear();
            match rt.walk(topo, src, dst, |ch| path.push(ch)) {
                Ok(()) => {
                    for ch in &path {
                        let i = ch.index();
                        if seen[i] != dst as u32 {
                            seen[i] = dst as u32;
                            loads[i] += 1;
                        }
                    }
                    if let Some(base) = baseline {
                        base_path.clear();
                        match base.walk(topo, src, dst, |ch| base_path.push(ch)) {
                            Ok(()) => {
                                if base_path != path {
                                    displaced += 1;
                                }
                            }
                            // A pair only the baseline cannot route still
                            // counts as displaced: the path is new.
                            Err(RouteError::NoRoute { .. }) => displaced += 1,
                            Err(e) => return Err(e),
                        }
                    }
                }
                Err(RouteError::NoRoute { .. }) => unreachable += 1,
                Err(e) => return Err(e),
            }
        }
    }

    // Summaries over inter-switch channels (host cables excluded: their
    // destination sets are engine-invariant on single-ported hosts).
    let mut max_load = 0u32;
    let mut sum = 0u64;
    let mut switch_loads = Vec::new();
    for (ch, &l) in loads.iter().enumerate() {
        let link = topo.link(ch as u32 / 2);
        if topo.node(link.child).is_host() {
            continue;
        }
        switch_loads.push(l);
        max_load = max_load.max(l);
        sum += l as u64;
    }
    let switch_channels = switch_loads.len();
    let mut histogram = vec![0u64; max_load as usize + 1];
    for &l in &switch_loads {
        histogram[l as usize] += 1;
    }
    // p99 from the cumulative histogram: smallest load covering ≥99% of
    // the inter-switch channels.
    let threshold = (switch_channels as u64 * 99).div_ceil(100);
    let mut cum = 0u64;
    let mut p99_load = max_load;
    for (l, &count) in histogram.iter().enumerate() {
        cum += count;
        if cum >= threshold {
            p99_load = l as u32;
            break;
        }
    }
    let mean_load = if switch_channels == 0 {
        0.0
    } else {
        sum as f64 / switch_channels as f64
    };

    Ok(RoutingQuality {
        algorithm: rt.algorithm.clone(),
        loads,
        histogram,
        max_load,
        p99_load,
        mean_load,
        switch_channels,
        displaced_pairs: displaced,
        unreachable_pairs: unreachable,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftree_core::{DModK, Dmodc, Router};
    use ftree_topology::rlft::catalog;
    use ftree_topology::LinkFailures;

    #[test]
    fn healthy_dmodk_is_perfectly_balanced() {
        let topo = Topology::build(catalog::nodes_128());
        let rt = DModK.route_healthy(&topo);
        let q = routing_quality(&topo, &rt, Some(&rt)).unwrap();
        assert_eq!(q.displaced_pairs, 0, "table vs itself");
        assert_eq!(q.unreachable_pairs, 0);
        assert_eq!(
            q.histogram.iter().sum::<u64>(),
            q.switch_channels as u64,
            "histogram covers every inter-switch channel exactly once"
        );
        // Full-bisection RLFT: D-Mod-K gives every up cable of a leaf an
        // equal share of the remote destinations, so the load spread is
        // tight — p99 equals max.
        assert_eq!(q.p99_load, q.max_load);
        assert!(q.max_load < topo.num_hosts() as u32);
        assert!(q.mean_load > 0.0 && q.mean_load <= q.max_load as f64);
    }

    #[test]
    fn degraded_dmodc_beats_first_fit_on_max_load() {
        // Same fabric/failure as the router unit tests: one up cable of
        // leaf 0 on the 324-node cluster. First-fit piles every displaced
        // destination onto one survivor; Dmodc spreads them.
        let topo = Topology::build(catalog::nodes_324());
        let leaf0 = topo.node_at(1, 0).unwrap();
        let mut failures = LinkFailures::none(&topo);
        failures.fail_up_port(&topo, leaf0, 0).unwrap();

        let healthy = DModK.route_healthy(&topo);
        let ff = DModK.route(&topo, &failures).unwrap();
        let dc = Dmodc.route(&topo, &failures).unwrap();
        let qf = routing_quality(&topo, &ff, Some(&healthy)).unwrap();
        let qd = routing_quality(&topo, &dc, Some(&healthy)).unwrap();

        assert_eq!(qf.unreachable_pairs, 0);
        assert_eq!(qd.unreachable_pairs, 0);
        assert!(qf.displaced_pairs > 0, "a failure must displace pairs");
        assert!(qd.displaced_pairs > 0);
        assert!(
            qd.max_load < qf.max_load,
            "dmodc max {} must beat first-fit max {}",
            qd.max_load,
            qf.max_load
        );
    }

    #[test]
    fn severed_leaf_counts_unreachable_pairs() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let leaf0 = topo.node_at(1, 0).unwrap();
        let mut failures = LinkFailures::none(&topo);
        for port in 0..topo.node(leaf0).up.len() as u32 {
            failures.fail_up_port(&topo, leaf0, port).unwrap();
        }
        let rt = Dmodc.route(&topo, &failures).unwrap();
        let q = routing_quality(&topo, &rt, None).unwrap();
        // Hosts under the severed leaf can reach each other through it but
        // nobody else: each of the m hosts loses 2*(N-m) ordered pairs.
        let m = topo.spec().down_ports(1) as usize;
        let n = topo.num_hosts();
        assert_eq!(q.unreachable_pairs, 2 * m * (n - m));
        assert_eq!(q.displaced_pairs, 0, "no baseline given");
    }
}
