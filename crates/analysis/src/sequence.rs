//! Sequence-level HSD metrics and multi-order sweeps (Figures 3, Table 3).
//!
//! The paper's headline statistic is the *average over all stages of the
//! per-stage maximum HSD*, further averaged (with min/max error bars) over
//! 25 random MPI-node-orders. [`sequence_hsd`] computes the per-sequence
//! metric; [`random_order_sweep`] runs the 25-seed experiment in parallel.

use serde::{Deserialize, Serialize};

use ftree_collectives::PermutationSequence;
use ftree_core::NodeOrder;
use ftree_topology::{RouteError, RoutingTable, Topology};

use crate::arena::{RouteCache, StageScratch};

/// HSD metrics over a whole permutation sequence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SequenceHsd {
    /// Per-stage maximum HSD (the worst link in each stage).
    pub per_stage_max: Vec<u32>,
    /// Mean of `per_stage_max` — the paper's Figure 3 / Table 3 metric.
    pub avg_max: f64,
    /// Worst HSD seen in any stage.
    pub worst: u32,
    /// True iff every stage had HSD <= 1.
    pub congestion_free: bool,
}

impl SequenceHsd {
    pub(crate) fn from_stage_maxima(per_stage_max: Vec<u32>) -> Self {
        let worst = per_stage_max.iter().copied().max().unwrap_or(0);
        let avg_max = if per_stage_max.is_empty() {
            0.0
        } else {
            per_stage_max.iter().map(|&m| m as f64).sum::<f64>() / per_stage_max.len() as f64
        };
        Self {
            congestion_free: worst <= 1,
            per_stage_max,
            avg_max,
            worst,
        }
    }
}

/// Options controlling sequence evaluation.
#[derive(Debug, Clone, Copy)]
pub struct SequenceOptions {
    /// Evaluate at most this many stages, evenly sampled across the
    /// sequence (`usize::MAX` = all). Long sequences (full Shift on
    /// thousands of ranks) are cyclic in structure, so sampling preserves
    /// the statistic.
    pub max_stages: usize,
}

impl Default for SequenceOptions {
    fn default() -> Self {
        Self {
            max_stages: usize::MAX,
        }
    }
}

/// Indices of the stages evaluated under `opts`.
pub fn sampled_stages(total: usize, opts: SequenceOptions) -> Vec<usize> {
    if total <= opts.max_stages {
        (0..total).collect()
    } else {
        let stride = total as f64 / opts.max_stages as f64;
        (0..opts.max_stages)
            .map(|i| ((i as f64 * stride) as usize).min(total - 1))
            .collect()
    }
}

/// Computes the sequence HSD metric for one (routing, order, CPS) triple.
///
/// Builds a [`RouteCache`] (all-pairs path arena when it fits the memory
/// budget) and evaluates the sampled stages in parallel; results are
/// bit-identical to the serial trace-per-flow engine preserved in
/// [`crate::reference`].
pub fn sequence_hsd(
    topo: &Topology,
    rt: &RoutingTable,
    order: &NodeOrder,
    seq: &(dyn PermutationSequence + Sync),
    opts: SequenceOptions,
) -> Result<SequenceHsd, RouteError> {
    let cache = RouteCache::new(topo, rt)?;
    sequence_hsd_cached(&cache, order, seq, opts)
}

/// [`sequence_hsd`] over an already-built [`RouteCache`] — use this to
/// amortize the arena across many sequences of the same routing (sweeps,
/// Table 3's per-CPS columns).
///
/// Stages are independent: each worker accumulates into its own
/// [`StageScratch`] and yields only the stage summary, which is collected
/// back in stage order — so the merge is deterministic and the output
/// bit-identical to the serial loop regardless of worker count. When called
/// from inside another [`parallel_map`] worker (seed-level sweeps) the
/// stage loop runs serially instead of oversubscribing.
pub fn sequence_hsd_cached(
    cache: &RouteCache<'_>,
    order: &NodeOrder,
    seq: &(dyn PermutationSequence + Sync),
    opts: SequenceOptions,
) -> Result<SequenceHsd, RouteError> {
    let n = order.num_ranks() as u32;
    let total = seq.num_stages(n);
    let stages = sampled_stages(total, opts);
    let results: Vec<Result<u32, RouteError>> = parallel_map_init(
        &stages,
        || StageScratch::for_cache(cache),
        |scratch, &s| {
            let stage = seq.stage(n, s);
            let flows = order.port_flows(&stage);
            cache.stage_hsd(&flows, scratch).map(|h| h.max)
        },
    );
    let mut per_stage_max = Vec::with_capacity(results.len());
    for r in results {
        per_stage_max.push(r?);
    }
    Ok(SequenceHsd::from_stage_maxima(per_stage_max))
}

/// Aggregate of a multi-seed random-order sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    /// `avg_max` of each seed's sequence run.
    pub per_seed_avg_max: Vec<f64>,
    /// Mean of the per-seed averages (Figure 3's bar height).
    pub mean: f64,
    /// Minimum per-seed average (lower error bar).
    pub min: f64,
    /// Maximum per-seed average (upper error bar).
    pub max: f64,
}

impl SweepResult {
    pub(crate) fn from_runs(per_seed_avg_max: Vec<f64>) -> Self {
        let mean = per_seed_avg_max.iter().sum::<f64>() / per_seed_avg_max.len().max(1) as f64;
        let min = per_seed_avg_max
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let max = per_seed_avg_max.iter().copied().fold(0.0f64, f64::max);
        Self {
            per_seed_avg_max,
            mean,
            min,
            max,
        }
    }
}

/// Runs `seeds` random node-orders over `seq` in parallel and aggregates
/// (the paper's 25-random-order experiment).
pub fn random_order_sweep(
    topo: &Topology,
    rt: &RoutingTable,
    seq: &(dyn PermutationSequence + Sync),
    seeds: &[u64],
    opts: SequenceOptions,
) -> Result<SweepResult, RouteError> {
    // One arena shared by every seed; the per-seed sequence loops detect
    // they are inside a worker and stay serial.
    let cache = RouteCache::new(topo, rt)?;
    let results: Vec<Result<f64, RouteError>> = parallel_map(seeds, |&seed| {
        let order = NodeOrder::random(topo, seed);
        sequence_hsd_cached(&cache, &order, seq, opts).map(|r| r.avg_max)
    });
    let mut per_seed = Vec::with_capacity(results.len());
    for r in results {
        per_seed.push(r?);
    }
    Ok(SweepResult::from_runs(per_seed))
}

std::thread_local! {
    /// Set inside `parallel_map_init` workers so nested calls (e.g. the
    /// stage loop of a sequence evaluated inside a seed-level sweep) run
    /// serially instead of spawning threads² workers.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Process-wide worker-count override for [`parallel_map`] /
/// [`parallel_map_init`]: 0 = auto (`available_parallelism`).
static WORKERS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Overrides how many worker threads [`parallel_map`] uses (`0` restores
/// the default of one per available core). `--threads N` on the bench CLI
/// routes here; `1` forces fully serial execution, which is also what
/// deterministic byte-identity tests use to eliminate scheduling noise in
/// wall-clock-free outputs (results are bit-identical at any setting — this
/// knob only trades wall time).
pub fn set_parallelism(n: usize) {
    WORKERS.store(n, std::sync::atomic::Ordering::Relaxed);
}

fn worker_count(items: usize) -> usize {
    let configured = WORKERS.load(std::sync::atomic::Ordering::Relaxed);
    let cap = if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    cap.min(items.max(1))
}

/// Simple fork-join map over items using scoped threads (one chunk per
/// available core).
///
/// Output order matches input order. A panicking worker propagates through
/// [`std::thread::scope`] when the scope joins. Nested calls from inside a
/// worker degrade to a serial loop.
pub fn parallel_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    parallel_map_init(items, || (), |_, item| f(item))
}

/// [`parallel_map`] with per-worker state: `init` runs once per worker
/// thread (once total on the serial path) and `f` receives the worker's
/// state mutably — the idiom for reusable scratch buffers that must not be
/// shared across threads.
pub fn parallel_map_init<T: Sync, R: Send, S>(
    items: &[T],
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, &T) -> R + Sync,
) -> Vec<R> {
    let workers = worker_count(items.len());
    if workers <= 1 || IN_WORKER.with(|c| c.get()) {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (slot_chunk, item_chunk) in out.chunks_mut(chunk).zip(items.chunks(chunk)) {
            let f = &f;
            let init = &init;
            scope.spawn(move || {
                IN_WORKER.with(|c| c.set(true));
                let mut state = init();
                for (slot, item) in slot_chunk.iter_mut().zip(item_chunk) {
                    *slot = Some(f(&mut state, item));
                }
            });
        }
    });
    out.into_iter().map(|r| r.expect("slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftree_collectives::Cps;
    use ftree_core::{DModK, Job, Router};
    use ftree_topology::rlft::catalog;
    use ftree_topology::Topology;

    #[test]
    fn sampling_covers_short_sequences_fully() {
        assert_eq!(
            sampled_stages(5, SequenceOptions::default()),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn sampling_strides_long_sequences() {
        let s = sampled_stages(1000, SequenceOptions { max_stages: 10 });
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], 0);
        assert!(*s.last().unwrap() >= 900);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn theorem1_shift_is_congestion_free_on_128() {
        // The headline result, at the smallest paper scale: full Shift CPS,
        // D-Mod-K routing, topology order => HSD = 1 in every stage.
        let topo = Topology::build(catalog::nodes_128());
        let job = Job::contention_free(&topo);
        let r = sequence_hsd(
            &topo,
            &job.routing,
            &job.order,
            &Cps::Shift,
            SequenceOptions::default(),
        )
        .unwrap();
        assert!(r.congestion_free, "worst = {}", r.worst);
        assert_eq!(r.avg_max, 1.0);
        assert_eq!(r.per_stage_max.len(), 127);
    }

    #[test]
    fn random_order_congests_128() {
        let topo = Topology::build(catalog::nodes_128());
        let rt = DModK.route_healthy(&topo);
        let sweep = random_order_sweep(
            &topo,
            &rt,
            &Cps::Shift,
            &[1, 2, 3, 4],
            SequenceOptions { max_stages: 16 },
        )
        .unwrap();
        assert!(sweep.mean > 1.5, "random order should congest: {sweep:?}");
        assert!(sweep.min <= sweep.mean && sweep.mean <= sweep.max);
        assert_eq!(sweep.per_seed_avg_max.len(), 4);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u32> = (0..103).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_single_item() {
        assert_eq!(parallel_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn empty_sequence_metrics() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let job = Job::contention_free(&topo);
        // N = 1 job: no stages.
        let order = ftree_core::NodeOrder::topology_subset(vec![0]);
        let r = sequence_hsd(
            &topo,
            &job.routing,
            &order,
            &Cps::Shift,
            SequenceOptions::default(),
        )
        .unwrap();
        assert_eq!(r.per_stage_max.len(), 0);
        assert_eq!(r.avg_max, 0.0);
        assert!(r.congestion_free);
    }
}
