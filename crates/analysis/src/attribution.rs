//! Contention attribution: *which flows* share an oversubscribed channel.
//!
//! The HSD machinery in [`crate::hsd`] answers "how contended is this
//! stage?" with a single number; this module answers the follow-up a fabric
//! operator actually asks: **which channel** is oversubscribed, and **which
//! exact flow pairs** — `(src, dst)` end-ports plus their rank-order
//! positions — were routed through it. For a congestion-free configuration
//! (Theorems 1–3) every attribution comes back empty; for anything else the
//! report names the culprits, so a degraded fabric's hot spots can be traced
//! back to the rank placement and routing decisions that caused them.
//!
//! Routing uses the same NoRoute-tolerant walk as
//! [`crate::hsd::LinkLoads::compute_partial`], so attribution works on
//! degraded fabrics where some destinations are unreachable.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use ftree_core::NodeOrder;
use ftree_topology::{ChannelId, RouteError, RoutingTable, Topology};

use crate::hsd::{summarize_sparse, StageHsd};

/// One flow crossing a contended channel: source/destination end-ports plus
/// their positions in the job's rank order (when one was supplied).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRef {
    /// Source end-port (host index).
    pub src_port: u32,
    /// Destination end-port.
    pub dst_port: u32,
    /// MPI rank mapped onto `src_port`, if a [`NodeOrder`] was given and
    /// covers the port.
    pub src_rank: Option<u32>,
    /// MPI rank mapped onto `dst_port`.
    pub dst_rank: Option<u32>,
}

/// One oversubscribed directed channel and every flow routed through it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelContention {
    /// Directed channel index.
    pub channel: u32,
    /// Human-readable channel name, e.g. `H0003 -> S1[0,1] (up p0)`.
    pub label: String,
    /// The flows sharing the channel (always ≥ 2), in stage flow order.
    pub flows: Vec<FlowRef>,
}

impl ChannelContention {
    /// Flow count on this channel — its Hot-Spot Degree.
    pub fn hsd(&self) -> u32 {
        self.flows.len() as u32
    }
}

/// Contention attribution for one communication stage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageAttribution {
    /// Stage index within its sequence (0 for standalone stages).
    pub stage: usize,
    /// The stage's HSD summary (computed from the same walks).
    pub hsd: StageHsd,
    /// Channels carrying more than one flow, worst first (ties by channel
    /// index). Empty exactly when the stage is congestion-free.
    pub contended: Vec<ChannelContention>,
    /// Flows skipped because the fabric currently has no route for them.
    pub unroutable: Vec<(u32, u32)>,
}

impl StageAttribution {
    /// True when no channel carries more than one flow.
    pub fn is_congestion_free(&self) -> bool {
        self.contended.is_empty()
    }
}

/// Port → rank reverse map (`None` for ports outside the job).
fn rank_of_port(topo: &Topology, order: &NodeOrder) -> Vec<Option<u32>> {
    let mut v = vec![None; topo.num_hosts()];
    for (rank, &port) in order.map().iter().enumerate() {
        v[port as usize] = Some(rank as u32);
    }
    v
}

/// Attributes one stage: routes every flow, and for each channel with more
/// than one flow lists the exact flows sharing it. `order` (when given)
/// annotates flows with their rank positions; flows with no current route
/// are skipped and reported, structural routing errors still fail.
pub fn attribute_stage(
    topo: &Topology,
    rt: &RoutingTable,
    order: Option<&NodeOrder>,
    stage: usize,
    flows: &[(u32, u32)],
) -> Result<StageAttribution, RouteError> {
    let mut counts = vec![0u32; topo.num_channels()];
    let mut paths: Vec<(u32, u32, Vec<ChannelId>)> = Vec::new();
    let mut unroutable = Vec::new();
    let mut buf = Vec::new();
    for &(src, dst) in flows {
        if src == dst {
            continue;
        }
        buf.clear();
        match rt.walk(topo, src as usize, dst as usize, |ch| buf.push(ch)) {
            Ok(()) => {
                for ch in &buf {
                    counts[ch.index()] += 1;
                }
                paths.push((src, dst, buf.clone()));
            }
            Err(RouteError::NoRoute { .. }) => unroutable.push((src, dst)),
            Err(e) => return Err(e),
        }
    }

    let ranks = order.map(|o| rank_of_port(topo, o));
    let flow_ref = |src: u32, dst: u32| FlowRef {
        src_port: src,
        dst_port: dst,
        src_rank: ranks.as_ref().and_then(|r| r[src as usize]),
        dst_rank: ranks.as_ref().and_then(|r| r[dst as usize]),
    };

    let mut contended: Vec<ChannelContention> = Vec::new();
    for (ch, &count) in counts.iter().enumerate() {
        if count <= 1 {
            continue;
        }
        let ch = ch as u32;
        let sharing = paths
            .iter()
            .filter(|(_, _, path)| path.iter().any(|c| c.0 == ch))
            .map(|&(src, dst, _)| flow_ref(src, dst))
            .collect();
        contended.push(ChannelContention {
            channel: ch,
            label: topo.channel_label(ChannelId(ch)),
            flows: sharing,
        });
    }
    contended.sort_by(|a, b| b.hsd().cmp(&a.hsd()).then(a.channel.cmp(&b.channel)));

    Ok(StageAttribution {
        stage,
        hsd: summarize_sparse(counts.iter().enumerate().map(|(i, &c)| (i as u32, c))),
        contended,
        unroutable,
    })
}

/// Attributes every stage of a port-space stage sequence (as produced by
/// [`NodeOrder::port_flows`] over a CPS). Stage indices follow sequence
/// order.
pub fn attribute_sequence(
    topo: &Topology,
    rt: &RoutingTable,
    order: Option<&NodeOrder>,
    stages: &[Vec<(u32, u32)>],
) -> Result<Vec<StageAttribution>, RouteError> {
    stages
        .iter()
        .enumerate()
        .map(|(i, flows)| attribute_stage(topo, rt, order, i, flows))
        .collect()
}

fn fmt_endpoint(port: u32, rank: Option<u32>) -> String {
    match rank {
        Some(r) => format!("H{port:04} (rank {r})"),
        None => format!("H{port:04}"),
    }
}

/// Renders attributions as a Markdown report: one section per stage with
/// HSD > 1, a table of its oversubscribed channels and, per channel, the
/// exact flow pairs sharing it.
pub fn render_attribution_markdown(attributions: &[StageAttribution]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Contention attribution\n");
    let hot: Vec<&StageAttribution> = attributions
        .iter()
        .filter(|a| !a.contended.is_empty())
        .collect();
    let _ = writeln!(
        out,
        "{} stage(s) analyzed, {} with contention (HSD > 1).\n",
        attributions.len(),
        hot.len()
    );
    for a in hot {
        let _ = writeln!(
            out,
            "## Stage {} — max HSD {} ({} hot channel(s))\n",
            a.stage,
            a.hsd.max,
            a.contended.len()
        );
        if !a.unroutable.is_empty() {
            let _ = writeln!(
                out,
                "{} flow(s) currently unroutable and excluded.\n",
                a.unroutable.len()
            );
        }
        for c in &a.contended {
            let _ = writeln!(
                out,
                "- **{}** (channel {}, {} flows):",
                c.label,
                c.channel,
                c.hsd()
            );
            for f in &c.flows {
                let _ = writeln!(
                    out,
                    "  - {} -> {}",
                    fmt_endpoint(f.src_port, f.src_rank),
                    fmt_endpoint(f.dst_port, f.dst_rank)
                );
            }
        }
        out.push('\n');
    }
    if attributions.iter().all(|a| a.contended.is_empty()) {
        let _ = writeln!(
            out,
            "All stages congestion-free: no channel carries more than one flow."
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftree_core::{DModK, Router};
    use ftree_topology::rlft::catalog;

    /// The hand-built case: hosts 0 and 1 share leaf 0 and both send to
    /// destinations with the same D-Mod-K up-port residue, so exactly one
    /// up-going cable carries both flows.
    #[test]
    fn two_flows_one_channel_attributed_exactly() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let rt = DModK.route_healthy(&topo);
        let a = attribute_stage(&topo, &rt, None, 0, &[(0, 4), (1, 8)]).unwrap();
        assert_eq!(a.hsd.max, 2);
        assert_eq!(a.contended.len(), 1, "exactly one shared channel");
        let c = &a.contended[0];
        assert_eq!(c.hsd(), 2);
        let pairs: Vec<(u32, u32)> = c.flows.iter().map(|f| (f.src_port, f.dst_port)).collect();
        assert_eq!(pairs, vec![(0, 4), (1, 8)]);
        assert!(c.label.contains("up"), "the shared hop climbs: {}", c.label);
        assert!(a.unroutable.is_empty());
        assert!(!a.is_congestion_free());
    }

    #[test]
    fn congestion_free_stage_attributes_nothing() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let rt = DModK.route_healthy(&topo);
        let a = attribute_stage(&topo, &rt, None, 3, &[(0, 4), (1, 5), (2, 6), (3, 7)]).unwrap();
        assert!(a.is_congestion_free(), "{a:?}");
        assert_eq!(a.stage, 3);
        assert_eq!(a.hsd.max, 1);
        let md = render_attribution_markdown(&[a]);
        assert!(md.contains("congestion-free"));
    }

    #[test]
    fn rank_positions_follow_the_node_order() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let rt = DModK.route_healthy(&topo);
        // Reversed order: rank r sits on port n-1-r.
        let n = topo.num_hosts() as u32;
        let order = NodeOrder::from_map((0..n).rev().collect(), "reversed");
        let a = attribute_stage(&topo, &rt, Some(&order), 0, &[(0, 4), (1, 8)]).unwrap();
        let f = a.contended[0].flows[0];
        assert_eq!(f.src_port, 0);
        assert_eq!(f.src_rank, Some(n - 1));
        assert_eq!(f.dst_rank, Some(n - 1 - 4));
        let md = render_attribution_markdown(&[a]);
        assert!(md.contains(&format!("H0000 (rank {})", n - 1)), "{md}");
    }

    #[test]
    fn unroutable_flows_are_reported_not_fatal() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let mut rt = DModK.route_healthy(&topo);
        for s in topo.switches() {
            rt.clear(s, 5);
        }
        let a = attribute_stage(&topo, &rt, None, 0, &[(0, 5), (1, 8), (4, 5)]).unwrap();
        assert_eq!(a.unroutable, vec![(0, 5), (4, 5)]);
        assert_eq!(a.hsd.max, 1, "only the surviving flow is counted");
    }

    #[test]
    fn sequence_attribution_indexes_stages() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let rt = DModK.route_healthy(&topo);
        let stages = vec![vec![(0u32, 4u32), (1, 8)], vec![(0, 1)]];
        let attrs = attribute_sequence(&topo, &rt, None, &stages).unwrap();
        assert_eq!(attrs.len(), 2);
        assert_eq!(attrs[0].stage, 0);
        assert!(!attrs[0].is_congestion_free());
        assert!(attrs[1].is_congestion_free());
        // Serialization round-trip (report ingestion path).
        let json = serde_json::to_string(&attrs).unwrap();
        let back: Vec<StageAttribution> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, attrs);
    }
}
