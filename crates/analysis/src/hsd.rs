//! Per-stage Hot-Spot Degree computation.
//!
//! Paper Sec. II: given a topology, routing and traffic pattern, the
//! **Hot-Spot Degree** (HSD) of a link is the number of flows sent through
//! it. The paper computes HSD analytically with a tool built on `ibdm`;
//! this module is that tool. A stage is congestion-free iff its maximum HSD
//! over all links is 1 (each link serializes at most one flow).

use serde::{Deserialize, Serialize};

use ftree_topology::{Direction, RouteError, RoutingTable, Topology};

/// Flow counts per directed channel for one communication stage.
#[derive(Debug, Clone)]
pub struct LinkLoads {
    counts: Vec<u32>,
}

impl LinkLoads {
    /// Routes every `(src_port, dst_port)` flow and accumulates per-channel
    /// counts. Streams the LFT walk directly into the count vector —
    /// no per-flow path allocation.
    pub fn compute(
        topo: &Topology,
        rt: &RoutingTable,
        flows: &[(u32, u32)],
    ) -> Result<Self, RouteError> {
        let mut counts = vec![0u32; topo.num_channels()];
        for &(src, dst) in flows {
            if src == dst {
                continue;
            }
            rt.walk(topo, src as usize, dst as usize, |ch| {
                counts[ch.index()] += 1;
            })?;
        }
        Ok(Self { counts })
    }

    /// Like [`LinkLoads::compute`], but tolerates a degraded fabric: flows
    /// with no current route (a `NoRoute` trace, as left behind by severed
    /// destinations) are skipped and returned instead of failing the whole
    /// stage. Structural routing bugs (`Loop`, `NotUpDown`) still error.
    pub fn compute_partial(
        topo: &Topology,
        rt: &RoutingTable,
        flows: &[(u32, u32)],
    ) -> Result<(Self, Vec<(u32, u32)>), RouteError> {
        let mut counts = vec![0u32; topo.num_channels()];
        let mut unroutable = Vec::new();
        // One reusable buffer: a flow that fails mid-walk must not leave
        // partial counts behind.
        let mut path = Vec::new();
        for &(src, dst) in flows {
            if src == dst {
                continue;
            }
            path.clear();
            match rt.walk(topo, src as usize, dst as usize, |ch| path.push(ch)) {
                Ok(()) => {
                    for ch in &path {
                        counts[ch.index()] += 1;
                    }
                }
                Err(RouteError::NoRoute { .. }) => unroutable.push((src, dst)),
                Err(e) => return Err(e),
            }
        }
        Ok((Self { counts }, unroutable))
    }

    /// Flow count on one channel.
    #[inline]
    pub fn count(&self, channel: usize) -> u32 {
        self.counts[channel]
    }

    /// All per-channel counts.
    #[inline]
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Summarizes into the stage metrics.
    pub fn summarize(&self) -> StageHsd {
        summarize_sparse(self.counts.iter().enumerate().map(|(i, &c)| (i as u32, c)))
    }

    /// Records this stage's load distribution into `rec` under `label`.
    ///
    /// Convenience for one-shot use; per-stage loops should build one
    /// [`HsdObserver`] and reuse it — this constructs (and formats the
    /// metric names of) a fresh observer on every call.
    pub fn observe(&self, rec: &ftree_obs::Recorder, label: &str) {
        HsdObserver::new(rec, label).observe(self);
    }
}

/// Reusable handle set for recording per-stage HSD metrics: a histogram of
/// per-channel flow counts (`hsd.link_flows.<label>`, loaded channels
/// only), the running worst HSD seen (`hsd.max.<label>`) and a stage
/// counter (`hsd.stages.<label>`).
///
/// Resolving a metric handle formats its name and takes the registry lock;
/// doing that three times per stage dominated `observe` profiles. The
/// observer resolves the handles once and reuses them for every stage.
pub struct HsdObserver {
    link_flows: std::sync::Arc<ftree_obs::Histogram>,
    max: std::sync::Arc<ftree_obs::Gauge>,
    stages: std::sync::Arc<ftree_obs::Counter>,
}

impl HsdObserver {
    /// Resolves the three `<label>`-scoped handles from `rec`.
    pub fn new(rec: &ftree_obs::Recorder, label: &str) -> Self {
        Self {
            link_flows: rec.histogram(&format!("hsd.link_flows.{label}")),
            max: rec.gauge(&format!("hsd.max.{label}")),
            stages: rec.counter(&format!("hsd.stages.{label}")),
        }
    }

    /// Records one stage's accumulated loads.
    pub fn observe(&self, loads: &LinkLoads) {
        self.observe_counts(loads.counts());
    }

    /// Records one stage from a raw per-channel count slice (as exposed by
    /// [`crate::StageScratch::counts`]).
    pub fn observe_counts(&self, counts: &[u32]) {
        let mut max = 0u32;
        for &c in counts {
            if c > 0 {
                self.link_flows.record(c as u64);
                max = max.max(c);
            }
        }
        self.max.set(self.max.get().max(max as i64));
        self.stages.inc();
    }
}

/// Summarizes `(channel, count)` entries into stage metrics. Channels not
/// yielded are treated as carrying zero flows, so a sparse (touched-only)
/// iteration gives the same result as a full scan — every statistic is
/// insensitive to explicit zeros.
pub(crate) fn summarize_sparse(entries: impl Iterator<Item = (u32, u32)>) -> StageHsd {
    let mut max = 0u32;
    let mut max_up = 0u32;
    let mut max_down = 0u32;
    let mut contended = 0usize;
    let mut total_flow_hops = 0u64;
    for (ch, c) in entries {
        if c > max {
            max = c;
        }
        match ftree_topology::ChannelId(ch).direction() {
            Direction::Up => max_up = max_up.max(c),
            Direction::Down => max_down = max_down.max(c),
        }
        if c > 1 {
            contended += 1;
        }
        total_flow_hops += c as u64;
    }
    StageHsd {
        max,
        max_up,
        max_down,
        contended_channels: contended,
        total_flow_hops,
    }
}

/// Stage-level HSD summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageHsd {
    /// Maximum flows on any directed channel — the paper's per-stage HSD.
    pub max: u32,
    /// Maximum over up-going channels only (Theorem 1 territory).
    pub max_up: u32,
    /// Maximum over down-going channels only (Theorem 2 territory).
    pub max_down: u32,
    /// Number of channels carrying more than one flow (hot spots).
    pub contended_channels: usize,
    /// Sum of flow counts over all channels (total hops consumed).
    pub total_flow_hops: u64,
}

impl StageHsd {
    /// Congestion-free per the paper's criterion.
    #[inline]
    pub fn is_congestion_free(&self) -> bool {
        self.max <= 1
    }
}

/// Convenience: route a stage's flows and summarize in one call.
pub fn stage_hsd(
    topo: &Topology,
    rt: &RoutingTable,
    flows: &[(u32, u32)],
) -> Result<StageHsd, RouteError> {
    Ok(LinkLoads::compute(topo, rt, flows)?.summarize())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftree_core::{DModK, Router};
    use ftree_topology::rlft::catalog;
    use ftree_topology::Topology;

    #[test]
    fn empty_stage_is_trivially_free() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let rt = DModK.route_healthy(&topo);
        let hsd = stage_hsd(&topo, &rt, &[]).unwrap();
        assert_eq!(hsd.max, 0);
        assert!(hsd.is_congestion_free());
        assert_eq!(hsd.total_flow_hops, 0);
    }

    #[test]
    fn self_flows_ignored() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let rt = DModK.route_healthy(&topo);
        let hsd = stage_hsd(&topo, &rt, &[(3, 3), (5, 5)]).unwrap();
        assert_eq!(hsd.max, 0);
    }

    #[test]
    fn two_flows_sharing_a_cable_counted() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let rt = DModK.route_healthy(&topo);
        // Hosts 0 and 1 share leaf 0; both send to destinations with the
        // same D-Mod-K up-port residue (dst mod 4): dst 4 and dst 8.
        let hsd = stage_hsd(&topo, &rt, &[(0, 4), (1, 8)]).unwrap();
        assert_eq!(hsd.max, 2, "both flows climb the same up-going cable");
        assert_eq!(hsd.max_up, 2);
        assert_eq!(hsd.max_down, 1);
        assert_eq!(hsd.contended_channels, 1);
    }

    #[test]
    fn disjoint_flows_are_free() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let rt = DModK.route_healthy(&topo);
        let hsd = stage_hsd(&topo, &rt, &[(0, 4), (1, 5), (2, 6), (3, 7)]).unwrap();
        assert!(hsd.is_congestion_free(), "{hsd:?}");
    }

    #[test]
    fn observe_records_distribution() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let rt = DModK.route_healthy(&topo);
        let loads = LinkLoads::compute(&topo, &rt, &[(0, 4), (1, 8)]).unwrap();
        let rec = ftree_obs::Recorder::new();
        loads.observe(&rec, "test");
        let snap = rec.snapshot();
        assert_eq!(snap.counters["hsd.stages.test"], 1);
        assert_eq!(snap.gauges["hsd.max.test"], 2);
        let h = &snap.histograms["hsd.link_flows.test"];
        // Two 4-hop flows sharing one up cable: 7 distinct loaded channels.
        assert_eq!(h.max, 2);
        assert!(h.count >= 2);
        // A second stage keeps the running max.
        LinkLoads::compute(&topo, &rt, &[(0, 1)])
            .unwrap()
            .observe(&rec, "test");
        let snap = rec.snapshot();
        assert_eq!(snap.counters["hsd.stages.test"], 2);
        assert_eq!(snap.gauges["hsd.max.test"], 2);
    }

    #[test]
    fn compute_partial_skips_severed_destinations_with_correct_counts() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let mut rt = DModK.route_healthy(&topo);
        // Sever destination 5: clear every switch entry toward it.
        for s in topo.switches() {
            rt.clear(s, 5);
        }
        let flows = [(0, 5), (1, 8), (4, 5), (0, 15)];
        let (loads, unroutable) = LinkLoads::compute_partial(&topo, &rt, &flows).unwrap();
        assert_eq!(unroutable, vec![(0, 5), (4, 5)]);
        // Counts must equal routing only the surviving flows — the severed
        // flows' partial walks (host→leaf before the missing entry) must
        // not leak into the counts.
        let surviving = LinkLoads::compute(&topo, &rt, &[(1, 8), (0, 15)]).unwrap();
        assert_eq!(loads.counts(), surviving.counts());
        assert_eq!(loads.summarize(), surviving.summarize());
    }

    #[test]
    fn compute_partial_on_healthy_fabric_matches_compute() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let rt = DModK.route_healthy(&topo);
        let flows = [(0, 4), (1, 8), (3, 3), (7, 0)];
        let (loads, unroutable) = LinkLoads::compute_partial(&topo, &rt, &flows).unwrap();
        assert!(unroutable.is_empty());
        assert_eq!(
            loads.counts(),
            LinkLoads::compute(&topo, &rt, &flows).unwrap().counts()
        );
    }

    #[test]
    fn compute_partial_propagates_structural_errors() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let mut rt = DModK.route_healthy(&topo);
        // Corrupt a leaf to bounce dst 0 back down at the wrong host: the
        // walk violates up*/down* (or loops) and must abort the stage
        // instead of being skipped like a missing route.
        let leaf = topo.node_at(1, 1).unwrap();
        rt.set(leaf, 0, ftree_topology::PortRef::Down(0));
        let err = LinkLoads::compute_partial(&topo, &rt, &[(4, 0)]).unwrap_err();
        assert!(matches!(
            err,
            RouteError::NotUpDown { .. } | RouteError::Loop { .. }
        ));
    }

    #[test]
    fn flow_hops_accumulate() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let rt = DModK.route_healthy(&topo);
        // intra-leaf = 2 hops, cross-leaf = 4 hops
        let hsd = stage_hsd(&topo, &rt, &[(0, 1), (0, 15)]).unwrap();
        assert_eq!(hsd.total_flow_hops, 2 + 4);
    }
}
