//! Detailed contention reports: where the hot spots are, not just how hot.
//!
//! The paper's Figure 1 annotates individual links; operators debugging a
//! live fabric need the same view at scale. [`DetailedReport`] breaks the
//! per-channel loads down by tree level and direction, histograms them,
//! and names the worst offenders.

use serde::{Deserialize, Serialize};

use ftree_topology::{ChannelId, Direction, Topology};

use crate::hsd::LinkLoads;

/// A contended channel, for operator reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorstLink {
    /// Directed channel id.
    pub channel: u32,
    /// Flows crossing it.
    pub load: u32,
    /// Direction relative to the tree.
    pub up: bool,
    /// Tree level of the link (level of its upper endpoint).
    pub level: u8,
    /// Human-readable `source -> target` description.
    pub description: String,
}

/// Level/direction breakdown of a stage's link loads.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetailedReport {
    /// Max load on up-going channels into each level (index 0 unused;
    /// index `l` = links between levels `l-1` and `l`).
    pub up_max_per_level: Vec<u32>,
    /// Max load on down-going channels out of each level.
    pub down_max_per_level: Vec<u32>,
    /// `histogram[load]` = number of channels carrying exactly `load`
    /// flows (loads above the last bucket are clamped into it).
    pub histogram: Vec<usize>,
    /// The `k` most loaded channels, descending.
    pub worst: Vec<WorstLink>,
}

impl DetailedReport {
    /// Builds the report from computed loads.
    pub fn new(topo: &Topology, loads: &LinkLoads, top_k: usize) -> Self {
        let h = topo.height();
        let mut up_max = vec![0u32; h + 1];
        let mut down_max = vec![0u32; h + 1];
        let max_bucket = 16usize;
        let mut histogram = vec![0usize; max_bucket + 1];

        let mut indexed: Vec<(u32, u32)> = Vec::new(); // (load, channel)
        for (i, &load) in loads.counts().iter().enumerate() {
            let ch = ChannelId(i as u32);
            let link = topo.link(ch.link());
            let level = link.level as usize;
            match ch.direction() {
                Direction::Up => up_max[level] = up_max[level].max(load),
                Direction::Down => down_max[level] = down_max[level].max(load),
            }
            histogram[(load as usize).min(max_bucket)] += 1;
            if load > 0 {
                indexed.push((load, i as u32));
            }
        }
        indexed.sort_unstable_by(|a, b| b.cmp(a));
        let worst = indexed
            .into_iter()
            .take(top_k)
            .map(|(load, chid)| {
                let ch = ChannelId(chid);
                let link = topo.link(ch.link());
                let (src, _) = topo.channel_source(ch);
                let dst = topo.channel_target(ch);
                WorstLink {
                    channel: chid,
                    load,
                    up: ch.direction() == Direction::Up,
                    level: link.level,
                    description: format!("{} -> {}", topo.node_name(src), topo.node_name(dst)),
                }
            })
            .collect();

        Self {
            up_max_per_level: up_max,
            down_max_per_level: down_max,
            histogram,
            worst,
        }
    }

    /// Number of idle channels.
    pub fn idle_channels(&self) -> usize {
        self.histogram[0]
    }
}

/// Analytic stage-completion model: with `max_link_load` flows sharing the
/// hottest link, a synchronized stage of `bytes`-sized messages completes
/// in approximately
///
/// ```text
/// max(bytes / host_bw, max_link_load * bytes / link_bw)
/// ```
///
/// picoseconds (bandwidths in MB/s). This is the fluid-model limit; the
/// root-level test `analysis_model` cross-validates it against the actual
/// fluid simulation.
pub fn predicted_stage_time_ps(
    bytes: u64,
    max_link_load: u32,
    host_bw_mbps: u64,
    link_bw_mbps: u64,
) -> u64 {
    let host = bytes * 1_000_000 / host_bw_mbps;
    let link = bytes * 1_000_000 * u64::from(max_link_load.max(1)) / link_bw_mbps;
    host.max(link)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hsd::LinkLoads;
    use ftree_core::{DModK, Router};
    use ftree_topology::rlft::catalog;
    use ftree_topology::Topology;

    fn loads_for(flows: &[(u32, u32)]) -> (Topology, LinkLoads) {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let rt = DModK.route_healthy(&topo);
        let loads = LinkLoads::compute(&topo, &rt, flows).unwrap();
        (topo, loads)
    }

    #[test]
    fn hot_link_identified_by_name_and_level() {
        // Two flows funneled onto leaf 0's up-port 0.
        let (topo, loads) = loads_for(&[(0, 4), (1, 8)]);
        let report = DetailedReport::new(&topo, &loads, 3);
        assert_eq!(report.up_max_per_level[2], 2, "hot link climbs to level 2");
        assert_eq!(report.down_max_per_level[2], 1);
        let top = &report.worst[0];
        assert_eq!(top.load, 2);
        assert!(top.up);
        assert!(
            top.description.starts_with("S1[0,0]"),
            "{}",
            top.description
        );
    }

    #[test]
    fn histogram_counts_every_channel() {
        let (topo, loads) = loads_for(&[(0, 4)]);
        let report = DetailedReport::new(&topo, &loads, 1);
        let total: usize = report.histogram.iter().sum();
        assert_eq!(total, topo.num_channels());
        // One 4-hop path: 4 channels loaded, rest idle.
        assert_eq!(report.idle_channels(), topo.num_channels() - 4);
        assert_eq!(report.histogram[1], 4);
    }

    #[test]
    fn predicted_time_host_bound_when_free() {
        // HSD 1: the PCIe bound dominates (3250 < 4000).
        let t = predicted_stage_time_ps(1 << 20, 1, 3250, 4000);
        assert_eq!(t, (1u64 << 20) * 1_000_000 / 3250);
    }

    #[test]
    fn predicted_time_link_bound_when_hot() {
        let free = predicted_stage_time_ps(1 << 20, 1, 3250, 4000);
        let hot = predicted_stage_time_ps(1 << 20, 18, 3250, 4000);
        assert_eq!(hot, 18 * (1u64 << 20) * 1_000_000 / 4000);
        assert!(hot > 10 * free);
    }
}
