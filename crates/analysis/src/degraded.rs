//! Degraded-mode HSD: hot-spot analysis of a fabric with dead cables.
//!
//! A failed cable has two analytic consequences the healthy-fabric model
//! cannot express:
//!
//! * flows whose destination became unreachable have **no route at all** —
//!   they must be excluded (and reported), not error the whole stage,
//! * surviving flows detour over sibling parallel cables, concentrating
//!   load — the *residual HSD* quantifies how far the configuration drifted
//!   from the contention-free guarantee.
//!
//! [`degraded_stage_hsd`] computes both for one stage;
//! [`degraded_sequence_hsd`] averages a whole CPS over a (possibly sampled)
//! stage sequence, mirroring `sequence_hsd` for healthy fabrics.

use serde::{Deserialize, Serialize};

use ftree_collectives::PermutationSequence;
use ftree_core::NodeOrder;
use ftree_topology::{RouteError, RoutingTable, Topology};

use crate::hsd::{LinkLoads, StageHsd};
use crate::sequence::{sampled_stages, SequenceOptions};

/// Per-stage HSD of a degraded fabric.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradedStageHsd {
    /// HSD over the flows that still have routes.
    pub hsd: StageHsd,
    /// Flows that were routed.
    pub routed_flows: usize,
    /// `(src, dst)` flows skipped because no route currently exists.
    pub unroutable: Vec<(u32, u32)>,
}

impl DegradedStageHsd {
    /// Congestion-free *and* nothing was skipped: the degraded fabric still
    /// gives the paper's full guarantee for this stage.
    #[inline]
    pub fn fully_served_congestion_free(&self) -> bool {
        self.unroutable.is_empty() && self.hsd.is_congestion_free()
    }
}

/// Routes one stage on a degraded fabric, skipping unroutable flows.
pub fn degraded_stage_hsd(
    topo: &Topology,
    rt: &RoutingTable,
    flows: &[(u32, u32)],
) -> Result<DegradedStageHsd, RouteError> {
    let (loads, unroutable) = LinkLoads::compute_partial(topo, rt, flows)?;
    let routed = flows.iter().filter(|&&(s, d)| s != d).count() - unroutable.len();
    Ok(DegradedStageHsd {
        hsd: loads.summarize(),
        routed_flows: routed,
        unroutable,
    })
}

/// Sequence-level summary of a CPS on a degraded fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradedSequenceHsd {
    /// Stages evaluated (after sampling).
    pub stages: usize,
    /// Mean over stages of the per-stage maximum HSD.
    pub avg_max: f64,
    /// Worst per-stage maximum HSD.
    pub worst: u32,
    /// Stages in which every flow had a route.
    pub fully_served_stages: usize,
    /// Total flows skipped as unroutable, summed over stages.
    pub unroutable_flows: usize,
}

/// Runs a CPS over the node order on a degraded fabric and aggregates the
/// per-stage residual HSD, tolerating unreachable destinations.
pub fn degraded_sequence_hsd(
    topo: &Topology,
    rt: &RoutingTable,
    order: &NodeOrder,
    seq: &dyn PermutationSequence,
    options: SequenceOptions,
) -> Result<DegradedSequenceHsd, RouteError> {
    let n = order.num_ranks() as u32;
    let indices = sampled_stages(seq.num_stages(n), options);
    let mut avg = 0.0;
    let mut worst = 0;
    let mut fully_served = 0;
    let mut unroutable = 0;
    for &s in &indices {
        let flows = order.port_flows(&seq.stage(n, s));
        let stage = degraded_stage_hsd(topo, rt, &flows)?;
        avg += stage.hsd.max as f64;
        worst = worst.max(stage.hsd.max);
        if stage.unroutable.is_empty() {
            fully_served += 1;
        }
        unroutable += stage.unroutable.len();
    }
    let stages = indices.len();
    Ok(DegradedSequenceHsd {
        stages,
        avg_max: if stages == 0 {
            0.0
        } else {
            avg / stages as f64
        },
        worst,
        fully_served_stages: fully_served,
        unroutable_flows: unroutable,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftree_collectives::Cps;
    use ftree_core::{DModK, Router};
    use ftree_topology::failures::LinkFailures;
    use ftree_topology::rlft::catalog;
    use ftree_topology::PortRef;

    #[test]
    fn healthy_fabric_matches_plain_hsd() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let rt = DModK.route_healthy(&topo);
        let order = NodeOrder::topology(&topo);
        let flows = order.port_flows(&Cps::Shift.stage(16, 3));
        let degraded = degraded_stage_hsd(&topo, &rt, &flows).unwrap();
        let plain = crate::hsd::stage_hsd(&topo, &rt, &flows).unwrap();
        assert_eq!(degraded.hsd, plain);
        assert!(degraded.unroutable.is_empty());
        assert_eq!(degraded.routed_flows, 16);
        assert!(degraded.fully_served_congestion_free());
    }

    #[test]
    fn severed_host_is_skipped_and_reported() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        // Cut host 5's only cable: flows to/from it become unroutable.
        let mut failures = LinkFailures::none(&topo);
        let leaf = topo.node(topo.host(5)).up[0].peer;
        let port = topo.node(topo.host(5)).up[0].peer_port;
        failures.fail_down_port(&topo, leaf, port).unwrap();
        let rt = DModK.route(&topo, &failures).unwrap();

        let flows: Vec<(u32, u32)> = (0..16).map(|i| (i, (i + 1) % 16)).collect();
        let degraded = degraded_stage_hsd(&topo, &rt, &flows).unwrap();
        assert_eq!(degraded.unroutable, vec![(4, 5)]);
        assert_eq!(degraded.routed_flows, 15);
        assert!(!degraded.fully_served_congestion_free());
    }

    #[test]
    fn detours_raise_residual_hsd_but_sequence_stays_served() {
        let topo = Topology::build(catalog::nodes_324());
        let order = NodeOrder::topology(&topo);
        // Fail one leaf→spine cable: every destination that preferred it
        // detours over the 17 sibling spines; nothing becomes unreachable.
        let mut failures = LinkFailures::none(&topo);
        let leaf = topo.node_at(1, 0).unwrap();
        failures.fail_up_port(&topo, leaf, 0).unwrap();
        let rt = DModK.route(&topo, &failures).unwrap();

        let seq = degraded_sequence_hsd(
            &topo,
            &rt,
            &order,
            &Cps::Shift,
            SequenceOptions { max_stages: 24 },
        )
        .unwrap();
        assert_eq!(seq.stages, 24);
        assert_eq!(seq.unroutable_flows, 0);
        assert_eq!(seq.fully_served_stages, 24);
        // The detour doubles up on some sibling cable in at least one stage.
        assert!(seq.worst >= 2, "residual contention expected, got {seq:?}");
        // ...but stays a local perturbation, not a collapse.
        assert!(seq.avg_max < 4.0, "{seq:?}");
    }

    #[test]
    fn structural_errors_still_propagate() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let mut rt = DModK.route_healthy(&topo);
        // Corrupt a leaf entry to point back down at the wrong host: the
        // trace violates up*/down* and must surface, not be skipped.
        let leaf = topo.node_at(1, 1).unwrap();
        rt.set(leaf, 0, PortRef::Down(0));
        let flows = vec![(4u32, 0u32)];
        match degraded_stage_hsd(&topo, &rt, &flows) {
            Err(RouteError::NotUpDown { .. }) | Err(RouteError::Loop { .. }) => {}
            other => panic!("expected a structural routing error, got {other:?}"),
        }
    }
}
