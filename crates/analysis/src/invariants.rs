//! Routing invariant checker: machine-checked proofs that a (possibly
//! incrementally repaired) routing table is safe to carry traffic under a
//! given failure set.
//!
//! Three invariants, checked for every ordered host pair:
//!
//! 1. **Loop-freedom** — every programmed walk is a finite up\*/down\* path:
//!    it never revisits the up phase after descending (the fat-tree
//!    deadlock/livelock hazard) and terminates within the structural hop
//!    bound. Both failure modes surface as [`RouteError::Loop`] /
//!    [`RouteError::NotUpDown`] from [`RoutingTable::walk`].
//! 2. **Blackhole-freedom** — a pair the fabric can physically connect
//!    ([`Reachability`]) is actually routed: no missing LFT entry on the
//!    way, and no traversed cable is in the failure set (a stale entry
//!    pointing at a dead cable silently eats every packet).
//! 3. **Reachability-completeness** — the table is unroutable *exactly* for
//!    the pairs [`Reachability`] proves physically disconnected: the
//!    table's unreachable set neither exceeds the physical one (a repair
//!    that forgot an entry) nor undercuts it (a walk that "succeeds"
//!    through a dead cable).
//!
//! The checker is pure analysis — it never mutates the table — and is
//! designed to run as a [`ftree_core::SweepCheck`] after every
//! subnet-manager sweep ([`sweep_check`]), as a per-cell verdict in the
//! chaos campaign bench, and as an adversarial test oracle (hand-built
//! looping/blackholed tables must fail it; see `tests/invariants.rs`).

use serde::{Deserialize, Serialize};

use ftree_core::Reachability;
use ftree_topology::{LinkFailures, RouteError, RoutingTable, Topology};

use crate::sequence::parallel_map;

/// Upper bound on the violation samples kept per report (totals are always
/// exact; the samples just keep reports readable).
const MAX_SAMPLES: usize = 16;

/// One concrete invariant violation, identified by the ordered host pair
/// that exposes it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum InvariantViolation {
    /// The walk exceeded the structural hop bound — a forwarding loop.
    RoutingLoop {
        /// Source host.
        src: usize,
        /// Destination host.
        dst: usize,
    },
    /// The walk went up after going down — an up\*/down\* ordering break
    /// (deadlock hazard even when it eventually terminates).
    NotUpDown {
        /// Source host.
        src: usize,
        /// Destination host.
        dst: usize,
    },
    /// A physically reachable pair hits a node with no LFT entry: packets
    /// are dropped at that node.
    MissingRoute {
        /// Source host.
        src: usize,
        /// Destination host.
        dst: usize,
    },
    /// The walk crosses a cable that is in the failure set: a stale entry
    /// blackholes every packet of the pair.
    DeadLink {
        /// Source host.
        src: usize,
        /// Destination host.
        dst: usize,
        /// The failed cable the walk crossed.
        link: u32,
    },
    /// The table routes a pair that [`Reachability`] proves physically
    /// disconnected over live cables only — a checker-model inconsistency
    /// (should be impossible; kept so the equality is verified both ways).
    PhantomRoute {
        /// Source host.
        src: usize,
        /// Destination host.
        dst: usize,
    },
}

/// Structured verdict of one invariant check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InvariantReport {
    /// Algorithm label of the checked table.
    pub algorithm: String,
    /// Ordered host pairs examined (`n * (n - 1)`).
    pub pairs_checked: usize,
    /// Pairs the physical fabric cannot connect (per [`Reachability`]).
    pub physically_unreachable: usize,
    /// Pairs the table declines to route (a `NoRoute` on the way).
    pub table_unroutable: usize,
    /// No walk loops or breaks up\*/down\* ordering.
    pub loop_free: bool,
    /// Every physically reachable pair walks to its destination over live
    /// cables only.
    pub blackhole_free: bool,
    /// The table's unroutable set equals the physically unreachable set.
    pub reachability_complete: bool,
    /// Total violations found (exact).
    pub violations_total: usize,
    /// Up to [`MAX_SAMPLES`] concrete violations, in source order.
    pub violations: Vec<InvariantViolation>,
}

impl InvariantReport {
    /// True when all three invariants hold.
    pub fn ok(&self) -> bool {
        self.loop_free && self.blackhole_free && self.reachability_complete
    }

    /// One-line human summary (for bench output and panic messages).
    pub fn summary(&self) -> String {
        format!(
            "{}: {} pairs, loop_free={}, blackhole_free={}, reachability_complete={} \
             ({} violations, {} physically unreachable, {} table-unroutable)",
            self.algorithm,
            self.pairs_checked,
            self.loop_free,
            self.blackhole_free,
            self.reachability_complete,
            self.violations_total,
            self.physically_unreachable,
            self.table_unroutable,
        )
    }
}

/// Per-source tally, merged into the final report. Counters are exact;
/// only the `violations` samples are capped.
#[derive(Default)]
struct SrcTally {
    table_unroutable: usize,
    physically_unreachable: usize,
    violations: Vec<InvariantViolation>,
    violations_total: usize,
    loops: usize,
    blackholes: usize,
    phantoms: usize,
}

/// Checks all three routing invariants of `table` under `failures`.
///
/// Sources are scanned in parallel (via [`parallel_map`]); the verdict is
/// deterministic and the sampled violations are in `(src, dst)` order.
pub fn check_invariants(
    topo: &Topology,
    table: &RoutingTable,
    failures: &LinkFailures,
) -> InvariantReport {
    let _phase = ftree_obs::ObsPhase::global("analysis::check_invariants");
    let reach = Reachability::compute(topo, failures);
    let n = topo.num_hosts();
    let sources: Vec<usize> = (0..n).collect();

    let tallies: Vec<SrcTally> = parallel_map(&sources, |&src| {
        let mut tally = SrcTally::default();
        let push = |tally: &mut SrcTally, v: InvariantViolation| {
            match v {
                InvariantViolation::RoutingLoop { .. } | InvariantViolation::NotUpDown { .. } => {
                    tally.loops += 1;
                }
                InvariantViolation::MissingRoute { .. } | InvariantViolation::DeadLink { .. } => {
                    tally.blackholes += 1;
                }
                InvariantViolation::PhantomRoute { .. } => tally.phantoms += 1,
            }
            tally.violations_total += 1;
            if tally.violations.len() < MAX_SAMPLES {
                tally.violations.push(v);
            }
        };
        for dst in 0..n {
            if src == dst {
                continue;
            }
            let physically_reachable = reach.ok(topo.host(src), dst);
            if !physically_reachable {
                tally.physically_unreachable += 1;
            }
            let mut dead_link: Option<u32> = None;
            let walk = table.walk(topo, src, dst, |ch| {
                if dead_link.is_none() && !failures.is_live(ch.link()) {
                    dead_link = Some(ch.link());
                }
            });
            match walk {
                Ok(()) => match dead_link {
                    // Walk succeeds over live cables: must be reachable.
                    None => {
                        if !physically_reachable {
                            push(&mut tally, InvariantViolation::PhantomRoute { src, dst });
                        }
                    }
                    // "Succeeds" across a dead cable: a blackhole either way.
                    Some(link) => {
                        push(&mut tally, InvariantViolation::DeadLink { src, dst, link });
                    }
                },
                Err(RouteError::NoRoute { .. }) => {
                    tally.table_unroutable += 1;
                    if physically_reachable {
                        push(&mut tally, InvariantViolation::MissingRoute { src, dst });
                    }
                }
                Err(RouteError::Loop { .. }) => {
                    push(&mut tally, InvariantViolation::RoutingLoop { src, dst });
                }
                Err(RouteError::NotUpDown { .. }) => {
                    push(&mut tally, InvariantViolation::NotUpDown { src, dst });
                }
                Err(RouteError::Topology(e)) => {
                    unreachable!("invariant check with inconsistent inputs: {e}")
                }
            }
        }
        tally
    });

    let mut report = InvariantReport {
        algorithm: table.algorithm.clone(),
        pairs_checked: n * n.saturating_sub(1),
        physically_unreachable: 0,
        table_unroutable: 0,
        loop_free: true,
        blackhole_free: true,
        reachability_complete: true,
        violations_total: 0,
        violations: Vec::new(),
    };
    for tally in tallies {
        report.physically_unreachable += tally.physically_unreachable;
        report.table_unroutable += tally.table_unroutable;
        report.violations_total += tally.violations_total;
        if tally.loops > 0 {
            report.loop_free = false;
        }
        if tally.blackholes > 0 {
            report.blackhole_free = false;
            report.reachability_complete = false;
        }
        if tally.phantoms > 0 {
            report.reachability_complete = false;
        }
        for v in tally.violations {
            if report.violations.len() < MAX_SAMPLES {
                report.violations.push(v);
            }
        }
    }
    report
}

/// Wraps the checker as a [`ftree_core::SweepCheck`]: installed on a
/// [`ftree_core::SubnetManager`], it re-proves all three invariants after
/// every sweep that applied events and **panics** with the report summary on
/// the first violation — a debug-assert for the control plane.
///
/// ```
/// use ftree_analysis::invariants::sweep_check;
/// use ftree_core::SubnetManager;
/// use ftree_topology::{rlft::catalog, FaultSchedule, Topology};
///
/// let topo = Topology::build(catalog::fig4_pgft_16());
/// let mut sm = SubnetManager::new(&topo, FaultSchedule::empty()).unwrap();
/// sm.set_sweep_check(sweep_check());
/// sm.sweep(&topo, 0); // would panic if a sweep ever broke an invariant
/// ```
pub fn sweep_check() -> ftree_core::SweepCheck {
    Box::new(|topo, table, failures| {
        let report = check_invariants(topo, table, failures);
        assert!(
            report.ok(),
            "routing invariant violated after sweep: {} — first samples: {:?}",
            report.summary(),
            report.violations,
        );
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftree_core::{DModK, Router};
    use ftree_topology::rlft::catalog;

    #[test]
    fn healthy_dmodk_satisfies_all_invariants() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let table = DModK.route_healthy(&topo);
        let failures = LinkFailures::none(&topo);
        let report = check_invariants(&topo, &table, &failures);
        assert!(report.ok(), "{}", report.summary());
        assert_eq!(report.pairs_checked, 16 * 15);
        assert_eq!(report.physically_unreachable, 0);
        assert_eq!(report.table_unroutable, 0);
        assert_eq!(report.violations_total, 0);
    }

    #[test]
    fn stale_table_under_failure_is_flagged_as_blackhole() {
        // Route healthy, then fail a cable *without* rerouting: the stale
        // table must be caught crossing the dead link.
        let topo = Topology::build(catalog::fig4_pgft_16());
        let table = DModK.route_healthy(&topo);
        let mut failures = LinkFailures::none(&topo);
        let leaf0 = topo.node_at(1, 0).unwrap();
        failures.fail(topo.node(leaf0).up[0].link).unwrap();
        let report = check_invariants(&topo, &table, &failures);
        assert!(!report.ok());
        assert!(!report.blackhole_free);
        assert!(report.loop_free, "staleness is not a loop");
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, InvariantViolation::DeadLink { .. })));
    }

    #[test]
    fn repaired_table_passes_again() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let mut failures = LinkFailures::none(&topo);
        let leaf0 = topo.node_at(1, 0).unwrap();
        failures.fail(topo.node(leaf0).up[0].link).unwrap();
        let table = DModK.route(&topo, &failures).unwrap();
        let report = check_invariants(&topo, &table, &failures);
        assert!(report.ok(), "{}", report.summary());
    }
}
