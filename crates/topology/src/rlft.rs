//! Real-Life Fat-Tree (RLFT) restrictions and a catalog of the topologies
//! used throughout the paper's evaluation.
//!
//! Paper Sec. IV.C narrows PGFTs to the sub-class actually built in HPC
//! installations:
//!
//! 1. **Constant cross-bisectional bandwidth**: `m_l * p_l = w_{l+1} * p_{l+1}`
//!    at every internal level, so every switch has as much up as down
//!    bandwidth.
//! 2. **Single host cables**: `w_1 = p_1 = 1`.
//! 3. **Constant switch radix**: all switches are the same `2K`-port
//!    cross-bar: `m_l * p_l + w_{l+1} * p_{l+1} = 2K` for `0 < l < h` and
//!    `m_h * p_h = 2K` at the top.

use serde::{Deserialize, Serialize};

use crate::error::TopologyError;
use crate::spec::PgftSpec;

/// Result of checking the RLFT restrictions on a PGFT spec.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RlftReport {
    /// Restriction 1: constant CBB at every level transition.
    pub constant_cbb: bool,
    /// Restriction 2: hosts attach through exactly one cable.
    pub single_host_cable: bool,
    /// Restriction 3: every switch uses the same `2K`-port cross-bar,
    /// including full top-level switches. `Some(K)` when it holds.
    pub arity: Option<u32>,
    /// Violation descriptions for diagnostics.
    pub violations: Vec<String>,
}

impl RlftReport {
    /// All three restrictions hold.
    pub fn is_rlft(&self) -> bool {
        self.constant_cbb && self.single_host_cable && self.arity.is_some()
    }

    /// Switch arity `K` (half the port count) when the spec is an RLFT.
    pub fn k(&self) -> Option<u32> {
        self.arity
    }
}

/// Checks the RLFT restrictions on a spec.
pub fn check_rlft(spec: &PgftSpec) -> RlftReport {
    let h = spec.height();
    let mut violations = Vec::new();

    let mut constant_cbb = true;
    for l in 1..h {
        let down = spec.down_ports(l);
        let up = spec.up_ports(l);
        if down != up {
            constant_cbb = false;
            violations.push(format!(
                "level {l}: down bandwidth m_{l}*p_{l} = {down} != up bandwidth \
                 w_{}*p_{} = {up}",
                l + 1,
                l + 1
            ));
        }
    }

    let single_host_cable = spec.w(0) == 1 && spec.p(0) == 1;
    if !single_host_cable {
        violations.push(format!(
            "hosts must have a single cable: w_1 = {}, p_1 = {}",
            spec.w(0),
            spec.p(0)
        ));
    }

    // Constant radix: every switch level 1..h-1 has down+up ports == 2K for
    // a common K; the top level has m_h * p_h == 2K down ports.
    let mut arity: Option<u32> = None;
    let mut radix_ok = true;
    let mut radices = Vec::new();
    for l in 1..=h {
        radices.push(spec.down_ports(l) + spec.up_ports(l));
    }
    if let Some(&first) = radices.first() {
        if radices.iter().any(|&r| r != first) {
            radix_ok = false;
            violations.push(format!(
                "switch radix differs across levels: {radices:?} (ports per switch)"
            ));
        } else if first % 2 != 0 {
            radix_ok = false;
            violations.push(format!("switch radix {first} is odd"));
        } else {
            arity = Some(first / 2);
        }
    }
    if radix_ok {
        // Top switches must dedicate all 2K ports to down links.
        let top_down = spec.down_ports(h);
        if let Some(k) = arity {
            if top_down != 2 * k {
                violations.push(format!("top level uses {top_down} of {} ports", 2 * k));
                arity = None;
            }
        }
    } else {
        arity = None;
    }

    RlftReport {
        constant_cbb,
        single_host_cable,
        arity,
        violations,
    }
}

/// Validates that `spec` is an RLFT, returning its arity `K`.
pub fn require_rlft(spec: &PgftSpec) -> Result<u32, TopologyError> {
    let report = check_rlft(spec);
    match report.arity {
        Some(k) if report.is_rlft() => Ok(k),
        _ => Err(TopologyError::NotRlft(report.violations.join("; "))),
    }
}

/// Catalog of the concrete topologies used by the paper's evaluation
/// (Figs. 1–4, Table 3) plus the maximal trees they are carved from.
pub mod catalog {
    use super::*;

    /// Maximal 2-level RLFT from `2K`-port switches: `N = 2K^2` hosts.
    /// For `K = 18` (36-port IS4 switches) this is the 648-node tree.
    pub fn rlft2_full(k: u32) -> PgftSpec {
        PgftSpec::from_slices(&[k, 2 * k], &[1, k], &[1, 1]).expect("valid catalog spec")
    }

    /// Half-populated 2-level RLFT keeping full CBB via parallel ports:
    /// `N = K^2` hosts over `K/2` spines with 2 parallel links each.
    /// For `K = 18` this is the paper's 324-node tree. Requires even `K`.
    pub fn rlft2_half(k: u32) -> PgftSpec {
        assert!(k.is_multiple_of(2), "rlft2_half requires even K");
        PgftSpec::from_slices(&[k, k], &[1, k / 2], &[1, 2]).expect("valid catalog spec")
    }

    /// Maximal 3-level RLFT from `2K`-port switches: `N = 2K^3` hosts.
    /// For `K = 18` this is the 11664-node tree of paper Sec. V.A.
    pub fn rlft3_full(k: u32) -> PgftSpec {
        PgftSpec::from_slices(&[k, k, 2 * k], &[1, k, k], &[1, 1, 1]).expect("valid catalog spec")
    }

    /// The paper's 128-node 2-level tree from 16-port switches (`K = 8`).
    pub fn nodes_128() -> PgftSpec {
        rlft2_full(8)
    }

    /// The paper's 324-node 2-level tree from 36-port switches (`K = 18`).
    pub fn nodes_324() -> PgftSpec {
        rlft2_half(18)
    }

    /// 648-node maximal 2-level tree from 36-port switches.
    pub fn nodes_648() -> PgftSpec {
        rlft2_full(18)
    }

    /// The paper's 1728-node 3-level tree from 24-port switches (`K = 12`):
    /// `PGFT(3; 12,12,12; 1,12,6; 1,1,2)`.
    pub fn nodes_1728() -> PgftSpec {
        PgftSpec::from_slices(&[12, 12, 12], &[1, 12, 6], &[1, 1, 2]).expect("valid catalog spec")
    }

    /// The paper's 1944-node 3-level tree from 36-port switches (`K = 18`):
    /// `PGFT(3; 18,18,6; 1,18,3; 1,1,6)` — the simulated InfiniBand cluster
    /// of Sec. II/VII.
    pub fn nodes_1944() -> PgftSpec {
        PgftSpec::from_slices(&[18, 18, 6], &[1, 18, 3], &[1, 1, 6]).expect("valid catalog spec")
    }

    /// The 11664-node maximal 3-level tree from 36-port switches
    /// (`K = 18`) of paper Sec. V.A — the largest catalog fabric, used by
    /// the fluid-engine scale sweeps (`perf --fluid` flagship).
    pub fn nodes_11664() -> PgftSpec {
        rlft3_full(18)
    }

    /// Figure 4(a): 16 hosts on 8-port switches expressed as an XGFT —
    /// four spines, each using only 4 of its 8 ports.
    pub fn fig4_xgft_16() -> PgftSpec {
        PgftSpec::xgft(&[4, 4], &[1, 4]).expect("valid catalog spec")
    }

    /// Figure 4(b): the same 16 hosts as a PGFT — two spines fully used via
    /// two parallel ports per leaf–spine pair.
    pub fn fig4_pgft_16() -> PgftSpec {
        PgftSpec::from_slices(&[4, 4], &[1, 2], &[1, 2]).expect("valid catalog spec")
    }

    /// Figure 1: 16-node example with four up-links per leaf switch
    /// (drawn with four distinct spines).
    pub fn fig1_16() -> PgftSpec {
        fig4_xgft_16()
    }
}

#[cfg(test)]
mod tests {
    use super::catalog::*;
    use super::*;

    #[test]
    fn catalog_trees_are_rlft() {
        for (name, spec, k, n) in [
            ("128", nodes_128(), 8, 128),
            ("324", nodes_324(), 18, 324),
            ("648", nodes_648(), 18, 648),
            ("1728", nodes_1728(), 12, 1728),
            ("1944", nodes_1944(), 18, 1944),
            ("11664", rlft3_full(18), 18, 11664),
            ("fig4b", fig4_pgft_16(), 4, 16),
        ] {
            let report = check_rlft(&spec);
            assert!(report.is_rlft(), "{name} not RLFT: {:?}", report.violations);
            assert_eq!(report.k(), Some(k), "{name} arity");
            assert_eq!(spec.num_hosts(), n, "{name} host count");
        }
    }

    #[test]
    fn fig4_xgft_is_not_strict_rlft() {
        // The XGFT variant leaves half of each spine's ports unused, so the
        // constant-radix restriction fails — that is exactly the paper's
        // motivation for PGFTs.
        let report = check_rlft(&fig4_xgft_16());
        assert!(!report.is_rlft());
        assert!(report.constant_cbb);
        assert!(report.single_host_cable);
        assert_eq!(report.arity, None);
    }

    #[test]
    fn non_constant_cbb_detected() {
        // 2:1 oversubscribed leaf level.
        let spec = PgftSpec::from_slices(&[8, 16], &[1, 4], &[1, 1]).unwrap();
        let report = check_rlft(&spec);
        assert!(!report.constant_cbb);
        assert!(!report.is_rlft());
        assert!(require_rlft(&spec).is_err());
    }

    #[test]
    fn multi_cable_hosts_detected() {
        let spec = PgftSpec::from_slices(&[8, 16], &[2, 8], &[1, 1]).unwrap();
        let report = check_rlft(&spec);
        assert!(!report.single_host_cable);
    }

    #[test]
    fn require_rlft_returns_k() {
        assert_eq!(require_rlft(&nodes_1944()).unwrap(), 18);
        assert_eq!(require_rlft(&nodes_128()).unwrap(), 8);
    }
}
