//! The materialized fat-tree graph: nodes, ports, links and directed channels.
//!
//! [`Topology::build`] instantiates a [`PgftSpec`] following
//! the connection rule of paper Sec. IV.B: a level-`l` node `A` and a
//! level-`l+1` node `B` are connected iff their digit vectors agree in every
//! position except index `l` (zero-based), and the `k`-th of the `p_{l+1}`
//! parallel links joins
//!
//! * up-going port `q = b_l + k * w_{l+1}` of `A` (where `b_l` is `B`'s free
//!   digit), to
//! * down-going port `r = a_l + k * m_{l+1}` of `B` (where `a_l` is `A`'s
//!   free digit).
//!
//! Every physical link contributes two **directed channels** (up and down),
//! which are the unit of contention accounting in `ftree-analysis` and the
//! unit of serialization in `ftree-sim`.

use serde::{Deserialize, Serialize};

use crate::error::TopologyError;
use crate::spec::PgftSpec;

/// Identifies a node (host or switch) in the topology. Hosts come first
/// (`0..num_hosts`), then switches level by level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(
    /// Global node index (hosts first, then switches level by level).
    pub u32,
);

impl NodeId {
    /// The node's global index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a directed channel. Channel `2k` is the up direction of link
/// `k` (child → parent), channel `2k + 1` the down direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChannelId(
    /// Directed channel index (`2*link + direction`).
    pub u32,
);

impl ChannelId {
    /// The channel's global index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The physical link this channel belongs to.
    #[inline]
    pub fn link(self) -> u32 {
        self.0 / 2
    }

    /// Direction of this channel.
    #[inline]
    pub fn direction(self) -> Direction {
        if self.0.is_multiple_of(2) {
            Direction::Up
        } else {
            Direction::Down
        }
    }
}

/// Traffic direction relative to the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Child → parent (toward the roots).
    Up,
    /// Parent → child (toward the hosts).
    Down,
}

/// A port selection on a node: fat-trees distinguish up-going and down-going
/// ports, matching the paper's `q` / `r` numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortRef {
    /// Up-going port `q` (0-based, `q < w_{l+1} * p_{l+1}`).
    Up(u32),
    /// Down-going port `r` (0-based, `r < m_l * p_l`).
    Down(u32),
}

/// What a port connects to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortPeer {
    /// Node on the far end of the cable.
    pub peer: NodeId,
    /// Port index within the peer's opposite-direction port array.
    pub peer_port: u32,
    /// Physical link index (two channels: `2*link` up, `2*link + 1` down).
    pub link: u32,
}

/// A node of the fat-tree: a host (level 0) or a switch (levels `1..=h`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// Tree level; hosts are level 0.
    pub level: u8,
    /// Within-level index (mixed-radix value of `digits`).
    pub index_in_level: u32,
    /// Digit tuple per paper Sec. IV.B (LSD first, `h` digits).
    pub digits: Vec<u32>,
    /// Up-going ports; entry `q` describes the cable on up-port `q`.
    pub up: Vec<PortPeer>,
    /// Down-going ports; entry `r` describes the cable on down-port `r`.
    pub down: Vec<PortPeer>,
}

impl Node {
    /// True when the node is a host NIC rather than a switch.
    #[inline]
    pub fn is_host(&self) -> bool {
        self.level == 0
    }

    /// Total port count (down + up), i.e. the crossbar radix used.
    #[inline]
    pub fn radix(&self) -> usize {
        self.up.len() + self.down.len()
    }
}

/// Metadata for one physical link.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Link {
    /// Lower (child) node.
    pub child: NodeId,
    /// Up-port index on the child.
    pub child_port: u32,
    /// Upper (parent) node.
    pub parent: NodeId,
    /// Down-port index on the parent.
    pub parent_port: u32,
    /// Level of the **parent** node; links between hosts and leaf switches
    /// have `level == 1`.
    pub level: u8,
}

/// A fully materialized fat-tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    spec: PgftSpec,
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// First NodeId of each level (`level_offsets[l]` = first node at level
    /// `l`); has `h + 2` entries, the last being the total node count.
    level_offsets: Vec<u32>,
}

impl Topology {
    /// Instantiates the PGFT graph described by `spec`.
    pub fn build(spec: PgftSpec) -> Self {
        let h = spec.height();
        let mut level_offsets = Vec::with_capacity(h + 2);
        let mut total = 0u32;
        for l in 0..=h {
            level_offsets.push(total);
            total += spec.nodes_at_level(l) as u32;
        }
        level_offsets.push(total);

        let mut nodes: Vec<Node> = Vec::with_capacity(total as usize);
        for l in 0..=h {
            let count = spec.nodes_at_level(l);
            for idx in 0..count {
                nodes.push(Node {
                    level: l as u8,
                    index_in_level: idx as u32,
                    digits: spec.digits_of(l, idx),
                    up: Vec::new(),
                    down: Vec::new(),
                });
            }
        }

        // Pre-size port arrays so links can be written by index.
        let placeholder = PortPeer {
            peer: NodeId(u32::MAX),
            peer_port: u32::MAX,
            link: u32::MAX,
        };
        for node in &mut nodes {
            let l = node.level as usize;
            node.up = vec![placeholder; spec.up_ports(l) as usize];
            node.down = vec![placeholder; spec.down_ports(l) as usize];
        }

        // Connection rule: free digit between levels l and l+1 is index l.
        let mut links = Vec::new();
        for l in 0..h {
            let w = spec.w(l);
            let m = spec.m(l);
            let p = spec.p(l);
            let child_first = level_offsets[l] as usize;
            let child_count = spec.nodes_at_level(l);
            for child_idx in 0..child_count {
                let child_id = NodeId((child_first + child_idx) as u32);
                let a_l = nodes[child_first + child_idx].digits[l];
                for b in 0..w {
                    // Parent digits: child digits with index l replaced by b.
                    let mut pd = nodes[child_first + child_idx].digits.clone();
                    pd[l] = b;
                    let parent_idx = spec.index_of(l + 1, &pd);
                    let parent_id = NodeId(level_offsets[l + 1] + parent_idx as u32);
                    for k in 0..p {
                        let q = b + k * w;
                        let r = a_l + k * m;
                        let link_id = links.len() as u32;
                        links.push(Link {
                            child: child_id,
                            child_port: q,
                            parent: parent_id,
                            parent_port: r,
                            level: (l + 1) as u8,
                        });
                        nodes[child_id.index()].up[q as usize] = PortPeer {
                            peer: parent_id,
                            peer_port: r,
                            link: link_id,
                        };
                        nodes[parent_id.index()].down[r as usize] = PortPeer {
                            peer: child_id,
                            peer_port: q,
                            link: link_id,
                        };
                    }
                }
            }
        }

        debug_assert!(
            nodes
                .iter()
                .all(|n| n.up.iter().chain(&n.down).all(|pp| pp.link != u32::MAX)),
            "every declared port must be cabled"
        );

        Self {
            spec,
            nodes,
            links,
            level_offsets,
        }
    }

    /// The spec this topology was built from.
    #[inline]
    pub fn spec(&self) -> &PgftSpec {
        &self.spec
    }

    /// Number of switch levels.
    #[inline]
    pub fn height(&self) -> usize {
        self.spec.height()
    }

    /// Number of hosts.
    #[inline]
    pub fn num_hosts(&self) -> usize {
        self.level_offsets[1] as usize
    }

    /// Total number of nodes (hosts + switches).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of physical links.
    #[inline]
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Total number of directed channels (`2 * num_links`).
    #[inline]
    pub fn num_channels(&self) -> usize {
        self.links.len() * 2
    }

    /// All nodes.
    #[inline]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links.
    #[inline]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Node accessor.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Link accessor.
    #[inline]
    pub fn link(&self, link: u32) -> &Link {
        &self.links[link as usize]
    }

    /// NodeId of the host with the given host index.
    #[inline]
    pub fn host(&self, host: usize) -> NodeId {
        debug_assert!(host < self.num_hosts());
        NodeId(host as u32)
    }

    /// NodeId of a node addressed by `(level, within-level index)`.
    pub fn node_at(&self, level: usize, index: usize) -> Result<NodeId, TopologyError> {
        if level > self.height() || index >= self.spec.nodes_at_level(level) {
            return Err(TopologyError::NoSuchNode { level, index });
        }
        Ok(NodeId(self.level_offsets[level] + index as u32))
    }

    /// Iterates over node ids at the given level.
    pub fn level_nodes(&self, level: usize) -> impl Iterator<Item = NodeId> + '_ {
        let lo = self.level_offsets[level];
        let hi = self.level_offsets[level + 1];
        (lo..hi).map(NodeId)
    }

    /// All switch node ids (levels `1..=h`).
    pub fn switches(&self) -> impl Iterator<Item = NodeId> + '_ {
        (self.level_offsets[1]..self.level_offsets[self.height() + 1]).map(NodeId)
    }

    /// Directed channel id for traversing `link` in `dir`.
    #[inline]
    pub fn channel(&self, link: u32, dir: Direction) -> ChannelId {
        match dir {
            Direction::Up => ChannelId(link * 2),
            Direction::Down => ChannelId(link * 2 + 1),
        }
    }

    /// The directed channel leaving `node` through `port`.
    #[inline]
    pub fn egress_channel(&self, node: NodeId, port: PortRef) -> ChannelId {
        let n = self.node(node);
        match port {
            PortRef::Up(q) => self.channel(n.up[q as usize].link, Direction::Up),
            PortRef::Down(r) => self.channel(n.down[r as usize].link, Direction::Down),
        }
    }

    /// Source node/port of a directed channel.
    pub fn channel_source(&self, ch: ChannelId) -> (NodeId, PortRef) {
        let link = self.link(ch.link());
        match ch.direction() {
            Direction::Up => (link.child, PortRef::Up(link.child_port)),
            Direction::Down => (link.parent, PortRef::Down(link.parent_port)),
        }
    }

    /// Destination node of a directed channel.
    pub fn channel_target(&self, ch: ChannelId) -> NodeId {
        let link = self.link(ch.link());
        match ch.direction() {
            Direction::Up => link.parent,
            Direction::Down => link.child,
        }
    }

    /// True iff `node` (at any level) is an ancestor of `host`, i.e. the
    /// host's `m`-digits at positions `>= level` match the node's digits.
    pub fn is_ancestor_of(&self, node: NodeId, host: usize) -> bool {
        let n = self.node(node);
        let l = n.level as usize;
        (l..self.height()).all(|j| n.digits[j] == self.spec.host_digit(host, j))
    }

    /// A stable 64-bit fingerprint of the topology's structure.
    ///
    /// Computed (FNV-1a) from the PGFT tuple and the derived link count, so
    /// two `Topology` values built from the same spec share a fingerprint
    /// while any structural difference — other arities, other parallel-port
    /// counts, different height — changes it. Per-link structures such as
    /// [`crate::LinkFailures`] record this value to refuse being applied to
    /// a topology they were not built for.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        fn mix(h: u64, v: u64) -> u64 {
            (h ^ v).wrapping_mul(PRIME)
        }
        let mut h = mix(OFFSET, self.height() as u64);
        for l in 0..self.height() {
            h = mix(h, u64::from(self.spec.m(l)));
            h = mix(h, u64::from(self.spec.w(l)));
            h = mix(h, u64::from(self.spec.p(l)));
        }
        h = mix(h, self.num_hosts() as u64);
        mix(h, self.num_links() as u64)
    }

    /// Human-readable node name, e.g. `H0017` or `S2[3,0,1]`.
    pub fn node_name(&self, id: NodeId) -> String {
        let n = self.node(id);
        if n.is_host() {
            format!("H{:04}", n.index_in_level)
        } else {
            let digits: Vec<String> = n.digits.iter().map(|d| d.to_string()).collect();
            format!("S{}[{}]", n.level, digits.join(","))
        }
    }

    /// Human-readable physical-link name, e.g. `H0003 = S1[0,1] (p2)`:
    /// child, parent and the child-side port the cable plugs into.
    pub fn link_label(&self, link: u32) -> String {
        let l = self.link(link);
        format!(
            "{} = {} (p{})",
            self.node_name(l.child),
            self.node_name(l.parent),
            l.child_port
        )
    }

    /// Human-readable directed-channel name, e.g. `H0003 -> S1[0,1]` for the
    /// up channel of a link or `S1[0,1] -> H0003` for the down channel.
    pub fn channel_label(&self, ch: ChannelId) -> String {
        let l = self.link(ch.link());
        match ch.direction() {
            Direction::Up => format!(
                "{} -> {} (up p{})",
                self.node_name(l.child),
                self.node_name(l.parent),
                l.child_port
            ),
            Direction::Down => format!(
                "{} -> {} (down p{})",
                self.node_name(l.parent),
                self.node_name(l.child),
                l.parent_port
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Topology {
        // Figure 4(b): 16 hosts, 8-port switches, PGFT(2; 4,4; 1,2; 1,2).
        Topology::build(PgftSpec::from_slices(&[4, 4], &[1, 2], &[1, 2]).unwrap())
    }

    #[test]
    fn node_counts() {
        let t = tiny();
        assert_eq!(t.num_hosts(), 16);
        assert_eq!(t.spec().nodes_at_level(1), 4); // 4 leaf switches
        assert_eq!(t.spec().nodes_at_level(2), 2); // 2 spines (PGFT benefit)
        assert_eq!(t.num_nodes(), 22);
    }

    #[test]
    fn link_counts() {
        let t = tiny();
        // 16 host cables + 4 leaves * 2 spines * 2 parallel = 16 + 16
        assert_eq!(t.num_links(), 32);
        assert_eq!(t.num_channels(), 64);
    }

    #[test]
    fn every_port_is_cabled_and_symmetric() {
        let t = tiny();
        for (id, node) in t.nodes().iter().enumerate() {
            for (q, pp) in node.up.iter().enumerate() {
                let peer = t.node(pp.peer);
                let back = peer.down[pp.peer_port as usize];
                assert_eq!(back.peer, NodeId(id as u32));
                assert_eq!(back.peer_port, q as u32);
                assert_eq!(back.link, pp.link);
            }
            for (r, pp) in node.down.iter().enumerate() {
                let peer = t.node(pp.peer);
                let back = peer.up[pp.peer_port as usize];
                assert_eq!(back.peer, NodeId(id as u32));
                assert_eq!(back.peer_port, r as u32);
            }
        }
    }

    #[test]
    fn paper_port_numbering_rule() {
        // Figure 5: the k-th parallel connection between child (free digit a)
        // and parent (free digit b) uses child up-port b + k*w and parent
        // down-port a + k*m.
        let t = tiny();
        let leaf0 = t.node_at(1, 0).unwrap();
        let n = t.node(leaf0);
        // Up port q on a leaf: parent digit b = q mod w2 = q mod 2,
        // parallel k = q div 2.
        for q in 0..4u32 {
            let pp = n.up[q as usize];
            let parent = t.node(pp.peer);
            assert_eq!(parent.level, 2);
            assert_eq!(parent.digits[1], q % 2, "parent free digit");
            // parent down port r = a + k*m = 0 + (q/2)*4
            assert_eq!(pp.peer_port, (q / 2) * 4);
        }
    }

    #[test]
    fn hosts_have_single_cable() {
        let t = tiny();
        for h in 0..t.num_hosts() {
            let n = t.node(t.host(h));
            assert_eq!(n.up.len(), 1);
            assert!(n.down.is_empty());
            let leaf = t.node(n.up[0].peer);
            assert_eq!(leaf.level, 1);
        }
    }

    #[test]
    fn ancestor_relation() {
        let t = tiny();
        // Host 5 has digits (1, 1): child 1 of leaf 1.
        let leaf1 = t.node_at(1, 1).unwrap();
        assert!(t.is_ancestor_of(leaf1, 5));
        assert!(!t.is_ancestor_of(leaf1, 0));
        // Every spine is an ancestor of every host.
        for s in t.level_nodes(2) {
            for h in 0..16 {
                assert!(t.is_ancestor_of(s, h));
            }
        }
    }

    #[test]
    fn channel_endpoints() {
        let t = tiny();
        let host0 = t.host(0);
        let up = t.egress_channel(host0, PortRef::Up(0));
        assert_eq!(t.channel_source(up).0, host0);
        let leaf = t.node(host0).up[0].peer;
        assert_eq!(t.channel_target(up), leaf);
        let down = t.channel(up.link(), Direction::Down);
        assert_eq!(t.channel_source(down).0, leaf);
        assert_eq!(t.channel_target(down), host0);
    }

    #[test]
    fn node_names() {
        let t = tiny();
        assert_eq!(t.node_name(t.host(7)), "H0007");
        let s = t.node_at(2, 1).unwrap();
        assert!(t.node_name(s).starts_with("S2["));
    }

    #[test]
    fn channel_and_link_labels() {
        let t = tiny();
        // Link 0 attaches host 0 to its leaf switch.
        let up = t.channel(0, Direction::Up);
        let down = t.channel(0, Direction::Down);
        let up_label = t.channel_label(up);
        let down_label = t.channel_label(down);
        assert!(up_label.starts_with("H0000 -> S1["), "{up_label}");
        assert!(up_label.contains("(up p"), "{up_label}");
        assert!(down_label.contains("-> H0000"), "{down_label}");
        assert!(down_label.contains("(down p"), "{down_label}");
        assert!(t.link_label(0).starts_with("H0000 = S1["));
    }
}
