//! Link-failure sets: masking cables out of a fabric.
//!
//! Real installations lose cables; the subnet manager must route around
//! them. A [`LinkFailures`] value marks physical links dead without
//! mutating the topology graph — routing algorithms consult it when
//! choosing ports, and analysis can verify that no traced path crosses a
//! dead cable.

use serde::{Deserialize, Serialize};

use crate::graph::{ChannelId, NodeId, Topology};

/// A set of failed physical links.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LinkFailures {
    failed: Vec<bool>,
    count: usize,
}

impl LinkFailures {
    /// No failures.
    pub fn none(topo: &Topology) -> Self {
        Self {
            failed: vec![false; topo.num_links()],
            count: 0,
        }
    }

    /// Marks a link dead. Idempotent.
    pub fn fail(&mut self, link: u32) {
        let slot = &mut self.failed[link as usize];
        if !*slot {
            *slot = true;
            self.count += 1;
        }
    }

    /// Fails the `k`-th up-going cable of a node (convenience for tests and
    /// experiments).
    pub fn fail_up_port(&mut self, topo: &Topology, node: NodeId, q: u32) {
        self.fail(topo.node(node).up[q as usize].link);
    }

    /// Number of failed links.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no link is failed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Is this link alive?
    #[inline]
    pub fn is_live(&self, link: u32) -> bool {
        !self.failed[link as usize]
    }

    /// Is the link under this directed channel alive?
    #[inline]
    pub fn channel_live(&self, ch: ChannelId) -> bool {
        self.is_live(ch.link())
    }

    /// Iterator over failed link ids.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.failed
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f)
            .map(|(i, _)| i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rlft::catalog;
    use crate::Topology;

    #[test]
    fn empty_set_is_all_live() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let f = LinkFailures::none(&topo);
        assert!(f.is_empty());
        assert!((0..topo.num_links() as u32).all(|l| f.is_live(l)));
    }

    #[test]
    fn failing_is_idempotent() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let mut f = LinkFailures::none(&topo);
        f.fail(3);
        f.fail(3);
        assert_eq!(f.len(), 1);
        assert!(!f.is_live(3));
        assert_eq!(f.iter().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn fail_up_port_targets_the_right_cable() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let mut f = LinkFailures::none(&topo);
        let leaf = topo.node_at(1, 2).unwrap();
        f.fail_up_port(&topo, leaf, 1);
        let link = topo.node(leaf).up[1].link;
        assert!(!f.is_live(link));
        let ch = topo.channel(link, crate::Direction::Up);
        assert!(!f.channel_live(ch));
    }
}
