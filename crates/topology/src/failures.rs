//! Link-failure sets: masking cables out of a fabric.
//!
//! Real installations lose cables *and get them back*: a technician reseats
//! a transceiver, a replacement cable arrives, a switch line card is
//! swapped. A [`LinkFailures`] value marks physical links dead without
//! mutating the topology graph — routing algorithms consult it when
//! choosing ports, and analysis can verify that no traced path crosses a
//! dead cable.
//!
//! The set is *hardened* for subnet-manager use:
//!
//! * [`LinkFailures::fail`] / [`LinkFailures::recover`] are bounds-checked
//!   and return `Result` instead of panicking on out-of-range link ids,
//! * every set records the [`Topology::fingerprint`] it was built for, so a
//!   failure set cannot silently index a different fabric
//!   ([`LinkFailures::verify_for`]),
//! * every state change bumps a monotonic [`LinkFailures::version`], which
//!   lets a subnet manager detect stale routing tables cheaply.

use serde::{Deserialize, Serialize};

use crate::error::TopologyError;
use crate::graph::{ChannelId, NodeId, Topology};

/// A set of failed physical links.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LinkFailures {
    failed: Vec<bool>,
    count: usize,
    /// Fingerprint of the topology this set was built for (0 = unknown, for
    /// sets deserialized from pre-fingerprint dumps).
    #[serde(default)]
    fingerprint: u64,
    /// Monotonic change counter: bumped by every effective fail/recover.
    #[serde(default)]
    version: u64,
}

impl LinkFailures {
    /// No failures.
    pub fn none(topo: &Topology) -> Self {
        Self {
            failed: vec![false; topo.num_links()],
            count: 0,
            fingerprint: topo.fingerprint(),
            version: 0,
        }
    }

    /// Deterministic pseudo-random failure set: fails `count` distinct
    /// links of `topo` chosen by a seeded SplitMix64 stream. The same
    /// `(topo, seed, count)` always yields the same set — the generator
    /// behind the seeded degradation patterns used by the routing-quality
    /// bench and the engine property tests. `filter` restricts the
    /// candidate links (e.g. inter-switch cables only); when fewer than
    /// `count` links pass the filter, all of them are failed.
    pub fn seeded_where(
        topo: &Topology,
        seed: u64,
        count: usize,
        mut filter: impl FnMut(&Topology, u32) -> bool,
    ) -> Self {
        let mut set = Self::none(topo);
        let candidates: Vec<u32> = (0..topo.num_links() as u32)
            .filter(|&l| filter(topo, l))
            .collect();
        let target = count.min(candidates.len());
        let mut x = seed.wrapping_add(0x9E3779B97F4A7C15);
        while set.len() < target {
            // SplitMix64 step: well-distributed and dependency-free.
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            let link = candidates[(z % candidates.len() as u64) as usize];
            let _ = set.fail(link);
        }
        set
    }

    /// [`LinkFailures::seeded_where`] over every link of the topology.
    pub fn seeded(topo: &Topology, seed: u64, count: usize) -> Self {
        Self::seeded_where(topo, seed, count, |_, _| true)
    }

    /// Checks that `link` indexes this set.
    fn check_link(&self, link: u32) -> Result<(), TopologyError> {
        if (link as usize) < self.failed.len() {
            Ok(())
        } else {
            Err(TopologyError::NoSuchLink {
                link,
                num_links: self.failed.len(),
            })
        }
    }

    /// Marks a link dead. Idempotent; returns `true` when the link was
    /// previously alive (the set actually changed).
    pub fn fail(&mut self, link: u32) -> Result<bool, TopologyError> {
        self.check_link(link)?;
        let slot = &mut self.failed[link as usize];
        if *slot {
            return Ok(false);
        }
        *slot = true;
        self.count += 1;
        self.version += 1;
        Ok(true)
    }

    /// Marks a link alive again. Idempotent; returns `true` when the link
    /// was previously dead (the set actually changed).
    pub fn recover(&mut self, link: u32) -> Result<bool, TopologyError> {
        self.check_link(link)?;
        let slot = &mut self.failed[link as usize];
        if !*slot {
            return Ok(false);
        }
        *slot = false;
        self.count -= 1;
        self.version += 1;
        Ok(true)
    }

    /// Fails the `q`-th up-going cable of a node (convenience for tests and
    /// experiments).
    pub fn fail_up_port(
        &mut self,
        topo: &Topology,
        node: NodeId,
        q: u32,
    ) -> Result<bool, TopologyError> {
        self.verify_for(topo)?;
        let ports = &topo.node(node).up;
        let pp = ports.get(q as usize).ok_or(TopologyError::NoSuchPort {
            node: node.0,
            port: q,
        })?;
        self.fail(pp.link)
    }

    /// Fails the `r`-th down-going cable of a node (spine→leaf direction).
    pub fn fail_down_port(
        &mut self,
        topo: &Topology,
        node: NodeId,
        r: u32,
    ) -> Result<bool, TopologyError> {
        self.verify_for(topo)?;
        let ports = &topo.node(node).down;
        let pp = ports.get(r as usize).ok_or(TopologyError::NoSuchPort {
            node: node.0,
            port: r,
        })?;
        self.fail(pp.link)
    }

    /// Checks that this set was built for `topo` (fingerprint and link-count
    /// match). Sets deserialized from pre-fingerprint dumps (fingerprint 0)
    /// are only length-checked.
    pub fn verify_for(&self, topo: &Topology) -> Result<(), TopologyError> {
        if self.failed.len() != topo.num_links() {
            return Err(TopologyError::TopologyMismatch {
                expected: self.fingerprint,
                actual: topo.fingerprint(),
            });
        }
        if self.fingerprint != 0 && self.fingerprint != topo.fingerprint() {
            return Err(TopologyError::TopologyMismatch {
                expected: self.fingerprint,
                actual: topo.fingerprint(),
            });
        }
        Ok(())
    }

    /// Fingerprint of the topology this set was built for (0 = unknown).
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Monotonic change counter (bumped on every effective fail/recover).
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of failed links.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no link is failed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Is this link alive?
    #[inline]
    pub fn is_live(&self, link: u32) -> bool {
        !self.failed[link as usize]
    }

    /// Is the link under this directed channel alive?
    #[inline]
    pub fn channel_live(&self, ch: ChannelId) -> bool {
        self.is_live(ch.link())
    }

    /// Iterator over failed link ids.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.failed
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f)
            .map(|(i, _)| i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rlft::catalog;
    use crate::Topology;

    #[test]
    fn empty_set_is_all_live() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let f = LinkFailures::none(&topo);
        assert!(f.is_empty());
        assert_eq!(f.version(), 0);
        assert_eq!(f.fingerprint(), topo.fingerprint());
        assert!((0..topo.num_links() as u32).all(|l| f.is_live(l)));
    }

    #[test]
    fn failing_is_idempotent() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let mut f = LinkFailures::none(&topo);
        assert!(f.fail(3).unwrap());
        assert!(!f.fail(3).unwrap());
        assert_eq!(f.len(), 1);
        assert_eq!(f.version(), 1, "idempotent re-fail must not bump version");
        assert!(!f.is_live(3));
        assert_eq!(f.iter().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn recover_restores_the_link() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let mut f = LinkFailures::none(&topo);
        assert!(!f.recover(5).unwrap(), "recovering a live link is a no-op");
        assert_eq!(f.version(), 0);
        f.fail(5).unwrap();
        assert!(f.recover(5).unwrap());
        assert!(f.is_live(5));
        assert!(f.is_empty());
        assert_eq!(f.version(), 2);
    }

    #[test]
    fn out_of_range_link_is_an_error_not_a_panic() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let mut f = LinkFailures::none(&topo);
        let bogus = topo.num_links() as u32 + 7;
        assert!(matches!(
            f.fail(bogus),
            Err(TopologyError::NoSuchLink { link, .. }) if link == bogus
        ));
        assert!(matches!(
            f.recover(bogus),
            Err(TopologyError::NoSuchLink { .. })
        ));
        assert!(f.is_empty(), "failed calls must not change the set");
        assert_eq!(f.version(), 0);
    }

    #[test]
    fn fail_up_port_targets_the_right_cable() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let mut f = LinkFailures::none(&topo);
        let leaf = topo.node_at(1, 2).unwrap();
        f.fail_up_port(&topo, leaf, 1).unwrap();
        let link = topo.node(leaf).up[1].link;
        assert!(!f.is_live(link));
        let ch = topo.channel(link, crate::Direction::Up);
        assert!(!f.channel_live(ch));
    }

    #[test]
    fn fail_down_port_targets_the_mirror_cable() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let mut f = LinkFailures::none(&topo);
        let spine = topo.node_at(2, 0).unwrap();
        f.fail_down_port(&topo, spine, 3).unwrap();
        assert!(!f.is_live(topo.node(spine).down[3].link));
    }

    #[test]
    fn bogus_port_is_an_error() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let mut f = LinkFailures::none(&topo);
        let leaf = topo.node_at(1, 0).unwrap();
        let too_big = topo.node(leaf).up.len() as u32;
        assert!(matches!(
            f.fail_up_port(&topo, leaf, too_big),
            Err(TopologyError::NoSuchPort { .. })
        ));
    }

    #[test]
    fn fingerprint_mismatch_detected() {
        let topo16 = Topology::build(catalog::fig4_pgft_16());
        let topo128 = Topology::build(catalog::nodes_128());
        let mut f = LinkFailures::none(&topo16);
        assert!(f.verify_for(&topo16).is_ok());
        assert!(matches!(
            f.verify_for(&topo128),
            Err(TopologyError::TopologyMismatch { .. })
        ));
        assert!(f.fail_up_port(&topo128, topo128.host(0), 0).is_err());
        // Same spec, fresh build: fingerprints agree.
        let again = Topology::build(catalog::fig4_pgft_16());
        assert!(f.verify_for(&again).is_ok());
    }

    #[test]
    fn seeded_sets_are_deterministic_and_sized() {
        let topo = Topology::build(catalog::nodes_128());
        let a = LinkFailures::seeded(&topo, 7, 5);
        let b = LinkFailures::seeded(&topo, 7, 5);
        let c = LinkFailures::seeded(&topo, 8, 5);
        assert_eq!(a.len(), 5);
        assert_eq!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
        assert_ne!(a.iter().collect::<Vec<_>>(), c.iter().collect::<Vec<_>>());
        // Filtered: only inter-switch cables (child is a switch).
        let n = topo.num_hosts();
        let f = LinkFailures::seeded_where(&topo, 3, 4, |t, l| t.link(l).child.index() >= n);
        assert_eq!(f.len(), 4);
        for l in f.iter() {
            assert!(topo.link(l).child.index() >= n, "host cable {l} failed");
        }
        // Saturation: asking for more than exists fails everything allowed.
        let all = LinkFailures::seeded(&topo, 1, usize::MAX);
        assert_eq!(all.len(), topo.num_links());
    }

    #[test]
    fn distinct_specs_have_distinct_fingerprints() {
        let specs = [
            catalog::fig4_pgft_16(),
            catalog::fig4_xgft_16(),
            catalog::nodes_128(),
            catalog::nodes_324(),
            catalog::nodes_1728(),
        ];
        let prints: Vec<u64> = specs
            .into_iter()
            .map(|s| Topology::build(s).fingerprint())
            .collect();
        for i in 0..prints.len() {
            for j in (i + 1)..prints.len() {
                assert_ne!(prints[i], prints[j], "specs {i} and {j} collide");
            }
        }
    }
}
