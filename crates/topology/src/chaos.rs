//! Chaos schedules: typed fabric-level fault scenarios that lower onto the
//! link-event timeline of [`FaultSchedule`].
//!
//! A [`FaultSchedule`] speaks the language of single cables; real outages
//! rarely do. A line card reboot takes every cable on the switch down at
//! once, a flaky transceiver fails and recovers in bursts, and an
//! overheating cable keeps carrying traffic — slowly, and with loss. A
//! [`ChaosSchedule`] describes those scenarios as typed [`ChaosEvent`]s and
//! compiles them down ([`ChaosSchedule::lower`]) into the primitive form the
//! subnet manager and packet simulator already consume: a plain
//! [`FaultSchedule`] plus a list of [`DegradeEvent`]s for the
//! degraded-but-alive links the fault model cannot express.
//!
//! Scenarios are plain serde data, so a chaos campaign can be stored next to
//! its results and replayed bit-identically. [`ChaosGen`] derives the
//! recurring scenario shapes (random cable faults, correlated switch
//! outages, a rolling upgrade, a flap storm, a brownout) from a seed using
//! the same splitmix hash family as [`FaultSchedule::random_switch_links`] —
//! whose exact event stream the [`ChaosGen::random_links`] preset
//! reproduces, making it the drop-in replacement for that legacy helper.

use serde::{Deserialize, Serialize};

use crate::error::TopologyError;
use crate::graph::{NodeId, Topology};
use crate::schedule::{FaultSchedule, LinkEvent, LinkEventKind};

/// SplitMix64 finalizer — same stateless hash family as the rest of the
/// workspace, so chaos scenarios replay without carried RNG state.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One typed fabric fault scenario element.
///
/// Serialized internally tagged (`"ev"`) with snake_case names so scenario
/// files read as a list of self-describing records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "ev", rename_all = "snake_case")]
pub enum ChaosEvent {
    /// One cable dies at `time`; when `repair_after > 0` it recovers
    /// `repair_after` picoseconds later.
    LinkFail {
        /// Failure instant, picoseconds.
        time: u64,
        /// Physical link id.
        link: u32,
        /// Delay until recovery; `0` means the failure is permanent.
        repair_after: u64,
    },
    /// Whole-switch outage: every cable incident to the switch (up and down
    /// ports alike) fails at `time` and, when `repair_after > 0`, recovers
    /// together `repair_after` picoseconds later.
    SwitchOutage {
        /// Outage instant, picoseconds.
        time: u64,
        /// The switch that goes dark (must not be a host).
        switch: NodeId,
        /// Delay until all incident cables recover; `0` = permanent.
        repair_after: u64,
    },
    /// A flaky cable: `bursts` seeded fail/recover cycles starting at
    /// `start`, one per `period`-wide slot. Each burst fails at a
    /// hash-jittered offset inside its slot and stays down for at least
    /// `min_dwell` picoseconds before recovering.
    LinkFlap {
        /// Start of the first burst slot, picoseconds.
        start: u64,
        /// Physical link id.
        link: u32,
        /// Number of fail/recover cycles.
        bursts: u32,
        /// Minimum down time per burst, picoseconds.
        min_dwell: u64,
        /// Slot width per burst; jitter and extra dwell are drawn inside it.
        period: u64,
        /// Per-event hash seed (vary it to decorrelate flapping cables).
        seed: u64,
    },
    /// A degraded-but-alive cable: from `start` its serialization time is
    /// multiplied by `latency_mult` and packets crossing it are dropped with
    /// probability `drop_ppm` per million. When `duration > 0` the link is
    /// restored to full health at `start + duration`.
    LinkDegrade {
        /// Degradation onset, picoseconds.
        start: u64,
        /// Physical link id.
        link: u32,
        /// Serialization-time multiplier (`1` = nominal speed; must be ≥ 1).
        latency_mult: u32,
        /// Packet drop probability in parts per million (`0..=1_000_000`).
        drop_ppm: u32,
        /// How long the degradation lasts; `0` = until the end of the run.
        duration: u64,
    },
}

impl ChaosEvent {
    /// Time of the event's first effect on the fabric.
    pub fn onset(&self) -> u64 {
        match *self {
            ChaosEvent::LinkFail { time, .. } | ChaosEvent::SwitchOutage { time, .. } => time,
            ChaosEvent::LinkFlap { start, .. } | ChaosEvent::LinkDegrade { start, .. } => start,
        }
    }
}

/// One lowered degradation step: at `time`, `link` starts serializing
/// `latency_mult`× slower and dropping `drop_ppm` packets per million.
/// `latency_mult == 1 && drop_ppm == 0` restores the link to full health.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradeEvent {
    /// Effect instant, picoseconds.
    pub time: u64,
    /// Physical link id.
    pub link: u32,
    /// Serialization-time multiplier from this instant on (≥ 1).
    pub latency_mult: u32,
    /// Drop probability in parts per million from this instant on.
    pub drop_ppm: u32,
}

impl DegradeEvent {
    /// True when this step restores the link to nominal behaviour.
    pub fn is_restore(&self) -> bool {
        self.latency_mult <= 1 && self.drop_ppm == 0
    }
}

/// The primitive timelines a [`ChaosSchedule`] compiles down to.
#[derive(Debug, Clone, Default)]
pub struct LoweredChaos {
    /// Hard link fail/recover events, time-sorted.
    pub faults: FaultSchedule,
    /// Degradation steps, sorted by `(time, link)`.
    pub degradations: Vec<DegradeEvent>,
}

impl LoweredChaos {
    /// Time of the last lowered event across both timelines.
    pub fn end_time(&self) -> Option<u64> {
        let f = self.faults.end_time();
        let d = self.degradations.last().map(|e| e.time);
        match (f, d) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        }
    }
}

/// A typed chaos scenario: an ordered list of [`ChaosEvent`]s.
///
/// Events are kept sorted by onset time (stably for ties) so scenario files
/// read chronologically; lowering re-sorts the primitive events anyway.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(from = "Vec<ChaosEvent>", into = "Vec<ChaosEvent>")]
pub struct ChaosSchedule {
    events: Vec<ChaosEvent>,
}

impl From<Vec<ChaosEvent>> for ChaosSchedule {
    fn from(events: Vec<ChaosEvent>) -> Self {
        Self::new(events)
    }
}

impl From<ChaosSchedule> for Vec<ChaosEvent> {
    fn from(sched: ChaosSchedule) -> Self {
        sched.events
    }
}

impl ChaosSchedule {
    /// Builds a scenario from events in any order; they are sorted by onset
    /// time (stable for ties).
    pub fn new(mut events: Vec<ChaosEvent>) -> Self {
        events.sort_by_key(ChaosEvent::onset);
        Self { events }
    }

    /// A scenario with no events (the fabric stays healthy).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The typed events, sorted by onset time.
    pub fn events(&self) -> &[ChaosEvent] {
        &self.events
    }

    /// Number of typed events (lowering usually expands this).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the scenario has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Converts a legacy [`FaultSchedule`] into the typed form, pairing each
    /// `Fail` with the earliest subsequent `Recover` of the same link.
    ///
    /// A `Recover` with no preceding `Fail` is dropped: recovering a live
    /// link is a no-op in [`crate::LinkFailures`], so the lowered behaviour
    /// is unchanged. `from_legacy(s).lower(topo)` reproduces `s`'s effective
    /// event multiset exactly.
    pub fn from_legacy(legacy: &FaultSchedule) -> Self {
        let events = legacy.events();
        let mut consumed = vec![false; events.len()];
        let mut typed = Vec::new();
        for (i, ev) in events.iter().enumerate() {
            match ev.kind {
                LinkEventKind::Fail => {
                    let mut repair_after = 0;
                    for (j, later) in events.iter().enumerate().skip(i + 1) {
                        if !consumed[j]
                            && later.link == ev.link
                            && later.kind == LinkEventKind::Recover
                        {
                            consumed[j] = true;
                            repair_after = later.time - ev.time;
                            break;
                        }
                    }
                    typed.push(ChaosEvent::LinkFail {
                        time: ev.time,
                        link: ev.link,
                        repair_after,
                    });
                }
                LinkEventKind::Recover => {
                    // Matched recoveries were consumed above; an unmatched
                    // one would recover an already-live link — a no-op.
                }
            }
        }
        Self::new(typed)
    }

    /// Checks every event against `topo`: links and switches must exist,
    /// switches must not be hosts, degradations must keep `latency_mult ≥ 1`
    /// and `drop_ppm ≤ 1_000_000`.
    pub fn validate(&self, topo: &Topology) -> Result<(), TopologyError> {
        let check_link = |link: u32| -> Result<(), TopologyError> {
            if link as usize >= topo.num_links() {
                return Err(TopologyError::NoSuchLink {
                    link,
                    num_links: topo.num_links(),
                });
            }
            Ok(())
        };
        for ev in &self.events {
            match *ev {
                ChaosEvent::LinkFail { link, .. } | ChaosEvent::LinkFlap { link, .. } => {
                    check_link(link)?;
                }
                ChaosEvent::SwitchOutage { switch, .. } => {
                    if switch.index() >= topo.num_nodes() {
                        return Err(TopologyError::NoSuchNode {
                            level: usize::MAX,
                            index: switch.index(),
                        });
                    }
                    let node = topo.node(switch);
                    if node.is_host() {
                        return Err(TopologyError::NoSuchNode {
                            level: 0,
                            index: node.index_in_level as usize,
                        });
                    }
                }
                ChaosEvent::LinkDegrade {
                    link,
                    latency_mult,
                    drop_ppm,
                    ..
                } => {
                    check_link(link)?;
                    if latency_mult == 0 || drop_ppm > 1_000_000 {
                        return Err(TopologyError::ZeroParameter);
                    }
                }
            }
        }
        Ok(())
    }

    /// Compiles the scenario down to the primitive timelines: a
    /// [`FaultSchedule`] of per-cable fail/recover events plus time-sorted
    /// [`DegradeEvent`]s.
    ///
    /// Switch outages expand to one fail (and one recover) per incident
    /// cable; flaps expand to their seeded burst trains. Redundant events —
    /// failing an already-failed link, overlapping outages — are legal: the
    /// consumers ([`crate::LinkFailures`], the subnet manager) treat them as
    /// no-ops.
    pub fn lower(&self, topo: &Topology) -> Result<LoweredChaos, TopologyError> {
        self.validate(topo)?;
        let mut faults = Vec::new();
        let mut degradations = Vec::new();
        let push_pair = |events: &mut Vec<LinkEvent>, time, link, repair_after: u64| {
            events.push(LinkEvent {
                time,
                link,
                kind: LinkEventKind::Fail,
            });
            if repair_after > 0 {
                events.push(LinkEvent {
                    time: time + repair_after,
                    link,
                    kind: LinkEventKind::Recover,
                });
            }
        };
        for ev in &self.events {
            match *ev {
                ChaosEvent::LinkFail {
                    time,
                    link,
                    repair_after,
                } => push_pair(&mut faults, time, link, repair_after),
                ChaosEvent::SwitchOutage {
                    time,
                    switch,
                    repair_after,
                } => {
                    let node = topo.node(switch);
                    for pp in node.up.iter().chain(&node.down) {
                        push_pair(&mut faults, time, pp.link, repair_after);
                    }
                }
                ChaosEvent::LinkFlap {
                    start,
                    link,
                    bursts,
                    min_dwell,
                    period,
                    seed,
                } => {
                    let slot_jitter = (period / 2).max(1);
                    for j in 0..bursts as u64 {
                        let slot = start + j * period.max(1);
                        let fail_at = slot + mix64(seed ^ mix64(2 * j)) % slot_jitter;
                        let dwell = min_dwell + mix64(seed ^ mix64(2 * j + 1)) % slot_jitter;
                        push_pair(&mut faults, fail_at, link, dwell.max(1));
                    }
                }
                ChaosEvent::LinkDegrade {
                    start,
                    link,
                    latency_mult,
                    drop_ppm,
                    duration,
                } => {
                    degradations.push(DegradeEvent {
                        time: start,
                        link,
                        latency_mult,
                        drop_ppm,
                    });
                    if duration > 0 {
                        degradations.push(DegradeEvent {
                            time: start + duration,
                            link,
                            latency_mult: 1,
                            drop_ppm: 0,
                        });
                    }
                }
            }
        }
        degradations.sort_by_key(|d| (d.time, d.link));
        Ok(LoweredChaos {
            faults: FaultSchedule::new(faults),
            degradations,
        })
    }
}

/// Seeded generator for the recurring chaos scenario shapes.
///
/// Every preset is a pure function of `(topology, seed, parameters)` — the
/// same inputs always produce the same [`ChaosSchedule`], and lowering it
/// always produces the same primitive timelines.
#[derive(Debug, Clone, Copy)]
pub struct ChaosGen {
    /// Base seed all presets derive their hash streams from.
    pub seed: u64,
}

impl ChaosGen {
    /// A generator deriving all randomness from `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Switch-to-switch cable ids of `topo` (host cables spared), the
    /// candidate pool shared by the link-granular presets.
    fn switch_link_candidates(topo: &Topology) -> Vec<u32> {
        (0..topo.num_links() as u32)
            .filter(|&l| !topo.node(topo.link(l).child).is_host())
            .collect()
    }

    /// Picks `count` distinct entries of `candidates` by rejection sampling
    /// on the generator's hash stream — the exact candidate-selection loop
    /// of the legacy [`FaultSchedule::random_switch_links`].
    fn pick_distinct(&self, candidates: &[u32], count: usize) -> Vec<u32> {
        let want = count.min(candidates.len());
        let mut chosen: Vec<u32> = Vec::with_capacity(want);
        let mut attempt: u64 = 0;
        while chosen.len() < want {
            let idx = mix64(self.seed ^ mix64(attempt)) as usize % candidates.len();
            attempt += 1;
            let link = candidates[idx];
            if !chosen.contains(&link) {
                chosen.push(link);
            }
        }
        chosen
    }

    /// Independent random cable faults: `count` distinct switch-to-switch
    /// cables, each failing at a hash-derived time in `[0, window)` and
    /// recovering `repair_after` picoseconds later (`0` = permanent).
    ///
    /// Lowering this scenario reproduces
    /// `FaultSchedule::random_switch_links(topo, seed, count, window,
    /// repair_after)` event for event — it is the typed replacement for that
    /// legacy helper.
    pub fn random_links(
        &self,
        topo: &Topology,
        count: usize,
        window: u64,
        repair_after: u64,
    ) -> ChaosSchedule {
        let candidates = Self::switch_link_candidates(topo);
        let chosen = self.pick_distinct(&candidates, count);
        let events = chosen
            .iter()
            .enumerate()
            .map(|(i, &link)| ChaosEvent::LinkFail {
                time: if window > 0 {
                    mix64(self.seed.wrapping_add(0x5eed).wrapping_add(i as u64)) % window
                } else {
                    0
                },
                link,
                repair_after,
            })
            .collect();
        ChaosSchedule::new(events)
    }

    /// Correlated-by-switch outages: `count` distinct switches go fully dark
    /// at hash-derived times in `[0, window)`, each taking every incident
    /// cable with it, and recover after `repair_after` (`0` = permanent).
    ///
    /// When the tree has more than one switch level, leaf switches are
    /// spared so no host is cut off by construction; on a single-level tree
    /// every switch is a candidate.
    pub fn switch_outages(
        &self,
        topo: &Topology,
        count: usize,
        window: u64,
        repair_after: u64,
    ) -> ChaosSchedule {
        let min_level = if topo.height() > 1 { 2 } else { 1 };
        let candidates: Vec<NodeId> = (min_level..=topo.height())
            .flat_map(|l| topo.level_nodes(l))
            .collect();
        let want = count.min(candidates.len());
        let mut chosen: Vec<usize> = Vec::with_capacity(want);
        let mut attempt: u64 = 0;
        while chosen.len() < want {
            let idx = mix64(self.seed ^ mix64(attempt)) as usize % candidates.len();
            attempt += 1;
            if !chosen.contains(&idx) {
                chosen.push(idx);
            }
        }
        let events = chosen
            .iter()
            .enumerate()
            .map(|(i, &idx)| ChaosEvent::SwitchOutage {
                time: if window > 0 {
                    mix64(self.seed.wrapping_add(0x5eed).wrapping_add(i as u64)) % window
                } else {
                    0
                },
                switch: candidates[idx],
                repair_after,
            })
            .collect();
        ChaosSchedule::new(events)
    }

    /// Rolling upgrade of one switch level: every switch at `level` reboots
    /// in within-level order, one outage starting every `stagger`
    /// picoseconds and lasting `downtime` each.
    pub fn rolling_upgrade(
        &self,
        topo: &Topology,
        level: usize,
        stagger: u64,
        downtime: u64,
    ) -> ChaosSchedule {
        let events = topo
            .level_nodes(level.clamp(1, topo.height()))
            .enumerate()
            .map(|(i, switch)| ChaosEvent::SwitchOutage {
                time: i as u64 * stagger,
                switch,
                repair_after: downtime.max(1),
            })
            .collect();
        ChaosSchedule::new(events)
    }

    /// Flap storm: `count` distinct switch-to-switch cables each flap
    /// `bursts` times starting at hash-derived offsets in `[0, window)`,
    /// with per-cable decorrelated burst seeds, `min_dwell` minimum down
    /// time and `period`-wide burst slots.
    pub fn flap_storm(
        &self,
        topo: &Topology,
        count: usize,
        window: u64,
        bursts: u32,
        min_dwell: u64,
        period: u64,
    ) -> ChaosSchedule {
        let candidates = Self::switch_link_candidates(topo);
        let chosen = self.pick_distinct(&candidates, count);
        let events = chosen
            .iter()
            .enumerate()
            .map(|(i, &link)| ChaosEvent::LinkFlap {
                start: if window > 0 {
                    mix64(self.seed.wrapping_add(0x5eed).wrapping_add(i as u64)) % window
                } else {
                    0
                },
                link,
                bursts,
                min_dwell,
                period: period.max(1),
                seed: mix64(self.seed ^ mix64(0xF1A9 + link as u64)),
            })
            .collect();
        ChaosSchedule::new(events)
    }

    /// Brownout: `count` distinct switch-to-switch cables degrade at
    /// hash-derived times in `[0, window)` — `latency_mult`× slower
    /// serialization, `drop_ppm` loss — for `duration` picoseconds each
    /// (`0` = until the end of the run). No cable hard-fails.
    pub fn brownout(
        &self,
        topo: &Topology,
        count: usize,
        window: u64,
        latency_mult: u32,
        drop_ppm: u32,
        duration: u64,
    ) -> ChaosSchedule {
        let candidates = Self::switch_link_candidates(topo);
        let chosen = self.pick_distinct(&candidates, count);
        let events = chosen
            .iter()
            .enumerate()
            .map(|(i, &link)| ChaosEvent::LinkDegrade {
                start: if window > 0 {
                    mix64(self.seed.wrapping_add(0x5eed).wrapping_add(i as u64)) % window
                } else {
                    0
                },
                link,
                latency_mult: latency_mult.max(1),
                drop_ppm: drop_ppm.min(1_000_000),
                duration,
            })
            .collect();
        ChaosSchedule::new(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rlft::catalog;
    use crate::Topology;

    #[test]
    fn random_links_reproduces_legacy_schedule() {
        let topo = Topology::build(catalog::nodes_324());
        for (seed, count, window, repair) in [
            (42u64, 4usize, 1_000_000u64, 2_000_000u64),
            (7, 3, 0, 0),
            (1234, 6, 500_000, 0),
        ] {
            #[allow(deprecated)]
            let legacy = FaultSchedule::random_switch_links(&topo, seed, count, window, repair);
            let typed = ChaosGen::new(seed).random_links(&topo, count, window, repair);
            let lowered = typed.lower(&topo).unwrap();
            assert_eq!(lowered.faults.events(), legacy.events());
            assert!(lowered.degradations.is_empty());
        }
    }

    #[test]
    fn from_legacy_round_trips_through_lower() {
        let topo = Topology::build(catalog::nodes_128());
        #[allow(deprecated)]
        let legacy = FaultSchedule::random_switch_links(&topo, 99, 5, 2_000_000, 700_000);
        let typed = ChaosSchedule::from_legacy(&legacy);
        assert_eq!(typed.len(), 5, "one typed fail per fail/recover pair");
        let lowered = typed.lower(&topo).unwrap();
        assert_eq!(lowered.faults.events(), legacy.events());
    }

    #[test]
    fn switch_outage_expands_to_all_incident_links() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        // A level-2 switch: every up and down cable must fail and recover.
        let switch = topo.level_nodes(2).next().unwrap();
        let node = topo.node(switch);
        let incident = node.up.len() + node.down.len();
        assert!(incident > 1);
        let sched = ChaosSchedule::new(vec![ChaosEvent::SwitchOutage {
            time: 1_000,
            switch,
            repair_after: 500,
        }]);
        let lowered = sched.lower(&topo).unwrap();
        assert_eq!(lowered.faults.len(), 2 * incident);
        let incident_links: Vec<u32> = node.up.iter().chain(&node.down).map(|pp| pp.link).collect();
        for ev in lowered.faults.events() {
            assert!(incident_links.contains(&ev.link));
            match ev.kind {
                LinkEventKind::Fail => assert_eq!(ev.time, 1_000),
                LinkEventKind::Recover => assert_eq!(ev.time, 1_500),
            }
        }
    }

    #[test]
    fn flap_bursts_respect_min_dwell_and_slots() {
        let topo = Topology::build(catalog::nodes_128());
        let link = ChaosGen::switch_link_candidates(&topo)[0];
        let sched = ChaosSchedule::new(vec![ChaosEvent::LinkFlap {
            start: 10_000,
            link,
            bursts: 4,
            min_dwell: 2_000,
            period: 100_000,
            seed: 77,
        }]);
        let lowered = sched.lower(&topo).unwrap();
        assert_eq!(lowered.faults.len(), 8, "4 bursts = 4 fail/recover pairs");
        let mut fails = Vec::new();
        let mut recovers = Vec::new();
        for ev in lowered.faults.events() {
            match ev.kind {
                LinkEventKind::Fail => fails.push(ev.time),
                LinkEventKind::Recover => recovers.push(ev.time),
            }
        }
        for (f, r) in fails.iter().zip(&recovers) {
            assert!(*r >= f + 2_000, "dwell below min_dwell: {f}..{r}");
            assert!(*f >= 10_000);
        }
        // Determinism: relowering yields the identical timeline.
        let again = sched.lower(&topo).unwrap();
        assert_eq!(again.faults.events(), lowered.faults.events());
    }

    #[test]
    fn degrade_lowers_to_onset_and_restore() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let sched = ChaosSchedule::new(vec![ChaosEvent::LinkDegrade {
            start: 5_000,
            link: 3,
            latency_mult: 4,
            drop_ppm: 50_000,
            duration: 20_000,
        }]);
        let lowered = sched.lower(&topo).unwrap();
        assert!(lowered.faults.is_empty(), "degradation never hard-fails");
        assert_eq!(
            lowered.degradations,
            vec![
                DegradeEvent {
                    time: 5_000,
                    link: 3,
                    latency_mult: 4,
                    drop_ppm: 50_000,
                },
                DegradeEvent {
                    time: 25_000,
                    link: 3,
                    latency_mult: 1,
                    drop_ppm: 0,
                },
            ]
        );
        assert!(lowered.degradations[1].is_restore());
        assert_eq!(lowered.end_time(), Some(25_000));
    }

    #[test]
    fn generator_presets_are_deterministic_and_seed_sensitive() {
        let topo = Topology::build(catalog::nodes_128());
        let a = ChaosGen::new(5).switch_outages(&topo, 2, 1_000_000, 300_000);
        let b = ChaosGen::new(5).switch_outages(&topo, 2, 1_000_000, 300_000);
        assert_eq!(a, b);
        let c = ChaosGen::new(6).switch_outages(&topo, 2, 1_000_000, 300_000);
        assert_ne!(a, c);
        // Outages spare leaf switches on multi-level trees.
        for ev in a.events() {
            if let ChaosEvent::SwitchOutage { switch, .. } = ev {
                assert!(topo.node(*switch).level >= 2);
            }
        }
        let storm = ChaosGen::new(11).flap_storm(&topo, 3, 500_000, 3, 1_000, 50_000);
        assert_eq!(storm.len(), 3);
        assert_eq!(
            storm.lower(&topo).unwrap().faults.len(),
            18,
            "3 links x 3 bursts x fail+recover"
        );
        let rolling = ChaosGen::new(0).rolling_upgrade(&topo, 2, 1_000_000, 250_000);
        let times: Vec<u64> = rolling.events().iter().map(ChaosEvent::onset).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "rolling upgrade staggers monotonically");
    }

    #[test]
    fn validate_rejects_bad_events() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let bad_link = ChaosSchedule::new(vec![ChaosEvent::LinkFail {
            time: 0,
            link: topo.num_links() as u32,
            repair_after: 0,
        }]);
        assert!(bad_link.validate(&topo).is_err());
        let host_outage = ChaosSchedule::new(vec![ChaosEvent::SwitchOutage {
            time: 0,
            switch: topo.host(0),
            repair_after: 0,
        }]);
        assert!(host_outage.validate(&topo).is_err());
        let bad_mult = ChaosSchedule::new(vec![ChaosEvent::LinkDegrade {
            start: 0,
            link: 0,
            latency_mult: 0,
            drop_ppm: 0,
            duration: 0,
        }]);
        assert!(bad_mult.validate(&topo).is_err());
    }

    #[test]
    fn serde_round_trip_preserves_scenarios() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let switch = topo.level_nodes(1).next().unwrap();
        let sched = ChaosSchedule::new(vec![
            ChaosEvent::LinkFail {
                time: 100,
                link: 1,
                repair_after: 50,
            },
            ChaosEvent::SwitchOutage {
                time: 200,
                switch,
                repair_after: 0,
            },
            ChaosEvent::LinkFlap {
                start: 300,
                link: 2,
                bursts: 2,
                min_dwell: 10,
                period: 40,
                seed: 9,
            },
            ChaosEvent::LinkDegrade {
                start: 400,
                link: 3,
                latency_mult: 2,
                drop_ppm: 1_000,
                duration: 0,
            },
        ]);
        let json = serde_json::to_string(&sched).unwrap();
        let back: ChaosSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sched);
        assert!(json.contains("\"ev\""), "internally tagged: {json}");
        assert!(json.contains("switch_outage"), "snake_case tags: {json}");
    }
}
