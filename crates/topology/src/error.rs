//! Error types for topology construction and validation.

use std::fmt;

/// Errors raised while building or validating a fat-tree topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The spec declares zero levels.
    EmptySpec,
    /// `m`, `w`, `p` vectors disagree in length.
    MismatchedArity {
        /// Length of the `m` vector.
        m: usize,
        /// Length of the `w` vector.
        w: usize,
        /// Length of the `p` vector.
        p: usize,
    },
    /// Some tuple entry is zero.
    ZeroParameter,
    /// The spec describes more hosts than supported.
    TooLarge {
        /// Declared host count.
        hosts: u64,
    },
    /// An RLFT restriction does not hold (see [`crate::rlft::RlftReport`]).
    NotRlft(String),
    /// A referenced node does not exist.
    NoSuchNode {
        /// Requested tree level.
        level: usize,
        /// Requested within-level index.
        index: usize,
    },
    /// A referenced host does not exist.
    NoSuchHost {
        /// Requested host index.
        host: usize,
    },
    /// Topology file parsing failed.
    Parse {
        /// 1-based line number of the offending input.
        line: usize,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptySpec => write!(f, "PGFT spec must have at least one level"),
            Self::MismatchedArity { m, w, p } => write!(
                f,
                "PGFT parameter vectors disagree in length: |m|={m}, |w|={w}, |p|={p}"
            ),
            Self::ZeroParameter => write!(f, "PGFT parameters must be strictly positive"),
            Self::TooLarge { hosts } => {
                write!(f, "topology declares {hosts} hosts, exceeding the supported maximum")
            }
            Self::NotRlft(msg) => write!(f, "not a real-life fat-tree: {msg}"),
            Self::NoSuchNode { level, index } => {
                write!(f, "no node with index {index} at level {level}")
            }
            Self::NoSuchHost { host } => write!(f, "no host with index {host}"),
            Self::Parse { line, message } => {
                write!(f, "topology parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}
