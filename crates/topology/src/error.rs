//! Error types for topology construction and validation.

use std::fmt;

/// Errors raised while building or validating a fat-tree topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The spec declares zero levels.
    EmptySpec,
    /// `m`, `w`, `p` vectors disagree in length.
    MismatchedArity {
        /// Length of the `m` vector.
        m: usize,
        /// Length of the `w` vector.
        w: usize,
        /// Length of the `p` vector.
        p: usize,
    },
    /// Some tuple entry is zero.
    ZeroParameter,
    /// The spec describes more hosts than supported.
    TooLarge {
        /// Declared host count.
        hosts: u64,
    },
    /// An RLFT restriction does not hold (see [`crate::rlft::RlftReport`]).
    NotRlft(String),
    /// A referenced node does not exist.
    NoSuchNode {
        /// Requested tree level.
        level: usize,
        /// Requested within-level index.
        index: usize,
    },
    /// A referenced host does not exist.
    NoSuchHost {
        /// Requested host index.
        host: usize,
    },
    /// A referenced physical link does not exist.
    NoSuchLink {
        /// Requested link id.
        link: u32,
        /// Number of links in the topology the failure set was built for.
        num_links: usize,
    },
    /// A referenced port does not exist on the node.
    NoSuchPort {
        /// Node carrying the port.
        node: u32,
        /// Requested port index.
        port: u32,
    },
    /// A failure set (or similar per-link structure) was built for a
    /// different topology than the one it is being applied to.
    TopologyMismatch {
        /// Fingerprint the structure was built for.
        expected: u64,
        /// Fingerprint of the topology it was applied to.
        actual: u64,
    },
    /// Topology file parsing failed.
    Parse {
        /// 1-based line number of the offending input.
        line: usize,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptySpec => write!(f, "PGFT spec must have at least one level"),
            Self::MismatchedArity { m, w, p } => write!(
                f,
                "PGFT parameter vectors disagree in length: |m|={m}, |w|={w}, |p|={p}"
            ),
            Self::ZeroParameter => write!(f, "PGFT parameters must be strictly positive"),
            Self::TooLarge { hosts } => {
                write!(
                    f,
                    "topology declares {hosts} hosts, exceeding the supported maximum"
                )
            }
            Self::NotRlft(msg) => write!(f, "not a real-life fat-tree: {msg}"),
            Self::NoSuchNode { level, index } => {
                write!(f, "no node with index {index} at level {level}")
            }
            Self::NoSuchHost { host } => write!(f, "no host with index {host}"),
            Self::NoSuchLink { link, num_links } => {
                write!(f, "no link with id {link} (topology has {num_links} links)")
            }
            Self::NoSuchPort { node, port } => {
                write!(f, "node {node} has no port with index {port}")
            }
            Self::TopologyMismatch { expected, actual } => write!(
                f,
                "failure set was built for topology {expected:#018x} but applied to {actual:#018x}"
            ),
            Self::Parse { line, message } => {
                write!(f, "topology parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}
