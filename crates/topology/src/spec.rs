//! Canonical PGFT tuple descriptions and the digit arithmetic they induce.
//!
//! A Parallel-Ports Generalized Fat-Tree is canonically described by the
//! tuple `PGFT(h; m1..mh; w1..wh; p1..ph)` (paper Sec. IV.B):
//!
//! * `h`  — number of switch levels (hosts live at level 0),
//! * `m_l` — number of *distinct* lower-level nodes connected to each node of
//!   level `l`,
//! * `w_l` — number of *distinct* level-`l` nodes connected to each node of
//!   level `l-1`,
//! * `p_l` — number of parallel links between each such connected pair.
//!
//! Every node at level `l` carries `h` digits `d_1..d_h`; digit `d_j` ranges
//! over `[0, w_j)` when `j <= l` and over `[0, m_j)` when `j > l`. Hosts
//! (level 0) therefore carry a pure mixed-radix representation of their host
//! index in radices `m_1..m_h`, least-significant digit first.
//!
//! All indices in this crate are **zero-based**: `m[l]` is the paper's
//! `m_{l+1}` and so on. Doc comments spell out the paper-side quantity
//! whenever the shift could confuse.

use serde::{Deserialize, Serialize};

use crate::error::TopologyError;

/// Canonical PGFT description `PGFT(h; m; w; p)`.
///
/// Invariants enforced by [`PgftSpec::new`]:
/// * `m`, `w`, `p` all have length `h >= 1`,
/// * every entry is strictly positive,
/// * the resulting node/port counts fit comfortably in `u32` indices.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PgftSpec {
    m: Vec<u32>,
    w: Vec<u32>,
    p: Vec<u32>,
}

impl PgftSpec {
    /// Maximum number of hosts a spec may declare. Keeps every derived
    /// index (ports, channels, LFT entries) within `u32`.
    pub const MAX_HOSTS: u64 = 1 << 24;

    /// Builds a spec, validating the tuple.
    pub fn new(m: Vec<u32>, w: Vec<u32>, p: Vec<u32>) -> Result<Self, TopologyError> {
        if m.is_empty() {
            return Err(TopologyError::EmptySpec);
        }
        if m.len() != w.len() || m.len() != p.len() {
            return Err(TopologyError::MismatchedArity {
                m: m.len(),
                w: w.len(),
                p: p.len(),
            });
        }
        if m.iter().chain(&w).chain(&p).any(|&x| x == 0) {
            return Err(TopologyError::ZeroParameter);
        }
        let hosts: u64 = m.iter().map(|&x| x as u64).product();
        if hosts > Self::MAX_HOSTS {
            return Err(TopologyError::TooLarge { hosts });
        }
        Ok(Self { m, w, p })
    }

    /// Convenience constructor from slices.
    pub fn from_slices(m: &[u32], w: &[u32], p: &[u32]) -> Result<Self, TopologyError> {
        Self::new(m.to_vec(), w.to_vec(), p.to_vec())
    }

    /// XGFT is a PGFT with one parallel link everywhere (paper Sec. IV.A).
    pub fn xgft(m: &[u32], w: &[u32]) -> Result<Self, TopologyError> {
        Self::new(m.to_vec(), w.to_vec(), vec![1; m.len()])
    }

    /// `k`-ary-`n`-tree: `n` levels, arity `k` down and up at every level,
    /// single host cables (`w_1 = 1`).
    pub fn k_ary_n_tree(k: u32, n: usize) -> Result<Self, TopologyError> {
        if n == 0 {
            return Err(TopologyError::EmptySpec);
        }
        let m = vec![k; n];
        let mut w = vec![k; n];
        w[0] = 1;
        Self::xgft(&m, &w)
    }

    /// Number of switch levels `h` (hosts are level 0).
    #[inline]
    pub fn height(&self) -> usize {
        self.m.len()
    }

    /// Paper `m_{l+1}` (children multiplicity between level `l` and `l+1`).
    #[inline]
    pub fn m(&self, l: usize) -> u32 {
        self.m[l]
    }

    /// Paper `w_{l+1}` (parents multiplicity between level `l` and `l+1`).
    #[inline]
    pub fn w(&self, l: usize) -> u32 {
        self.w[l]
    }

    /// Paper `p_{l+1}` (parallel links between level `l` and `l+1`).
    #[inline]
    pub fn p(&self, l: usize) -> u32 {
        self.p[l]
    }

    /// All `m` parameters, `m[l]` being the paper's `m_{l+1}`.
    #[inline]
    pub fn ms(&self) -> &[u32] {
        &self.m
    }

    /// All `w` parameters.
    #[inline]
    pub fn ws(&self) -> &[u32] {
        &self.w
    }

    /// All `p` parameters.
    #[inline]
    pub fn ps(&self) -> &[u32] {
        &self.p
    }

    /// Number of hosts `N = prod m_i`.
    #[inline]
    pub fn num_hosts(&self) -> usize {
        self.m.iter().map(|&x| x as usize).product()
    }

    /// `W_l = prod_{i=1..l} w_i` — the divisor used by D-Mod-K at level `l`
    /// (zero-based: `w_prefix(l) = w[0] * .. * w[l-1]`, `w_prefix(0) = 1`).
    #[inline]
    pub fn w_prefix(&self, l: usize) -> usize {
        self.w[..l].iter().map(|&x| x as usize).product()
    }

    /// `M_l = prod_{i=1..l} m_i` — hosts per level-`l` subtree
    /// (`m_prefix(0) = 1`, `m_prefix(h) = N`).
    #[inline]
    pub fn m_prefix(&self, l: usize) -> usize {
        self.m[..l].iter().map(|&x| x as usize).product()
    }

    /// Number of up-going ports of a level-`l` node (`w_{l+1} * p_{l+1}`);
    /// zero at the top level.
    #[inline]
    pub fn up_ports(&self, l: usize) -> u32 {
        if l >= self.height() {
            0
        } else {
            self.w[l] * self.p[l]
        }
    }

    /// Number of down-going ports of a level-`l` node (`m_l * p_l`); zero
    /// for hosts.
    #[inline]
    pub fn down_ports(&self, l: usize) -> u32 {
        if l == 0 {
            0
        } else {
            self.m[l - 1] * self.p[l - 1]
        }
    }

    /// Digit radix for digit index `j` of a node at level `l`: `w_j` for
    /// digits "below" the level (`j < l`), `m_j` above.
    #[inline]
    pub fn digit_radix(&self, level: usize, j: usize) -> u32 {
        if j < level {
            self.w[j]
        } else {
            self.m[j]
        }
    }

    /// Number of nodes at a level: `prod_{j<l} w_j * prod_{j>=l} m_j`.
    pub fn nodes_at_level(&self, level: usize) -> usize {
        (0..self.height())
            .map(|j| self.digit_radix(level, j) as usize)
            .product()
    }

    /// Total number of switches (levels `1..=h`).
    pub fn num_switches(&self) -> usize {
        (1..=self.height()).map(|l| self.nodes_at_level(l)).sum()
    }

    /// Decomposes a within-level node index into its digit vector
    /// (least-significant digit first, `h` digits).
    pub fn digits_of(&self, level: usize, mut index: usize) -> Vec<u32> {
        let h = self.height();
        let mut digits = Vec::with_capacity(h);
        for j in 0..h {
            let r = self.digit_radix(level, j) as usize;
            digits.push((index % r) as u32);
            index /= r;
        }
        debug_assert_eq!(index, 0, "index out of range for level");
        digits
    }

    /// Recomposes a digit vector into a within-level node index.
    pub fn index_of(&self, level: usize, digits: &[u32]) -> usize {
        let h = self.height();
        debug_assert_eq!(digits.len(), h);
        let mut index = 0usize;
        let mut stride = 1usize;
        for (j, &digit) in digits.iter().enumerate() {
            let r = self.digit_radix(level, j) as usize;
            debug_assert!((digit as usize) < r, "digit {j} out of radix");
            index += digit as usize * stride;
            stride *= r;
        }
        index
    }

    /// Host digits of host `j` (mixed radix `m`, LSD first). Equivalent to
    /// `digits_of(0, j)`.
    #[inline]
    pub fn host_digits(&self, host: usize) -> Vec<u32> {
        self.digits_of(0, host)
    }

    /// Single host digit `j_l` (zero-based digit index `l`).
    #[inline]
    pub fn host_digit(&self, host: usize, l: usize) -> u32 {
        ((host / self.m_prefix(l)) % self.m[l] as usize) as u32
    }

    /// Canonical display form, e.g. `PGFT(3; 18,18,6; 1,18,3; 1,1,6)`.
    pub fn canonical_name(&self) -> String {
        let join = |v: &[u32]| {
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "PGFT({}; {}; {}; {})",
            self.height(),
            join(&self.m),
            join(&self.w),
            join(&self.p)
        )
    }
}

impl std::fmt::Display for PgftSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.canonical_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_1944() -> PgftSpec {
        PgftSpec::from_slices(&[18, 18, 6], &[1, 18, 3], &[1, 1, 6]).unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            PgftSpec::new(vec![], vec![], vec![]),
            Err(TopologyError::EmptySpec)
        ));
    }

    #[test]
    fn rejects_mismatched_lengths() {
        assert!(matches!(
            PgftSpec::new(vec![2, 2], vec![1], vec![1, 1]),
            Err(TopologyError::MismatchedArity { .. })
        ));
    }

    #[test]
    fn rejects_zero_parameter() {
        assert!(matches!(
            PgftSpec::new(vec![2, 0], vec![1, 2], vec![1, 1]),
            Err(TopologyError::ZeroParameter)
        ));
    }

    #[test]
    fn rejects_oversized() {
        assert!(matches!(
            PgftSpec::new(vec![4096, 4096, 4096], vec![1, 1, 1], vec![1, 1, 1]),
            Err(TopologyError::TooLarge { .. })
        ));
    }

    #[test]
    fn host_count_1944() {
        assert_eq!(spec_1944().num_hosts(), 1944);
    }

    #[test]
    fn level_populations_1944() {
        let s = spec_1944();
        // level 0: 18*18*6 hosts
        assert_eq!(s.nodes_at_level(0), 1944);
        // level 1 (leaf switches): w1 * m2 * m3 = 1 * 18 * 6
        assert_eq!(s.nodes_at_level(1), 108);
        // level 2: w1 * w2 * m3 = 1 * 18 * 6
        assert_eq!(s.nodes_at_level(2), 108);
        // level 3 (top): w1 * w2 * w3 = 1 * 18 * 3
        assert_eq!(s.nodes_at_level(3), 54);
    }

    #[test]
    fn port_counts_match_radix_36() {
        let s = spec_1944();
        // leaf switches: 18 down + 18 up = 36 ports
        assert_eq!(s.down_ports(1), 18);
        assert_eq!(s.up_ports(1), 18);
        // mid switches: 18 down + 18 up
        assert_eq!(s.down_ports(2), 18);
        assert_eq!(s.up_ports(2), 18);
        // top switches: 36 down, 0 up
        assert_eq!(s.down_ports(3), 36);
        assert_eq!(s.up_ports(3), 0);
        // hosts: single cable
        assert_eq!(s.up_ports(0), 1);
        assert_eq!(s.down_ports(0), 0);
    }

    #[test]
    fn digit_roundtrip_all_levels() {
        let s = spec_1944();
        for level in 0..=s.height() {
            let n = s.nodes_at_level(level);
            for idx in [0, 1, n / 2, n - 1] {
                let d = s.digits_of(level, idx);
                assert_eq!(s.index_of(level, &d), idx, "level {level} idx {idx}");
            }
        }
    }

    #[test]
    fn host_digit_matches_digits_of() {
        let s = spec_1944();
        for host in [0usize, 17, 18, 323, 1000, 1943] {
            let d = s.host_digits(host);
            for (l, &digit) in d.iter().enumerate() {
                assert_eq!(s.host_digit(host, l), digit);
            }
        }
    }

    #[test]
    fn prefix_products() {
        let s = spec_1944();
        assert_eq!(s.w_prefix(0), 1);
        assert_eq!(s.w_prefix(1), 1);
        assert_eq!(s.w_prefix(2), 18);
        assert_eq!(s.w_prefix(3), 54);
        assert_eq!(s.m_prefix(0), 1);
        assert_eq!(s.m_prefix(1), 18);
        assert_eq!(s.m_prefix(2), 324);
        assert_eq!(s.m_prefix(3), 1944);
    }

    #[test]
    fn k_ary_n_tree_shape() {
        let s = PgftSpec::k_ary_n_tree(4, 3).unwrap();
        assert_eq!(s.num_hosts(), 64);
        assert_eq!(s.up_ports(0), 1);
        assert_eq!(s.nodes_at_level(3), 16);
    }

    #[test]
    fn canonical_name_round() {
        let s = spec_1944();
        assert_eq!(s.canonical_name(), "PGFT(3; 18,18,6; 1,18,3; 1,1,6)");
    }
}
