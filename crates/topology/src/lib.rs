//! # ftree-topology — fat-tree topology substrate
//!
//! Implements the topology formalism of Zahavi, *"Fat-Trees Routing and Node
//! Ordering Providing Contention Free Traffic for MPI Global Collectives"*
//! (Sec. IV): k-ary-n-trees and XGFTs as special cases of **Parallel-Ports
//! Generalized Fat-Trees** (PGFT), and the practically-buildable subclass of
//! **Real-Life Fat-Trees** (RLFT).
//!
//! The crate provides:
//!
//! * [`PgftSpec`] — the canonical `PGFT(h; m; w; p)` tuple with all derived
//!   digit arithmetic,
//! * [`Topology`] — the materialized graph of hosts, switches, ports, links
//!   and directed channels, built by the paper's port-numbering rule,
//! * [`rlft`] — RLFT restriction checking and a catalog of the topologies in
//!   the paper's evaluation (128/324/1728/1944-node clusters, Figure 1/4
//!   examples),
//! * [`RoutingTable`] — destination-indexed linear forwarding tables (as
//!   programmed by InfiniBand subnet managers) plus path tracing and
//!   up*/down* validation,
//! * [`io`] — canonical-name parsing and `ibnetdiscover`-style dumps,
//! * [`chaos`] — typed fault scenarios (switch outages, link flapping,
//!   degraded cables) lowering onto [`FaultSchedule`] timelines.
//!
//! ```
//! use ftree_topology::{rlft::catalog, Topology};
//!
//! let topo = Topology::build(catalog::nodes_324());
//! assert_eq!(topo.num_hosts(), 324);
//! assert_eq!(ftree_topology::rlft::require_rlft(topo.spec()).unwrap(), 18);
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod error;
pub mod failures;
pub mod graph;
pub mod io;
pub mod lft;
pub mod rlft;
pub mod schedule;
pub mod spec;

pub use chaos::{ChaosEvent, ChaosGen, ChaosSchedule, DegradeEvent, LoweredChaos};
pub use error::TopologyError;
pub use failures::LinkFailures;
pub use graph::{ChannelId, Direction, Link, Node, NodeId, PortPeer, PortRef, Topology};
pub use lft::{NextChannelTable, Path, RouteError, RoutingTable};
pub use schedule::{FaultSchedule, LinkEvent, LinkEventKind};
pub use spec::PgftSpec;
